// E28 — the composed tier under CONTINUOUS live churn: mid-run splices
// (events strike WHILE Algorithm 2 floods) consumed by the incremental
// dirty-ball observer, with the warm verifier-row cache and the per-epoch
// message-level engine oracle all on at once. This is the steady-state hot
// path a long-running deployment would operate: each epoch's run executes
// on IncrementalEngine::snapshot() (only the balls dirtied by the previous
// epoch's mid-run + flushed splices are recomputed — verify mode asserts
// bitwise equality with a cold rebuild on every call), reuses still-valid
// warm rows for its run-start Verifier, and is shadowed by a cold replay
// (verify_warm) plus the engine oracle (run_engine). CI asserts
// metrics.guard: engine divergences == 0 and the dirty-ball fraction < 1
// at the lowest churn rate; E24/E26 remain the standalone bitwise anchors.
// All reported metrics are counters — no wall-clock — so the manifest is
// bitwise identical across --jobs and joins the determinism comparison.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e28(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(9, ctx.max_exp(10));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 6;
  const double rates[] = {0.001, 0.01};  // churn fraction per side per epoch
  const proto::MembershipPolicy policies[] = {
      proto::MembershipPolicy::kTreatAsSilent,
      proto::MembershipPolicy::kReadmitNextPhase};

  util::Table table("E28: composed tier under live mid-run churn, d=6 (" +
                    std::to_string(t) + " trials, " + std::to_string(kEpochs) +
                    " epochs, incremental+warm+oracle all on)");
  table.columns({"n0", "policy", "churn/epoch", "balls redone", "rows reused",
                 "warm epochs", "msg vs cold", "engine ok", "fresh in-band"});

  std::vector<double> band_all;
  std::uint64_t guard_divergences = 0;
  double guard_dirty_frac = 1.0;
  bool have_guard = false;
  std::uint64_t digest_xor = 0, epochs_digested = 0, forensics_reports = 0;
  for (const auto n0 : sizes) {
    for (const auto policy : policies) {
      for (const double rate : rates) {
        dynamics::ChurnRunConfig cfg;
        cfg.trace.n0 = n0;
        cfg.trace.epochs = kEpochs;
        cfg.trace.arrival_rate = rate * n0;
        cfg.trace.departure_rate = rate * n0;
        cfg.trace.min_n = n0 / 2;
        cfg.d = 6;
        cfg.delta = 0.7;
        cfg.strategy = adv::StrategyKind::kFakeColor;
        cfg.run_engine = true;
        cfg.mid_run.enabled = true;
        cfg.mid_run.policy = policy;
        cfg.incremental.incremental = true;
        cfg.incremental.verify_snapshots = true;  // bitwise exactness oracle
        cfg.incremental.warm_start = true;
        cfg.incremental.verify_warm = true;  // cold shadow, decision parity
        cfg.incremental.warm.max_drift = 0.5;
        // --audit: every tier the driver executes (composed run, engine
        // oracle, cold shadow) records a digest trail; oracle seams emit
        // byzobs/forensics/v1 reports under --digest-out on divergence.
        cfg.audit = ctx.audit();
        cfg.audit_dir = ctx.digest_out();

        const std::uint64_t base_seed = 0xE28 + n0 +
                                        static_cast<std::uint64_t>(rate * 1e4);
        const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
          auto trial_cfg = cfg;
          trial_cfg.trace.seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          trial_cfg.seed = trial_cfg.trace.seed;
          return dynamics::run_churn(trial_cfg);
        });

        util::OnlineStats fresh;
        std::uint64_t recomputed = 0, reused = 0;
        std::uint64_t rows_reused = 0, rows_recomputed = 0;
        std::uint64_t warm_epochs = 0, steady_epochs = 0;
        std::uint64_t messages = 0, messages_cold = 0;
        std::uint64_t divergences = 0;
        for (const auto& run : runs) {
          for (std::uint32_t e = 0; e < run.epochs.size(); ++e) {
            const auto& ep = run.epochs[e];
            fresh.add(ep.fresh.frac_in_band);
            band_all.push_back(ep.fresh.frac_in_band);
            if (!ep.engine_match) ++divergences;
            if (ep.run_digest != 0) {
              digest_xor ^= ep.run_digest;
              ++epochs_digested;
            }
            if (!ep.forensics_path.empty()) ++forensics_reports;
            messages += ep.messages;
            messages_cold += ep.messages_cold;
            rows_reused += ep.verify_rows_reused;
            rows_recomputed += ep.verify_rows_recomputed;
            if (ep.warm_used) ++warm_epochs;
            if (e == 0) continue;  // bootstrap epoch is a full rebuild
            ++steady_epochs;
            recomputed += ep.balls_recomputed;
            reused += ep.balls_reused;
          }
        }
        const double dirty_frac =
            recomputed + reused > 0
                ? static_cast<double>(recomputed) /
                      static_cast<double>(recomputed + reused)
                : 1.0;
        const double rows_frac =
            rows_reused + rows_recomputed > 0
                ? static_cast<double>(rows_reused) /
                      static_cast<double>(rows_reused + rows_recomputed)
                : 0.0;
        const double msg_ratio =
            messages_cold > 0 ? static_cast<double>(messages) /
                                    static_cast<double>(messages_cold)
                              : 1.0;
        const bool silent =
            policy == proto::MembershipPolicy::kTreatAsSilent;
        table.row()
            .cell(std::uint64_t{n0})
            .cell(proto::to_string(policy))
            .cell(util::format_double(200.0 * rate, 1) + "%")
            .cell(util::format_double(100.0 * dirty_frac, 1) + "%")
            .cell(util::format_double(100.0 * rows_frac, 1) + "%")
            .cell(std::to_string(warm_epochs) + "/" +
                  std::to_string(static_cast<std::uint64_t>(t) * kEpochs))
            .cell(util::format_double(msg_ratio, 3) + "x")
            .cell(divergences == 0 ? "yes" : "NO")
            .cell(fresh.mean(), 4);

        Json j = Json::object();
        j["fresh_in_band"] = fresh.mean();
        j["dirty_frac"] = dirty_frac;
        j["balls_recomputed"] = recomputed;
        j["balls_reused"] = reused;
        j["rows_reused"] = rows_reused;
        j["rows_recomputed"] = rows_recomputed;
        j["warm_epochs"] = warm_epochs;
        j["messages"] = messages;
        j["messages_cold"] = messages_cold;
        j["engine_divergences"] = divergences;
        ctx.metric("composed_n" + std::to_string(n0) + "_" +
                       std::string(silent ? "silent" : "readmit") + "_c" +
                       std::to_string(static_cast<int>(rate * 1000)) + "bp",
                   std::move(j));

        // Guard cell: lowest churn rate, readmit policy, largest size —
        // the steady-state regime the tentpole claim is about.
        if (!silent && rate == rates[0] && n0 == sizes.back()) {
          guard_divergences = divergences;
          guard_dirty_frac = dirty_frac;
          have_guard = true;
          Json g = Json::object();
          g["n"] = std::uint64_t{n0};
          g["churn_bp"] = static_cast<int>(rate * 1000);
          g["engine_divergences"] = divergences;
          g["dirty_frac"] = dirty_frac;
          g["sublinear"] = dirty_frac < 1.0;
          g["rows_reused"] = rows_reused;
          g["warm_epochs"] = warm_epochs;
          ctx.metric("guard", std::move(g));
        }
      }
    }
  }
  (void)have_guard;
  table.note("Every run starts from the incremental snapshot — "
             "verify_snapshots cross-checks it bitwise against a cold "
             "rebuild, so 'balls redone' is the fraction of run-start BFS "
             "balls actually recomputed after the previous epoch's mid-run "
             "splices (steady-state epochs only; the bootstrap is a full "
             "rebuild by definition). verify_warm shadows every composed "
             "run with a cold replay and throws on any decision drift, and "
             "'engine ok' is the per-epoch message-level oracle. Guard: " +
             std::to_string(guard_divergences) + " engine divergences, " +
             util::format_double(100.0 * guard_dirty_frac, 1) +
             "% balls redone at the lowest rate.");
  ctx.emit(table);
  ctx.record_accuracy("fresh_in_band", band_all);
  if (ctx.audit()) {
    write_digest_sidecar(ctx, "e28", digest_xor, epochs_digested,
                         forensics_reports);
  }
}

}  // namespace

BYZBENCH_REGISTER(e28) {
  ScenarioSpec spec;
  spec.id = "e28";
  spec.title = "Composed tier: incremental + warm + oracle under live churn";
  spec.claim = "Mid-run churn composes with the incremental/warm tiers: "
               "run-start snapshots recompute only splice-dirtied balls "
               "(bitwise-verified), warm rows survive across live epochs, "
               "and the engine oracle stays divergence-free";
  spec.grid = {{"policy", {"treat-as-silent", "readmit-next-phase"}},
               {"churn_rate", {"0.001", "0.01"}},
               pow2_axis(9, 10)};
  spec.base_trials = 3;
  spec.metrics = {"composed_n<k>_<policy>_c<bp>.dirty_frac",
                  "guard.engine_divergences", "guard.dirty_frac"};
  spec.run = run_e28;
  return spec;
}
