// End-to-end behavior of Algorithm 2 under each adversary strategy —
// Theorem 1 in simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/categories.hpp"
#include "protocols/fastpath.hpp"
#include "sim/runner.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct Net {
  Overlay overlay;
  std::vector<bool> byz;
};

Net make(NodeId n, std::uint32_t d, double delta, std::uint64_t seed) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  Net s{Overlay::build(p), {}};
  util::Xoshiro256 rng(seed ^ 0xFACE);
  s.byz = graph::random_byzantine_mask(
      n, sim::derive_byz_count(n, delta), rng);
  return s;
}

RunResult attack(const Net& s, adv::StrategyKind kind,
                 std::uint64_t color_seed = 31) {
  const auto strat = adv::make_strategy(kind);
  ProtocolConfig cfg;
  return run_counting(s.overlay, s.byz, *strat, cfg, color_seed);
}

TEST(Algo2, HonestByzantineIndistinguishableFromClean) {
  // If Byzantine nodes follow the protocol, the run must equal a clean run
  // of the same seed (they ARE honest nodes then) — except they are still
  // labeled Byzantine in the result.
  const Net s = make(512, 8, 0.5, 1);
  const auto r = attack(s, adv::StrategyKind::kHonest);
  const auto acc = summarize_accuracy(r, 512);
  EXPECT_EQ(acc.crashed, 0u);
  EXPECT_GT(acc.frac_in_band, 0.97);
}

TEST(Algo2, Theorem1HoldsUnderEveryStrategy) {
  // The headline: for every attack, all but a small fraction of honest
  // nodes end with a constant-factor estimate of log n.
  // d=6 (k=2, G-ball ~31) with δ=0.7 > 3/d keeps both the chain bound
  // (Observation 6) and the o(n) crash bound inside the asymptotic regime
  // at this n; d=8's G-ball of ~457 nodes would need n >> 2·10^5 for
  // crash-style attacks to stay o(n) (see DESIGN.md §3.4).
  const NodeId n = 4096;
  for (const auto kind : adv::all_strategies()) {
    const Net s = make(n, 6, 0.7, 7);
    const auto r = attack(s, kind);
    const auto acc = summarize_accuracy(r, n);
    EXPECT_GT(acc.frac_in_band, 0.85)
        << "strategy=" << adv::to_string(kind);
  }
}

TEST(Algo2, FakeColorCannotStallTermination) {
  // Verification (Lemma 16) prevents the adversary from keeping nodes
  // running: undecided nodes must be a vanishing fraction (they exist only
  // when a Byzantine k-chain occurs, which is rare at this scale).
  const Net s = make(4096, 8, 0.5, 11);
  const auto r = attack(s, adv::StrategyKind::kFakeColor);
  const auto acc = summarize_accuracy(r, 4096);
  EXPECT_LT(acc.undecided, acc.honest / 50);
}

TEST(Algo2, SuppressionBarelyMovesEstimates) {
  // Blackholing n^{1/2} random nodes cannot defeat expander flooding.
  const NodeId n = 2048;
  const Net s = make(n, 8, 0.5, 13);
  const auto clean = attack(s, adv::StrategyKind::kHonest);
  const auto sup = attack(s, adv::StrategyKind::kSuppress);
  const auto a1 = summarize_accuracy(clean, n);
  const auto a2 = summarize_accuracy(sup, n);
  EXPECT_NEAR(a1.mean_ratio, a2.mean_ratio, 0.25);
  EXPECT_GT(a2.frac_in_band, 0.9);
}

TEST(Algo2, CrashAttackCostsOnlyTheNeighborhoods) {
  // Lemma 14 flavor: crash-maximizing lies only remove the Byzantine
  // G-neighborhoods (o(n) nodes); the rest still estimate correctly.
  const NodeId n = 4096;
  const Net s = make(n, 6, 0.7, 17);
  const auto r = attack(s, adv::StrategyKind::kCrashMaximizer);
  const auto acc = summarize_accuracy(r, n);
  EXPECT_GT(acc.crashed, 0u);
  EXPECT_LT(acc.crashed, acc.honest / 2);  // neighborhoods only
  // Of the survivors, essentially all estimate within band.
  const double survivor_band =
      static_cast<double>(acc.in_band) /
      static_cast<double>(acc.honest - acc.crashed);
  EXPECT_GT(survivor_band, 0.97);
}

TEST(Algo2, DeltaControlsEstimateFloor) {
  // More Byzantine nodes (smaller δ) pull the early-stop floor down — but
  // the estimate stays Θ(log n) (the a-endpoint is linear in δ, §3.4.2).
  const NodeId n = 8192;
  ProtocolConfig cfg;
  double prev_ratio = 0.0;
  for (const double delta : {0.3, 0.5, 0.7}) {
    OverlayParams p;
    p.n = n;
    p.d = 8;
    p.seed = 19;
    const Overlay o = Overlay::build(p);
    util::Xoshiro256 rng(23);
    const auto byz =
        graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);
    const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
    const auto r = run_counting(o, byz, *strat, cfg, 29);
    const auto acc = summarize_accuracy(r, n);
    EXPECT_GE(acc.mean_ratio + 0.05, prev_ratio)
        << "ratio should grow with delta";
    prev_ratio = acc.mean_ratio;
    EXPECT_GT(acc.min_ratio, 0.0);
  }
}

TEST(Algo2, AblationVerificationOffBreaksTermination) {
  // E12 in miniature: with verification disabled, fake-color injections at
  // the last step keep re-firing the continuation predicate for every node
  // adjacent to a Byzantine node — they blow past the phase cap. With
  // verification on, only the (rare) Byzantine k-chains can do that.
  const NodeId n = 2048;
  const Net s = make(n, 8, 0.5, 23);
  const auto strat_off = adv::make_strategy(adv::StrategyKind::kFakeColor);
  ProtocolConfig off;
  off.verification.enabled = false;
  const auto r_off = run_counting(s.overlay, s.byz, *strat_off, off, 31);
  const auto acc_off = summarize_accuracy(r_off, n);
  const auto strat_on = adv::make_strategy(adv::StrategyKind::kFakeColor);
  ProtocolConfig on;
  const auto r_on = run_counting(s.overlay, s.byz, *strat_on, on, 31);
  const auto acc_on = summarize_accuracy(r_on, n);
  EXPECT_GT(acc_off.undecided, acc_off.honest / 10);
  EXPECT_LT(acc_on.undecided * 3, acc_off.undecided);
}

TEST(Algo2, AblationCrashRuleOffLeavesNoCrashes) {
  const NodeId n = 512;
  const Net s = make(n, 8, 0.5, 29);
  const auto strat = adv::make_strategy(adv::StrategyKind::kCrashMaximizer);
  ProtocolConfig off;
  off.crash_rule = false;
  const auto r = run_counting(s.overlay, s.byz, *strat, off, 37);
  EXPECT_EQ(summarize_accuracy(r, n).crashed, 0u);
}

TEST(Algo2, InjectionsBeyondChainAlwaysCaught) {
  // Lemma 16 as an invariant over a full run: every accepted injection at
  // step t >= 2 required a real Byzantine chain; with none present, all
  // mid-subphase injections are caught.
  const NodeId n = 2048;
  OverlayParams p;
  p.n = n;
  p.d = 8;
  p.seed = 31;
  const Overlay o = Overlay::build(p);
  std::vector<bool> byz(n, false);
  byz[500] = true;  // a single isolated Byzantine node: no chains
  adv::InjectionProbe probe(/*inject_step=*/3, 999999);
  ProtocolConfig cfg;
  const auto r = run_counting(o, byz, probe, cfg, 41);
  EXPECT_GT(r.instr.injections_caught, 0u);
  EXPECT_EQ(r.instr.injections_accepted, 0u);
}

TEST(Algo2, MessageSizeStaysSmall) {
  const Net s = make(1024, 6, 0.7, 37);
  const auto r = attack(s, adv::StrategyKind::kAdaptive);
  EXPECT_LE(r.instr.max_node_round_sends, 8u);
  EXPECT_GT(r.instr.verify_messages, 0u);
}

}  // namespace
}  // namespace byz::proto
