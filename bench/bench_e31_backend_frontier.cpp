// E31 — the cross-backend accuracy/rounds/messages frontier: the same
// overlays, Byzantine placements, and coin seeds run through every
// registered counting backend, so the table is a like-for-like trade
// curve, not three separate experiments. Algorithm 2 buys its band with
// verification traffic and a crash rule; BRC buys Byzantine resilience
// with a commitment filter and median voting instead — zero verify
// messages, more flood rounds (doubling-depth batches repeat the deep
// floods Algorithm 2 runs once). Algorithm 1 rides along on honest rows
// as the no-defense baseline. A second section replays the E27
// adversarial MID-RUN schedules through both mid-run-capable backends at
// matched event budgets — the identical schedule, round for round — so
// the frontier also covers worst-case churn TIMING, not just static
// instances. Each backend is judged against its OWN declared
// EstimatorBound; the guard counts own-bound violations (the pairwise
// agreement oracle is E32's job).
#include <string_view>
#include <utility>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct CellStats {
  util::OnlineStats in_band;  ///< own-band frac_in_band per run
  util::OnlineStats ratio;    ///< median est / log2(n) per run
  util::OnlineStats rounds;
  util::OnlineStats messages;
  util::OnlineStats verify;
  std::uint64_t violations = 0;  ///< runs failing their own bound
};

void add_outcome(CellStats& cell, const analysis::BackendOutcome& out) {
  cell.in_band.add(out.accuracy.frac_in_band);
  cell.ratio.add(out.median_ratio);
  cell.rounds.add(static_cast<double>(out.rounds));
  cell.messages.add(static_cast<double>(out.messages));
  if (!out.in_band) ++cell.violations;
}

void run_e31(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(12));
  const auto t = ctx.trials(3);
  const adv::StrategyKind strategies[] = {adv::StrategyKind::kHonest,
                                          adv::StrategyKind::kFakeColor,
                                          adv::StrategyKind::kSuppress};
  // algo1 has no verification/crash machinery, so its declared band only
  // binds on honest instances — it is the undefended baseline row.
  const struct {
    const char* name;
    bool adversarial_rows;
  } backends[] = {{"algo2", true}, {"brc", true}, {"algo1", false}};

  util::Table table("E31: backend frontier at matched instances, d=6, "
                    "delta=0.7 (" +
                    std::to_string(t) + " trials per cell)");
  table.columns({"n", "backend", "strategy", "own-band frac", "med est/log2n",
                 "rounds", "messages", "verify msgs", "violations"});
  std::uint64_t own_violations = 0;
  std::uint64_t cells = 0;
  double brc_msg_ratio = 0.0;
  double brc_round_ratio = 0.0;
  for (const auto n : sizes) {
    double algo2_msgs = 0.0, algo2_rounds = 0.0;
    for (const auto& backend : backends) {
      const auto est = proto::make_estimator(backend.name);
      for (const auto strategy : strategies) {
        if (strategy != adv::StrategyKind::kHonest &&
            !backend.adversarial_rows) {
          continue;
        }
        const std::uint64_t base_seed =
            0xE31 + n * 8 + static_cast<std::uint64_t>(strategy);
        const auto outcomes = ctx.scheduler().map(t, [&](std::uint64_t i) {
          const auto seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          const auto overlay = ctx.overlay(n, 6, seed);
          const auto byz = place_byz(n, 0.7, seed);
          auto adversary = adv::make_strategy(strategy);
          const auto run = est->run(*overlay, byz, *adversary, seed);
          auto out = analysis::judge_backend(*est, *overlay, run);
          out.messages = run.instr.total_messages();
          return std::pair{out, run.instr.verify_messages};
        });
        CellStats cell;
        std::uint64_t verify_msgs = 0;
        for (const auto& [out, verify] : outcomes) {
          add_outcome(cell, out);
          verify_msgs += verify;
          cell.verify.add(static_cast<double>(verify));
        }
        ++cells;
        own_violations += cell.violations;
        table.row()
            .cell(std::uint64_t{n})
            .cell(backend.name)
            .cell(adv::to_string(strategy))
            .cell(cell.in_band.mean(), 4)
            .cell(cell.ratio.mean(), 3)
            .cell(cell.rounds.mean(), 1)
            .cell(cell.messages.mean(), 0)
            .cell(cell.verify.mean(), 0)
            .cell(cell.violations);
        Json j = Json::object();
        j["in_band"] = cell.in_band.mean();
        j["median_ratio"] = cell.ratio.mean();
        j["rounds"] = cell.rounds.mean();
        j["messages"] = cell.messages.mean();
        j["verify_messages"] = cell.verify.mean();
        j["violations"] = cell.violations;
        ctx.metric("frontier_" + std::string(backend.name) + "_" +
                       adv::to_string(strategy) + "_n" + std::to_string(n),
                   std::move(j));
        // Perf-trajectory cell: the BRC/algo2 cost ratios under attack at
        // the largest size — the price of verification-free resilience.
        if (strategy == adv::StrategyKind::kFakeColor) {
          if (std::string_view(backend.name) == "algo2") {
            algo2_msgs = cell.messages.mean();
            algo2_rounds = cell.rounds.mean();
          } else if (std::string_view(backend.name) == "brc" &&
                     n == sizes.back() && algo2_msgs > 0.0) {
            brc_msg_ratio = cell.messages.mean() / algo2_msgs;
            brc_round_ratio = cell.rounds.mean() / algo2_rounds;
          }
        }
      }
    }
  }
  table.note("Every cell of a row block shares overlays, Byzantine "
             "placements, and color seeds — only the backend varies. "
             "'own-band frac' judges each run against that backend's OWN "
             "declared EstimatorBound (algo2 eps=0.15, brc eps=0.08); "
             "'violations' counts runs whose in-band fraction or median "
             "ratio broke it. BRC's verify column is structurally zero — "
             "its commitment filter replaces witness interrogation — and "
             "its round count is higher by design: doubling-depth batches "
             "re-flood the deep horizons Algorithm 2 visits once.");
  ctx.emit(table);

  // ---- Section B: adversarial mid-run schedules across backends --------
  // The E27 worst-case TIMING attack, replayed through the backend seam:
  // both mid-run-capable backends consume the IDENTICAL adversarial
  // schedule (same epoch budget, same event rounds, same victim policy),
  // so the accuracy deltas isolate how each algorithm absorbs churn struck
  // at its flood wavefront / admission boundaries.
  const graph::NodeId n0 = 1u << 10;
  const auto mt = ctx.trials(3);
  const auto schedules = adv::all_midrun_schedule_strategies();
  const char* midrun_backends[] = {"algo2", "brc"};
  util::Table mtable("E31b: adversarial mid-run schedules across backends "
                     "(n0=" +
                     std::to_string(n0) + ", d=6, " + std::to_string(mt) +
                     " trials, matched event budgets)");
  mtable.columns({"backend", "schedule", "own-band frac", "med est/log2n",
                  "applied", "frontier hits", "violations"});
  std::uint64_t midrun_violations = 0;
  for (const auto* backend_name : midrun_backends) {
    proto::ProtocolConfig pcfg;
    const bool is_brc = std::string_view(backend_name) == "brc";
    if (is_brc) {
      // BRC runs no verification traffic; a disabled-verification config
      // keeps the live feed from billing verifier rebuilds it never uses
      // (MidRunConfig::backend contract).
      pcfg.verification.enabled = false;
    }
    const auto est = proto::make_estimator(backend_name, pcfg);
    // The declared band depends only on (n, d) — evaluate it once against
    // a representative overlay instead of per trial.
    const auto bound = est->bound(*ctx.overlay(n0, 6, 0xB0D));
    for (const auto schedule : schedules) {
      const std::uint64_t base_seed =
          0xE31B + static_cast<std::uint64_t>(schedule) * 131;
      const auto outcomes = ctx.scheduler().map(mt, [&](std::uint64_t i) {
        const auto seed = bench_core::TrialScheduler::trial_seed(base_seed, i);
        dynamics::MutableOverlay overlay(n0, 6, 0, seed);
        util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
        std::vector<bool> byz = graph::random_byzantine_mask(
            n0, sim::derive_byz_count(n0, 0.7), place_rng);

        // One epoch's budget, spent by the adversarial scheduler over the
        // ALGORITHM-2 expected horizon for both backends: the event stream
        // is then identical round for round, so the comparison is a
        // matched-budget, matched-timing one (BRC's longer run simply sees
        // the same events early).
        dynamics::ChurnEpoch epoch;
        epoch.joins = 12;
        epoch.sybil_joins = 4;
        epoch.leaves = 16;
        epoch.n_after = n0;
        const auto horizon =
            dynamics::expected_horizon_rounds(n0, 6, pcfg.schedule);
        const auto churn_schedule = adv::derive_adversarial_schedule(
            epoch, horizon, util::mix_seed(seed, 0x31D1), schedule, 6,
            pcfg.schedule);

        dynamics::MidRunConfig mid_cfg;
        mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
        mid_cfg.schedule_strategy = schedule;
        if (is_brc) mid_cfg.backend = est.get();
        util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));
        auto adversary = adv::make_strategy(adv::StrategyKind::kFakeColor);
        const auto got = dynamics::run_counting_midrun(
            overlay, byz, *adversary, pcfg, seed, churn_schedule, mid_cfg,
            adv::ChurnAdversary::kNone, churn_rng);
        const auto acc =
            proto::summarize_accuracy(got.run, n0, bound.lo, bound.hi);
        const double med = proto::median_decided_estimate(got.run) /
                           std::log2(static_cast<double>(n0));
        const bool ok = acc.decided > 0 &&
                        acc.frac_in_band >= 1.0 - bound.eps && med >= bound.lo &&
                        med <= bound.hi;
        struct Row {
          double in_band;
          double med;
          std::uint64_t applied;
          std::uint64_t frontier;
          bool ok;
        };
        return Row{acc.frac_in_band, med, got.stats.events_applied,
                   got.stats.frontier_leaves, ok};
      });
      util::OnlineStats in_band, med;
      std::uint64_t applied = 0, frontier = 0, violations = 0;
      for (const auto& r : outcomes) {
        in_band.add(r.in_band);
        med.add(r.med);
        applied += r.applied;
        frontier += r.frontier;
        if (!r.ok) ++violations;
      }
      midrun_violations += violations;
      mtable.row()
          .cell(backend_name)
          .cell(adv::to_string(schedule))
          .cell(in_band.mean(), 4)
          .cell(med.mean(), 3)
          .cell(applied)
          .cell(frontier)
          .cell(violations);
      Json j = Json::object();
      j["in_band"] = in_band.mean();
      j["median_ratio"] = med.mean();
      j["events_applied"] = applied;
      j["frontier_leaves"] = frontier;
      j["violations"] = violations;
      ctx.metric("midrun_" + std::string(backend_name) + "_" +
                     adv::to_string(schedule),
                 std::move(j));
    }
  }
  mtable.note("Both backends replay the IDENTICAL adversarial schedule "
              "(same trace budget, same event rounds, derived over the "
              "Algorithm-2 horizon) through the same LiveOverlayFeed under "
              "readmit-next-phase; BRC enters through "
              "MidRunConfig::backend with verification disabled. "
              "frontier-leaves victims are chosen on each backend's OWN "
              "observed wavefront, so 'frontier hits' may differ — the "
              "budget, not the victim identity, is what is matched.");
  ctx.emit(mtable);

  Json guard = Json::object();
  guard["cells"] = cells;
  guard["own_bound_violations"] = own_violations;
  guard["midrun_violations"] = midrun_violations;
  guard["brc_msg_ratio"] = brc_msg_ratio;
  guard["brc_round_ratio"] = brc_round_ratio;
  ctx.metric("guard", std::move(guard));
}

}  // namespace

BYZBENCH_REGISTER(e31) {
  ScenarioSpec spec;
  spec.id = "e31";
  spec.title = "Cross-backend accuracy/rounds/messages frontier";
  spec.claim = "On identical instances — static and under adversarial "
               "mid-run schedules at matched budgets — every backend honors "
               "its own declared accuracy bound; BRC trades verification "
               "traffic (zero verify messages) for deeper repeated floods";
  spec.grid = {{"backend", {"algo2", "brc", "algo1(honest)"}},
               {"strategy", {"honest", "fake-color", "suppress"}},
               {"midrun_schedule",
                {"uniform", "frontier-leaves", "boundary-join-storm"}},
               pow2_axis(10, 12)};
  spec.base_trials = 3;
  spec.metrics = {"guard.own_bound_violations", "guard.midrun_violations",
                  "guard.brc_msg_ratio"};
  spec.run = run_e31;
  return spec;
}
