// Byzantine placement strategies — the paper's §4 open problem:
// "Our protocol works only when the Byzantine nodes are randomly
// distributed; it will be good to remove this assumption."
//
// Random placement is what Observation 6 needs: it keeps Byzantine-only
// chains shorter than k w.h.p. These placements let experiments probe what
// breaks when the adversary ALSO controls where its nodes sit:
//   * kRandom    — the paper's model (uniform without replacement);
//   * kClustered — a BFS ball around a seed node: maximal local density,
//                  long chains, concentrated crash damage;
//   * kChain     — a path in H: the minimal-budget way to defeat the
//                  Lemma-16 chain bound outright;
//   * kSpread    — greedy far-apart placement (approximate max-min
//                  distance): the adversary's worst choice, even weaker
//                  than random against this protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/small_world.hpp"
#include "util/rng.hpp"

namespace byz::adv {

enum class Placement : std::uint8_t { kRandom, kClustered, kChain, kSpread };

[[nodiscard]] const char* to_string(Placement placement);
[[nodiscard]] std::vector<Placement> all_placements();

/// Marks exactly `count` nodes Byzantine according to the placement (fewer
/// only if the graph is too small, which callers should avoid).
[[nodiscard]] std::vector<bool> place_byzantine(const graph::Overlay& overlay,
                                                graph::NodeId count,
                                                Placement placement,
                                                util::Xoshiro256& rng);

}  // namespace byz::adv
