// E9 — Observation 6 and Lemmas 15/16 in action.
//
// (a) Longest Byzantine-only chain in H vs the threshold k, across n and
//     delta: chains of length >= k must vanish when kδ > 1.
// (b) Injection probe: Byzantine nodes attempt a fixed-step injection in
//     every subphase; the Verifier must accept step-1 claims (unauditable
//     generation), accept step-t claims only when a length-min(t,k) chain
//     exists, and catch everything else.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto t = trials(10);
  {
    util::Table table("E9a: longest Byzantine chain in H (d=8, k=3, " +
                      std::to_string(t) + " trials, max over trials)");
    table.columns({"n", "delta", "B", "k*delta", "max chain", "P[chain>=k]"});
    for (const auto n : analysis::pow2_sizes(10, analysis::env_max_exp(14))) {
      for (const double delta : {0.4, 0.5, 0.7}) {
        const auto overlay = make_overlay(n, 8, 0xE9 + n);
        std::uint32_t worst = 0;
        std::uint32_t violations = 0;
        for (std::uint32_t trial = 0; trial < t; ++trial) {
          util::Xoshiro256 rng(util::mix_seed(0xE9A + n, trial));
          const auto byz = graph::random_byzantine_mask(
              n, sim::derive_byz_count(n, delta), rng);
          const auto chain =
              graph::longest_byzantine_chain(overlay.h_simple(), byz, 10);
          worst = std::max(worst, chain);
          if (chain >= overlay.k()) ++violations;
        }
        table.row()
            .cell(std::uint64_t{n})
            .cell(delta, 1)
            .cell(std::uint64_t{sim::derive_byz_count(n, delta)})
            .cell(overlay.k() * delta, 2)
            .cell(worst)
            .cell(static_cast<double>(violations) / t, 2);
      }
    }
    table.note("Observation 6: chains of length >= k vanish iff k*delta > 1 "
               "(delta > 3/d). The delta=0.4 row sits near the boundary for "
               "d=8 and shows residual chains at small n.");
    analysis::emit(table);
  }
  {
    util::Table table(
        "E9b: injection probe vs step (d=8, k=3, n=4096, delta=0.5)");
    table.columns({"inject step", "needs chain", "accepted", "caught",
                   "catch rate", "undecided honest"});
    const graph::NodeId n = 4096;
    const auto overlay = make_overlay(n, 8, 0xE9B);
    const auto byz = place_byz(n, 0.5, 0xE9B);
    for (const std::uint32_t step : {1u, 2u, 3u, 4u, 6u}) {
      adv::InjectionProbe probe(step, 900000 + step);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(overlay, byz, probe, cfg, 0xC9);
      const auto acc = proto::summarize_accuracy(run, n);
      const auto attempted =
          run.instr.injections_accepted + run.instr.injections_caught;
      table.row()
          .cell(step)
          .cell(std::min(step, overlay.k()))
          .cell(run.instr.injections_accepted)
          .cell(run.instr.injections_caught)
          .cell(attempted ? static_cast<double>(run.instr.injections_caught) /
                                static_cast<double>(attempted)
                          : 0.0,
                3)
          .cell(acc.undecided);
    }
    table.note("Lemma 16: step-1 claims are always accepted (generation); "
               "step >= 2 needs a real Byzantine chain of min(step, k). At "
               "k=3 and random placement, chains of 3 are rare and chains "
               "longer than 3 are never needed — catch rate jumps to ~1 at "
               "step >= 2 and stays there.");
    analysis::emit(table);
  }
  return 0;
}
