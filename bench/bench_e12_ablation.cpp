// E12 — Ablation of Algorithm 2's two defenses: the L-edge verification
// (line 15) and the crash rule (line 2). Turning either off under the
// matching attack collapses the guarantee, demonstrating both are
// load-bearing (this is the basic-vs-Byzantine protocol delta of §3.3).
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Variant {
  const char* name;
  bool verification;
  bool crash_rule;
};

constexpr Variant kVariants[] = {
    {"full Algorithm 2", true, true},
    {"no verification", false, true},
    {"no crash rule", true, false},
    {"neither (Algorithm 1)", false, false},
};

constexpr adv::StrategyKind kAttacks[] = {
    adv::StrategyKind::kFakeColor,
    adv::StrategyKind::kAdaptive,
    adv::StrategyKind::kTopologyLiar,
};

void run_e12(RunContext& ctx) {
  const graph::NodeId n = 4096;

  struct Cell {
    proto::Accuracy acc;
    sim::Instrumentation instr;
  };
  const auto units = std::size(kAttacks) * std::size(kVariants);
  const auto cells = ctx.scheduler().map(units, [&](std::uint64_t u) {
    const auto kind = kAttacks[u / std::size(kVariants)];
    const auto& variant = kVariants[u % std::size(kVariants)];
    // Color attacks are sharpest at d=8 (k=3); lie-based attacks need the
    // d=6 regime for the crash asymptotics (DESIGN.md §3.5).
    const bool color_attack = kind == adv::StrategyKind::kFakeColor;
    const std::uint32_t d = color_attack ? 8 : 6;
    const double delta = color_attack ? 0.5 : 0.7;
    const auto overlay = ctx.overlay(n, d, 0xEC + d);
    const auto byz = place_byz(n, delta, 0xEC + d);
    const auto strat = adv::make_strategy(kind);
    proto::ProtocolConfig cfg;
    cfg.verification.enabled = variant.verification;
    cfg.crash_rule = variant.crash_rule;
    const auto run = proto::run_counting(*overlay, byz, *strat, cfg, 0xCC);
    return Cell{proto::summarize_accuracy(run, n), run.instr};
  });

  util::Table table("E12: ablation at n=4096 (d=8 delta=0.5 for color "
                    "attacks; d=6 delta=0.7 for lie attacks)");
  table.columns({"attack", "variant", "in-band frac", "mean est/log2n",
                 "undecided %", "crashed %"});
  for (std::size_t u = 0; u < units; ++u) {
    const auto kind = kAttacks[u / std::size(kVariants)];
    const auto& variant = kVariants[u % std::size(kVariants)];
    const auto& acc = cells[u].acc;
    table.row()
        .cell(adv::to_string(kind))
        .cell(variant.name)
        .cell(acc.frac_in_band, 4)
        .cell(acc.mean_ratio, 3)
        .cell(100.0 * static_cast<double>(acc.undecided) /
                  static_cast<double>(acc.honest),
              2)
        .cell(100.0 * static_cast<double>(acc.crashed) /
                  static_cast<double>(acc.honest),
              2);
    ctx.count_messages(cells[u].instr);
  }
  table.note("Without verification, last-step injections stall every "
             "Byzantine neighborhood indefinitely (undecided%). Without "
             "the crash rule, topology lies go unpunished but also "
             "unexploited in this implementation's flooding (the lie's "
             "power is neutralized by Lemma 15 either way — the crash rule "
             "converts deception into clean failure).");
  ctx.emit(table);
}

}  // namespace

BYZBENCH_REGISTER(e12) {
  ScenarioSpec spec;
  spec.id = "e12";
  spec.title = "ablation of verification and the crash rule";
  spec.claim = "S3.3: both Algorithm-2 defenses are load-bearing under the "
               "matching attack";
  spec.grid = {{"attack", {"fake-color", "adaptive", "topology-liar"}},
               {"variant", {"full", "no-verification", "no-crash-rule",
                            "neither"}}};
  spec.base_trials = 1;
  spec.metrics = {"messages"};
  spec.run = run_e12;
  return spec;
}
