#include "util/table.hpp"

#include <gtest/gtest.h>

namespace byz::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.columns({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("beta").cell(3.14159, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAfterRowsThrows) {
  Table t("x");
  t.columns({"a"});
  t.row().cell("1");
  EXPECT_THROW(t.columns({"b"}), std::logic_error);
}

TEST(Table, CellBeforeRowThrows) {
  Table t("x");
  t.columns({"a"});
  EXPECT_THROW(t.cell("1"), std::logic_error);
}

TEST(Table, MarkdownShape) {
  Table t("md");
  t.columns({"a", "b"});
  t.row().cell(1).cell(2);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("### md"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t("csv");
  t.columns({"a", "b"});
  t.row().cell("x,y").cell("he said \"hi\"");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NotesAppearInOutput) {
  Table t("n");
  t.columns({"a"});
  t.row().cell("1");
  t.note("paper predicts 2");
  EXPECT_NE(t.str().find("paper predicts 2"), std::string::npos);
  EXPECT_NE(t.markdown().find("paper predicts 2"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t("pad");
  t.columns({"a", "b", "c"});
  t.row().cell("only");
  EXPECT_NO_THROW((void)t.str());
  EXPECT_NO_THROW((void)t.csv());
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace byz::util
