// The H(n, d) random regular multigraph model of §2.1/§A: the union of d/2
// independent uniformly random Hamiltonian cycles on the same vertex set.
// With high probability the result is a near-Ramanujan expander
// (Friedman 1991; Law & Siu 2003 used the same model for P2P overlays).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace byz::graph {

/// Generates one H(n, d) sample.
///
/// Requirements: d even, d >= 4, n >= 3 (a Hamiltonian cycle needs at least
/// three nodes to avoid parallel self-pairing). Parallel edges between
/// cycles are preserved: the result is an exactly d-regular multigraph.
/// Throws std::invalid_argument on bad parameters.
[[nodiscard]] Graph build_hamiltonian_graph(NodeId n, std::uint32_t d,
                                            util::Xoshiro256& rng);

/// The same sample with parallel edges removed (simple-graph view used for
/// metrics that assume simple graphs, e.g. clustering coefficients).
[[nodiscard]] Graph simplify(const Graph& multi);

}  // namespace byz::graph
