#include "graph/metrics.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace byz::graph {

namespace {

/// Counts edges among the (sorted, dedup'd) neighbor list of v.
std::uint64_t edges_among_neighbors(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);
  std::uint64_t count = 0;
  for (const NodeId u : nbrs) {
    // Intersect u's adjacency with nbrs; both sorted.
    const auto un = g.neighbors(u);
    auto a = nbrs.begin();
    auto b = un.begin();
    while (a != nbrs.end() && b != un.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        ++count;
        ++a;
        ++b;
      }
    }
  }
  return count / 2;  // each triangle edge counted from both endpoints
}

double local_clustering(const Graph& g, NodeId v) {
  const std::uint64_t deg = g.degree(v);
  if (deg < 2) return 0.0;
  const auto possible = static_cast<double>(deg * (deg - 1) / 2);
  return static_cast<double>(edges_among_neighbors(g, v)) / possible;
}

}  // namespace

double average_clustering(const Graph& simple, std::uint32_t sample,
                          std::uint64_t seed) {
  const NodeId n = simple.num_nodes();
  if (n == 0) return 0.0;
  std::vector<NodeId> targets;
  if (sample == 0 || sample >= n) {
    targets.resize(n);
    for (NodeId v = 0; v < n; ++v) targets[v] = v;
  } else {
    util::Xoshiro256 rng(seed);
    targets.reserve(sample);
    for (std::uint32_t i = 0; i < sample; ++i) {
      targets.push_back(static_cast<NodeId>(rng.below(n)));
    }
  }
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(dynamic, 64)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(targets.size()); ++i) {
    sum += local_clustering(simple, targets[static_cast<std::size_t>(i)]);
  }
  return sum / static_cast<double>(targets.size());
}

DiameterResult diameter(const Graph& g, std::uint32_t exact_threshold,
                        std::uint32_t probes, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n == 0) return {0, true};
  if (n <= exact_threshold) {
    std::uint32_t best = 0;
#pragma omp parallel for reduction(max : best) schedule(dynamic, 64)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      best = std::max(best, eccentricity(g, static_cast<NodeId>(v)));
    }
    return {best, true};
  }
  // Iterated double sweep: BFS from a random node, then from the farthest
  // node found; repeat from several seeds. Lower-bounds the diameter.
  util::Xoshiro256 rng(seed);
  std::uint32_t best = 0;
  for (std::uint32_t p = 0; p < probes; ++p) {
    const auto start = static_cast<NodeId>(rng.below(n));
    const Farthest f1 = farthest_node(g, start);
    const Farthest f2 = farthest_node(g, f1.node);
    best = std::max(best, f2.dist);
  }
  return {best, false};
}

double average_path_length(const Graph& g, std::uint32_t sources,
                           std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n < 2) return 0.0;
  util::Xoshiro256 rng(seed);
  std::vector<NodeId> roots;
  roots.reserve(sources);
  for (std::uint32_t i = 0; i < sources; ++i) {
    roots.push_back(static_cast<NodeId>(rng.below(n)));
  }
  double total = 0.0;
  std::uint64_t pairs = 0;
#pragma omp parallel for reduction(+ : total, pairs) schedule(dynamic)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(roots.size()); ++i) {
    const auto dist = bfs_distances(g, roots[static_cast<std::size_t>(i)]);
    for (const auto d : dist) {
      if (d != kUnreachable && d > 0) {
        total += d;
        ++pairs;
      }
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace byz::graph
