// Birthday-paradox size estimation (§1.2 mentions these ideas fail under
// Byzantine nodes; Ganesh et al. used random-walk sampling in the clean
// setting). m nodes are sampled, each contributes a random tag from [0, M);
// collisions c among the C(m,2) pairs estimate n-hat ≈ m(m-1)/(2c) when
// tags are drawn as f(node) over a space of size M = n (we use tag = node
// id scrambled, i.e. sampling WITH replacement from the population and
// counting repeat draws). Byzantine nodes lie about their identity tags,
// manufacturing collisions and deflating the estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::base {

struct BirthdayResult {
  double estimate = 0.0;       ///< n-hat (0 when no collision observed)
  std::uint32_t collisions = 0;
  std::uint32_t samples = 0;
};

/// Runs the estimator with `samples` uniformly drawn nodes (the random-walk
/// sampling substrate is abstracted to uniform draws, which is its ideal
/// behavior). Byzantine nodes always report tag 0, manufacturing
/// collisions.
[[nodiscard]] BirthdayResult run_birthday(graph::NodeId n,
                                          const std::vector<bool>& byz_mask,
                                          std::uint32_t samples,
                                          std::uint64_t seed);

}  // namespace byz::base
