#include "protocols/color.hpp"

#include <cmath>
#include <stdexcept>

namespace byz::proto {

double ell(std::uint32_t d, std::uint32_t r) {
  if (d < 3) throw std::invalid_argument("ell: need d >= 3");
  return std::log2(static_cast<double>(d)) +
         static_cast<double>(r) * std::log2(static_cast<double>(d - 1));
}

double continue_threshold(std::uint32_t i, std::uint32_t d) {
  if (i == 0) throw std::invalid_argument("continue_threshold: phase >= 1");
  const double li = ell(d, i - 1);
  return li - std::log2(li);
}

Color color_at(std::uint64_t color_seed, std::uint32_t node,
               std::uint32_t global_subphase) noexcept {
  util::Xoshiro256 rng(
      util::mix_seed(util::mix_seed(color_seed, node), global_subphase));
  return draw_color(rng);
}

double prob_color_eq(std::uint32_t r) { return std::pow(0.5, r); }

double prob_color_ge(std::uint32_t r) {
  return r <= 1 ? 1.0 : std::pow(0.5, r - 1);
}

double prob_max_color_le(std::uint32_t r, double n) {
  return std::pow(1.0 - std::pow(0.5, r), n);
}

}  // namespace byz::proto
