#include "bench_core/scheduler.hpp"

#include <algorithm>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace byz::bench_core {

namespace {

// Observability (pure read-side; inert unless obs::set_enabled): one span
// per trial, tagged with the worker that stole it so the work-stealing
// schedule is visible in the exported trace.
void run_traced_trial(const std::function<void(std::uint64_t)>& fn,
                      std::uint64_t index, unsigned worker) {
  static const obs::Counter obs_trials("scheduler.trials");
  static const obs::Histogram obs_trial_us("scheduler.trial_us");
  const std::uint64_t start_us = obs::trace_now_us();
  {
    obs::Span span("bench.trial");
    span.arg("trial", index).arg("worker", worker);
    fn(index);
  }
  obs_trials.add(1);
  obs_trial_us.observe(obs::trace_now_us() - start_us);
}

}  // namespace

TrialScheduler::TrialScheduler(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void TrialScheduler::for_each(
    std::uint64_t count, const std::function<void(std::uint64_t)>& fn) const {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(jobs_, count));
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) run_traced_trial(fn, i, 0);
    return;
  }

  std::atomic<std::uint64_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&](unsigned w) {
    // Pool threads get a stable trace name; w == 0 is the caller thread,
    // which keeps its own identity (scenario spans live there).
    if (w != 0 && obs::enabled()) {
      obs::set_trace_thread_name("worker-" + std::to_string(w));
    }
    for (;;) {
      const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        run_traced_trial(fn, i, w);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining items without running them.
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace byz::bench_core
