// E13 — The error parameter ε and the α_i schedule (Lemma 26): smaller ε
// buys more subphases per phase, which suppresses early wrong deciders at
// a round-cost premium. Also compares the two published α_i formulas
// (DESIGN.md §3.5).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e13(RunContext& ctx) {
  const graph::NodeId n = 8192;
  const std::uint32_t d = 8;
  {
    constexpr proto::SchedulePolicy kPolicies[] = {
        proto::SchedulePolicy::kAppendix, proto::SchedulePolicy::kPseudocode};
    constexpr double kEps[] = {0.02, 0.05, 0.1, 0.2, 0.4};

    struct Cell {
      std::uint64_t early = 0;
      std::uint64_t rounds = 0;
      std::uint32_t phases = 0;
    };
    const auto units = std::size(kPolicies) * std::size(kEps);
    const auto cells = ctx.scheduler().map(units, [&](std::uint64_t u) {
      const auto policy = kPolicies[u / std::size(kEps)];
      const double eps = kEps[u % std::size(kEps)];
      const auto overlay = ctx.overlay(n, d, 0xED);
      proto::ScheduleConfig sched;
      sched.epsilon = eps;
      sched.policy = policy;
      const auto run = proto::run_basic_counting(*overlay, 0xCD, sched);
      // Early = decided more than 2 phases before the median.
      std::vector<std::uint32_t> est(run.estimate);
      std::sort(est.begin(), est.end());
      const std::uint32_t typical = est[est.size() / 2];
      Cell cell;
      for (const auto e : run.estimate) {
        if (e + 2 <= typical) ++cell.early;
      }
      cell.rounds = run.flood_rounds;
      cell.phases = run.phases_executed;
      return cell;
    });

    util::Table table("E13a: eps sweep (clean Algorithm 1, n=8192, d=8)");
    table.columns({"eps", "policy", "early deciders", "early frac",
                   "rounds", "phases"});
    for (std::size_t u = 0; u < units; ++u) {
      const auto policy = kPolicies[u / std::size(kEps)];
      table.row()
          .cell(kEps[u % std::size(kEps)], 2)
          .cell(policy == proto::SchedulePolicy::kAppendix ? "appendix"
                                                           : "pseudocode")
          .cell(cells[u].early)
          .cell(static_cast<double>(cells[u].early) / n, 5)
          .cell(cells[u].rounds)
          .cell(cells[u].phases);
    }
    table.note("Lemma 11/26: the wrong-decider fraction is bounded by eps; "
               "empirically it sits far below the bound, and shrinking eps "
               "still tightens it at a predictable round cost.");
    ctx.emit(table);
  }
  {
    util::Table table("E13b: alpha_i schedules side by side (eps=0.1, d=8)");
    table.columns({"phase i", "alpha appendix", "alpha pseudocode",
                   "subphases (xi)", "rounds in phase"});
    proto::ScheduleConfig a;
    proto::ScheduleConfig p;
    p.policy = proto::SchedulePolicy::kPseudocode;
    for (std::uint32_t i = 1; i <= 10; ++i) {
      table.row()
          .cell(i)
          .cell(proto::alpha_i(i, d, a))
          .cell(proto::alpha_i(i, d, p))
          .cell(proto::subphases_in_phase(i, d, a))
          .cell(proto::rounds_in_phase(i, d, a));
    }
    ctx.emit(table);
  }
}

}  // namespace

BYZBENCH_REGISTER(e13) {
  ScenarioSpec spec;
  spec.id = "e13";
  spec.title = "epsilon sweep and alpha_i schedule comparison";
  spec.claim = "Lemmas 11/26: wrong-decider fraction bounded by eps at a "
               "predictable round cost";
  spec.grid = {{"eps", {"0.02", "0.05", "0.1", "0.2", "0.4"}},
               {"policy", {"appendix", "pseudocode"}}};
  spec.base_trials = 1;
  spec.metrics = {};
  spec.run = run_e13;
  return spec;
}
