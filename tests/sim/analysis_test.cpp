#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "protocols/estimate.hpp"
#include "util/table.hpp"

namespace byz::analysis {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Experiment, Pow2Sizes) {
  const auto sizes = pow2_sizes(10, 12);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1024u);
  EXPECT_EQ(sizes[2], 4096u);
}

TEST(Experiment, EnvScaleDefaultsToOne) {
  EnvGuard guard("BYZCOUNT_SCALE", nullptr);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
}

TEST(Experiment, EnvScaleParses) {
  EnvGuard guard("BYZCOUNT_SCALE", "2.5");
  EXPECT_DOUBLE_EQ(env_scale(), 2.5);
}

TEST(Experiment, EnvScaleRejectsGarbage) {
  EnvGuard guard("BYZCOUNT_SCALE", "banana");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
}

TEST(Experiment, EnvMaxExp) {
  {
    EnvGuard guard("BYZCOUNT_MAX_EXP", nullptr);
    EXPECT_EQ(env_max_exp(14), 14u);
  }
  {
    EnvGuard guard("BYZCOUNT_MAX_EXP", "12");
    EXPECT_EQ(env_max_exp(14), 12u);
  }
  {
    EnvGuard guard("BYZCOUNT_MAX_EXP", "2");  // below the floor of 4
    EXPECT_EQ(env_max_exp(14), 14u);
  }
}

TEST(Experiment, AccuracyAggregateFolds) {
  proto::Accuracy a;
  a.honest = 100;
  a.decided = 90;
  a.crashed = 10;
  a.frac_in_band = 0.9;
  a.mean_ratio = 0.5;
  a.min_ratio = 0.3;
  a.max_ratio = 0.7;
  proto::Accuracy b = a;
  b.frac_in_band = 0.7;
  AccuracyAggregate agg;
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.frac_in_band.count(), 2u);
  EXPECT_NEAR(agg.frac_in_band.mean(), 0.8, 1e-12);
  EXPECT_NEAR(agg.crashed_frac.mean(), 0.1, 1e-12);
  EXPECT_NEAR(agg.decided_frac.mean(), 0.9, 1e-12);
}

TEST(Experiment, AggregateSkipsRatioWhenNoDeciders) {
  proto::Accuracy none;
  none.honest = 10;
  none.decided = 0;
  AccuracyAggregate agg;
  agg.add(none);
  EXPECT_EQ(agg.mean_ratio.count(), 0u);
  EXPECT_EQ(agg.crashed_frac.count(), 1u);
}

TEST(Report, CaptureAppendsMarkdown) {
  const std::string path = ::testing::TempDir() + "/byz_capture_test.md";
  std::remove(path.c_str());
  {
    EnvGuard guard("BYZCOUNT_CAPTURE", path.c_str());
    util::Table t("captured");
    t.columns({"a"});
    t.row().cell("1");
    emit(t);
    emit_line("headline");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string captured = ss.str();
  EXPECT_NE(captured.find("### captured"), std::string::npos);
  EXPECT_NE(captured.find("headline"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, NoCaptureWithoutEnv) {
  EnvGuard guard("BYZCOUNT_CAPTURE", nullptr);
  util::Table t("uncaptured");
  t.columns({"a"});
  t.row().cell("1");
  EXPECT_NO_THROW(emit(t));
}

}  // namespace
}  // namespace byz::analysis
