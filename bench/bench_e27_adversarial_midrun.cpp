// E27 — accuracy under ADVERSARIAL mid-run schedules at matched churn
// budgets: the paper's adversary is adaptive (§2.1 — it sees the protocol
// state, including the flood wavefront), so uniform-over-rounds churn is
// the weakest timing it would ever choose. This scenario spends the SAME
// per-epoch event budget three ways — uniform, frontier-targeted leaves
// (departures strike the observed wavefront at its peak rounds), and
// boundary join storms (every join lands one round before a phase
// admission point) — and compares fresh in-band accuracy, estimate
// ratios, and the membership bookkeeping under both policies. The deltas
// vs uniform quantify how much of the mid-run guarantee survives worst-
// case TIMING, not just worst-case volume.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e27(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 6;
  constexpr double kRate = 2.0;  // x n0/128 arrivals and departures
  const proto::MembershipPolicy policies[] = {
      proto::MembershipPolicy::kTreatAsSilent,
      proto::MembershipPolicy::kReadmitNextPhase};
  const auto schedules = adv::all_midrun_schedule_strategies();

  util::Table table("E27: adversarial vs uniform mid-run schedules, d=6 (" +
                    std::to_string(t) + " trials, " + std::to_string(kEpochs) +
                    " epochs, identical event budgets)");
  table.columns({"n0", "policy", "schedule", "frontier hits", "admitted",
                 "fresh in-band", "mean est/log2n", "undecided"});
  std::vector<double> band_all;
  for (const auto n0 : sizes) {
    for (const auto policy : policies) {
      for (const auto schedule : schedules) {
        dynamics::ChurnRunConfig cfg;
        cfg.trace.n0 = n0;
        cfg.trace.epochs = kEpochs;
        cfg.trace.arrival_rate = kRate * (n0 / 128.0);
        cfg.trace.departure_rate = kRate * (n0 / 128.0);
        cfg.trace.min_n = n0 / 2;
        cfg.d = 6;
        cfg.delta = 0.7;
        cfg.strategy = adv::StrategyKind::kFakeColor;
        cfg.mid_run.enabled = true;
        cfg.mid_run.policy = policy;
        cfg.mid_run.schedule = schedule;

        // The trace (and so the event budget) depends only on the trace
        // seed — identical across the schedule strategies of a cell row,
        // so the comparison isolates timing/targeting.
        const std::uint64_t base_seed = 0xE27 + n0;
        const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
          auto trial_cfg = cfg;
          trial_cfg.trace.seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          trial_cfg.seed = trial_cfg.trace.seed;
          return dynamics::run_churn(trial_cfg);
        });

        util::OnlineStats fresh, ratio, undecided;
        std::uint64_t frontier_hits = 0, admitted = 0;
        for (const auto& run : runs) {
          for (const auto& ep : run.epochs) {
            fresh.add(ep.fresh.frac_in_band);
            ratio.add(ep.fresh.mean_ratio);
            undecided.add(
                ep.fresh.honest
                    ? static_cast<double>(ep.fresh.undecided) /
                          static_cast<double>(ep.fresh.honest)
                    : 0.0);
            frontier_hits += ep.midrun_frontier_leaves;
            admitted += ep.midrun_admitted;
            band_all.push_back(ep.fresh.frac_in_band);
          }
        }
        table.row()
            .cell(std::uint64_t{n0})
            .cell(proto::to_string(policy))
            .cell(adv::to_string(schedule))
            .cell(frontier_hits)
            .cell(admitted)
            .cell(fresh.mean(), 4)
            .cell(ratio.mean(), 3)
            .cell(util::format_double(100.0 * undecided.mean(), 1) + "%");

        Json j = Json::object();
        j["fresh_in_band"] = fresh.mean();
        j["mean_ratio"] = ratio.mean();
        j["frontier_leaves"] = frontier_hits;
        j["admitted"] = admitted;
        j["undecided_frac"] = undecided.mean();
        const bool silent = policy == proto::MembershipPolicy::kTreatAsSilent;
        ctx.metric("adversarial_n" + std::to_string(n0) + "_" +
                       std::string(silent ? "silent" : "readmit") + "_" +
                       adv::to_string(schedule),
                   std::move(j));
      }
    }
  }
  table.note("All three schedule strategies replay the IDENTICAL trace "
             "(same trace seed per trial), so every row of a (n0, policy) "
             "block spends the same join/leave budget — only WHEN events "
             "strike and WHICH nodes depart changes. frontier-leaves times "
             "departures at wavefront-peak rounds and picks victims on the "
             "observed frontier ('frontier hits' counts them); "
             "boundary-join-storm packs joins onto phase-final rounds so "
             "readmit-next-phase admits them in bursts under freshly "
             "rebuilt Verifiers. In-band accuracy degrades only modestly "
             "vs the uniform baseline at the same budget — the membership "
             "policies keep the surviving members inside the Theorem-1 "
             "band even under adversarially timed churn.");
  ctx.emit(table);
  ctx.record_accuracy("fresh_in_band", band_all);
}

}  // namespace

BYZBENCH_REGISTER(e27) {
  ScenarioSpec spec;
  spec.id = "e27";
  spec.title = "Adversarial mid-run schedules vs uniform at matched budgets";
  spec.claim = "Frontier-targeted departures and phase-boundary join storms "
               "— the adaptive adversary's worst timing at the same event "
               "budget — degrade mid-run accuracy only modestly vs "
               "uniform schedules under both membership policies";
  spec.grid = {{"policy", {"treat-as-silent", "readmit-next-phase"}},
               {"schedule",
                {"uniform", "frontier-leaves", "boundary-join-storm"}},
               pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"adversarial_n<k>_<policy>_<schedule>.fresh_in_band",
                  "accuracy.fresh_in_band"};
  spec.run = run_e27;
  return spec;
}
