#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "bench_core/json.hpp"

namespace byz::obs {
namespace {

/// Flips the runtime switch on for one test and restores "off" (the
/// process default) afterwards, with the registry zeroed on both sides.
class ObsGuard {
 public:
  ObsGuard() {
    reset_metrics();
    set_enabled(true);
  }
  ~ObsGuard() {
    set_enabled(false);
    reset_metrics();
  }
};

#if BYZ_OBS_ENABLED
std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snap,
                                        const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}
#endif  // BYZ_OBS_ENABLED

TEST(MetricsRegistry, HistogramBucketIsLog2) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  // Bucket b >= 1 covers [2^(b-1), 2^b - 1]: check both edges for a few b.
  for (std::size_t b = 1; b < 20; ++b) {
    EXPECT_EQ(histogram_bucket(std::uint64_t{1} << (b - 1)), b);
    EXPECT_EQ(histogram_bucket((std::uint64_t{1} << b) - 1), b);
  }
  // The last bucket absorbs the tail, including UINT64_MAX.
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(MetricsRegistry, QuantileWalksLog2Buckets) {
  HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);  // empty
  // 100 zeros: every quantile is exactly 0 (bucket 0 is exact).
  h.count = 100;
  h.buckets[0] = 100;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 0.0);
  // 90 samples in [4, 7] and 10 in [64, 127]: the median interpolates
  // inside the first bucket, p99 inside the tail bucket, and both stay
  // within their bucket's value range.
  h = HistogramSnapshot{};
  h.count = 100;
  h.buckets[histogram_bucket(4)] = 90;
  h.buckets[histogram_bucket(64)] = 10;
  const double p50 = histogram_quantile(h, 0.50);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 7.0);
  const double p95 = histogram_quantile(h, 0.95);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 127.0);
  const double p99 = histogram_quantile(h, 0.99);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 127.0);
  // Monotone in q.
  EXPECT_LE(histogram_quantile(h, 0.10), p50);
}

#if BYZ_OBS_ENABLED

TEST(MetricsRegistry, DisabledRecordingIsDropped) {
  reset_metrics();
  ASSERT_FALSE(enabled());  // runtime default is off
  const Counter c("test.disabled_counter");
  c.add(7);
  EXPECT_EQ(counter_value(metrics_snapshot(), "test.disabled_counter"), 0u);
}

TEST(MetricsRegistry, SameNameSharesOneSlot) {
  ObsGuard guard;
  const Counter a("test.shared");
  const Counter b("test.shared");
  a.add(2);
  b.add(3);
  EXPECT_EQ(counter_value(metrics_snapshot(), "test.shared"), 5u);
}

TEST(MetricsRegistry, MultiThreadShardsMergeAtScrape) {
  ObsGuard guard;
  const Counter c("test.mt_counter");
  const Histogram h("test.mt_hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto snap = metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "test.mt_counter"), kThreads * kPerThread);
  const auto* hist = find_histogram(snap, "test.mt_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  EXPECT_EQ(hist->sum, kThreads * (kPerThread * (kPerThread - 1) / 2));
  std::uint64_t bucket_total = 0;
  for (const auto b : hist->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  ObsGuard guard;
  const Gauge g("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  const auto snap = metrics_snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.gauge") {
      EXPECT_DOUBLE_EQ(value, -3.25);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, DeltaSubtractsCountersAndHistograms) {
  ObsGuard guard;
  const Counter c("test.delta_counter");
  const Histogram h("test.delta_hist");
  c.add(10);
  h.observe(4);
  const auto before = metrics_snapshot();
  c.add(5);
  h.observe(4);
  h.observe(9);
  const auto delta = metrics_delta(before, metrics_snapshot());
  EXPECT_EQ(counter_value(delta, "test.delta_counter"), 5u);
  const auto* hist = find_histogram(delta, "test.delta_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_EQ(hist->sum, 13u);
  EXPECT_EQ(hist->buckets[histogram_bucket(4)], 1u);
  EXPECT_EQ(hist->buckets[histogram_bucket(9)], 1u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsNames) {
  ObsGuard guard;
  const Counter c("test.reset_counter");
  c.add(42);
  reset_metrics();
  EXPECT_EQ(counter_value(metrics_snapshot(), "test.reset_counter"), 0u);
}

TEST(MetricsRegistry, JsonDocumentParses) {
  ObsGuard guard;
  const Counter c("test.json \"counter\"");
  const Histogram h("test.json_hist");
  c.add(3);
  h.observe(0);
  h.observe(100);
  const auto doc = bench_core::Json::parse(metrics_json(metrics_snapshot()));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "byzobs/metrics/v1");
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* value = counters->find("test.json \"counter\"");
  ASSERT_NE(value, nullptr);
  EXPECT_DOUBLE_EQ(value->as_number(), 3.0);
  const auto* hist = doc->find("histograms")->find("test.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 100.0);
  // Sparse buckets: exactly the zero bucket and bucket_of(100).
  ASSERT_EQ(hist->find("buckets")->elements().size(), 2u);
  // Quantile estimates ride along; with half the samples exact zeros the
  // median is 0 and p99 lands in 100's bucket range [64, 127].
  EXPECT_DOUBLE_EQ(hist->find("p50")->as_number(), 0.0);
  EXPECT_GE(hist->find("p99")->as_number(), 64.0);
  EXPECT_LE(hist->find("p99")->as_number(), 127.0);
}

#endif  // BYZ_OBS_ENABLED

}  // namespace
}  // namespace byz::obs
