#include "protocols/verification.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace byz::proto {

using graph::NodeId;

namespace {

void path_dfs(const graph::Graph& h, const std::vector<bool>& byz,
              std::vector<bool>& on_path, NodeId v, std::uint32_t depth,
              std::uint32_t cap, std::uint32_t& best) {
  best = std::max(best, depth);
  if (best >= cap) return;
  for (const NodeId w : h.neighbors(v)) {
    if (byz[w] && !on_path[w]) {
      on_path[w] = true;
      path_dfs(h, byz, on_path, w, depth + 1, cap, best);
      on_path[w] = false;
      if (best >= cap) return;
    }
  }
}

}  // namespace

const char* to_string(MembershipPolicy policy) {
  switch (policy) {
    case MembershipPolicy::kTreatAsSilent: return "treat-as-silent";
    case MembershipPolicy::kReadmitNextPhase: return "readmit-next-phase";
  }
  return "?";
}

std::uint32_t byz_path_ending_at(const graph::Graph& h_simple,
                                 const std::vector<bool>& byz_mask,
                                 NodeId endpoint, std::uint32_t cap) {
  if (!byz_mask[endpoint]) return 0;
  std::vector<bool> on_path(h_simple.num_nodes(), false);
  on_path[endpoint] = true;
  std::uint32_t best = 1;
  path_dfs(h_simple, byz_mask, on_path, endpoint, 1, cap, best);
  return best;
}

void verifier_ball_row(const graph::Overlay& overlay, NodeId v,
                       std::uint32_t* out) {
  const std::uint32_t k = overlay.k();
  if (k >= 16) throw std::invalid_argument("Verifier: k too large");
  // Cumulative ball sizes from the overlay's distance annotations.
  const auto dists = overlay.g_dists(v);
  std::uint32_t per_r[16] = {};  // k is a small constant (<= 15 guarded)
  for (const auto dval : dists) {
    if (dval >= 1 && dval <= k) ++per_r[dval];
  }
  std::uint32_t cum = 1;  // the sender itself
  for (std::uint32_t r = 1; r <= k; ++r) {
    cum += per_r[r];
    out[r - 1] = cum;
  }
}

std::uint8_t verifier_chain_len(const graph::Overlay& overlay,
                                const std::vector<bool>& byz_mask, NodeId v,
                                ChainModel model) {
  if (!byz_mask[v]) return 0;
  const std::uint32_t k = overlay.k();
  if (model == ChainModel::kStrict) {
    return static_cast<std::uint8_t>(std::min<std::uint32_t>(
        byz_path_ending_at(overlay.h_simple(), byz_mask, v, k + 1), 255));
  }
  // kRewired: Byzantine nodes within B_H(v, k-1) can pose as a chain by
  // claiming fake Byz-Byz H-edges that survive the crash rule.
  std::uint32_t count = 1;
  const auto nbrs = overlay.g().neighbors(v);
  const auto dists = overlay.g_dists(v);
  for (std::size_t s = 0; s < nbrs.size(); ++s) {
    if (dists[s] <= k - 1 && byz_mask[nbrs[s]]) ++count;
  }
  return static_cast<std::uint8_t>(std::min<std::uint32_t>(count, 255));
}

Verifier::Verifier(const graph::Overlay& overlay,
                   const std::vector<bool>& byz_mask,
                   VerificationConfig config, std::uint32_t threads)
    : overlay_(&overlay), byz_(&byz_mask), config_(config), k_(overlay.k()) {
  const NodeId n = overlay.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("Verifier: mask size mismatch");
  }
  if (k_ >= 16) throw std::invalid_argument("Verifier: k too large");
  ball_counts_.assign(static_cast<std::size_t>(n) * k_, 0);
  chain_len_.assign(n, 0);
  // Each row is a pure function of the overlay (and mask) written to a
  // disjoint slice, so the batched precompute is trivially deterministic.
  const int nt = static_cast<int>(
      threads > 0 ? threads
                  : std::max(1u, std::thread::hardware_concurrency()));
  (void)nt;
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) if (nt > 1)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    verifier_ball_row(
        overlay, static_cast<NodeId>(v),
        ball_counts_.data() + static_cast<std::size_t>(v) * k_);
    chain_len_[static_cast<std::size_t>(v)] = verifier_chain_len(
        overlay, byz_mask, static_cast<NodeId>(v), config_.chain_model);
  }
}

Verifier::Verifier(const graph::Overlay& overlay,
                   const std::vector<bool>& byz_mask,
                   VerificationConfig config,
                   std::vector<std::uint32_t> ball_counts,
                   std::vector<std::uint8_t> chain_len)
    : overlay_(&overlay),
      byz_(&byz_mask),
      config_(config),
      k_(overlay.k()),
      ball_counts_(std::move(ball_counts)),
      chain_len_(std::move(chain_len)) {
  const NodeId n = overlay.num_nodes();
  // `>=`, not `==`: the mid-run churn tier verifies over the run's id
  // space (snapshot members plus scheduled joiners), which is a superset
  // of the snapshot the overlay describes. Rows past n belong to joiners.
  // The mask and both tables must still agree on that id space, so every
  // id the mask admits has a row to read.
  if (byz_mask.size() < n ||
      ball_counts_.size() != byz_mask.size() * static_cast<std::size_t>(k_) ||
      chain_len_.size() * k_ != ball_counts_.size()) {
    throw std::invalid_argument("Verifier: precomputed state size mismatch");
  }
}

std::uint64_t Verifier::check_ball_size(NodeId sender,
                                        std::uint32_t step) const {
  const std::uint32_t r =
      std::min<std::uint32_t>(std::max<std::uint32_t>(step, 1), k_ - 1 > 0 ? k_ - 1 : 1);
  return ball_counts_[static_cast<std::size_t>(sender) * k_ + (r - 1)];
}

std::uint32_t Verifier::usable_chain(NodeId endpoint) const {
  return chain_len_[endpoint];
}

bool Verifier::accept(NodeId sender, Color c, std::uint32_t step,
                      Color legit_fresh, bool sender_is_byz,
                      sim::Instrumentation& instr) const {
  if (!config_.enabled) {
    // Algorithm-1 behavior: everything is believed, no traffic.
    if (sender_is_byz && c != legit_fresh) {
      ++instr.injections_attempted;
      ++instr.injections_accepted;
    }
    return true;
  }
  instr.count_verification(check_ball_size(sender, step));
  if (c == legit_fresh) {
    return true;  // protocol-conformant forward (or honest generation)
  }
  if (step == 1) {
    // Unauditable generation claim; count Byzantine deviations.
    if (sender_is_byz && c != legit_fresh) {
      ++instr.injections_attempted;
      ++instr.injections_accepted;
    }
    return true;
  }
  // Fabricated provenance: needs a Byzantine chain of min(step, k).
  const std::uint32_t need = std::min<std::uint32_t>(step, k_);
  const bool ok = sender_is_byz && usable_chain(sender) >= need;
  if (sender_is_byz) {
    ++instr.injections_attempted;
    if (ok) {
      ++instr.injections_accepted;
    } else {
      ++instr.injections_caught;
    }
  }
  return ok;
}

}  // namespace byz::proto
