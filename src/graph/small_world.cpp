#include "graph/small_world.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {

Overlay Overlay::build(const OverlayParams& params) {
  util::Xoshiro256 rng(params.seed);
  return build_from_h(params, build_hamiltonian_graph(params.n, params.d, rng));
}

Overlay Overlay::build_from_h(const OverlayParams& params, Graph h) {
  Overlay o;
  o.params_ = params;
  o.k_ = params.k == 0 ? paper_k(params.d) : params.k;
  if (o.k_ == 0) throw std::invalid_argument("Overlay: k must be >= 1");
  if (h.num_nodes() != params.n) {
    throw std::invalid_argument("Overlay: H node count != params.n");
  }
  if (!h.is_regular(params.d)) {
    throw std::invalid_argument("Overlay: H is not d-regular");
  }

  o.h_ = std::move(h);
  o.h_simple_ = simplify(o.h_);

  const NodeId n = params.n;
  const std::uint32_t k = o.k_;

  // Pass 1: ball sizes (excluding the center) -> CSR offsets.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel
  {
    BfsScratch scratch;
    std::vector<BallEntry> ball;
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      bfs_ball(o.h_simple_, static_cast<NodeId>(v), k, scratch, ball);
      counts[static_cast<std::size_t>(v) + 1] = ball.size() - 1;  // minus self
    }
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  // Pass 2: fill node/dist arrays, sorted by neighbor id per node so the
  // Graph invariants (sorted adjacency) hold and h_dist can binary-search.
  std::vector<NodeId> nodes(counts.back());
  std::vector<std::uint8_t> dists(counts.back());
#pragma omp parallel
  {
    BfsScratch scratch;
    std::vector<BallEntry> ball;
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t sv = 0; sv < static_cast<std::int64_t>(n); ++sv) {
      const auto v = static_cast<NodeId>(sv);
      bfs_ball(o.h_simple_, v, k, scratch, ball);
      std::sort(ball.begin() + 1, ball.end(),
                [](const BallEntry& a, const BallEntry& b) {
                  return a.node < b.node;
                });
      std::uint64_t w = counts[v];
      for (std::size_t i = 1; i < ball.size(); ++i, ++w) {
        nodes[w] = ball[i].node;
        dists[w] = ball[i].dist;
      }
    }
  }

  // Assemble the G CSR directly from the per-node sorted ranges.
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId v = 0; v < n; ++v) {
    adj[v].assign(nodes.begin() + static_cast<std::ptrdiff_t>(counts[v]),
                  nodes.begin() + static_cast<std::ptrdiff_t>(counts[v + 1]));
  }
  o.g_ = Graph::from_adjacency(std::move(adj));
  o.g_dist_ = std::move(dists);
  return o;
}

Overlay Overlay::build_with_balls(const OverlayParams& params, Graph h,
                                  Graph g, std::vector<std::uint8_t> g_dist) {
  Overlay o;
  o.params_ = params;
  o.k_ = params.k == 0 ? paper_k(params.d) : params.k;
  if (o.k_ == 0) throw std::invalid_argument("Overlay: k must be >= 1");
  if (h.num_nodes() != params.n || g.num_nodes() != params.n) {
    throw std::invalid_argument("Overlay: H/G node count != params.n");
  }
  if (!h.is_regular(params.d)) {
    throw std::invalid_argument("Overlay: H is not d-regular");
  }
  if (g_dist.size() != g.num_slots()) {
    throw std::invalid_argument("Overlay: g_dist size != G slots");
  }
  o.h_ = std::move(h);
  o.h_simple_ = simplify(o.h_);
  o.g_ = std::move(g);
  o.g_dist_ = std::move(g_dist);
  return o;
}

std::uint8_t Overlay::h_dist(NodeId v, NodeId w) const {
  if (v == w) return 0;
  const auto nbrs = g_.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
  if (it == nbrs.end() || *it != w) return kNotInBall;
  const auto slot = static_cast<std::uint64_t>(it - nbrs.begin());
  return g_dist_[g_.first_slot(v) + slot];
}

}  // namespace byz::graph
