#include "bench_core/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace byz::bench_core {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  ASSERT_EQ(j.members().size(), 2u);
  EXPECT_EQ(j.members()[0].first, "zebra");
  EXPECT_EQ(j.members()[1].first, "alpha");
}

TEST(Json, NestedAccess) {
  Json j = Json::object();
  j["metrics"]["accuracy"]["p50"] = 0.5;  // auto-vivifies objects
  const auto* metrics = j.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto* accuracy = metrics->find("accuracy");
  ASSERT_NE(accuracy, nullptr);
  EXPECT_DOUBLE_EQ(accuracy->find("p50")->as_number(), 0.5);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3")->as_number(), -2500.0);
  EXPECT_EQ(Json::parse("\"x\\ny\"")->as_string(), "x\ny");
  EXPECT_EQ(Json::parse("\"\\u0041\"")->as_string(), "A");
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

TEST(Json, RoundTripBenchSchema) {
  // Representative BENCH_<exp>.json document.
  Json doc = Json::object();
  doc["schema"] = "byzbench/v1";
  doc["experiment"] = "e07";
  doc["scale"] = 0.1;
  doc["jobs"] = 8;
  doc["wall_seconds"] = 1.25;
  Json table = Json::object();
  table["title"] = "E7a";
  table["columns"] = Json::array();
  table["columns"].push_back("n");
  table["columns"].push_back("tokens");
  Json row = Json::array();
  row.push_back("1024");
  row.push_back("31744");
  table["rows"] = Json::array();
  table["rows"].push_back(std::move(row));
  doc["tables"] = Json::array();
  doc["tables"].push_back(std::move(table));
  doc["metrics"]["messages"]["token_messages"] = std::uint64_t{31744};
  doc["metrics"]["accuracy"]["in_band"]["p50"] = 0.9987;

  for (const int indent : {0, 2}) {
    const auto text = doc.dump(indent);
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_TRUE(*parsed == doc) << text;
  }
}

TEST(Json, RoundTripPreservesDoubles) {
  // The shortest-round-trip writer must preserve exact doubles.
  for (const double v : {0.1, 1.0 / 3.0, 6.02e23, -0.0, 1e-300}) {
    const auto text = Json(v).dump();
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->as_number(), v) << text;
  }
}

TEST(Json, EqualityIsStructural) {
  const auto a = Json::parse(R"({"x": [1, 2, {"y": true}]})");
  const auto b = Json::parse(R"({ "x" : [ 1 , 2 , { "y" : true } ] })");
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(*a == *b);
  const auto c = Json::parse(R"({"x": [1, 2, {"y": false}]})");
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace byz::bench_core
