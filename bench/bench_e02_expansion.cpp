// E2 — Spectral expansion of H(n,d) (Lemma 19 / Friedman near-Ramanujan).
//
// Reports lambda2 against the Ramanujan value 2*sqrt(d-1), the Cheeger
// bounds (d-lambda2)/2 <= h <= sqrt(2d(d-lambda2)), and a constructive
// sweep-cut upper bound on the edge expansion.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(15);
  util::Table table("E2: H(n,d) expansion (power iteration + sweep cut)");
  table.columns({"n", "d", "lambda2", "2*sqrt(d-1)", "h lower", "h upper",
                 "sweep-cut h", "iters"});
  for (const std::uint32_t d : {6u, 8u, 12u}) {
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      util::Xoshiro256 rng(0xE2 + n + d);
      const auto h = graph::build_hamiltonian_graph(n, d, rng);
      const auto spec = graph::second_eigenvalue(h, 3000, 1e-10, 0xE2);
      const auto bounds = graph::cheeger_bounds(d, spec.lambda2);
      const double sweep = graph::sweep_cut_expansion(h, spec.vector2);
      table.row()
          .cell(std::uint64_t{n})
          .cell(d)
          .cell(spec.lambda2, 3)
          .cell(2.0 * std::sqrt(d - 1.0), 3)
          .cell(bounds.lower, 3)
          .cell(bounds.upper, 3)
          .cell(sweep, 3)
          .cell(spec.iterations);
    }
  }
  table.note("Friedman/Lemma 19: random regular graphs are near-Ramanujan "
             "(lambda2 ~ 2 sqrt(d-1)); the true edge expansion h lies in "
             "[h lower, min(h upper, sweep-cut h)].");
  analysis::emit(table);
  return 0;
}
