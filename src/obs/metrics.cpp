#include "obs/metrics.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace byz::obs {

namespace {

// Fixed shard capacities: the repo registers a few dozen metrics, all via
// function-local static handles. Interning past a cap aliases onto the
// cap's last slot rather than failing — wrong numbers beat UB, and the
// caps are an order of magnitude above current usage.
constexpr std::size_t kMaxCounters = 128;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;

struct HistogramCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// One thread's private cells. Only the owner writes (relaxed); the
/// scraper reads concurrently, which atomics make well-defined.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};
};

void fold_shard(Shard& into, const Shard& from) {
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    into.counters[i].fetch_add(
        from.counters[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    into.histograms[i].count.fetch_add(
        from.histograms[i].count.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    into.histograms[i].sum.fetch_add(
        from.histograms[i].sum.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      into.histograms[i].buckets[b].fetch_add(
          from.histograms[i].buckets[b].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
}

void zero_shard(Shard& shard) {
  for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
  for (auto& h : shard.histograms) {
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
  }
}

struct State {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::vector<Shard*> live;
  Shard retained;  // folded-in shards of exited threads
};

State& state() {
  // Leaked on purpose: thread_local shard destructors (any thread, any
  // time up to process exit) must always find the registry alive.
  static State* s = new State;
  return *s;
}

std::uint32_t intern(std::vector<std::string>& names, std::string_view name,
                     std::size_t cap) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (names.size() >= cap) return static_cast<std::uint32_t>(cap - 1);
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

#if BYZ_OBS_ENABLED
struct ThreadShard {
  Shard* shard;

  ThreadShard() : shard(new Shard) {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.live.push_back(shard);
  }

  ~ThreadShard() {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    fold_shard(s.retained, *shard);
    std::erase(s.live, shard);
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ThreadShard tls;
  return *tls.shard;
}
#endif

}  // namespace

#if BYZ_OBS_ENABLED

Counter::Counter(std::string_view name) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  id_ = intern(s.counter_names, name, kMaxCounters);
}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!enabled()) return;
  local_shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

Gauge::Gauge(std::string_view name) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  id_ = intern(s.gauge_names, name, kMaxGauges);
}

void Gauge::set(double value) const noexcept {
  if (!enabled()) return;
  state().gauges[id_].store(value, std::memory_order_relaxed);
}

Histogram::Histogram(std::string_view name) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  id_ = intern(s.histogram_names, name, kMaxHistograms);
}

void Histogram::observe(std::uint64_t value) const noexcept {
  if (!enabled()) return;
  HistogramCells& h = local_shard().histograms[id_];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
}

#endif  // BYZ_OBS_ENABLED

MetricsSnapshot metrics_snapshot() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(s.counter_names.size());
  for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
    std::uint64_t total =
        s.retained.counters[i].load(std::memory_order_relaxed);
    for (const Shard* shard : s.live) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(s.counter_names[i], total);
  }
  snap.gauges.reserve(s.gauge_names.size());
  for (std::size_t i = 0; i < s.gauge_names.size(); ++i) {
    snap.gauges.emplace_back(s.gauge_names[i],
                             s.gauges[i].load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(s.histogram_names.size());
  for (std::size_t i = 0; i < s.histogram_names.size(); ++i) {
    HistogramSnapshot h;
    h.name = s.histogram_names[i];
    h.count = s.retained.histograms[i].count.load(std::memory_order_relaxed);
    h.sum = s.retained.histograms[i].sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] =
          s.retained.histograms[i].buckets[b].load(std::memory_order_relaxed);
    }
    for (const Shard* shard : s.live) {
      h.count += shard->histograms[i].count.load(std::memory_order_relaxed);
      h.sum += shard->histograms[i].sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] +=
            shard->histograms[i].buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.gauges = after.gauges;
  out.counters.reserve(after.counters.size());
  for (const auto& [name, value] : after.counters) {
    std::uint64_t base = 0;
    for (const auto& [bname, bvalue] : before.counters) {
      if (bname == name) {
        base = bvalue;
        break;
      }
    }
    out.counters.emplace_back(name, value - base);
  }
  out.histograms.reserve(after.histograms.size());
  for (const auto& h : after.histograms) {
    const HistogramSnapshot* base = nullptr;
    for (const auto& bh : before.histograms) {
      if (bh.name == h.name) {
        base = &bh;
        break;
      }
    }
    HistogramSnapshot d = h;
    if (base != nullptr) {
      d.count -= base->count;
      d.sum -= base->sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        d.buckets[b] -= base->buckets[b];
      }
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(h.count);
  double cum = 0.0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(h.buckets[b]);
    if (cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    if (b == 0) return 0.0;  // bucket 0 holds exact zeros
    // Linear interpolation across the bucket's value range.
    const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
    const double hi = b >= 63 ? 2.0 * lo : lo * 2.0 - 1.0;
    const double frac = in_bucket > 0.0 ? (target - cum) / in_bucket : 0.0;
    return lo + (hi - lo) * frac;
  }
  return 0.0;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out;
  out += "{\n  \"schema\": \"byzobs/metrics/v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    detail::append_json_escaped(out, snap.counters[i].first);
    out += "\": " + std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    detail::append_json_escaped(out, snap.gauges[i].first);
    out += "\": ";
    detail::append_json_double(out, snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  // Buckets are sparse [index, count] pairs; index b covers values in
  // [2^(b-1), 2^b - 1] (b = 0 holds exact zeros).
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out += i == 0 ? "\n    \"" : ",\n    \"";
    detail::append_json_escaped(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"p50\": ";
    detail::append_json_double(out, histogram_quantile(h, 0.50));
    out += ", \"p95\": ";
    detail::append_json_double(out, histogram_quantile(h, 0.95));
    out += ", \"p99\": ";
    detail::append_json_double(out, histogram_quantile(h, 0.99));
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out +=
          "[" + std::to_string(b) + ", " + std::to_string(h.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool write_metrics_file(const std::string& path) {
  const std::string doc = metrics_json(metrics_snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void reset_metrics() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  zero_shard(s.retained);
  for (Shard* shard : s.live) zero_shard(*shard);
  for (auto& g : s.gauges) g.store(0.0, std::memory_order_relaxed);
}

}  // namespace byz::obs
