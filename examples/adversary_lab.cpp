// Adversary lab: shows how to implement a CUSTOM adversary strategy against
// Algorithm 2 by subclassing adv::Strategy, and pits it against the
// built-in ones on the same overlay.
//
// The custom "sleeper" adversary behaves perfectly honestly through the
// early phases (building no suspicion), then switches to last-step color
// injection exactly when phases get long enough to matter. Because it has
// full information it even conditions on the honest nodes' FUTURE coin
// flips: it only bothers attacking subphases whose honest maximum would
// otherwise be unremarkable.
//
//   $ ./adversary_lab [--n=4096] [--d=8] [--delta=0.6] [--seed=7]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

namespace {

using namespace byz;

/// Honest until `wake_phase`, then injects just-above-threshold colors at
/// the final step — the least conspicuous effective value, chosen using
/// full knowledge of the honest coin table.
class SleeperStrategy final : public adv::Strategy {
 public:
  explicit SleeperStrategy(std::uint32_t wake_phase, std::uint32_t d)
      : wake_phase_(wake_phase), d_(d) {}

  [[nodiscard]] std::string_view name() const override { return "sleeper"; }
  [[nodiscard]] bool generates_honestly() const override { return true; }

  void plan_subphase(const sim::World& world, const adv::SubphaseRef& ref,
                     std::vector<proto::Injection>& out) override {
    if (ref.phase < wake_phase_) return;  // lie low
    // Full information: find the highest color any honest node will draw
    // this subphase, and top it by exactly one.
    proto::Color honest_max = 0;
    for (graph::NodeId v = 0; v < world.true_n; ++v) {
      if (!world.is_byz(v)) {
        honest_max = std::max(honest_max, world.color(v, ref.global_index));
      }
    }
    const auto threshold = static_cast<proto::Color>(
        std::ceil(proto::continue_threshold(ref.phase, d_)));
    const proto::Color value = std::max(honest_max, threshold) + 1;
    for (const graph::NodeId b : world.byz_nodes) {
      out.push_back({b, ref.phase, value});
    }
  }

 private:
  std::uint32_t wake_phase_;
  std::uint32_t d_;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("adversary_lab", "plug in a custom adversary");
  args.add_option("n", "network size", "4096");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.6");
  args.add_option("seed", "trial seed", "7");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<graph::NodeId>(args.integer("n"));
  const auto d = static_cast<std::uint32_t>(args.integer("d"));
  const double delta = args.real("delta");
  const auto seed = static_cast<std::uint64_t>(args.integer("seed"));

  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 rng(seed ^ 0xB12);
  const auto byz =
      graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);

  util::Table table("Adversary lab: n=" + std::to_string(n) + ", B=" +
                    std::to_string(sim::derive_byz_count(n, delta)));
  table.columns({"adversary", "in-band frac", "mean est/log2n", "crashed",
                 "undecided", "injections caught"});

  auto report = [&](adv::Strategy& strategy) {
    proto::ProtocolConfig cfg;
    const auto run =
        proto::run_counting(overlay, byz, strategy, cfg, seed ^ 0xC01);
    const auto acc = proto::summarize_accuracy(run, n);
    table.row()
        .cell(std::string(strategy.name()))
        .cell(acc.frac_in_band, 4)
        .cell(acc.mean_ratio, 3)
        .cell(acc.crashed)
        .cell(acc.undecided)
        .cell(run.instr.injections_caught);
  };

  for (const auto kind : adv::all_strategies()) {
    const auto strategy = adv::make_strategy(kind);
    report(*strategy);
  }
  SleeperStrategy sleeper(/*wake_phase=*/3, d);
  report(sleeper);

  table.note("The sleeper's last-step injections still need a Byzantine "
             "chain of length min(step, k) — Lemma 16 does not care when "
             "the adversary wakes up.");
  std::cout << table;
  return 0;
}
