#include "protocols/estimate.hpp"

#include <gtest/gtest.h>

#include "protocols/fastpath.hpp"

namespace byz::proto {
namespace {

RunResult make_run(std::vector<NodeStatus> status,
                   std::vector<std::uint32_t> estimate) {
  RunResult r;
  r.status = std::move(status);
  r.estimate = std::move(estimate);
  return r;
}

TEST(SummarizeAccuracy, CountsEveryCategory) {
  // n = 16 -> log2 = 4. Estimates 2 and 4 are in [0.05, 3.0] * 4.
  const auto r = make_run(
      {NodeStatus::kDecided, NodeStatus::kDecided, NodeStatus::kCrashed,
       NodeStatus::kUndecided, NodeStatus::kByzantine},
      {2, 4, 0, 0, 0});
  const auto acc = summarize_accuracy(r, 16);
  EXPECT_EQ(acc.honest, 4u);
  EXPECT_EQ(acc.decided, 2u);
  EXPECT_EQ(acc.crashed, 1u);
  EXPECT_EQ(acc.undecided, 1u);
  EXPECT_EQ(acc.in_band, 2u);
  EXPECT_DOUBLE_EQ(acc.min_ratio, 0.5);
  EXPECT_DOUBLE_EQ(acc.max_ratio, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_ratio, 0.75);
  EXPECT_DOUBLE_EQ(acc.frac_in_band, 0.5);   // 2 of 4 honest
  EXPECT_DOUBLE_EQ(acc.frac_good, 1.0);      // 2 of 2 decided
}

TEST(SummarizeAccuracy, BandBoundsRespected) {
  // log2(16) = 4; band [0.5, 0.75] * 4 = estimates in [2, 3].
  const auto r = make_run(
      {NodeStatus::kDecided, NodeStatus::kDecided, NodeStatus::kDecided},
      {1, 2, 3});
  const auto acc = summarize_accuracy(r, 16, 0.5, 0.75);
  EXPECT_EQ(acc.in_band, 2u);  // estimates 2 and 3
}

TEST(SummarizeAccuracy, NoDecidersZeroRatios) {
  const auto r = make_run({NodeStatus::kCrashed, NodeStatus::kUndecided},
                          {0, 0});
  const auto acc = summarize_accuracy(r, 1024);
  EXPECT_EQ(acc.decided, 0u);
  EXPECT_EQ(acc.mean_ratio, 0.0);
  EXPECT_EQ(acc.min_ratio, 0.0);
  EXPECT_EQ(acc.frac_good, 0.0);
}

TEST(SummarizeAccuracy, AllByzantineGivesEmptyHonest) {
  const auto r = make_run({NodeStatus::kByzantine, NodeStatus::kByzantine},
                          {0, 0});
  const auto acc = summarize_accuracy(r, 4);
  EXPECT_EQ(acc.honest, 0u);
  EXPECT_EQ(acc.frac_in_band, 0.0);
}

TEST(Instrumentation, MergeAddsAndMaxes) {
  sim::Instrumentation a;
  a.token_messages = 10;
  a.max_node_round_sends = 3;
  a.crashes = 1;
  sim::Instrumentation b;
  b.token_messages = 5;
  b.max_node_round_sends = 7;
  b.verify_messages = 4;
  a.merge(b);
  EXPECT_EQ(a.token_messages, 15u);
  EXPECT_EQ(a.max_node_round_sends, 7u);
  EXPECT_EQ(a.verify_messages, 4u);
  EXPECT_EQ(a.crashes, 1u);
}

TEST(Instrumentation, ByteModelConstants) {
  sim::Instrumentation i;
  i.count_token(3);
  EXPECT_EQ(i.token_messages, 3u);
  EXPECT_EQ(i.token_bytes, 3 * sim::Instrumentation::kTokenBytes);
  i.count_setup_list(10);
  EXPECT_EQ(i.setup_messages, 1u);
  EXPECT_EQ(i.setup_bytes, 8 + 10 * sim::Instrumentation::kIdBytes);
  i.count_verification(5);
  EXPECT_EQ(i.verify_messages, 10u);  // query + response
  EXPECT_EQ(i.total_messages(), 3u + 1u + 10u);
  EXPECT_GT(i.total_bytes(), 0u);
}

TEST(ResolveMaxPhase, AutoScalesWithLogN) {
  graph::OverlayParams small_params;
  small_params.n = 1024;
  small_params.d = 8;
  small_params.seed = 1;
  const auto small_overlay = graph::Overlay::build(small_params);
  graph::OverlayParams big_params;
  big_params.n = 16384;
  big_params.d = 8;
  big_params.seed = 1;
  const auto big_overlay = graph::Overlay::build(big_params);
  ProtocolConfig cfg;
  EXPECT_LT(resolve_max_phase(small_overlay, cfg),
            resolve_max_phase(big_overlay, cfg));
  cfg.max_phase = 5;
  EXPECT_EQ(resolve_max_phase(big_overlay, cfg), 5u);
}

}  // namespace
}  // namespace byz::proto
