// Minimal JSON value with writer + parser for the structured bench
// emitters (BENCH_<exp>.json). Self-contained on purpose: the repo has a
// no-new-dependencies policy and the bench schema is small. Objects keep
// insertion order so emitted documents are stable across runs (the perf
// trajectory diffs them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace byz::bench_core {

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(std::nullptr_t) noexcept : kind_(Kind::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Json(double v) noexcept : kind_(Kind::kNumber), num_(v) {}  // NOLINT
  Json(int v) noexcept : kind_(Kind::kNumber), num_(v) {}  // NOLINT
  Json(std::int64_t v) noexcept : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(std::uint64_t v) noexcept : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Array access + append (converts a null value to an array).
  [[nodiscard]] const Json& at(std::size_t index) const;
  void push_back(Json value);

  /// Object access. operator[] inserts a null member on first use (and
  /// converts a null value to an object); `find` returns nullptr if absent.
  Json& operator[](std::string_view key);
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  [[nodiscard]] const std::vector<Json>& elements() const { return elements_; }

  /// Serializes; `indent` = 0 renders compact single-line JSON.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Strict-enough parser for the bench schema (no comments, UTF-8 passed
  /// through, \uXXXX decoded). Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

  /// Structural equality (numbers compared exactly).
  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes a string for embedding in JSON output (shared with tests).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace byz::bench_core
