// Color verification (Algorithm 2 line 15, Lemmas 15/16).
//
// When honest v receives color c from H-neighbor w at subphase step t, it
// interrogates the nodes of B_H(w, min(t, k-1)) over direct L-edges: did c
// really travel a legitimate path to w? Honest witnesses answer truthfully
// from their forwarding records; Byzantine witnesses corroborate anything.
// The provable effect (Lemma 16) is captured by this acceptance rule:
//
//   accept(w, c, t) =
//        t == 1                                  (generation claims are
//                                                 unauditable coin flips)
//     or c == legit_fresh(w, t)                  (protocol-conformant
//                                                 forward; honest senders
//                                                 always satisfy this)
//     or a Byzantine chain of length min(t, k) ending at w exists
//                                                 (the only way to fake a
//                                                  provenance trail)
//
// Observation 6 says chains of length >= k do not exist w.h.p., so
// mid-subphase fabrication beyond step k-1 is always caught — Lemma 16.
//
// Two chain models are provided (DESIGN.md §3.2/§3.5): kStrict counts
// simple Byzantine paths in H (the paper's literal object); kRewired is
// adversary-friendlier and only requires min(t,k) Byzantine nodes inside
// the checked ball (covering fake Byzantine-Byzantine H-edge claims that
// survive the crash rule). Both vanish w.h.p. under random placement.
//
// MID-RUN MEMBERSHIP (protocols/midrun.hpp, dynamics/midrun.*): the
// Verifier's state — cumulative ball counts and usable chains — is computed
// from a topology snapshot, so nodes joining or leaving DURING a run make
// it stale. MembershipPolicy names the two supported answers. Departures
// are handled identically under both (the departed node drops messages from
// its departure round; witnesses it would have contributed are simply
// absent, which can only shrink what the Verifier accepts). The policies
// differ on JOINERS and on when the state is refreshed:
//
//   kTreatAsSilent     mid-run joiners never become generating
//                      participants this run: they relay nothing, generate
//                      nothing, and finish kUndecided (they estimate from
//                      the next run, or via smoothing). The Verifier keeps
//                      its run-start state for the whole run. Conservative:
//                      the run only ever LOSES color mass relative to the
//                      churn-free run, so on an empty schedule it is
//                      bitwise identical to the static path (E24) and
//                      under churn it cannot admit tokens the static
//                      Verifier would have rejected.
//   kReadmitNextPhase  a joiner is re-admitted at the first phase boundary
//                      after its entry round: from that phase on it
//                      generates colors, relays, and can decide. At each
//                      boundary with pending admissions the Verifier is
//                      rebuilt against the live topology (fresh ball rows
//                      and chain lengths for every node), so admitted
//                      joiners are verifiable senders. Within a phase the
//                      state stays frozen — mid-PHASE membership change is
//                      exactly the staleness the policy tolerates, bounded
//                      by one phase.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/small_world.hpp"
#include "protocols/color.hpp"
#include "sim/instrumentation.hpp"

namespace byz::proto {

enum class ChainModel : std::uint8_t { kStrict, kRewired };

/// How a run treats nodes whose membership changes mid-phase (see the file
/// comment for the full semantics; dynamics/midrun.* implements both).
enum class MembershipPolicy : std::uint8_t {
  kTreatAsSilent,      ///< joiners stay silent all run; verifier frozen
  kReadmitNextPhase,   ///< joiners admitted + verifier rebuilt at boundaries
};

[[nodiscard]] const char* to_string(MembershipPolicy policy);

struct VerificationConfig {
  bool enabled = true;  ///< ablation switch (off = Algorithm 1 behavior)
  ChainModel chain_model = ChainModel::kStrict;
};

class Verifier {
 public:
  /// `threads` batches the per-node ball-row + chain-length precompute:
  /// 1 = serial (the default and the reference behavior), 0 = hardware
  /// concurrency, N = N workers. Every row is a pure function of the
  /// overlay, so the table is identical for every thread count.
  Verifier(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
           VerificationConfig config, std::uint32_t threads = 1);

  /// Trusted-state constructor for the warm-start and mid-run tiers:
  /// adopts a ready-made cumulative ball-count table (>= n*k values, laid
  /// out exactly as the primary constructor computes them) and per-node
  /// chain lengths. The warm tier reuses cached rows for clean nodes and
  /// recomputes dirty rows with verifier_ball_row / verifier_chain_len;
  /// the mid-run tier passes tables over the run's id space (a superset
  /// of the overlay's nodes — joiner rows live past n) recomputed against
  /// the live topology at phase boundaries.
  Verifier(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
           VerificationConfig config,
           std::vector<std::uint32_t> ball_counts,
           std::vector<std::uint8_t> chain_len);

  /// This node's k cumulative ball counts (the state the warm tier caches).
  [[nodiscard]] std::span<const std::uint32_t> ball_row(
      graph::NodeId v) const {
    return {ball_counts_.data() + static_cast<std::size_t>(v) * k_, k_};
  }

  /// The acceptance decision for a token (see file comment). `legit_fresh`
  /// is the value an honest node in the sender's position would forward at
  /// this step (0 = nothing). Updates verification-traffic and injection
  /// counters.
  [[nodiscard]] bool accept(graph::NodeId sender, Color c, std::uint32_t step,
                            Color legit_fresh, bool sender_is_byz,
                            sim::Instrumentation& instr) const;

  /// |B_H(sender, min(step, k-1))| — the number of witnesses interrogated
  /// (traffic accounting).
  [[nodiscard]] std::uint64_t check_ball_size(graph::NodeId sender,
                                              std::uint32_t step) const;

  /// Longest Byzantine chain usable from `endpoint` under the configured
  /// model (capped at k+1).
  [[nodiscard]] std::uint32_t usable_chain(graph::NodeId endpoint) const;

  [[nodiscard]] const VerificationConfig& config() const { return config_; }

 private:
  const graph::Overlay* overlay_;
  const std::vector<bool>* byz_;
  VerificationConfig config_;
  std::uint32_t k_;
  // ball_counts_[v * k_ + (r-1)] = |B_H(v, r)| for r in 1..k (cumulative).
  std::vector<std::uint32_t> ball_counts_;
  // usable chain length per node (0 for honest nodes).
  std::vector<std::uint8_t> chain_len_;
};

/// Longest simple Byzantine-only path in H ending at `endpoint`, capped.
/// Exposed for tests and E9.
[[nodiscard]] std::uint32_t byz_path_ending_at(const graph::Graph& h_simple,
                                               const std::vector<bool>& byz_mask,
                                               graph::NodeId endpoint,
                                               std::uint32_t cap);

/// One node's cumulative ball-count row — the primary constructor's
/// per-node computation, exposed so the warm tier can refresh exactly the
/// dirty rows. Writes overlay.k() values into `out`.
void verifier_ball_row(const graph::Overlay& overlay, graph::NodeId v,
                       std::uint32_t* out);

/// One node's usable-chain length under `model` (0 for honest nodes).
[[nodiscard]] std::uint8_t verifier_chain_len(const graph::Overlay& overlay,
                                              const std::vector<bool>& byz_mask,
                                              graph::NodeId v,
                                              ChainModel model);

}  // namespace byz::proto
