#include "adversary/strategies.hpp"

#include <algorithm>
#include <stdexcept>

namespace byz::adv {

using graph::NodeId;

void Strategy::setup_lies(const sim::World&, proto::ClaimSet&) {}
void Strategy::plan_subphase(const sim::World&, const SubphaseRef&,
                             std::vector<proto::Injection>&) {}

namespace {

/// Byzantine nodes execute the protocol faithfully. The run must then match
/// the Byzantine-free analysis of §3.2 exactly (equivalence-tested).
class HonestStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "honest"; }
  [[nodiscard]] bool generates_honestly() const override { return true; }
};

/// The color attack of §1.2/§3.3: flood values far above the continuation
/// threshold. Step-1 injections are unauditable (generation claims) but
/// arrive too early to keep the termination predicate alive at large i;
/// final-step injections would keep every node running forever, which is
/// exactly what the L-edge verification blocks (Lemma 16).
class FakeColorStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "fake-color"; }
  void plan_subphase(const sim::World& world, const SubphaseRef& ref,
                     std::vector<proto::Injection>& out) override {
    for (const NodeId b : world.byz_nodes) {
      out.push_back({b, 1, huge_color(ref.phase)});
      if (ref.phase >= 2) {
        out.push_back({b, ref.phase, huge_color(ref.phase) + 1});
      }
    }
  }
};

/// Blackhole: Byzantine nodes neither generate nor relay.
class SuppressStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "suppress"; }
  [[nodiscard]] bool forwards_floods() const override { return false; }
};

/// The Figure-1 attack: each Byzantine node rewrites its claimed adjacency
/// to graft a fake child (a non-existent id) while suppressing one real
/// honest neighbor — the degree bookkeeping of Lemma 15's proof. The
/// suppressed honest edge is what the crash rule catches.
class TopologyLiarStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "topology-liar"; }
  void setup_lies(const sim::World& world, proto::ClaimSet& claims) override {
    const auto& g = world.overlay->g();
    const NodeId n = world.overlay->num_nodes();
    for (const NodeId b : world.byz_nodes) {
      const auto nbrs = g.neighbors(b);
      std::vector<NodeId> lie(nbrs.begin(), nbrs.end());
      // Suppress the first honest neighbor (pretend the edge to it is
      // absent) and graft a fabricated node id beyond the real id space.
      const auto it = std::find_if(lie.begin(), lie.end(), [&](NodeId w) {
        return !world.is_byz(w);
      });
      if (it != lie.end()) {
        *it = n + b;  // fabricated id; never a real channel
      }
      claims.set_claim(b, std::move(lie));
    }
  }
  [[nodiscard]] bool generates_honestly() const override { return true; }
};

/// Claims an empty adjacency list: every honest G-neighbor sees the
/// contradiction (it KNOWS the channel exists) and crashes. Maximizes
/// |Crashed|; E10 then checks Lemma 14 on the surviving Core.
class CrashMaximizerStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "crash-max"; }
  void setup_lies(const sim::World& world, proto::ClaimSet& claims) override {
    for (const NodeId b : world.byz_nodes) {
      claims.set_claim(b, {});
    }
  }
  [[nodiscard]] bool generates_honestly() const override { return true; }
};

/// Everything at once: crash-maximizing lies, no relaying, and fake colors
/// at both the start and the end of every subphase.
class AdaptiveStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "adaptive"; }
  void setup_lies(const sim::World& world, proto::ClaimSet& claims) override {
    for (const NodeId b : world.byz_nodes) {
      claims.set_claim(b, {});
    }
  }
  void plan_subphase(const sim::World& world, const SubphaseRef& ref,
                     std::vector<proto::Injection>& out) override {
    for (const NodeId b : world.byz_nodes) {
      out.push_back({b, 1, huge_color(ref.phase)});
      if (ref.phase >= 2) {
        // Probe every late step, not just the last: maximally stresses the
        // verifier.
        out.push_back({b, ref.phase, huge_color(ref.phase) + 1});
        if (ref.phase >= 3) {
          out.push_back({b, ref.phase - 1, huge_color(ref.phase) + 2});
        }
      }
    }
  }
  [[nodiscard]] bool forwards_floods() const override { return false; }
};

}  // namespace

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kHonest: return "honest";
    case StrategyKind::kFakeColor: return "fake-color";
    case StrategyKind::kSuppress: return "suppress";
    case StrategyKind::kTopologyLiar: return "topology-liar";
    case StrategyKind::kCrashMaximizer: return "crash-max";
    case StrategyKind::kAdaptive: return "adaptive";
  }
  return "unknown";
}

std::vector<StrategyKind> all_strategies() {
  return {StrategyKind::kHonest,         StrategyKind::kFakeColor,
          StrategyKind::kSuppress,       StrategyKind::kTopologyLiar,
          StrategyKind::kCrashMaximizer, StrategyKind::kAdaptive};
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kHonest: return std::make_unique<HonestStrategy>();
    case StrategyKind::kFakeColor: return std::make_unique<FakeColorStrategy>();
    case StrategyKind::kSuppress: return std::make_unique<SuppressStrategy>();
    case StrategyKind::kTopologyLiar:
      return std::make_unique<TopologyLiarStrategy>();
    case StrategyKind::kCrashMaximizer:
      return std::make_unique<CrashMaximizerStrategy>();
    case StrategyKind::kAdaptive: return std::make_unique<AdaptiveStrategy>();
  }
  throw std::invalid_argument("make_strategy: unknown kind");
}

void InjectionProbe::plan_subphase(const sim::World& world,
                                   const SubphaseRef& ref,
                                   std::vector<proto::Injection>& out) {
  if (ref.phase < step_) return;  // probe fires only once phases reach it
  for (const NodeId b : world.byz_nodes) {
    out.push_back({b, step_, value_});
  }
}

}  // namespace byz::adv
