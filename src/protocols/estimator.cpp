#include "protocols/estimator.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "protocols/brc/brc.hpp"

namespace byz::proto {

namespace {

/// The Algorithm 1/2 stack behind the Estimator interface. "algo2" is the
/// full paper protocol (verification + crash rule as configured); "algo1"
/// forces the ablation config (no Byzantine countermeasures) while keeping
/// the caller's schedule. Both ride every tier: run_counting_with already
/// threads lazy/warm/ε-warm/mid-run, and sim::Engine replays the same
/// semantics message by message.
class FastpathEstimator final : public Estimator {
 public:
  FastpathEstimator(std::string name, ProtocolConfig cfg, double eps)
      : name_(std::move(name)), cfg_(cfg), eps_(eps) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] EstimatorBound bound(
      const graph::Overlay& /*overlay*/) const override {
    // Theorem 1's "constant factor" band as the repo has always judged it
    // (summarize_accuracy defaults): the decided phase tracks the
    // d-dependent termination point diameter ≈ log n / log(d-1), so the
    // est/log2(n) ratio spans [0.05, 3.0] with the paper's slack. The ε
    // outlier budget covers crash-rule casualties and phase-cap stragglers.
    return {0.05, 3.0, eps_};
  }

  [[nodiscard]] bool supports(EstimatorTier /*tier*/) const override {
    return true;  // the reference stack implements every tier
  }

  [[nodiscard]] RunResult run(const graph::Overlay& overlay,
                              const std::vector<bool>& byz_mask,
                              adv::Strategy& strategy,
                              std::uint64_t color_seed,
                              const RunControls& controls) const override {
    return run_counting_with(overlay, byz_mask, strategy, cfg_, color_seed,
                             controls);
  }

 private:
  std::string name_;
  ProtocolConfig cfg_;
  double eps_;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, EstimatorFactory> factories;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

/// Built-ins are registered on first registry use (not static init — the
/// registry must work from any link order, including test binaries that
/// never reference this TU's globals).
void ensure_builtins_locked(Registry& r) {
  if (!r.factories.empty()) return;
  r.factories["algo2"] = [](const ProtocolConfig& cfg) {
    return std::make_unique<FastpathEstimator>("algo2", cfg, /*eps=*/0.15);
  };
  r.factories["algo1"] = [](const ProtocolConfig& cfg) {
    ProtocolConfig basic = cfg;
    basic.verification.enabled = false;
    basic.crash_rule = false;
    // Algorithm 1 has no Byzantine countermeasures: its declared bound only
    // claims the CLEAN setting, so its ε is the phase-cap straggler slack.
    return std::make_unique<FastpathEstimator>("algo1", basic, /*eps=*/0.10);
  };
  r.factories["brc"] = [](const ProtocolConfig& cfg) {
    return make_brc_estimator(cfg);
  };
}

}  // namespace

AgreementBound combined_agreement_bound(const EstimatorBound& a,
                                        const EstimatorBound& b) {
  AgreementBound out;
  out.lo = b.hi > 0.0 ? a.lo / b.hi : 0.0;
  out.hi = b.lo > 0.0 ? a.hi / b.lo : 0.0;
  return out;
}

void register_estimator(const std::string& name, EstimatorFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  ensure_builtins_locked(r);
  r.factories[name] = std::move(factory);
}

std::unique_ptr<Estimator> make_estimator(std::string_view name,
                                          const ProtocolConfig& cfg) {
  Registry& r = registry();
  EstimatorFactory factory;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    ensure_builtins_locked(r);
    const auto it = r.factories.find(std::string(name));
    if (it == r.factories.end()) {
      std::string known;
      for (const auto& [key, unused] : r.factories) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      throw std::invalid_argument("unknown estimator backend '" +
                                  std::string(name) + "' (known: " + known +
                                  ")");
    }
    factory = it->second;
  }
  return factory(cfg);
}

std::vector<std::string> estimator_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  ensure_builtins_locked(r);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [key, unused] : r.factories) names.push_back(key);
  return names;
}

bool estimator_registered(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  ensure_builtins_locked(r);
  return r.factories.find(std::string(name)) != r.factories.end();
}

}  // namespace byz::proto
