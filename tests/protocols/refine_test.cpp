#include "protocols/refine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/categories.hpp"
#include "protocols/color.hpp"
#include "protocols/fastpath.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 2048, std::uint32_t d = 8, std::uint64_t seed = 3) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(RefinedEstimate, ClosedForm) {
  // l_{i-2} = log2 d + (i-2) log2(d-1).
  EXPECT_NEAR(refined_log_estimate(5, 8), ell(8, 3), 1e-12);
  EXPECT_NEAR(refined_log_estimate(2, 8), ell(8, 0), 1e-12);
  EXPECT_NEAR(refined_log_estimate(1, 8), ell(8, 0), 1e-12);  // clamped
  EXPECT_EQ(refined_log_estimate(0, 8), 0.0);                 // no estimate
}

TEST(RefinedEstimate, MonotoneInPhase) {
  for (std::uint32_t i = 3; i < 20; ++i) {
    EXPECT_GT(refined_log_estimate(i + 1, 8), refined_log_estimate(i, 8));
  }
}

TEST(RefineRun, NearUnityRatioOnCleanRuns) {
  // The whole point: raw ratios sit near 1/log2(d-1) ≈ 0.36; refined
  // ratios must sit near 1 with small spread, across scales.
  for (const NodeId n : {1024u, 4096u, 16384u}) {
    const Overlay o = sample(n, 8, n);
    const auto run = run_basic_counting(o, 7);
    const std::vector<bool> byz(n, false);
    const auto refined = refine_run(run, 8);
    const auto acc = summarize_refined(refined, byz, n);
    EXPECT_EQ(acc.with_estimate, n);
    EXPECT_GT(acc.mean_ratio, 0.85) << "n=" << n;
    EXPECT_LT(acc.mean_ratio, 1.45) << "n=" << n;
    EXPECT_LT(acc.stddev_ratio, 0.25) << "n=" << n;
  }
}

TEST(RefineRun, SkipsCrashedAndUndecided) {
  RunResult run;
  run.status = {NodeStatus::kDecided, NodeStatus::kCrashed,
                NodeStatus::kUndecided, NodeStatus::kByzantine};
  run.estimate = {5, 0, 0, 0};
  const auto refined = refine_run(run, 8);
  EXPECT_GT(refined[0], 0.0);
  EXPECT_EQ(refined[1], 0.0);
  EXPECT_EQ(refined[2], 0.0);
  EXPECT_EQ(refined[3], 0.0);
}

TEST(Smoothing, CollapsesSpread) {
  const NodeId n = 4096;
  const Overlay o = sample(n, 8, 17);
  const auto run = run_basic_counting(o, 23);
  const std::vector<bool> byz(n, false);
  const auto refined = refine_run(run, 8);
  const auto before = summarize_refined(refined, byz, n);
  const auto smoothed = smooth_estimates(o, byz, refined, EstimateLie::kHonest);
  const auto after = summarize_refined(smoothed, byz, n);
  EXPECT_LE(after.stddev_ratio, before.stddev_ratio);
  EXPECT_NEAR(after.mean_ratio, before.mean_ratio, 0.2);
}

TEST(Smoothing, MedianShrugsOffInflatingByzantine) {
  const NodeId n = 2048;
  const Overlay o = sample(n, 8, 19);
  util::Xoshiro256 rng(21);
  const auto byz = graph::random_byzantine_mask(n, 45, rng);  // n^0.5
  const auto run = run_basic_counting(o, 29);
  const auto refined = refine_run(run, 8);
  const auto smoothed =
      smooth_estimates(o, byz, refined, EstimateLie::kInflate);
  const auto acc = summarize_refined(smoothed, byz, n);
  // Byzantine minorities cannot drag the neighborhood median to 10^6.
  EXPECT_LT(acc.max_ratio, 3.0);
  EXPECT_GT(acc.mean_ratio, 0.5);
}

TEST(Smoothing, DeflationEquallyHarmless) {
  const NodeId n = 2048;
  const Overlay o = sample(n, 8, 23);
  util::Xoshiro256 rng(25);
  const auto byz = graph::random_byzantine_mask(n, 45, rng);
  const auto run = run_basic_counting(o, 31);
  const auto refined = refine_run(run, 8);
  const auto smoothed =
      smooth_estimates(o, byz, refined, EstimateLie::kDeflate);
  const auto acc = summarize_refined(smoothed, byz, n);
  EXPECT_GT(acc.min_ratio, 0.3);
}

TEST(Smoothing, SizeMismatchThrows) {
  const Overlay o = sample(64, 6, 29);
  EXPECT_THROW((void)smooth_estimates(o, std::vector<bool>(3, false),
                                      std::vector<double>(64, 1.0),
                                      EstimateLie::kHonest),
               std::invalid_argument);
}

TEST(SummarizeRefined, IgnoresByzantineAndZeroes) {
  std::vector<double> est{10.0, 0.0, 12.0, 99.0};
  std::vector<bool> byz{false, false, false, true};
  const auto acc = summarize_refined(est, byz, 1024);  // log2 = 10
  EXPECT_EQ(acc.with_estimate, 2u);
  EXPECT_NEAR(acc.mean_ratio, (1.0 + 1.2) / 2.0, 1e-12);
  EXPECT_NEAR(acc.min_ratio, 1.0, 1e-12);
  EXPECT_NEAR(acc.max_ratio, 1.2, 1e-12);
}

}  // namespace
}  // namespace byz::proto
