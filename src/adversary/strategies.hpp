// Full-information adversary strategies. A Strategy drives every Byzantine
// node at the two points where the protocol can be attacked:
//   * setup (Algorithm 2 lines 1-2): adjacency-claim lies — including the
//     Figure-1 chain concoction — which the crash rule converts into
//     crash failures of honest neighbors rather than deception (Lemma 15);
//   * subphases: token injections (colors), filtered by the Verifier
//     acceptance rule at every honest receiver (Lemma 16);
// plus the standing choice of whether Byzantine nodes relay the flood at
// all (suppression).
//
// Strategies read the World — complete knowledge of the topology, every
// node's state, and every honest coin including FUTURE subphases — which is
// the paper's full-information model made concrete.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "protocols/flooding.hpp"
#include "protocols/neighborhood.hpp"
#include "sim/world.hpp"

namespace byz::adv {

/// Identifies one subphase for planning purposes.
struct SubphaseRef {
  std::uint32_t phase = 1;          ///< i (also the number of steps)
  std::uint32_t subphase = 1;       ///< j within the phase, 1-based
  std::uint32_t global_index = 0;   ///< index into the coin table
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Installs adjacency-claim lies into `claims` (default: truthful).
  virtual void setup_lies(const sim::World& world, proto::ClaimSet& claims);

  /// Emits token injections for the given subphase (default: none).
  virtual void plan_subphase(const sim::World& world, const SubphaseRef& ref,
                             std::vector<proto::Injection>& out);

  /// Do Byzantine nodes relay the honest flood? (false = blackhole)
  [[nodiscard]] virtual bool forwards_floods() const { return true; }

  /// Do Byzantine nodes draw and flood their honest colors at step 1?
  [[nodiscard]] virtual bool generates_honestly() const { return false; }
};

enum class StrategyKind : std::uint8_t {
  kHonest,          ///< Byzantine nodes follow the protocol (§3.1 baseline)
  kFakeColor,       ///< inject huge colors at step 1 and at the final step
  kSuppress,        ///< relay nothing, generate nothing (blackhole)
  kTopologyLiar,    ///< Figure-1 chain concoction at setup
  kCrashMaximizer,  ///< lies engineered to crash every honest G-neighbor
  kAdaptive,        ///< crash-maximize + fake colors + selective suppression
};

[[nodiscard]] const char* to_string(StrategyKind kind);
[[nodiscard]] std::vector<StrategyKind> all_strategies();
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(StrategyKind kind);

/// Parameterized probe used by E9: every subphase, each Byzantine node
/// injects `value` at step min(inject_step, phase). Measures the
/// acceptance/catch behavior of the Verifier as a function of the step.
class InjectionProbe final : public Strategy {
 public:
  InjectionProbe(std::uint32_t inject_step, proto::Color value)
      : step_(inject_step), value_(value) {}
  [[nodiscard]] std::string_view name() const override { return "probe"; }
  void plan_subphase(const sim::World& world, const SubphaseRef& ref,
                     std::vector<proto::Injection>& out) override;

 private:
  std::uint32_t step_;
  proto::Color value_;
};

/// A color far above anything n honest geometric draws reach w.h.p.
[[nodiscard]] constexpr proto::Color huge_color(std::uint32_t phase) noexcept {
  return 1'000'000u + phase;
}

}  // namespace byz::adv
