#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace byz::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(MixSeed, ChildStreamsDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix_seed(7, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(MixSeed, OrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowApproximatelyUniform) {
  Xoshiro256 rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, CoinIsFair) {
  Xoshiro256 rng(11);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads, 50000, 1500);
}

TEST(Xoshiro256, SplitStreamsIndependent) {
  Xoshiro256 parent(3);
  auto a = parent.split(0);
  auto b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SplitIsDeterministic) {
  Xoshiro256 p1(3);
  Xoshiro256 p2(3);
  auto a = p1.split(17);
  auto b = p2.split(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(GeometricColor, MinimumIsOne) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(geometric_color(rng), 1u);
  }
}

TEST(GeometricColor, MatchesGeometricLaw) {
  // Pr[c = r] = 2^-r (Observation 4.1).
  Xoshiro256 rng(2024);
  constexpr int kDraws = 200000;
  std::array<int, 8> counts{};
  for (int i = 0; i < kDraws; ++i) {
    const std::uint32_t c = geometric_color(rng);
    if (c <= counts.size()) ++counts[c - 1];
  }
  for (std::size_t r = 1; r <= 6; ++r) {
    const double expected = kDraws * std::pow(0.5, static_cast<double>(r));
    EXPECT_NEAR(counts[r - 1], expected, 5.0 * std::sqrt(expected) + 10.0)
        << "r=" << r;
  }
}

TEST(GeometricColor, MeanIsTwo) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += geometric_color(rng);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.02);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(8);
  for (const double lambda : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) sum += exponential(rng, lambda);
    EXPECT_NEAR(sum / kDraws, 1.0 / lambda, 0.05 / lambda);
  }
}

TEST(Exponential, AlwaysNonNegative) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(exponential(rng), 0.0);
}

}  // namespace
}  // namespace byz::util
