// E13 — The error parameter ε and the α_i schedule (Lemma 26): smaller ε
// buys more subphases per phase, which suppresses early wrong deciders at
// a round-cost premium. Also compares the two published α_i formulas
// (DESIGN.md §3.5).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const graph::NodeId n = 8192;
  const std::uint32_t d = 8;
  {
    util::Table table("E13a: eps sweep (clean Algorithm 1, n=8192, d=8)");
    table.columns({"eps", "policy", "early deciders", "early frac",
                   "rounds", "phases"});
    for (const auto policy :
         {proto::SchedulePolicy::kAppendix, proto::SchedulePolicy::kPseudocode}) {
      for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
        const auto overlay = make_overlay(n, d, 0xED);
        proto::ScheduleConfig sched;
        sched.epsilon = eps;
        sched.policy = policy;
        const auto run = proto::run_basic_counting(overlay, 0xCD, sched);
        // Early = decided more than 2 phases before the median.
        std::vector<std::uint32_t> est(run.estimate);
        std::sort(est.begin(), est.end());
        const std::uint32_t typical = est[est.size() / 2];
        std::uint64_t early = 0;
        for (const auto e : run.estimate) {
          if (e + 2 <= typical) ++early;
        }
        table.row()
            .cell(eps, 2)
            .cell(policy == proto::SchedulePolicy::kAppendix ? "appendix"
                                                             : "pseudocode")
            .cell(early)
            .cell(static_cast<double>(early) / n, 5)
            .cell(run.flood_rounds)
            .cell(run.phases_executed);
      }
    }
    table.note("Lemma 11/26: the wrong-decider fraction is bounded by eps; "
               "empirically it sits far below the bound, and shrinking eps "
               "still tightens it at a predictable round cost.");
    analysis::emit(table);
  }
  {
    util::Table table("E13b: alpha_i schedules side by side (eps=0.1, d=8)");
    table.columns({"phase i", "alpha appendix", "alpha pseudocode",
                   "subphases (xi)", "rounds in phase"});
    proto::ScheduleConfig a;
    proto::ScheduleConfig p;
    p.policy = proto::SchedulePolicy::kPseudocode;
    for (std::uint32_t i = 1; i <= 10; ++i) {
      table.row()
          .cell(i)
          .cell(proto::alpha_i(i, d, a))
          .cell(proto::alpha_i(i, d, p))
          .cell(proto::subphases_in_phase(i, d, a))
          .cell(proto::rounds_in_phase(i, d, a));
    }
    analysis::emit(table);
  }
  return 0;
}
