// E24 — the mid-run correctness anchor: with an EMPTY round schedule the
// mid-run-capable path (live hooks attached, zero events) must be BITWISE
// identical to the static path on the same snapshot — statuses, estimates,
// phase/round counts, and every instrumentation counter, under both
// membership policies. This is the contract that keeps the mid-run code
// honest: whatever machinery the live tier threads through the kernel, it
// costs nothing and changes nothing until an event actually fires.
// CI treats the emitted guard like E20's: metrics.guard.identical must be
// true, and the manifest participates in the --jobs determinism cmp.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

bool runs_identical(const proto::RunResult& a, const proto::RunResult& b) {
  if (a.status != b.status || a.estimate != b.estimate) return false;
  if (a.phases_executed != b.phases_executed ||
      a.flood_rounds != b.flood_rounds ||
      a.subphases_scheduled != b.subphases_scheduled ||
      a.subphases_executed != b.subphases_executed) {
    return false;
  }
  const auto& ia = a.instr;
  const auto& ib = b.instr;
  return ia.setup_messages == ib.setup_messages &&
         ia.setup_bytes == ib.setup_bytes &&
         ia.token_messages == ib.token_messages &&
         ia.token_bytes == ib.token_bytes &&
         ia.verify_messages == ib.verify_messages &&
         ia.verify_bytes == ib.verify_bytes &&
         ia.flood_rounds == ib.flood_rounds &&
         ia.injections_attempted == ib.injections_attempted &&
         ia.injections_accepted == ib.injections_accepted &&
         ia.injections_caught == ib.injections_caught &&
         ia.max_node_round_sends == ib.max_node_round_sends &&
         ia.crashes == ib.crashes;
}

/// Per-trial result: outcome parity plus the audit-only digest facts for
/// the DIGEST_e24.json sidecar (zeros when --audit is off).
struct TrialAudit {
  std::uint32_t ok = 0;
  std::uint64_t digest = 0;
  std::uint32_t trail_divergences = 0;
};

void run_e24(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(9, ctx.max_exp(11));
  const auto t = ctx.trials(4);
  const adv::StrategyKind strategies[] = {adv::StrategyKind::kHonest,
                                          adv::StrategyKind::kFakeColor,
                                          adv::StrategyKind::kAdaptive};
  const proto::MembershipPolicy policies[] = {
      proto::MembershipPolicy::kTreatAsSilent,
      proto::MembershipPolicy::kReadmitNextPhase};

  util::Table table("E24: zero-mid-run-churn parity with the static path (" +
                    std::to_string(t) + " trials per cell, d=6)");
  table.columns({"n0", "strategy", "runs compared", "identical"});
  std::uint64_t total = 0, identical = 0;
  std::uint64_t digest_xor = 0, trail_divergences = 0;
  for (const auto n0 : sizes) {
    for (const auto strategy : strategies) {
      const std::uint64_t base_seed = 0xE24 + n0;
      const auto oks = ctx.scheduler().map(t, [&](std::uint64_t i) {
        const auto seed = bench_core::TrialScheduler::trial_seed(base_seed, i);
        dynamics::MutableOverlay overlay(n0, 6, 0, seed);
        util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
        std::vector<bool> byz = graph::random_byzantine_mask(
            n0, sim::derive_byz_count(n0, 0.7), place_rng);

        const auto snap = overlay.snapshot();
        std::vector<bool> dense_byz(n0, false);
        for (graph::NodeId v = 0; v < n0; ++v) {
          dense_byz[v] = byz[snap.dense_to_stable[v]];
        }
        proto::ProtocolConfig cfg;
        auto cold_strategy = adv::make_strategy(strategy);
        // --audit sharpens this anchor from outcome parity to TRAIL
        // parity: the static run and each empty-schedule mid-run record
        // hierarchical digests, which must match entry for entry.
        obs::RunDigester static_dig;
        proto::RunControls static_rc;
        static_rc.digester = ctx.audit() ? &static_dig : nullptr;
        const auto expect =
            proto::run_counting_with(snap.overlay, dense_byz, *cold_strategy,
                                     cfg, seed, static_rc);

        TrialAudit r;
        for (const auto policy : policies) {
          dynamics::MidRunConfig mid_cfg;
          mid_cfg.policy = policy;
          util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));
          auto live_strategy = adv::make_strategy(strategy);
          obs::RunDigester live_dig;
          const auto got = dynamics::run_counting_midrun(
              overlay, byz, *live_strategy, cfg, seed,
              dynamics::ChurnSchedule{}, mid_cfg, adv::ChurnAdversary::kNone,
              churn_rng, nullptr, ctx.audit() ? &live_dig : nullptr);
          if (runs_identical(got.run, expect)) ++r.ok;
          if (ctx.audit()) {
            const auto div = obs::first_divergence(static_dig.trail(),
                                                   live_dig.trail());
            if (div.diverged()) {
              ++r.trail_divergences;
              if (!ctx.digest_out().empty()) {
                obs::ForensicsInfo info;
                info.scenario = "e24";
                info.seed = seed;
                info.flags = "--audit policy=" +
                             std::string(proto::to_string(policy));
                info.detail = "empty-schedule mid-run trail diverged from "
                              "the static run";
                info.tier_a = "static";
                info.tier_b = "midrun-empty";
                obs::write_forensics_file(
                    ctx.digest_out() + "/forensics_e24_" +
                        std::to_string(seed) + ".json",
                    obs::forensics_json(info, static_dig.trail(),
                                        live_dig.trail(), nullptr, nullptr));
              }
            }
          }
        }
        r.digest = static_dig.trail().run_digest;
        return r;
      });
      std::uint64_t cell_ok = 0;
      for (const auto& r : oks) {
        cell_ok += r.ok;
        digest_xor ^= r.digest;
        trail_divergences += r.trail_divergences;
      }
      const std::uint64_t cell_total = static_cast<std::uint64_t>(t) * 2;
      total += cell_total;
      identical += cell_ok;
      table.row()
          .cell(std::uint64_t{n0})
          .cell(adv::to_string(strategy))
          .cell(cell_total)
          .cell(cell_ok == cell_total ? "yes" : "NO");
    }
  }
  table.note("Each comparison pits run_counting_midrun (live hooks, empty "
             "schedule, both membership policies) against the plain static "
             "run on the identical snapshot and checks statuses, estimates, "
             "round/phase counts, and all twelve instrumentation counters. "
             "The unit suite (tests/sim/midrun_equivalence_test.cpp) "
             "enforces the same identity under ctest; CI asserts the guard "
             "below and diffs this manifest across --jobs values.");
  ctx.emit(table);

  Json guard = Json::object();
  guard["identical"] = (identical == total);
  guard["compared"] = total;
  ctx.metric("guard", std::move(guard));
  if (ctx.audit()) {
    write_digest_sidecar(ctx, "e24", digest_xor, total, trail_divergences);
  }
}

}  // namespace

BYZBENCH_REGISTER(e24) {
  ScenarioSpec spec;
  spec.id = "e24";
  spec.title = "Mid-run machinery: bitwise parity at zero mid-run churn";
  spec.claim = "With an empty churn schedule the mid-run-capable path is "
               "bitwise identical to the static path — decisions and every "
               "message counter — under both membership policies";
  spec.grid = {{"strategy", {"honest", "fake-color", "adaptive"}},
               {"policy", {"treat-as-silent", "readmit-next-phase"}},
               pow2_axis(9, 11)};
  spec.base_trials = 4;
  spec.metrics = {"guard.identical"};
  spec.run = run_e24;
  return spec;
}
