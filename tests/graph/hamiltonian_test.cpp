#include "graph/hamiltonian.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

TEST(Hamiltonian, ExactlyDRegular) {
  util::Xoshiro256 rng(1);
  for (const std::uint32_t d : {4u, 6u, 8u, 12u}) {
    const Graph h = build_hamiltonian_graph(256, d, rng);
    EXPECT_TRUE(h.is_regular(d)) << "d=" << d;
    EXPECT_EQ(h.num_edges(), 256u * d / 2);
  }
}

TEST(Hamiltonian, RejectsBadParameters) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)build_hamiltonian_graph(2, 4, rng), std::invalid_argument);
  EXPECT_THROW((void)build_hamiltonian_graph(16, 5, rng), std::invalid_argument);
  EXPECT_THROW((void)build_hamiltonian_graph(16, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)build_hamiltonian_graph(16, 0, rng), std::invalid_argument);
}

TEST(Hamiltonian, ConnectedAlways) {
  // A single Hamiltonian cycle already connects the graph, so every sample
  // is connected with certainty — not just w.h.p.
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph h = build_hamiltonian_graph(128, 4, rng);
    EXPECT_TRUE(is_connected(h));
  }
}

TEST(Hamiltonian, DeterministicGivenSeed) {
  util::Xoshiro256 a(99);
  util::Xoshiro256 b(99);
  const Graph g1 = build_hamiltonian_graph(64, 6, a);
  const Graph g2 = build_hamiltonian_graph(64, 6, b);
  for (NodeId v = 0; v < 64; ++v) {
    const auto n1 = g1.neighbors(v);
    const auto n2 = g2.neighbors(v);
    ASSERT_EQ(n1.size(), n2.size());
    for (std::size_t i = 0; i < n1.size(); ++i) EXPECT_EQ(n1[i], n2[i]);
  }
}

TEST(Hamiltonian, DifferentSeedsDiffer) {
  util::Xoshiro256 a(1);
  util::Xoshiro256 b(2);
  const Graph g1 = build_hamiltonian_graph(64, 6, a);
  const Graph g2 = build_hamiltonian_graph(64, 6, b);
  bool any_diff = false;
  for (NodeId v = 0; v < 64 && !any_diff; ++v) {
    const auto n1 = g1.neighbors(v);
    const auto n2 = g2.neighbors(v);
    if (!std::equal(n1.begin(), n1.end(), n2.begin(), n2.end())) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Hamiltonian, NoSelfLoops) {
  util::Xoshiro256 rng(3);
  const Graph h = build_hamiltonian_graph(64, 8, rng);
  for (NodeId v = 0; v < 64; ++v) {
    for (const NodeId w : h.neighbors(v)) EXPECT_NE(w, v);
  }
}

TEST(Hamiltonian, SimplifyDropsParallels) {
  util::Xoshiro256 rng(4);
  // Tiny n + large d forces parallel edges with overwhelming probability.
  const Graph h = build_hamiltonian_graph(8, 8, rng);
  const Graph s = simplify(h);
  EXPECT_LE(s.num_edges(), h.num_edges());
  for (NodeId v = 0; v < s.num_nodes(); ++v) {
    const auto nbrs = s.neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);  // strictly increasing = no parallels
    }
  }
}

TEST(Hamiltonian, SimplifyPreservesReachability) {
  util::Xoshiro256 rng(5);
  const Graph h = build_hamiltonian_graph(100, 6, rng);
  EXPECT_TRUE(is_connected(simplify(h)));
}

}  // namespace
}  // namespace byz::graph
