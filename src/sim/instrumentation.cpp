#include "sim/instrumentation.hpp"

#include <algorithm>

namespace byz::sim {

void Instrumentation::merge(const Instrumentation& other) noexcept {
  setup_messages += other.setup_messages;
  setup_bytes += other.setup_bytes;
  token_messages += other.token_messages;
  token_bytes += other.token_bytes;
  verify_messages += other.verify_messages;
  verify_bytes += other.verify_bytes;
  flood_rounds += other.flood_rounds;
  injections_attempted += other.injections_attempted;
  injections_accepted += other.injections_accepted;
  injections_caught += other.injections_caught;
  max_node_round_sends = std::max(max_node_round_sends, other.max_node_round_sends);
  crashes += other.crashes;
}

}  // namespace byz::sim
