#include "baselines/support_estimation.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace byz::base {

using graph::NodeId;

GeometricSupportResult run_geometric_support(const graph::Graph& h,
                                             const std::vector<bool>& byz_mask,
                                             FloodAttack attack,
                                             std::uint32_t max_rounds,
                                             std::uint64_t seed) {
  const NodeId n = h.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("geometric_support: mask size mismatch");
  }
  GeometricSupportResult result;
  result.estimate.assign(n, 0);

  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> value(n);
  for (NodeId v = 0; v < n; ++v) {
    auto node_rng = rng.split(v);
    value[v] = util::geometric_color(node_rng);
    if (byz_mask[v]) {
      switch (attack) {
        case FloodAttack::kNone: break;
        case FloodAttack::kInflate: value[v] = 1u << 30; break;
        case FloodAttack::kSuppress: value[v] = 0; break;
      }
    }
  }
  // Forward-once max flooding until quiescent.
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    result.estimate[v] = value[v];
    if (value[v] > 0) frontier.push_back(v);
  }
  std::vector<NodeId> next;
  std::uint32_t round = 0;
  while (!frontier.empty() && round < max_rounds) {
    ++round;
    next.clear();
    for (const NodeId u : frontier) {
      if (byz_mask[u] && attack == FloodAttack::kSuppress) continue;
      const auto nbrs = h.neighbors(u);
      result.messages += nbrs.size();
      for (const NodeId v : nbrs) {
        if (result.estimate[u] > result.estimate[v]) {
          result.estimate[v] = result.estimate[u];
          next.push_back(v);
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }
  result.rounds = round;
  return result;
}

ExponentialSupportResult run_exponential_support(
    const graph::Graph& h, const std::vector<bool>& byz_mask,
    FloodAttack attack, std::uint32_t s, std::uint32_t max_rounds,
    std::uint64_t seed) {
  const NodeId n = h.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("exponential_support: mask size mismatch");
  }
  if (s == 0) throw std::invalid_argument("exponential_support: s >= 1");
  ExponentialSupportResult result;

  // mins[v * s + j]: node v's current coordinate-j minimum.
  util::Xoshiro256 rng(seed);
  std::vector<double> mins(static_cast<std::size_t>(n) * s);
  for (NodeId v = 0; v < n; ++v) {
    auto node_rng = rng.split(v);
    for (std::uint32_t j = 0; j < s; ++j) {
      double x = util::exponential(node_rng);
      if (byz_mask[v] && attack == FloodAttack::kInflate) x = 1e-12;
      if (byz_mask[v] && attack == FloodAttack::kSuppress) x = 1e300;
      mins[static_cast<std::size_t>(v) * s + j] = x;
    }
  }
  // Synchronous relaxation until no coordinate improves anywhere.
  std::uint32_t round = 0;
  bool changed = true;
  std::vector<double> next(mins);
  while (changed && round < max_rounds) {
    ++round;
    changed = false;
    for (NodeId v = 0; v < n; ++v) {
      if (byz_mask[v] && attack == FloodAttack::kSuppress) continue;
      const auto nbrs = h.neighbors(v);
      result.messages += nbrs.size();
      for (const NodeId w : nbrs) {
        for (std::uint32_t j = 0; j < s; ++j) {
          const double mv = mins[static_cast<std::size_t>(v) * s + j];
          auto& tw = next[static_cast<std::size_t>(w) * s + j];
          if (mv < tw) {
            tw = mv;
            changed = true;
          }
        }
      }
    }
    mins = next;
  }
  result.rounds = round;
  result.estimate.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double sum = 0.0;
    for (std::uint32_t j = 0; j < s; ++j) {
      sum += mins[static_cast<std::size_t>(v) * s + j];
    }
    result.estimate[v] = sum > 0 ? static_cast<double>(s) / sum : 0.0;
  }
  return result;
}

}  // namespace byz::base
