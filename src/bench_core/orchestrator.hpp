// Drives a byzbench run: resolves the filter against the registry, runs
// each scenario under a shared scheduler + overlay cache, times it, and
// writes BENCH_<exp>.json manifests for the perf-trajectory tracking.
#pragma once

#include <string>
#include <vector>

#include "bench_core/context.hpp"
#include "bench_core/registry.hpp"

namespace byz::bench_core {

struct ScenarioOutcome {
  std::string id;
  bool ok = false;
  double wall_seconds = 0.0;
  std::string error;      ///< exception text when !ok
  std::string json_path;  ///< written manifest ("" when --json-out unset)
};

/// Runs every scenario in `registry` matching opts.filter. Returns one
/// outcome per scenario, in execution (id) order.
[[nodiscard]] std::vector<ScenarioOutcome> run_scenarios(
    const Registry& registry, const RunOptions& opts);

/// Renders the --list table (id, title, trials, grid, metrics).
[[nodiscard]] std::string list_scenarios(const Registry& registry);

/// Renders the end-of-run summary table.
[[nodiscard]] std::string summarize_outcomes(
    const std::vector<ScenarioOutcome>& outcomes);

}  // namespace byz::bench_core
