// E10 — Lemma 14: after the crash-maximizing attack, the surviving honest
// nodes' largest component (the Core) still contains n - o(n) nodes and
// remains an expander.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e10(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));
  const double deltas[] = {0.6, 0.7};

  struct Point {
    double delta;
    graph::NodeId n;
  };
  std::vector<Point> grid;
  for (const double delta : deltas) {
    for (const auto n : sizes) grid.push_back({delta, n});
  }

  struct Cell {
    std::uint64_t crashed_count = 0;
    graph::NodeId core_n = 0;
    double mu2 = 0.0;
    double sweep = 0.0;
  };
  const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
    const auto [delta, n] = grid[i];
    const auto overlay = ctx.overlay(n, 6, 0xEA + n);
    const auto byz = place_byz(n, delta, 0xEA + n);
    const auto strat = adv::make_strategy(adv::StrategyKind::kCrashMaximizer);
    const auto world = sim::World::make(*overlay, byz, 0xCA);
    proto::ClaimSet claims(*overlay);
    strat->setup_lies(world, claims);
    const auto crashed = proto::compute_crash_set(claims, byz, nullptr);

    // Uncrashed honest nodes; Core = largest component they induce in H.
    std::vector<bool> keep(n, false);
    Cell cell;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (byz[v]) continue;
      if (crashed[v]) {
        ++cell.crashed_count;
      } else {
        keep[v] = true;
      }
    }
    const auto core_mask =
        graph::largest_component_mask(overlay->h_simple(), keep);
    const auto core = graph::induced_subgraph(overlay->h_simple(), core_mask);
    cell.core_n = core.num_nodes();
    if (cell.core_n > 2) {
      const auto spec = graph::second_eigenvalue(core, 1500, 1e-9, 0xEA);
      cell.mu2 = spec.mu2;
      cell.sweep = graph::sweep_cut_expansion(core, spec.vector2);
    }
    return cell;
  });

  util::Table table("E10: the Core after crash-maximizing lies (d=6)");
  table.columns({"n", "delta", "B", "crashed", "crashed %", "|Core|",
                 "core frac", "core lambda2/avgdeg", "core sweep-cut h"});
  std::vector<double> core_frac;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [delta, n] = grid[i];
    const auto& cell = cells[i];
    table.row()
        .cell(std::uint64_t{n})
        .cell(delta, 1)
        .cell(std::uint64_t{sim::derive_byz_count(n, delta)})
        .cell(cell.crashed_count)
        .cell(100.0 * static_cast<double>(cell.crashed_count) / n, 2)
        .cell(std::uint64_t{cell.core_n})
        .cell(static_cast<double>(cell.core_n) / n, 4)
        .cell(cell.mu2, 3)
        .cell(cell.sweep, 3);
    core_frac.push_back(static_cast<double>(cell.core_n) / n);
  }
  table.note("Lemma 14: |Core| >= n - o(n) and Core keeps constant edge "
             "expansion. Crashed nodes are exactly the honest G-neighbors "
             "of Byzantine nodes, so crashed% shrinks like n^{-delta} * "
             "(d-1)^{k+1} as n grows.");
  ctx.emit(table);
  ctx.metric("core_frac", bench_core::quantiles_json(core_frac));
}

}  // namespace

BYZBENCH_REGISTER(e10) {
  ScenarioSpec spec;
  spec.id = "e10";
  spec.title = "the Core after crash-maximizing lies";
  spec.claim = "Lemma 14: |Core| = n - o(n) and stays an expander";
  spec.grid = {{"delta", {"0.6", "0.7"}}, pow2_axis(10, 14)};
  spec.base_trials = 1;
  spec.metrics = {"core_frac"};
  spec.run = run_e10;
  return spec;
}
