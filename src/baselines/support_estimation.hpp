// The non-Byzantine size estimators the paper builds on and contrasts with
// (§1.2): max-flooding a geometric draw, and classical support estimation
// with exponential variates [Augustine et al.]. Both are exact enough in a
// clean network and collapse under a single Byzantine node — experiment E4
// reproduces that motivating contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::base {

/// How Byzantine nodes attack the flooding estimators.
enum class FloodAttack : std::uint8_t {
  kNone,      ///< behave honestly
  kInflate,   ///< inject an absurd maximum (geometric) / tiny minimum (exp)
  kSuppress,  ///< refuse to forward anything (blackhole)
};

struct GeometricSupportResult {
  std::vector<std::uint32_t> estimate;  ///< per-node max X seen = est. log2 n
  std::uint32_t rounds = 0;             ///< rounds until quiescence
  std::uint64_t messages = 0;
};

/// §1.2's protocol: every node flips a fair coin until heads (X_u), floods
/// the maximum with the forward-once rule until quiescent (or `max_rounds`).
/// Honest-only: max ∈ [log n/2, 2 log n] w.h.p. A single kInflate Byzantine
/// node destroys every node's estimate.
[[nodiscard]] GeometricSupportResult run_geometric_support(
    const graph::Graph& h, const std::vector<bool>& byz_mask,
    FloodAttack attack, std::uint32_t max_rounds, std::uint64_t seed);

struct ExponentialSupportResult {
  std::vector<double> estimate;  ///< per-node n-hat
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Support estimation: each node draws s Exp(1) variates; coordinate-wise
/// minima are flooded; n-hat = s / sum_j min_j. kInflate Byzantine nodes
/// inject near-zero minima, inflating n-hat unboundedly.
[[nodiscard]] ExponentialSupportResult run_exponential_support(
    const graph::Graph& h, const std::vector<bool>& byz_mask,
    FloodAttack attack, std::uint32_t s, std::uint32_t max_rounds,
    std::uint64_t seed);

}  // namespace byz::base
