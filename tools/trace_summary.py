#!/usr/bin/env python3
"""Validate and summarize a byzcount Chrome trace-event export.

Usage: trace_summary.py TRACE.json [--json]

Validates the document shape produced by `byzbench --trace-out` /
`size_service --trace-out` (src/obs/trace.hpp), then prints two tables:

  * per-span aggregate — count, total and mean wall time per span name;
  * per-phase cost — rounds, subphases, and token counts rolled up to the
    protocol phase. Flood kernel spans do not carry a phase themselves
    (the cold path has no populated RoundClock), so attribution is by
    time-interval containment: a flood.round belongs to the count.phase /
    engine.phase span on the same thread whose [ts, ts+dur] encloses it.

Exits nonzero on malformed input (unreadable file, not a trace-event
document, events missing required keys) AND on dropped spans — a nonzero
otherData.dropped count means the per-thread buffers saturated and the
per-phase attribution below is missing tails — so CI can gate on it.
"""

import argparse
import collections
import json
import sys

PHASE_SPANS = ("count.phase", "engine.phase")
ROUND_SPANS = ("flood.round", "engine.round")
SUBPHASE_SPANS = ("count.subphase", "engine.subphase")


class TraceError(Exception):
    pass


def load_events(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        raise TraceError(f"{path}: {err}") from err
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise TraceError(f"{path}: not a Chrome trace-event document "
                         "(no traceEvents key)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise TraceError(f"{path}: traceEvents is not a list")
    spans = []
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event or \
                "name" not in event:
            raise TraceError(f"{path}: event #{i} lacks ph/name")
        if event["ph"] == "M":
            continue  # process/thread metadata
        if event["ph"] != "X":
            raise TraceError(f"{path}: event #{i} has unexpected "
                             f"ph={event['ph']!r} (exporter only emits X/M)")
        for key in ("ts", "dur", "tid"):
            if not isinstance(event.get(key), (int, float)):
                raise TraceError(f"{path}: event #{i} ({event['name']}) "
                                 f"lacks numeric {key}")
        spans.append(event)
    dropped = doc.get("otherData", {}).get("dropped", 0)
    return spans, dropped


def per_name_table(spans):
    agg = collections.defaultdict(lambda: [0, 0.0])
    for span in spans:
        entry = agg[span["name"]]
        entry[0] += 1
        entry[1] += span["dur"]
    rows = []
    for name in sorted(agg, key=lambda n: -agg[n][1]):
        count, total = agg[name]
        rows.append({"span": name, "count": count,
                     "total_us": round(total, 1),
                     "mean_us": round(total / count, 2)})
    return rows


def enclosing_phase(span, phases_by_tid):
    """The innermost phase span on `span`'s thread that contains it."""
    start, end = span["ts"], span["ts"] + span["dur"]
    best = None
    for phase in phases_by_tid.get(span["tid"], ()):
        if phase["ts"] <= start and end <= phase["ts"] + phase["dur"]:
            if best is None or phase["dur"] <= best["dur"]:
                best = phase
    return best


def per_phase_table(spans):
    phases_by_tid = collections.defaultdict(list)
    for span in spans:
        if span["name"] in PHASE_SPANS:
            phases_by_tid[span["tid"]].append(span)

    stats = collections.defaultdict(
        lambda: {"rounds": 0, "subphases": 0, "tokens": 0, "span_us": 0.0,
                 "runs": 0})
    for span in spans:
        if span["name"] in PHASE_SPANS:
            phase = span.get("args", {}).get("phase")
            if phase is None:
                continue
            entry = stats[int(phase)]
            entry["runs"] += 1
            entry["span_us"] += span["dur"]
        elif span["name"] in ROUND_SPANS or span["name"] in SUBPHASE_SPANS:
            owner = enclosing_phase(span, phases_by_tid)
            if owner is None:
                continue
            phase = owner.get("args", {}).get("phase")
            if phase is None:
                continue
            entry = stats[int(phase)]
            if span["name"] in ROUND_SPANS:
                entry["rounds"] += 1
                entry["tokens"] += int(span.get("args", {}).get("tokens", 0))
            else:
                entry["subphases"] += 1
    rows = []
    for phase in sorted(stats):
        entry = stats[phase]
        rows.append({"phase": phase, **{k: (round(v, 1) if k == "span_us"
                                            else v)
                                        for k, v in entry.items()}})
    return rows


def print_table(title, rows):
    print(f"== {title} ==")
    if not rows:
        print("  (empty)")
        return
    cols = list(rows[0])
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    print("  " + "  ".join(c.rjust(widths[c]) for c in cols))
    for row in rows:
        print("  " + "  ".join(str(row[c]).rjust(widths[c]) for c in cols))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of tables")
    args = parser.parse_args(argv[1:])

    try:
        spans, dropped = load_events(args.trace)
    except TraceError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 1

    names = per_name_table(spans)
    phases = per_phase_table(spans)
    if args.json:
        json.dump({"spans": names, "phases": phases, "dropped": dropped},
                  sys.stdout, indent=2)
        print()
    else:
        print(f"{args.trace}: {len(spans)} spans, {dropped} dropped")
        print_table("per-span cost", names)
        print_table("per-phase cost", phases)
    if dropped:
        print(f"ERROR: {args.trace}: {dropped} spans were dropped by the "
              "per-thread buffer caps — the summary above is incomplete "
              "(raise the exporter's buffer cap or trace a smaller run)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
