// Unit coverage of the mid-run churn building blocks: schedule derivation,
// LiveOverlayFeed bookkeeping (run-id space, mask growth, stats, flush),
// and run_churn's mid-run mode (trace invariants, config validation, the
// ε-warm budget accounting).
#include <gtest/gtest.h>

#include <algorithm>

#include "dynamics/epoch_driver.hpp"
#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

TEST(ChurnScheduleTest, DerivationIsDeterministicSortedAndComplete) {
  dynamics::ChurnEpoch epoch;
  epoch.joins = 9;
  epoch.sybil_joins = 3;
  epoch.leaves = 7;
  const auto a = dynamics::derive_schedule(epoch, 120, 42);
  const auto b = dynamics::derive_schedule(epoch, 120, 42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.joins(), epoch.joins);
  EXPECT_EQ(a.sybil_joins(), epoch.sybil_joins);
  EXPECT_EQ(a.leaves(), epoch.leaves);
  EXPECT_TRUE(std::is_sorted(
      a.events.begin(), a.events.end(),
      [](const auto& x, const auto& y) { return x.round < y.round; }));
  for (const auto& e : a.events) EXPECT_LT(e.round, 120u);
  const auto c = dynamics::derive_schedule(epoch, 120, 43);
  EXPECT_NE(a.events, c.events) << "different seeds must move the events";
}

TEST(ChurnScheduleTest, HorizonGrowsWithNetworkSize) {
  proto::ScheduleConfig sched;
  const auto small = dynamics::expected_horizon_rounds(256, 6, sched);
  const auto large = dynamics::expected_horizon_rounds(4096, 6, sched);
  EXPECT_GT(small, 0u);
  EXPECT_GT(large, small);
}

TEST(LiveOverlayFeedTest, GrowsStableMaskAndEndsAtTraceMembership) {
  constexpr NodeId kN0 = 192;
  dynamics::MutableOverlay overlay(kN0, 6, 0, 5);
  util::Xoshiro256 place_rng(17);
  std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.6), place_rng);

  dynamics::ChurnEpoch epoch;
  epoch.joins = 10;
  epoch.sybil_joins = 2;
  epoch.leaves = 8;
  proto::ProtocolConfig cfg;
  const auto schedule = dynamics::derive_schedule(
      epoch, dynamics::expected_horizon_rounds(kN0, 6, cfg.schedule), 9);

  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
  util::Xoshiro256 churn_rng(23);
  auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto out = dynamics::run_counting_midrun(
      overlay, byz, *strategy, cfg, 77, schedule, mid_cfg,
      adv::ChurnAdversary::kNone, churn_rng);

  // Every scheduled event lands, mid-run or flushed.
  EXPECT_EQ(out.stats.events_applied + out.stats.events_flushed,
            schedule.events.size());
  EXPECT_EQ(out.stats.joins, 12u);
  EXPECT_EQ(out.stats.leaves, 8u);
  EXPECT_EQ(overlay.num_alive(), kN0 + 12 - 8);
  EXPECT_EQ(byz.size(), overlay.id_bound());
  // Run-id space: snapshot members + every scheduled joiner, all mapped
  // to stable ids after the flush.
  ASSERT_EQ(out.run.status.size(), kN0 + 12u);
  ASSERT_EQ(out.run_to_stable.size(), kN0 + 12u);
  for (const NodeId s : out.run_to_stable) {
    EXPECT_NE(s, graph::kInvalidNode);
  }
  // Sybil joiner slots carry the Byzantine flag through to the stable mask.
  std::uint32_t sybils = 0;
  for (NodeId v = kN0; v < out.run_byz.size(); ++v) {
    if (out.run_byz[v]) {
      ++sybils;
      EXPECT_TRUE(byz[out.run_to_stable[v]]);
    }
  }
  EXPECT_EQ(sybils, 2u);
  // Departed members are marked and carry no estimate.
  std::uint32_t departed = 0;
  for (std::size_t v = 0; v < out.run.status.size(); ++v) {
    if (out.run.status[v] == proto::NodeStatus::kDeparted) {
      ++departed;
      EXPECT_EQ(out.run.estimate[v], 0u);
      EXPECT_FALSE(overlay.is_alive(out.run_to_stable[v]));
    }
  }
  EXPECT_GT(departed, 0u);
}

TEST(MidRunChurnModeTest, ReplaysTraceAndReportsMidRunStats) {
  for (const auto policy : {proto::MembershipPolicy::kTreatAsSilent,
                            proto::MembershipPolicy::kReadmitNextPhase}) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = 192;
    cfg.trace.epochs = 4;
    cfg.trace.arrival_rate = 8.0;
    cfg.trace.departure_rate = 8.0;
    cfg.trace.min_n = 96;
    cfg.trace.seed = 3;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.seed = 3;
    cfg.mid_run.enabled = true;
    cfg.mid_run.policy = policy;

    const auto result = dynamics::run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    std::uint64_t events = 0;
    for (std::uint32_t e = 0; e < result.epochs.size(); ++e) {
      const auto& ep = result.epochs[e];
      EXPECT_EQ(ep.n_true, result.trace.epochs[e].n_after);
      EXPECT_TRUE(ep.estimated);
      EXPECT_GT(ep.messages, 0u);
      events += ep.midrun_events_applied + ep.midrun_events_flushed;
      if (policy == proto::MembershipPolicy::kTreatAsSilent) {
        EXPECT_EQ(ep.midrun_admitted, 0u);
      }
    }
    EXPECT_GT(events, 0u);
  }
}

TEST(MidRunChurnModeTest, RejectsOnlyTheGenuinelyUnsupportedCombo) {
  // The incremental/warm/adaptive tiers now COMPOSE with mid-run churn;
  // the single rejected combination is the ε cold shadow under
  // frontier-directed leaves (the shadow would flood a different overlay
  // evolution, voiding the divergence accounting).
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 96;
  cfg.trace.epochs = 1;
  cfg.trace.seed = 5;
  cfg.seed = 5;
  cfg.d = 6;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.adaptive = true;
  EXPECT_NO_THROW((void)dynamics::run_churn(cfg));

  cfg.incremental.eps_warm = true;
  cfg.incremental.verify_warm = true;
  cfg.mid_run.schedule = adv::MidRunScheduleStrategy::kFrontierLeaves;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
  // Either half of the conflict alone is fine.
  cfg.mid_run.schedule = adv::MidRunScheduleStrategy::kUniform;
  EXPECT_NO_THROW((void)dynamics::run_churn(cfg));
  cfg.mid_run.schedule = adv::MidRunScheduleStrategy::kFrontierLeaves;
  cfg.incremental.verify_warm = false;
  EXPECT_NO_THROW((void)dynamics::run_churn(cfg));
}

TEST(ComposedMidRunTest, IncrementalSnapshotFeedsTheMidRunPath) {
  // With the incremental tier on, each mid-run epoch executes on
  // IncrementalEngine::snapshot(): after epoch 0's full bootstrap, only
  // the balls dirtied by the previous epoch's splices are recomputed.
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 512;
  cfg.trace.epochs = 4;
  cfg.trace.arrival_rate = 2.0;
  cfg.trace.departure_rate = 2.0;
  cfg.trace.min_n = 256;
  cfg.trace.seed = 7;
  cfg.d = 6;
  cfg.seed = 7;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.verify_snapshots = true;  // bitwise oracle on every call

  const auto result = dynamics::run_churn(cfg);
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  EXPECT_EQ(result.epochs[0].balls_recomputed, 512u);
  for (std::uint32_t e = 1; e < result.epochs.size(); ++e) {
    const auto& ep = result.epochs[e];
    // The run-start snapshot covers the members alive BEFORE this epoch's
    // churn — the previous epoch's n_after.
    EXPECT_EQ(ep.balls_recomputed + ep.balls_reused,
              static_cast<std::uint64_t>(result.epochs[e - 1].n_true));
    EXPECT_GT(ep.balls_reused, 0u) << "epoch " << e;
    EXPECT_LT(ep.balls_recomputed, static_cast<std::uint64_t>(ep.n_true))
        << "epoch " << e;
  }
}

TEST(ComposedMidRunTest, ComposedOutcomeMatchesStandaloneMidRun) {
  // Snapshot injection alone must not move a single bit of the per-epoch
  // results: the incremental snapshot is identical to the full rebuild by
  // contract, so the composed run IS the standalone run.
  dynamics::ChurnRunConfig base;
  base.trace.n0 = 256;
  base.trace.epochs = 4;
  base.trace.arrival_rate = 4.0;
  base.trace.departure_rate = 4.0;
  base.trace.min_n = 128;
  base.trace.seed = 9;
  base.d = 6;
  base.seed = 9;
  base.mid_run.enabled = true;

  auto composed_cfg = base;
  composed_cfg.incremental.incremental = true;
  const auto plain = dynamics::run_churn(base);
  const auto composed = dynamics::run_churn(composed_cfg);
  ASSERT_EQ(plain.epochs.size(), composed.epochs.size());
  for (std::size_t e = 0; e < plain.epochs.size(); ++e) {
    const auto& a = plain.epochs[e];
    const auto& b = composed.epochs[e];
    EXPECT_EQ(a.n_true, b.n_true);
    EXPECT_EQ(a.fresh.decided, b.fresh.decided);
    EXPECT_EQ(a.fresh.in_band, b.fresh.in_band);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.midrun_events_applied, b.midrun_events_applied);
    EXPECT_EQ(a.midrun_events_flushed, b.midrun_events_flushed);
    EXPECT_EQ(a.stale_in_band, b.stale_in_band);
  }
}

TEST(ComposedMidRunTest, WarmRowsReuseUnderMidRunChurn) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 512;
  cfg.trace.epochs = 4;
  cfg.trace.arrival_rate = 2.0;
  cfg.trace.departure_rate = 2.0;
  cfg.trace.min_n = 256;
  cfg.trace.seed = 15;
  cfg.d = 6;
  cfg.seed = 15;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;  // throws if warm moved any decision
  cfg.incremental.warm.max_drift = 0.5;

  const auto result = dynamics::run_churn(cfg);
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  EXPECT_FALSE(result.epochs[0].warm_used);  // no cache yet
  bool any_warm = false;
  for (std::uint32_t e = 1; e < result.epochs.size(); ++e) {
    const auto& ep = result.epochs[e];
    if (!ep.warm_used) continue;
    any_warm = true;
    EXPECT_GT(ep.verify_rows_reused, 0u) << "epoch " << e;
    EXPECT_GT(ep.messages_cold, 0u) << "epoch " << e;
  }
  EXPECT_TRUE(any_warm) << "warm rows never reused across the trace";
}

TEST(ComposedMidRunTest, EngineOracleHoldsWithAllTiersOn) {
  // The full composition — incremental snapshot + warm rows + verify
  // shadow + engine oracle — must keep the two protocol tiers bitwise
  // identical per epoch (the E26 contract extended to the composed tier).
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 256;
  cfg.trace.epochs = 3;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 128;
  cfg.trace.seed = 21;
  cfg.d = 6;
  cfg.seed = 21;
  cfg.run_engine = true;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.verify_snapshots = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;
  cfg.incremental.warm.max_drift = 0.5;

  const auto result = dynamics::run_churn(cfg);
  for (const auto& ep : result.epochs) {
    EXPECT_TRUE(ep.engine_match)
        << "engine diverged from fastpath with the composed tiers on";
  }
}

TEST(ComposedMidRunTest, AdaptiveCadenceSkipsQuietEpochsMidRun) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 512;
  cfg.trace.epochs = 6;
  cfg.trace.arrival_rate = 1.0;
  cfg.trace.departure_rate = 1.0;
  cfg.trace.min_n = 256;
  cfg.trace.seed = 27;
  cfg.d = 6;
  cfg.seed = 27;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.verify_snapshots = true;
  cfg.incremental.adaptive = true;
  cfg.incremental.drift_threshold = 0.05;  // ~0.4% churn/epoch: mostly skip

  const auto result = dynamics::run_churn(cfg);
  std::uint32_t estimated = 0;
  std::uint32_t skipped = 0;
  for (std::uint32_t e = 0; e < result.epochs.size(); ++e) {
    const auto& ep = result.epochs[e];
    EXPECT_EQ(ep.n_true, result.trace.epochs[e].n_after)
        << "membership must follow the trace on skipped epochs too";
    if (ep.estimated) {
      ++estimated;
      EXPECT_GT(ep.messages, 0u);
    } else {
      ++skipped;
      EXPECT_EQ(ep.messages, 0u);
      EXPECT_EQ(ep.midrun_events_applied + ep.midrun_events_flushed, 0u)
          << "skipped epochs apply events between runs";
    }
  }
  EXPECT_GE(estimated, 1u);  // epoch 0 always bootstraps
  EXPECT_GT(skipped, 0u) << "adaptive cadence never skipped";
}

TEST(ComposedMidRunTest, EpsWarmEntersMidRunWithinBudget) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 1024;
  cfg.trace.epochs = 5;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 512;
  cfg.trace.seed = 33;
  cfg.d = 6;
  cfg.seed = 33;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;  // counts divergences, enforces budget
  cfg.incremental.eps_warm = true;
  cfg.incremental.eps_budget = 0.10;
  cfg.incremental.eps_margin = 0;
  cfg.incremental.warm.max_drift = 0.5;

  // run_churn throws if any epoch's divergence exceeds floor(ε·honest).
  const auto result = dynamics::run_churn(cfg);
  bool any_eps = false;
  for (const auto& ep : result.epochs) {
    if (!ep.eps_used) continue;
    any_eps = true;
    EXPECT_GT(ep.eps_entry_phase, 1u);
    EXPECT_GT(ep.eps_budget_nodes, 0u);
    EXPECT_LE(ep.eps_divergent, ep.eps_budget_nodes);
  }
  EXPECT_TRUE(any_eps) << "ε-warm entry never engaged under mid-run churn";
}

TEST(MidRunChurnModeTest, EngineOracleMatchesFastpathPerEpoch) {
  // run_engine is no longer excluded from mid-run mode: it replays every
  // epoch's schedule through the message-level engine and records bitwise
  // agreement — the E26 contract, surfaced per epoch.
  for (const auto schedule :
       {adv::MidRunScheduleStrategy::kUniform,
        adv::MidRunScheduleStrategy::kFrontierLeaves}) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = 160;
    cfg.trace.epochs = 3;
    cfg.trace.arrival_rate = 6.0;
    cfg.trace.departure_rate = 6.0;
    cfg.trace.min_n = 96;
    cfg.trace.seed = 11;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.seed = 11;
    cfg.run_engine = true;
    cfg.mid_run.enabled = true;
    cfg.mid_run.schedule = schedule;

    const auto result = dynamics::run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    for (const auto& ep : result.epochs) {
      EXPECT_TRUE(ep.engine_match)
          << "engine diverged from fastpath under mid-run churn ("
          << adv::to_string(schedule) << ")";
    }
  }
}

TEST(EpsWarmTest, RequiresWarmStart) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 64;
  cfg.trace.epochs = 1;
  cfg.incremental.eps_warm = true;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
}

TEST(EpsWarmTest, BudgetAccountingHoldsAcrossEpochs) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 1024;
  cfg.trace.epochs = 5;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 512;
  cfg.trace.seed = 13;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.seed = 13;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;  // counts divergences, enforces budget
  cfg.incremental.eps_warm = true;
  cfg.incremental.eps_budget = 0.10;
  cfg.incremental.eps_margin = 0;  // n=1024's decided-phase tail is shallow
  cfg.incremental.warm.max_drift = 0.5;

  // run_churn throws if any epoch's divergence exceeds floor(ε·honest).
  const auto result = dynamics::run_churn(cfg);
  bool any_eps = false;
  for (const auto& ep : result.epochs) {
    if (!ep.eps_used) {
      EXPECT_EQ(ep.eps_divergent, 0u);
      continue;
    }
    any_eps = true;
    EXPECT_GT(ep.eps_entry_phase, 1u);
    EXPECT_GT(ep.eps_skipped_subphases, 0u);
    EXPECT_GT(ep.eps_budget_nodes, 0u);
    EXPECT_LE(ep.eps_divergent, ep.eps_budget_nodes);
    // The decided phases must respect the entry clamp.
  }
  EXPECT_TRUE(any_eps) << "ε-warm phase skip never engaged";
}

TEST(FloodKernelIndependenceTest, MidRunOutcomeIdenticalAcrossFloodThreads) {
  // The parallel kernel is bitwise-equivalent to the serial oracle, so a
  // mid-run churn run — splices striking the live wavefront, joiner
  // admission, verifier refreshes — must produce the identical
  // MidRunOutcome at every thread count. Each execution rebuilds its
  // inputs from the same seeds (run_counting_midrun mutates them).
  auto run_once = [](proto::FloodExec exec) {
    constexpr NodeId kN0 = 192;
    dynamics::MutableOverlay overlay(kN0, 6, 0, 5);
    util::Xoshiro256 place_rng(17);
    std::vector<bool> byz = graph::random_byzantine_mask(
        kN0, sim::derive_byz_count(kN0, 0.6), place_rng);
    dynamics::ChurnEpoch epoch;
    epoch.joins = 10;
    epoch.sybil_joins = 2;
    epoch.leaves = 8;
    proto::ProtocolConfig cfg;
    const auto schedule = dynamics::derive_schedule(
        epoch, dynamics::expected_horizon_rounds(kN0, 6, cfg.schedule), 9);
    dynamics::MidRunConfig mid_cfg;
    mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
    mid_cfg.flood = exec;
    util::Xoshiro256 churn_rng(23);
    auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    return dynamics::run_counting_midrun(overlay, byz, *strategy, cfg, 77,
                                         schedule, mid_cfg,
                                         adv::ChurnAdversary::kNone,
                                         churn_rng);
  };
  const auto serial = run_once({proto::FloodMode::kSerial, 0});
  for (const std::uint32_t t : {1u, 2u, 4u, 8u}) {
    const auto parallel = run_once({proto::FloodMode::kParallel, t});
    EXPECT_TRUE(serial == parallel) << "flood-threads=" << t;
  }
}

TEST(FloodKernelIndependenceTest, ComposedChurnIdenticalAcrossFloodThreads) {
  // The full composed pipeline — mid-run churn + incremental snapshot +
  // warm rows + verify_warm cold shadow + ε-warm phase skip — with the
  // kernel knob threaded through every tier: all EpochStats (including
  // the ε divergence accounting judged against the cold shadow) must be
  // independent of flood-threads.
  auto run_once = [](proto::FloodExec exec) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = 1024;
    cfg.trace.epochs = 5;
    cfg.trace.arrival_rate = 4.0;
    cfg.trace.departure_rate = 4.0;
    cfg.trace.min_n = 512;
    cfg.trace.seed = 33;
    cfg.d = 6;
    cfg.seed = 33;
    cfg.mid_run.enabled = true;
    cfg.incremental.incremental = true;
    cfg.incremental.warm_start = true;
    cfg.incremental.verify_warm = true;
    cfg.incremental.eps_warm = true;
    cfg.incremental.eps_budget = 0.10;
    cfg.incremental.eps_margin = 0;
    cfg.incremental.warm.max_drift = 0.5;
    cfg.flood = exec;
    return dynamics::run_churn(cfg);
  };
  const auto serial = run_once({proto::FloodMode::kSerial, 0});
  bool any_warm = false;
  bool any_eps = false;
  for (const auto& ep : serial.epochs) {
    any_warm = any_warm || ep.warm_used;
    any_eps = any_eps || ep.eps_used;
  }
  EXPECT_TRUE(any_warm) << "warm tier never engaged: comparison is vacuous";
  EXPECT_TRUE(any_eps) << "eps tier never engaged: comparison is vacuous";
  for (const std::uint32_t t : {1u, 4u}) {
    const auto parallel = run_once({proto::FloodMode::kParallel, t});
    ASSERT_EQ(serial.epochs.size(), parallel.epochs.size());
    for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
      EXPECT_TRUE(serial.epochs[e] == parallel.epochs[e])
          << "flood-threads=" << t << " epoch " << e;
    }
  }
}

}  // namespace
}  // namespace byz
