// E5 — Algorithm 1 estimate quality in the clean setting (Lemmas 11 + 13):
// every node decides, estimates are a constant factor of log2 n, and the
// factor is stable across two orders of magnitude in n.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(15);
  const auto t = trials(5);

  for (const double eps : {0.05, 0.1, 0.2}) {
    util::Table table("E5: Algorithm 1 accuracy, eps=" +
                      util::format_double(eps, 2) + " (d=8, " +
                      std::to_string(t) + " trials)");
    table.columns({"n", "log2 n", "mean est", "est/log2n mean", "min", "max",
                   "in-band frac", "phases", "rounds"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      analysis::AccuracyAggregate agg;
      util::OnlineStats est_mean;
      util::OnlineStats phases;
      util::OnlineStats rounds;
      for (std::uint32_t trial = 0; trial < t; ++trial) {
        const auto overlay = make_overlay(n, 8, util::mix_seed(0xE5 + n, trial));
        proto::ScheduleConfig sched;
        sched.epsilon = eps;
        const auto run = proto::run_basic_counting(
            overlay, util::mix_seed(0xC5, trial), sched);
        const auto acc = proto::summarize_accuracy(run, n);
        agg.add(acc);
        est_mean.add(acc.mean_ratio * lg(n));
        phases.add(run.phases_executed);
        rounds.add(static_cast<double>(run.flood_rounds));
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(lg(n), 1)
          .cell(est_mean.mean(), 2)
          .cell(agg.mean_ratio.mean(), 3)
          .cell(agg.min_ratio.mean(), 3)
          .cell(agg.max_ratio.mean(), 3)
          .cell(agg.frac_in_band.mean(), 4)
          .cell(phases.mean(), 1)
          .cell(rounds.mean(), 0);
    }
    table.note("Constant-factor estimate of log n: the ratio column must be "
               "flat in n (Theorem 1, clean case). Termination tracks "
               "diameter(H) ~ log n / log(d-1), i.e. ratio ~ 1/log2(7) = 0.36.");
    analysis::emit(table);
  }
  return 0;
}
