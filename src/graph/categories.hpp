// Definition 9 node categories: Byz/Honest, LTL/NLT, Safe/Unsafe,
// Bad = Byz ∪ NLT, BUS (Byzantine-unsafe) / Byz-safe. The distances in
// Definition 9 are G-distances (the paper is explicit about that), so the
// classification runs multi-source BFS on G.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/small_world.hpp"
#include "util/rng.hpp"

namespace byz::graph {

/// The paper's radius a·log n with a = δ / (10 k log(d-1)) (base-2 logs).
/// Returned un-clamped (it is < 1 for practical n); callers clamp.
[[nodiscard]] double paper_radius_a(std::uint64_t n, std::uint32_t d,
                                    std::uint32_t k, double delta);

/// Draws exactly `count` distinct Byzantine node ids uniformly at random
/// (the paper's random-placement assumption).
[[nodiscard]] std::vector<bool> random_byzantine_mask(NodeId n, NodeId count,
                                                      util::Xoshiro256& rng);

/// Per-node category flags plus aggregate counts.
struct NodeCategories {
  std::vector<bool> is_byz;
  std::vector<bool> is_ltl;
  std::vector<bool> is_safe;      ///< dist_G(v, NLT) > radius
  std::vector<bool> is_byz_safe;  ///< dist_G(v, Bad) > radius
  std::uint64_t byz = 0;
  std::uint64_t honest = 0;
  std::uint64_t ltl = 0;
  std::uint64_t nlt = 0;
  std::uint64_t safe = 0;
  std::uint64_t unsafe_ = 0;
  std::uint64_t bad = 0;
  std::uint64_t bus = 0;       ///< Byzantine-unsafe
  std::uint64_t byz_safe = 0;
  std::uint32_t radius = 0;
};

/// Classifies all nodes. `ltl_radius` drives the tree-like test on H;
/// `category_radius` is the a·log n ball (clamped to >= 1 by the caller if
/// desired; 0 means "only the node itself", i.e. Safe = not NLT).
[[nodiscard]] NodeCategories classify_categories(const Overlay& overlay,
                                                 const std::vector<bool>& byz_mask,
                                                 std::uint32_t ltl_radius,
                                                 std::uint32_t category_radius);

/// Length of the longest simple path in H consisting solely of Byzantine
/// nodes (Observation 6 predicts < k w.h.p.). Exhaustive DFS inside each
/// Byzantine-induced component, capped at `cap` (returns cap if reached);
/// components are tiny under random placement so this is cheap.
[[nodiscard]] std::uint32_t longest_byzantine_chain(const Graph& h_simple,
                                                    const std::vector<bool>& byz_mask,
                                                    std::uint32_t cap);

}  // namespace byz::graph
