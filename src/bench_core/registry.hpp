// Declarative scenario registry: each experiment (E01–E16 and anything a
// later PR adds) registers its id, the parameter grid it sweeps, its base
// trial count, and the names of the metrics it emits, plus the run
// function itself. The byzbench binary is then nothing but
// "registry.match(filter) → orchestrator".
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace byz::bench_core {

class RunContext;

/// One axis of a scenario's parameter grid, for --list and the JSON
/// manifest (values are rendered as strings; grids are declarative
/// documentation of what the run function sweeps).
struct GridAxis {
  std::string name;
  std::vector<std::string> values;
};

struct ScenarioSpec {
  std::string id;           ///< stable key, e.g. "e07"
  std::string title;        ///< one-line description for --list
  std::string claim;        ///< paper claim / design question it validates
  std::vector<GridAxis> grid;
  std::uint32_t base_trials = 1;      ///< before --scale
  std::vector<std::string> metrics;   ///< metric names emitted into JSON
  std::function<void(RunContext&)> run;
};

class Registry {
 public:
  /// The process-wide registry that BYZBENCH_REGISTER feeds.
  static Registry& instance();

  /// Registers a scenario. Throws std::invalid_argument on a duplicate or
  /// empty id, or a missing run function.
  void add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(std::string_view id) const;

  /// All scenarios ordered by id.
  [[nodiscard]] std::vector<const ScenarioSpec*> all() const;

  /// Scenarios whose id or title contains any of the comma-separated,
  /// case-insensitive terms in `filter`; empty filter = all().
  [[nodiscard]] std::vector<const ScenarioSpec*> match(
      std::string_view filter) const;

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<ScenarioSpec> scenarios_;
};

/// Static-initialization helper: registers `spec` into
/// Registry::instance() at load time.
struct ScenarioRegistration {
  explicit ScenarioRegistration(ScenarioSpec spec);
};

}  // namespace byz::bench_core

/// Registers a scenario from a translation unit:
///   BYZBENCH_REGISTER(e07) { ScenarioSpec spec; ...; return spec; }
/// The braced body is a function returning the ScenarioSpec.
#define BYZBENCH_REGISTER(ident)                                        \
  static ::byz::bench_core::ScenarioSpec byzbench_make_##ident();       \
  static const ::byz::bench_core::ScenarioRegistration                  \
      byzbench_registration_##ident{byzbench_make_##ident()};           \
  static ::byz::bench_core::ScenarioSpec byzbench_make_##ident()
