// Mid-protocol churn: run Algorithm 2 while the overlay mutates under it.
//
// PRs 2-3 only ever churn the overlay BETWEEN estimation runs; this module
// closes the ROADMAP's remaining dynamics item by churning DURING one. A
// ChurnSchedule places an epoch's join/leave events on individual flood
// rounds; LiveOverlayFeed replays them against the MutableOverlay exactly
// when the flood kernel reaches those rounds (proto::MidRunHooks), so
// departed nodes drop messages from their departure round and joiners are
// spliced in mid-flight. What the PROTOCOL does about it is the
// MembershipPolicy (protocols/verification.hpp):
//
//   kTreatAsSilent      the in-flight run keeps its run-start view: the
//                       flood routes over the run-start edges, joiners are
//                       invisible until the next run, departures are pure
//                       silence, and the run-start Verifier serves the
//                       whole run. The overlay itself still mutates — the
//                       policy is the protocol's reaction, not the
//                       network's behavior.
//   kReadmitNextPhase   the flood resolves neighbors against the LIVE
//                       rings (departure splices create pred-succ edges
//                       mid-run, joiners relay from entry), and at each
//                       phase boundary pending joiners are admitted as
//                       generating participants under a Verifier rebuilt
//                       against the live topology.
//
// Model notes (documented deviations from a fully general treatment):
//   * Joiners skip the Algorithm-2 setup stage (adjacency exchange + crash
//     rule) — they were not present for it; the crash rule only ever
//     applies to run-start members.
//   * Scheduled SYBIL joiners are Byzantine for bookkeeping and relay like
//     any Byzantine node once admitted, but plan no injections this run:
//     the strategy's World spans run-start members only. They attack from
//     the next epoch's run onward.
//   * Events scheduled past the run's termination round are flushed after
//     the run, so an epoch always ends in the same overlay state as the
//     between-runs path (the trace's n_after invariant holds either way).
//
// Correctness anchors:
//   E24  with an empty schedule the feed is a pure pass-through and
//        run_counting_midrun is BITWISE identical — statuses, estimates,
//        round counts, every instrumentation counter — to
//        proto::run_counting on the same snapshot, under both policies.
//   E26  at NONZERO mid-run churn, the message-level sim::Engine driven by
//        an identical feed (run_counting_midrun_engine) produces a bitwise
//        identical MidRunOutcome for every rate/policy/strategy — the two
//        tiers cross-check each other's mid-run membership machinery, so
//        fastpath-only behavior is no longer unverifiable.
//   E28  the COMPOSED tier: mid-run churn is no longer exclusive with the
//        incremental/warm machinery. MidRunComposed lets the epoch driver
//        hand the feed an IncrementalEngine snapshot (bitwise identical to
//        the cold rebuild by that engine's contract, so E24/E26 transfer
//        unchanged), reuse cached verifier rows for clean-ball members,
//        and enter the run at the ε-warm phase. The feed's own splices go
//        through MutableOverlay::join_at/leave, which notify whatever
//        SpliceObserver is attached — so the DirtyBallTracker sees every
//        mid-run and flushed event and the NEXT epoch's snapshot
//        recomputes only the balls this epoch dirtied.
//
// Adversarial schedules (adversary/midrun_schedule.hpp) reuse this replay
// machinery unchanged: derive_adversarial_schedule shapes WHEN the same
// event budget strikes, and MidRunConfig::schedule_strategy switches the
// leave-victim policy to the observed flood wavefront (the feed records
// the frontier each begin_round hands it).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/midrun_schedule.hpp"
#include "adversary/strategies.hpp"
#include "dynamics/churn_schedule.hpp"
#include "dynamics/churn_trace.hpp"
#include "dynamics/mutable_overlay.hpp"
#include "obs/digest.hpp"
#include "protocols/estimator.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/midrun.hpp"
#include "protocols/warm_start.hpp"

namespace byz::dynamics {

/// Spreads one trace epoch's {joins, sybil_joins, leaves} over the rounds
/// [0, horizon_rounds) with a SplitMix64-derived stream of `seed` —
/// deterministic in (epoch, horizon_rounds, seed) alone, so mid-run trials
/// are bitwise reproducible for any --jobs. horizon_rounds should be the
/// run's EXPECTED round count (see expected_horizon_rounds); events the
/// run never reaches are flushed after it.
[[nodiscard]] ChurnSchedule derive_schedule(const ChurnEpoch& epoch,
                                            std::uint64_t horizon_rounds,
                                            std::uint64_t seed);

/// The flood rounds a run on n nodes of degree d is expected to execute:
/// cumulative rounds through the typical decision phase
/// ceil(log2 n / log2(d-1)) + 2. Used as the schedule horizon so events
/// actually land mid-run instead of piling past termination.
[[nodiscard]] std::uint64_t expected_horizon_rounds(
    graph::NodeId n, std::uint32_t d, const proto::ScheduleConfig& schedule);

struct MidRunConfig {
  proto::MembershipPolicy policy = proto::MembershipPolicy::kReadmitNextPhase;
  /// Victim policy for leave events (adversary/midrun_schedule.hpp): under
  /// kFrontierLeaves the feed records the wavefront handed to each
  /// begin_round and departures strike honest nodes ON it
  /// (adv::pick_frontier_departure); every other strategy departs through
  /// the ordinary churn adversary. The schedule's TIMING is the caller's
  /// business (derive_adversarial_schedule) — the feed replays whatever
  /// rounds it is given.
  adv::MidRunScheduleStrategy schedule_strategy =
      adv::MidRunScheduleStrategy::kUniform;
  /// Flood-kernel selection for the fastpath tier of this run (the
  /// message-level engine tier is per-message and unaffected). The
  /// parallel kernel is bitwise-equivalent, so MidRunOutcome — including
  /// the engine-oracle comparison — is independent of it.
  proto::FloodExec flood;
  /// Protocol backend executing the run (null = the Algorithm-2 fastpath,
  /// run_counting_with). A non-null backend must support
  /// EstimatorTier::kMidRunChurn; it rides the same LiveOverlayFeed,
  /// flush, and departed-reconcile plumbing. The message-level engine
  /// tier (run_counting_midrun_engine / engine oracle) is Algorithm-2
  /// machinery and ignores this — callers must not combine a non-null
  /// backend with the engine oracle. NOTE for non-algo2 backends without
  /// verification traffic (BRC): hand the feed a disabled-verification
  /// ProtocolConfig, or the feed will bill live verifier rebuilds.
  const proto::Estimator* backend = nullptr;
};

struct MidRunStats {
  std::uint64_t events_applied = 0;   ///< during the run, at their round
  std::uint64_t events_flushed = 0;   ///< after the run (it ended early)
  std::uint64_t events_deferred = 0;  ///< leaves postponed to flush (floor)
  std::uint64_t joins = 0;            ///< honest + sybil joins applied total
  std::uint64_t leaves = 0;
  std::uint64_t admitted = 0;           ///< joiners admitted at boundaries
  std::uint64_t verifier_refreshes = 0; ///< live Verifier rebuilds
  std::uint64_t rows_recomputed = 0;    ///< ball/chain rows recomputed live
  std::uint64_t frontier_leaves = 0;    ///< departures that hit the wavefront
  // Composed tier (MidRunComposed::warm attached): run-start verifier rows
  // carried from the stable-id cache vs computed fresh. Clean-ball reuse is
  // value-identical, so these move no decision — they are pure accounting,
  // but they participate in the E26/E28 bitwise oracle like every field.
  std::uint64_t warm_rows_reused = 0;
  std::uint64_t warm_rows_recomputed = 0;

  bool operator==(const MidRunStats&) const = default;
};

/// Composed-tier inputs the epoch driver threads into a mid-run run (all
/// optional; the default value is the standalone PR-5 behavior). The
/// members compose independently:
///   * `snapshot` — a run-start snapshot to execute on INSTEAD of the
///     feed's own MutableOverlay::snapshot() full rebuild. The driver
///     passes IncrementalEngine::snapshot(), which is bitwise identical to
///     the full rebuild by contract, so every mid-run anchor (E24/E26)
///     transfers unchanged. Must describe the overlay's current alive
///     membership and outlive the feed.
///   * `warm` — the stable-id verifier-row cache (proto::WarmState). The
///     feed folds this run's fresh run-start rows back into it; with
///     `warm_rows` also set (the driver's drift check passed), rows still
///     valid in the cache are REUSED for the run-start Verifier instead of
///     recomputed. The driver must invalidate_dirty_rows() first — the
///     feed trusts row_valid alone.
///   * `start_phase` — ε-warm entry phase (1 = no skip): the run starts
///     there with the schedule clock pre-advanced, so events scheduled in
///     the skipped prefix burst-apply at entry (RunControls::start_phase).
struct MidRunComposed {
  const MutableOverlay::Snapshot* snapshot = nullptr;
  proto::WarmState* warm = nullptr;
  bool warm_rows = false;
  std::uint32_t start_phase = 1;
};

/// MutableOverlay-backed implementation of proto::MidRunHooks (see file
/// comment). Owns the run-id space: snapshot dense ids occupy [0, n0) and
/// scheduled joiners are pre-assigned [n0, node_bound()) in schedule
/// order. Grows `stable_byz` as joiners splice in, exactly like the
/// between-runs replay loop does.
class LiveOverlayFeed final : public proto::MidRunHooks {
 public:
  /// `composed` (optional, must outlive the feed) threads the incremental
  /// snapshot and the warm verifier-row cache in — see MidRunComposed.
  /// `digester` (optional; same instance the run itself is handed) lets
  /// the feed fold membership changes into the current round digest and
  /// record join/leave/warm-row flight events. Pure read-side.
  LiveOverlayFeed(MutableOverlay& overlay, std::vector<bool>& stable_byz,
                  ChurnSchedule schedule, const MidRunConfig& config,
                  proto::VerificationConfig verification,
                  adv::ChurnAdversary adversary, util::Xoshiro256& rng,
                  const MidRunComposed* composed = nullptr,
                  obs::RunDigester* digester = nullptr);

  // proto::MidRunHooks
  [[nodiscard]] graph::NodeId node_bound() const override { return nb_; }
  [[nodiscard]] bool alive(graph::NodeId v) const override {
    return alive_[v] != 0;
  }
  [[nodiscard]] bool departed(graph::NodeId v) const override {
    return departed_[v] != 0;
  }
  [[nodiscard]] std::span<const graph::NodeId> neighbors(
      graph::NodeId v) const override {
    return adj_[v];
  }
  void begin_round(const proto::RoundClock& clock,
                   std::span<const graph::NodeId> frontier) override;
  [[nodiscard]] bool wants_frontier() const override {
    return config_.schedule_strategy ==
           adv::MidRunScheduleStrategy::kFrontierLeaves;
  }
  [[nodiscard]] const proto::Verifier* begin_phase(
      std::uint32_t phase, std::vector<graph::NodeId>& admitted) override;

  /// Applies every not-yet-applied event (the run terminated before their
  /// rounds), joins first among the deferred leaves' floor guard. After
  /// this the overlay state is independent of how far the run got.
  void flush_remaining();

  /// The run-start snapshot the protocol executes on (run ids < n0 are
  /// its dense ids) — the feed's own full rebuild, or the injected
  /// incremental snapshot when MidRunComposed supplies one.
  [[nodiscard]] const graph::Overlay& snapshot_overlay() const noexcept {
    return snap_->overlay;
  }
  /// Byzantine mask over the run-id space (snapshot members + scheduled
  /// joiners), fixed at construction. This is the mask the protocol run
  /// must be handed.
  [[nodiscard]] const std::vector<bool>& run_byz() const noexcept {
    return run_byz_;
  }
  /// Stable id of each run id (joiner slots are kInvalidNode until their
  /// event applies; all resolved after flush_remaining()).
  [[nodiscard]] const std::vector<graph::NodeId>& run_to_stable()
      const noexcept {
    return run_to_stable_;
  }
  [[nodiscard]] const MidRunStats& stats() const noexcept { return stats_; }

 private:
  void apply_event(const MidRunEvent& event);
  void apply_join(bool byzantine);
  bool apply_leave();  ///< false = deferred (membership floor)
  void rebuild_adjacency(graph::NodeId run_id);
  void recompute_row(graph::NodeId run_id);
  void rebuild_verifier();

  MutableOverlay* overlay_;
  std::vector<bool>* stable_byz_;
  ChurnSchedule schedule_;
  MidRunConfig config_;
  proto::VerificationConfig verification_;
  adv::ChurnAdversary adversary_;
  util::Xoshiro256* rng_;
  const MidRunComposed* composed_;
  obs::RunDigester* digester_;

  MidRunStats stats_;
  graph::NodeId n0_ = 0;  ///< snapshot size (run ids < n0_ are members)
  graph::NodeId nb_ = 0;  ///< n0_ + scheduled joins
  std::size_t next_event_ = 0;
  std::vector<MidRunEvent> deferred_;  ///< floor-guarded leaves
  graph::NodeId next_join_run_id_ = 0;

  std::optional<MutableOverlay::Snapshot> snapshot_;  ///< owned rebuild
  const MutableOverlay::Snapshot* snap_ = nullptr;    ///< the one in use
  std::vector<graph::NodeId> run_to_stable_;
  std::vector<graph::NodeId> stable_to_run_;  ///< by stable id; kInvalidNode
  std::vector<bool> run_byz_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> departed_;
  std::vector<std::vector<graph::NodeId>> adj_;  ///< run-id simple H view

  /// Stable ids of the wavefront observed at the most recent begin_round
  /// (kFrontierLeaves only; empty otherwise) — the target pool for
  /// frontier-directed departures applied that round.
  std::vector<graph::NodeId> frontier_stable_;

  std::uint32_t k_ = 0;
  bool rows_dirty_ = false;
  std::vector<graph::NodeId> pending_admit_;
  std::vector<std::uint32_t> rows_;      ///< nb_ * k_ cumulative ball counts
  std::vector<std::uint8_t> chains_;     ///< nb_ usable-chain lengths
  std::optional<proto::Verifier> verifier_;
  // BFS scratch for live ball rows.
  std::vector<std::uint8_t> bfs_mark_;
  std::vector<graph::NodeId> bfs_queue_;
};

struct MidRunOutcome {
  proto::RunResult run;  ///< in run-id space (node_bound ids)
  std::vector<graph::NodeId> run_to_stable;
  std::vector<bool> run_byz;
  MidRunStats stats;

  /// Full bitwise identity over all four members — the relation the E26
  /// oracle and the epoch driver's engine_match assert.
  bool operator==(const MidRunOutcome&) const = default;
};

/// Snapshots `overlay` (or adopts `composed->snapshot`), runs the counting
/// protocol with `schedule` applied mid-run under `config.policy`, then
/// flushes the schedule's tail so the overlay ends in the same state as
/// the between-runs path. `stable_byz` grows with every join (sybil
/// joiners marked Byzantine), `rng` advances exactly one draw per
/// adversary decision — both identical to the between-runs replay, so a
/// driver can alternate modes per epoch. `composed` (nullable) layers the
/// incremental/warm/ε-warm tiers onto the run — see MidRunComposed.
[[nodiscard]] MidRunOutcome run_counting_midrun(
    MutableOverlay& overlay, std::vector<bool>& stable_byz,
    adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
    std::uint64_t color_seed, const ChurnSchedule& schedule,
    const MidRunConfig& config, adv::ChurnAdversary adversary,
    util::Xoshiro256& rng, const MidRunComposed* composed = nullptr,
    obs::RunDigester* digester = nullptr);

/// The same run executed by the message-level sim::Engine instead of the
/// array fast path — identical feed, identical rng/byz evolution, and (the
/// E26 oracle) an identical MidRunOutcome bit for bit: the two tiers must
/// agree under NONZERO mid-run churn, not just at the E24 empty-schedule
/// anchor. Composed inputs thread through identically (the driver hands
/// the engine tier its own WarmState copy so the fold side effects match).
[[nodiscard]] MidRunOutcome run_counting_midrun_engine(
    MutableOverlay& overlay, std::vector<bool>& stable_byz,
    adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
    std::uint64_t color_seed, const ChurnSchedule& schedule,
    const MidRunConfig& config, adv::ChurnAdversary adversary,
    util::Xoshiro256& rng, const MidRunComposed* composed = nullptr,
    obs::RunDigester* digester = nullptr);

struct MidRunTierComparison {
  MidRunOutcome fastpath;
  MidRunOutcome engine;
  /// Full bitwise identity of the two outcomes: RunResult (statuses,
  /// estimates, phase/round/subphase counts, every instrumentation
  /// counter), the run→stable map, the Byzantine mask evolution, and the
  /// mid-run event bookkeeping.
  bool identical = false;
  // Audit mode only (compare_midrun_tiers called with an AuditConfig):
  // run-level digests of each tier, whether the two hierarchical trails
  // matched entry for entry, and — on any divergence, outcome or trail —
  // the rendered byzobs/forensics/v1 report plus the path it was written
  // to (empty if AuditConfig::out_dir was empty or the write failed).
  std::uint64_t run_digest_fastpath = 0;
  std::uint64_t run_digest_engine = 0;
  bool digests_identical = true;
  std::string forensics;
  std::string forensics_path;
};

/// Runs BOTH tiers from the identical initial state — each on its own
/// copy of (overlay, byz mask, churn rng), with a fresh strategy instance
/// per tier — and compares the outcomes bitwise. The inputs are left
/// untouched; this is the mid-run equivalence oracle E26 sweeps. With
/// `audit` attached both tiers also record hierarchical digest trails and
/// flight events, the trails are compared, and a forensics report is
/// emitted on any divergence (see MidRunTierComparison's audit fields) —
/// the outcomes themselves are bitwise unaffected (digesting is pure
/// read-side).
[[nodiscard]] MidRunTierComparison compare_midrun_tiers(
    const MutableOverlay& overlay, const std::vector<bool>& stable_byz,
    adv::StrategyKind strategy, const proto::ProtocolConfig& cfg,
    std::uint64_t color_seed, const ChurnSchedule& schedule,
    const MidRunConfig& config, adv::ChurnAdversary adversary,
    const util::Xoshiro256& rng, const obs::AuditConfig* audit = nullptr);

}  // namespace byz::dynamics
