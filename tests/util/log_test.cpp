#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace byz::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

/// Captures every line passing the threshold; restores stderr on exit.
class CaptureSink {
 public:
  CaptureSink() {
    set_log_sink(
        [](LogLevel level, const std::string& message, void* user) {
          static_cast<CaptureSink*>(user)->lines_.emplace_back(level, message);
        },
        this);
  }
  ~CaptureSink() { set_log_sink(nullptr); }

  [[nodiscard]] const std::vector<std::pair<LogLevel, std::string>>& lines()
      const {
    return lines_;
  }

 private:
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kWarn));
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kTrace));
}

TEST(Log, MacroCompilesAndFiltersCheaply) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // The streamed expression must not be evaluated when filtered.
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  BYZ_DEBUG << "value: " << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kDebug);
  BYZ_DEBUG << "value: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitBelowThresholdIsDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Nothing to assert on stderr contents portably; exercise the paths.
  log_line(LogLevel::kInfo, "dropped");
  log_line(LogLevel::kError, "kept");
  SUCCEED();
}

TEST(Log, SinkReceivesOnlyPassingLines) {
  LogLevelGuard guard;
  CaptureSink sink;
  set_log_level(LogLevel::kWarn);
  log_line(LogLevel::kInfo, "below threshold");
  log_line(LogLevel::kWarn, "at threshold");
  log_line(LogLevel::kError, "above threshold");
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(static_cast<int>(sink.lines()[0].first),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_EQ(sink.lines()[0].second, "at threshold");
  EXPECT_EQ(sink.lines()[1].second, "above threshold");
}

TEST(Log, LogStreamFlushesExactlyOnceAtScopeExit) {
  LogLevelGuard guard;
  CaptureSink sink;
  set_log_level(LogLevel::kInfo);
  {
    detail::LogStream stream(LogLevel::kInfo);
    stream << "a=" << 1 << " b=" << 2.5;
    // Nothing emitted until the stream is destroyed.
    EXPECT_TRUE(sink.lines().empty());
  }
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_EQ(sink.lines()[0].second, "a=1 b=2.5");
}

TEST(Log, MacroAssemblesOneLinePerStatement) {
  LogLevelGuard guard;
  CaptureSink sink;
  set_log_level(LogLevel::kInfo);
  BYZ_INFO << "first " << 10;
  BYZ_ERROR << "second";
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0].second, "first 10");
  EXPECT_EQ(static_cast<int>(sink.lines()[1].first),
            static_cast<int>(LogLevel::kError));
  EXPECT_EQ(sink.lines()[1].second, "second");
}

TEST(Log, NullSinkRestoresStderrPath) {
  LogLevelGuard guard;
  {
    CaptureSink sink;
    set_log_level(LogLevel::kInfo);
    log_line(LogLevel::kInfo, "captured");
    ASSERT_EQ(sink.lines().size(), 1u);
  }
  // Sink removed: the stderr path must not crash.
  log_line(LogLevel::kError, "back to stderr");
  SUCCEED();
}

}  // namespace
}  // namespace byz::util
