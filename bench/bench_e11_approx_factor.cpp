// E11 — The approximation factor of Theorem 1: measured spread of honest
// estimates (max/min over nodes and trials) against the analysis'
// guaranteed band [a log n, b log n] with a = delta/(10 k log(d-1)) and
// b = 4/log(1 + gamma/d) (gamma from the measured spectral gap).
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e11(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));
  const auto t = ctx.trials(3);

  struct Point {
    std::uint32_t d;
    graph::NodeId n;
  };
  std::vector<Point> grid;
  for (const std::uint32_t d : {6u, 8u}) {
    for (const auto n : sizes) grid.push_back({d, n});
  }

  struct Cell {
    double min_ratio = 1e9;
    double max_ratio = 0.0;
    double a = 0.0;
    double b = 0.0;
  };
  const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
    const auto [d, n] = grid[i];
    const double delta = d == 6 ? 0.7 : 0.5;
    const auto overlay = ctx.overlay(n, d, 0xEB + n + d);
    // gamma: edge-expansion lower bound from the measured spectral gap.
    const auto spec = graph::second_eigenvalue(overlay->h(), 2000, 1e-10, 0xEB);
    const double gamma = graph::cheeger_bounds(d, spec.lambda2).lower;
    Cell cell;
    for (std::uint32_t trial = 0; trial < t; ++trial) {
      util::Xoshiro256 rng(util::mix_seed(0xEB2 + n, trial));
      const auto byz = graph::random_byzantine_mask(
          n, sim::derive_byz_count(n, delta), rng);
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(*overlay, byz, *strat, cfg,
                                           util::mix_seed(0xCB, trial));
      const auto acc = proto::summarize_accuracy(run, n);
      if (acc.decided > 0) {
        cell.min_ratio = std::min(cell.min_ratio, acc.min_ratio);
        cell.max_ratio = std::max(cell.max_ratio, acc.max_ratio);
      }
    }
    cell.a = proto::factor_a(delta, overlay->k(), d);
    cell.b = proto::factor_b(gamma, d);
    return cell;
  });

  util::Table table("E11: measured estimate band vs the analytic [a,b] band "
                    "(fake-color attack, " + std::to_string(t) + " trials)");
  table.columns({"n", "d", "delta", "min ratio", "max ratio", "spread",
                 "a (theory)", "b (theory)", "b/a (theory)"});
  std::vector<double> spreads;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [d, n] = grid[i];
    const auto& cell = cells[i];
    const double spread =
        cell.max_ratio / (cell.min_ratio > 0 ? cell.min_ratio : 1.0);
    table.row()
        .cell(std::uint64_t{n})
        .cell(d)
        .cell(d == 6 ? 0.7 : 0.5, 1)
        .cell(cell.min_ratio, 3)
        .cell(cell.max_ratio, 3)
        .cell(spread, 2)
        .cell(cell.a, 4)
        .cell(cell.b, 1)
        .cell(cell.b / cell.a, 0);
    spreads.push_back(spread);
  }
  table.note("Theorem 1 guarantees ratios within [a, b]; the analysis' "
             "constants are loose by design (b/a in the thousands) while "
             "the measured spread stays within a small constant — the "
             "protocol is far better than its worst-case bound, and every "
             "measured ratio respects the band.");
  ctx.emit(table);
  ctx.metric("measured_spread", bench_core::quantiles_json(spreads));
}

}  // namespace

BYZBENCH_REGISTER(e11) {
  ScenarioSpec spec;
  spec.id = "e11";
  spec.title = "measured estimate band vs analytic [a,b]";
  spec.claim = "Theorem 1: every measured ratio respects [a log n, b log n]; "
               "measured spread is a small constant";
  spec.grid = {{"d", {"6", "8"}}, pow2_axis(10, 14)};
  spec.base_trials = 3;
  spec.metrics = {"measured_spread"};
  spec.run = run_e11;
  return spec;
}
