// IncrementalEngine mechanics: bootstrap equivalence with the static
// build, ball-reuse accounting, the verify_against_full debug mode, and
// behavior with incremental reuse disabled (full rebuilds through the same
// assembly path, dirty masks still reported for the warm tier).
#include "incremental/engine.hpp"

#include <gtest/gtest.h>

#include "graph/small_world.hpp"

namespace byz::incremental {
namespace {

using dynamics::MutableOverlay;

TEST(IncrementalEngine, BootstrapSnapshotMatchesTheFullRebuild) {
  MutableOverlay overlay(256, 6, 0, 42);
  IncrementalEngine engine(overlay);
  const auto inc = engine.snapshot();
  const auto full = overlay.snapshot();
  EXPECT_TRUE(overlays_identical(inc.overlay, full.overlay));
  EXPECT_EQ(engine.stats().full_rebuilds, 1u);
  EXPECT_EQ(engine.stats().last_recomputed, 256u);
  EXPECT_EQ(engine.stats().last_reused, 0u);
  // First snapshot reports everything dirty to warm-start consumers.
  EXPECT_EQ(engine.last_dirty().size(), 256u);
}

TEST(IncrementalEngine, ReusesCleanBallsAcrossEpochs) {
  MutableOverlay overlay(1024, 6, 0, 7);
  IncrementalEngine engine(overlay);
  (void)engine.snapshot();
  util::Xoshiro256 rng(3);
  overlay.join(rng);
  overlay.leave(overlay.random_alive(rng));
  const auto snap = engine.snapshot();
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.snapshots, 2u);
  EXPECT_EQ(stats.full_rebuilds, 1u);
  EXPECT_GT(stats.last_reused, stats.last_recomputed);
  EXPECT_TRUE(overlays_identical(snap.overlay, overlay.snapshot().overlay));
  // The dirty mask of the last snapshot matches what was recomputed.
  std::uint64_t dirty_alive = 0;
  for (const auto stable : snap.dense_to_stable) {
    if (engine.last_dirty()[stable] != 0) ++dirty_alive;
  }
  EXPECT_EQ(dirty_alive, stats.last_recomputed);
}

TEST(IncrementalEngine, VerifyModeCrossChecksEverySnapshot) {
  MutableOverlay overlay(192, 6, 0, 11);
  IncrementalEngine engine(overlay, {/*incremental=*/true,
                                     /*verify_against_full=*/true});
  util::Xoshiro256 rng(5);
  for (int round = 0; round < 3; ++round) {
    overlay.join(rng);
    overlay.rewire(overlay.random_alive(rng), rng);
    EXPECT_NO_THROW((void)engine.snapshot());
  }
  EXPECT_EQ(engine.stats().verified, 3u);
}

TEST(IncrementalEngine, NonIncrementalModeStillReportsDirtyMasks) {
  MutableOverlay overlay(256, 6, 0, 13);
  IncrementalEngine engine(overlay, {/*incremental=*/false,
                                     /*verify_against_full=*/false});
  (void)engine.snapshot();
  util::Xoshiro256 rng(1);
  overlay.join(rng);
  const auto snap = engine.snapshot();
  // Full rebuild every time...
  EXPECT_EQ(engine.stats().full_rebuilds, 2u);
  EXPECT_EQ(engine.stats().last_reused, 0u);
  // ...but the dirty mask still reflects only what actually changed.
  std::uint64_t dirty_alive = 0;
  for (const auto stable : snap.dense_to_stable) {
    if (stable < engine.last_dirty().size() &&
        engine.last_dirty()[stable] != 0) {
      ++dirty_alive;
    }
  }
  EXPECT_GT(dirty_alive, 0u);
  EXPECT_LT(dirty_alive, snap.overlay.num_nodes());
}

TEST(IncrementalEngine, OverlaysIdenticalDetectsDifferences) {
  graph::OverlayParams params;
  params.n = 128;
  params.d = 6;
  params.seed = 1;
  const auto a = graph::Overlay::build(params);
  EXPECT_TRUE(overlays_identical(a, a));
  params.seed = 2;
  const auto b = graph::Overlay::build(params);
  EXPECT_FALSE(overlays_identical(a, b));
}

}  // namespace
}  // namespace byz::incremental
