#include "graph/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

Graph cycle_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges, true);
}

Graph complete_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges, true);
}

TEST(Spectral, CycleLambda2Known) {
  // C_n adjacency eigenvalues: 2 cos(2πj/n); λ2 = 2 cos(2π/n).
  const NodeId n = 64;
  const auto r = second_eigenvalue(cycle_graph(n), 8000, 1e-12, 1);
  EXPECT_NEAR(r.lambda2, 2.0 * std::cos(2.0 * M_PI / n), 1e-3);
}

TEST(Spectral, CompleteGraphLambda2Known) {
  // K_n: λ2 = -1, so mu2 = -1/(n-1); the shifted power method must find it.
  const NodeId n = 20;
  const auto r = second_eigenvalue(complete_graph(n), 4000, 1e-13, 2);
  EXPECT_NEAR(r.mu2, -1.0 / (n - 1), 1e-3);
}

TEST(Spectral, RandomRegularNearRamanujan) {
  // Friedman/Lemma 19: λ2 ≈ 2 sqrt(d-1) + o(1) for H(n,d).
  util::Xoshiro256 rng(5);
  const Graph h = build_hamiltonian_graph(4096, 8, rng);
  const auto r = second_eigenvalue(h, 2000, 1e-10, 3);
  const double ramanujan = 2.0 * std::sqrt(7.0);
  EXPECT_GT(r.lambda2, 0.8 * ramanujan);
  EXPECT_LT(r.lambda2, 1.15 * ramanujan);
}

TEST(Spectral, TooSmallGraphThrows) {
  EXPECT_THROW((void)second_eigenvalue(complete_graph(1), 10, 1e-6, 1),
               std::invalid_argument);
}

TEST(Spectral, VectorHasUnitNormAndSize) {
  const auto r = second_eigenvalue(cycle_graph(32), 2000, 1e-12, 4);
  ASSERT_EQ(r.vector2.size(), 32u);
  double norm = 0.0;
  for (const double x : r.vector2) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(CheegerBounds, OrderAndSanity) {
  const auto b = cheeger_bounds(8.0, 2.0 * std::sqrt(7.0));
  EXPECT_GT(b.lower, 0.0);
  EXPECT_GT(b.upper, b.lower);
  EXPECT_NEAR(b.lower, (8.0 - 2.0 * std::sqrt(7.0)) / 2.0, 1e-12);
}

TEST(CheegerBounds, ClampsNegativeGap) {
  const auto b = cheeger_bounds(4.0, 5.0);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
  EXPECT_DOUBLE_EQ(b.upper, 0.0);
}

TEST(SweepCut, FindsTheObviousCut) {
  // Two K_8 cliques joined by one edge: expansion ≈ 1/8.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(u + 8, v + 8);
    }
  }
  edges.emplace_back(0, 8);
  const Graph g = Graph::from_edges(16, edges, true);
  const auto r = second_eigenvalue(g, 4000, 1e-13, 5);
  const double h = sweep_cut_expansion(g, r.vector2);
  EXPECT_NEAR(h, 1.0 / 8.0, 0.02);
}

TEST(SweepCut, UpperBoundsTrueExpansionOnExpander) {
  util::Xoshiro256 rng(6);
  const Graph h = build_hamiltonian_graph(512, 8, rng);
  const auto r = second_eigenvalue(h, 1500, 1e-10, 7);
  const double sweep = sweep_cut_expansion(h, r.vector2);
  const auto bounds = cheeger_bounds(8.0, r.lambda2);
  EXPECT_GE(sweep, bounds.lower - 0.05);  // sweep upper-bounds h >= lower
  EXPECT_GT(sweep, 0.5);                  // random 8-regular expands well
}

TEST(CutExpansion, ExplicitMask) {
  const Graph g = cycle_graph(8);
  std::vector<bool> in_set(8, false);
  in_set[0] = in_set[1] = in_set[2] = in_set[3] = true;  // arc of 4
  EXPECT_DOUBLE_EQ(cut_expansion(g, in_set), 2.0 / 4.0);
}

TEST(CutExpansion, EmptySetIsZero) {
  const Graph g = cycle_graph(6);
  EXPECT_DOUBLE_EQ(cut_expansion(g, std::vector<bool>(6, false)), 0.0);
}

}  // namespace
}  // namespace byz::graph
