// E1 — Definition-9 node-category sizes vs the Lemma-2 bounds.
//
// Validates: Lemma 1/21 (|LTL| >= n - O(n^0.8)), Lemma 2 (|Safe|,
// |Byz-safe| = n - o(n)), and the radius parameterization discussion of
// DESIGN.md §3.4 (the paper's a·log n radius is < 1 at these sizes, so we
// report radii 1 and 2 explicitly).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(14);
  const auto sizes = analysis::pow2_sizes(10, max_exp);
  const std::uint32_t d = 8;

  for (const double delta : {0.5, 0.7}) {
    util::Table table(
        "E1: node categories, d=8, B=n^(1-" + util::format_double(delta, 1) +
        "), LTL radius 1");
    table.columns({"n", "B", "n^0.8", "NLT(r1)", "Safe(rho1)", "Unsafe(rho1)",
                   "BUS(rho1)", "Byz-safe(rho1)", "BUS(rho2)", "max byz chain",
                   "a*log2n (paper)"});
    for (const auto n : sizes) {
      const auto overlay = make_overlay(n, d, 0xE1 + n);
      const auto byz = place_byz(n, delta, 0xE1 + n);
      const auto cat1 = graph::classify_categories(overlay, byz, 1, 1);
      const auto cat2 = graph::classify_categories(overlay, byz, 1, 2);
      const auto chain =
          graph::longest_byzantine_chain(overlay.h_simple(), byz, 16);
      table.row()
          .cell(std::uint64_t{n})
          .cell(cat1.byz)
          .cell(std::pow(static_cast<double>(n), 0.8), 0)
          .cell(cat1.nlt)
          .cell(cat1.safe)
          .cell(cat1.unsafe_)
          .cell(cat1.bus)
          .cell(cat1.byz_safe)
          .cell(cat2.bus)
          .cell(std::uint64_t{chain})
          .cell(graph::paper_radius_a(n, d, overlay.k(), delta), 3);
    }
    table.note("Lemma 2 predicts: NLT = O(n^0.8); Safe, Byz-safe = n - o(n); "
               "BUS = o(n). Observation 6 predicts max chain < k = 3 w.h.p. "
               "for delta > 3/d.");
    analysis::emit(table);
  }
  return 0;
}
