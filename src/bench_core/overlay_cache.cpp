#include "bench_core/overlay_cache.hpp"

#include <stdexcept>

namespace byz::bench_core {

std::shared_ptr<const graph::Overlay> OverlayCache::get(
    const graph::OverlayParams& params) {
  if (params.generation != 0) {
    throw std::invalid_argument(
        "OverlayCache::get: generation != 0 keys identify dynamic snapshots, "
        "which cannot be rebuilt from (n, d, seed); publish them with put()");
  }
  const Key key{params.n, params.d, params.k, params.seed, params.generation};

  std::promise<std::shared_ptr<const graph::Overlay>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      auto future = it->second.overlay;
      // Wait outside the lock: the entry may still be building on another
      // thread.
      lock.unlock();
      return future.get();
    }
    ++misses_;
    lru_.push_front(key);
    entries_.emplace(key, Entry{promise.get_future().share(), lru_.begin(), 0});
  }

  // Build outside the lock; other threads asking for the same key wait on
  // the shared_future.
  std::shared_ptr<const graph::Overlay> overlay;
  try {
    overlay =
        std::make_shared<const graph::Overlay>(graph::Overlay::build(params));
  } catch (...) {
    // Propagate the real error to current waiters and drop the entry so a
    // later request retries instead of hitting a poisoned future.
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    throw;
  }
  promise.set_value(overlay);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.bytes = overlay->memory_bytes();
      resident_bytes_ += it->second.bytes;
      evict_locked(key);
    }
  }
  return overlay;
}

std::shared_ptr<const graph::Overlay> OverlayCache::get(graph::NodeId n,
                                                        std::uint32_t d,
                                                        std::uint64_t seed) {
  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  return get(params);
}

std::shared_ptr<const graph::Overlay> OverlayCache::put(
    std::shared_ptr<const graph::Overlay> overlay) {
  const auto& params = overlay->params();
  if (params.generation == 0) {
    throw std::invalid_argument(
        "OverlayCache::put: generation == 0 keys are reserved for overlays "
        "get() derives from (n, d, seed); publishing a hand-built overlay "
        "under a static key would poison later lookups");
  }
  const Key key{params.n, params.d, params.k, params.seed, params.generation};
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    auto future = it->second.overlay;
    lock.unlock();
    return future.get();
  }
  std::promise<std::shared_ptr<const graph::Overlay>> promise;
  promise.set_value(overlay);
  lru_.push_front(key);
  entries_.emplace(key, Entry{promise.get_future().share(), lru_.begin(),
                              overlay->memory_bytes()});
  resident_bytes_ += overlay->memory_bytes();
  evict_locked(key);
  return overlay;
}

void OverlayCache::evict_locked(const Key& incoming) {
  if (max_bytes_ == 0) return;
  while (resident_bytes_ > max_bytes_ && lru_.size() > 1) {
    // Generation-aware policy: epoch snapshots of one evolving overlay
    // (same d/k/seed, generation != 0) supersede each other, while static
    // samples are shared across scenario grids — so retire the
    // least-recently-used SNAPSHOT of the incoming entry's own family
    // (snapshots are published in epoch order, so LRU-oldest is the oldest
    // generation) before touching unrelated entries.
    auto victim_pos = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (*it != incoming && it->generation != 0 && it->d == incoming.d &&
          it->k == incoming.k && it->seed == incoming.seed) {
        const auto entry = entries_.find(*it);
        // Entries still building (bytes unknown) are not evictable.
        if (entry != entries_.end() && entry->second.bytes != 0) {
          victim_pos = it;
          break;
        }
      }
      if (it == lru_.begin()) break;
    }
    if (victim_pos == lru_.end()) {
      victim_pos = std::prev(lru_.end());
      if (*victim_pos == incoming) break;
    }
    auto it = entries_.find(*victim_pos);
    // Never evict an entry that is still building (bytes unknown).
    if (it == entries_.end() || it->second.bytes == 0) break;
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.erase(victim_pos);
    ++evictions_;
  }
}

OverlayCache::Stats OverlayCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.entries = entries_.size();
  return s;
}

void OverlayCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace byz::bench_core
