// E18 — recovery after a departure burst: a fraction of the network leaves
// in one epoch (correlated failure / partition heal / flash crowd exit).
// The ring splices repair the overlay in the same epoch, so the question is
// how fast ESTIMATES recover: epochs until the fresh in-band fraction is
// back above 0.9, plus how deep the stale-estimate accuracy fell at the
// burst — the re-estimation latency a deployment must budget for.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e18(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kBurstEpoch = 4;
  constexpr std::uint32_t kEpochs = 12;

  util::Table table("E18: recovery after a departure burst, d=6 (" +
                    std::to_string(t) + " trials, burst at epoch " +
                    std::to_string(kBurstEpoch) + ")");
  table.columns({"n0", "burst", "n after burst", "fresh@burst",
                 "stale@burst", "recovery epochs", "recovered",
                 "final in-band"});
  std::vector<double> recovery;
  for (const auto n0 : sizes) {
    for (const double fraction : {0.2, 0.4}) {
      dynamics::ChurnRunConfig cfg;
      cfg.trace.n0 = n0;
      cfg.trace.epochs = kEpochs;
      cfg.trace.arrival_rate = n0 / 64.0;
      cfg.trace.departure_rate = n0 / 64.0;
      cfg.trace.model = dynamics::ChurnModel::kBurst;
      cfg.trace.burst_epoch = kBurstEpoch;
      cfg.trace.burst_fraction = fraction;
      cfg.trace.min_n = n0 / 4;
      cfg.d = 6;
      cfg.delta = 0.7;
      cfg.strategy = adv::StrategyKind::kFakeColor;

      const auto base_seed = 0xE18 + n0 +
                             static_cast<std::uint64_t>(fraction * 100);
      const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
        auto trial_cfg = cfg;
        trial_cfg.trace.seed =
            bench_core::TrialScheduler::trial_seed(base_seed, i);
        trial_cfg.seed = trial_cfg.trace.seed;
        return dynamics::run_churn(trial_cfg);
      });

      util::OnlineStats n_burst, fresh_burst, stale_burst, rec, final_band;
      std::uint32_t recovered = 0;
      for (const auto& run : runs) {
        const auto& burst = run.epochs[kBurstEpoch];
        n_burst.add(static_cast<double>(burst.n_true));
        fresh_burst.add(burst.fresh.frac_in_band);
        if (burst.stale_nodes > 0) stale_burst.add(burst.stale_frac_in_band);
        // Unrecovered runs count as the full trace length in BOTH the table
        // and the JSON metric, so the two statistics agree.
        const auto r = dynamics::recovery_epochs(run, kBurstEpoch, 0.9);
        if (r >= 0) ++recovered;
        const double epochs_to_recover =
            r >= 0 ? static_cast<double>(r) : static_cast<double>(kEpochs);
        rec.add(epochs_to_recover);
        recovery.push_back(epochs_to_recover);
        final_band.add(run.epochs.back().fresh.frac_in_band);
      }
      table.row()
          .cell(std::uint64_t{n0})
          .cell(util::format_double(100.0 * fraction, 0) + "%")
          .cell(n_burst.mean(), 0)
          .cell(fresh_burst.mean(), 4)
          .cell(stale_burst.mean(), 4)
          .cell(recovered == 0 ? std::string("never")
                               : util::format_double(rec.mean(), 2))
          .cell(std::to_string(recovered) + "/" + std::to_string(t))
          .cell(final_band.mean(), 4);
    }
  }
  table.note("A burst removes up to 40% of the overlay in one epoch. The "
             "splice repair restores d-regular connectivity immediately; "
             "fresh estimation on the post-burst snapshot recovers the "
             "in-band fraction within a couple of epochs, while estimates "
             "from before the burst stay wrong until replaced.");
  ctx.emit(table);
  ctx.record_accuracy("recovery_epochs", recovery);
}

}  // namespace

BYZBENCH_REGISTER(e18) {
  ScenarioSpec spec;
  spec.id = "e18";
  spec.title = "Estimate recovery time after a departure burst";
  spec.claim = "Dynamic overlays: after a mass departure the splice repair "
               "plus one re-estimation epoch restores the Theorem-1 band";
  spec.grid = {{"burst_fraction", {"0.2", "0.4"}},
               {"epochs", {"12"}},
               pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"messages", "accuracy.recovery_epochs"};
  spec.run = run_e18;
  return spec;
}
