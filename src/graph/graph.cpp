#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace byz::graph {

Graph Graph::from_edges(NodeId num_nodes,
                        std::span<const std::pair<NodeId, NodeId>> edges,
                        bool dedup) {
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) {
      throw std::out_of_range("Graph::from_edges: node id out of range");
    }
    if (dedup && u == v) continue;  // self-loops dropped in simple mode
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.neighbors_.resize(g.offsets_.back());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    if (dedup && u == v) continue;
    g.neighbors_[cursor[u]++] = v;
    g.neighbors_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto* begin = g.neighbors_.data() + g.offsets_[v];
    auto* end = g.neighbors_.data() + g.offsets_[v + 1];
    std::sort(begin, end);
  }
  if (!dedup) return g;

  // Deduplicate parallel edges in place, then rebuild offsets.
  OffsetVec new_offsets(g.offsets_.size(), 0);
  std::uint64_t write = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::uint64_t begin = g.offsets_[v];
    const std::uint64_t end = g.offsets_[v + 1];
    NodeId last = kInvalidNode;
    for (std::uint64_t i = begin; i < end; ++i) {
      const NodeId w = g.neighbors_[i];
      if (w == last) continue;
      last = w;
      g.neighbors_[write++] = w;
    }
    new_offsets[v + 1] = write;
  }
  g.neighbors_.resize(write);
  g.offsets_ = std::move(new_offsets);
  return g;
}

Graph Graph::from_adjacency(std::vector<std::vector<NodeId>> adj) {
  Graph g;
  g.offsets_.assign(adj.size() + 1, 0);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + adj[v].size();
  }
  g.neighbors_.resize(g.offsets_.back());
  for (std::size_t v = 0; v < adj.size(); ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    std::copy(adj[v].begin(), adj[v].end(),
              g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]));
  }
  return g;
}

Graph Graph::from_csr(OffsetVec offsets, NeighborVec neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size()) {
    throw std::invalid_argument("Graph::from_csr: malformed offsets");
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    if (offsets[v] < offsets[v - 1]) {
      throw std::invalid_argument("Graph::from_csr: offsets not monotone");
    }
  }
#ifndef NDEBUG
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    for (std::uint64_t i = offsets[v - 1] + 1; i < offsets[v]; ++i) {
      if (neighbors[i - 1] > neighbors[i]) {
        throw std::invalid_argument("Graph::from_csr: range not sorted");
      }
    }
  }
#endif
  Graph g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

std::uint32_t Graph::min_degree() const noexcept {
  if (num_nodes() == 0) return 0;
  std::uint32_t best = degree(0);
  for (NodeId v = 1; v < num_nodes(); ++v) best = std::min(best, degree(v));
  return best;
}

bool Graph::is_regular(std::uint32_t d) const noexcept {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (degree(v) != d) return false;
  }
  return true;
}

}  // namespace byz::graph
