#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace byz::graph {
namespace {

using Edge = std::pair<NodeId, NodeId>;

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {}, true);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(Graph, TriangleBasics) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges, true);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, NeighborsSorted) {
  const std::vector<Edge> edges{{0, 3}, {0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges, true);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Graph, MultigraphKeepsParallelEdges) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, false);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, DedupRemovesParallelEdgesAndLoops) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {1, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, true);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);  // {0, 2}
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, SelfLoopKeptInMultigraphMode) {
  const std::vector<Edge> edges{{0, 0}};
  const Graph g = Graph::from_edges(1, edges, false);
  EXPECT_EQ(g.degree(0), 2u);  // both endpoints land on node 0
}

TEST(Graph, OutOfRangeEdgeThrows) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW((void)Graph::from_edges(3, edges, true), std::out_of_range);
}

TEST(Graph, FromAdjacencySortsLists) {
  std::vector<std::vector<NodeId>> adj{{2, 1}, {0}, {0}};
  const Graph g = Graph::from_adjacency(std::move(adj));
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(Graph, DegreeBounds) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {0, 3}};
  const Graph g = Graph::from_edges(5, edges, true);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 0u);  // node 4 isolated
  EXPECT_FALSE(g.is_regular(1));
}

TEST(Graph, FirstSlotAlignsWithDegreePrefix) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges, true);
  EXPECT_EQ(g.first_slot(0), 0u);
  EXPECT_EQ(g.first_slot(1), g.degree(0));
  EXPECT_EQ(g.first_slot(2), g.degree(0) + g.degree(1));
}

TEST(Graph, MemoryBytesPositive) {
  const std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(2, edges, true);
  EXPECT_GT(g.memory_bytes(), 0u);
}

}  // namespace
}  // namespace byz::graph
