#include "adversary/strategies.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/categories.hpp"
#include "protocols/neighborhood.hpp"
#include "util/rng.hpp"

namespace byz::adv {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct Fixture {
  Fixture() {
    OverlayParams p;
    p.n = 256;
    p.d = 6;
    p.seed = 77;
    overlay = Overlay::build(p);
    util::Xoshiro256 rng(5);
    byz = graph::random_byzantine_mask(overlay.num_nodes(), 10, rng);
    world = sim::World::make(overlay, byz, 99);
  }
  Overlay overlay{};
  std::vector<bool> byz;
  sim::World world;
};

TEST(Factory, AllStrategiesConstructible) {
  for (const auto kind : all_strategies()) {
    const auto s = make_strategy(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), to_string(kind));
  }
}

TEST(Factory, NamesDistinct) {
  std::set<std::string> names;
  for (const auto kind : all_strategies()) {
    names.insert(to_string(kind));
  }
  EXPECT_EQ(names.size(), all_strategies().size());
}

TEST(Honest, NoLiesNoInjections) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kHonest);
  proto::ClaimSet claims(f.overlay);
  s->setup_lies(f.world, claims);
  for (NodeId v = 0; v < f.overlay.num_nodes(); ++v) {
    EXPECT_TRUE(claims.truthful(v));
  }
  std::vector<proto::Injection> inj;
  s->plan_subphase(f.world, {3, 1, 10}, inj);
  EXPECT_TRUE(inj.empty());
  EXPECT_TRUE(s->forwards_floods());
  EXPECT_TRUE(s->generates_honestly());
}

TEST(FakeColor, InjectsAtStartAndEnd) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kFakeColor);
  std::vector<proto::Injection> inj;
  s->plan_subphase(f.world, {4, 2, 11}, inj);
  EXPECT_EQ(inj.size(), 2 * f.world.byz_nodes.size());
  bool saw_step1 = false;
  bool saw_last = false;
  for (const auto& i : inj) {
    EXPECT_TRUE(f.byz[i.from]);
    EXPECT_GT(i.value, 1'000'000u - 1);
    if (i.step == 1) saw_step1 = true;
    if (i.step == 4) saw_last = true;
  }
  EXPECT_TRUE(saw_step1);
  EXPECT_TRUE(saw_last);
}

TEST(FakeColor, PhaseOneOnlyInjectsOnce) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kFakeColor);
  std::vector<proto::Injection> inj;
  s->plan_subphase(f.world, {1, 1, 0}, inj);
  EXPECT_EQ(inj.size(), f.world.byz_nodes.size());
}

TEST(Suppress, SilentBlackhole) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kSuppress);
  std::vector<proto::Injection> inj;
  s->plan_subphase(f.world, {3, 1, 9}, inj);
  EXPECT_TRUE(inj.empty());
  EXPECT_FALSE(s->forwards_floods());
  EXPECT_FALSE(s->generates_honestly());
}

TEST(TopologyLiar, LieIsCaughtByCrashRule) {
  // Lemma 15: the chain concoction cannot deceive — it crashes witnesses.
  Fixture f;
  const auto s = make_strategy(StrategyKind::kTopologyLiar);
  proto::ClaimSet claims(f.overlay);
  s->setup_lies(f.world, claims);
  const auto crash = proto::compute_crash_set(claims, f.byz, nullptr);
  // Every Byzantine node that actually lied must have crashed at least one
  // honest neighbor (the suppressed edge's witness).
  std::uint32_t crashed = 0;
  for (NodeId v = 0; v < f.overlay.num_nodes(); ++v) {
    if (crash[v]) ++crashed;
  }
  EXPECT_GT(crashed, 0u);
}

TEST(CrashMaximizer, CrashesExactlyTheHonestNeighborhoods) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kCrashMaximizer);
  proto::ClaimSet claims(f.overlay);
  s->setup_lies(f.world, claims);
  const auto crash = proto::compute_crash_set(claims, f.byz, nullptr);
  for (NodeId v = 0; v < f.overlay.num_nodes(); ++v) {
    if (f.byz[v]) continue;
    bool has_byz_neighbor = false;
    for (const NodeId w : f.overlay.g().neighbors(v)) {
      if (f.byz[w]) {
        has_byz_neighbor = true;
        break;
      }
    }
    EXPECT_EQ(crash[v], has_byz_neighbor) << "v=" << v;
  }
}

TEST(Adaptive, CombinesEverything) {
  Fixture f;
  const auto s = make_strategy(StrategyKind::kAdaptive);
  EXPECT_FALSE(s->forwards_floods());
  proto::ClaimSet claims(f.overlay);
  s->setup_lies(f.world, claims);
  for (const NodeId b : f.world.byz_nodes) {
    EXPECT_FALSE(claims.truthful(b));
  }
  std::vector<proto::Injection> inj;
  s->plan_subphase(f.world, {5, 1, 20}, inj);
  EXPECT_GE(inj.size(), 2 * f.world.byz_nodes.size());
}

TEST(InjectionProbe, SkipsPhasesBeforeItsStep) {
  Fixture f;
  InjectionProbe probe(7, 12345);
  std::vector<proto::Injection> inj;
  probe.plan_subphase(f.world, {3, 1, 9}, inj);
  EXPECT_TRUE(inj.empty());  // phase 3 < probe step 7
  probe.plan_subphase(f.world, {7, 1, 30}, inj);
  ASSERT_EQ(inj.size(), f.world.byz_nodes.size());
  for (const auto& i : inj) {
    EXPECT_EQ(i.step, 7u);
    EXPECT_EQ(i.value, 12345u);
  }
}

TEST(World, FullInformationIncludesFutureCoins) {
  Fixture f;
  // The adversary can read any (node, subphase) coin — including ones the
  // protocol has not reached yet — and they match the honest draws.
  EXPECT_EQ(f.world.color(3, 1000), proto::color_at(99, 3, 1000));
  EXPECT_EQ(f.world.true_n, f.overlay.num_nodes());
  EXPECT_EQ(f.world.byz_nodes.size(), 10u);
}

}  // namespace
}  // namespace byz::adv
