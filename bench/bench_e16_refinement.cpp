// E16 (extension) — Estimate refinement toward the paper's open problem of
// a 1 ± o(1) factor: the model-aware readout l_{i*-2} plus one round of
// median smoothing over G-neighborhoods. Compares raw phase ratios with
// refined and smoothed ratios, clean and under attack (including lying
// responses during the smoothing round).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(14);
  util::Table table("E16: raw vs refined vs smoothed estimates of log2 n "
                    "(d=8, fake-color, delta=0.5)");
  table.columns({"n", "attack", "raw mean", "refined mean", "refined sd",
                 "smoothed mean", "smoothed sd", "smoothed min..max"});
  for (const auto n : analysis::pow2_sizes(10, max_exp)) {
    for (const bool attacked : {false, true}) {
      const auto overlay = make_overlay(n, 8, 0xF0 + n);
      std::vector<bool> byz(n, false);
      if (attacked) byz = place_byz(n, 0.5, 0xF0 + n);
      const auto strat = adv::make_strategy(
          attacked ? adv::StrategyKind::kFakeColor
                   : adv::StrategyKind::kHonest);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(overlay, byz, *strat, cfg, 0xD0);
      const auto raw = proto::summarize_accuracy(run, n);

      const auto refined = proto::refine_run(run, 8);
      const auto racc = proto::summarize_refined(refined, byz, n);
      const auto smoothed = proto::smooth_estimates(
          overlay, byz, refined,
          attacked ? proto::EstimateLie::kInflate : proto::EstimateLie::kHonest);
      const auto sacc = proto::summarize_refined(smoothed, byz, n);

      table.row()
          .cell(std::uint64_t{n})
          .cell(attacked ? "fake-color+inflate" : "none")
          .cell(raw.mean_ratio, 3)
          .cell(racc.mean_ratio, 3)
          .cell(racc.stddev_ratio, 3)
          .cell(sacc.mean_ratio, 3)
          .cell(sacc.stddev_ratio, 3)
          .cell(util::format_double(sacc.min_ratio, 2) + " .. " +
                util::format_double(sacc.max_ratio, 2));
    }
  }
  table.note("The refined readout moves the estimate from a ~0.3-0.5x "
             "multiplicative factor to near-1x with additive-O(1) error; "
             "median smoothing over G-neighborhoods collapses the spread "
             "and shrugs off inflating Byzantine responses (they are a "
             "minority of every honest node's G-ball). Under attack the "
             "mean sits below 1 because color injection stops phases early "
             "near Byzantine nodes — the floor is Θ(delta log n), as in E8.");
  analysis::emit(table);
  return 0;
}
