#include "util/csv.hpp"

#include <stdexcept>

namespace byz::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  emit(header);
}

CsvWriter::~CsvWriter() {
  if (!closed_) out_.close();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  emit(cells);
  ++rows_;
}

void CsvWriter::close() {
  out_.close();
  closed_ = true;
  if (out_.fail()) throw std::runtime_error("CsvWriter: write failure on close");
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ << ',';
    const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      out_ << '"';
      for (const char ch : cells[c]) {
        if (ch == '"') out_ << '"';
        out_ << ch;
      }
      out_ << '"';
    } else {
      out_ << cells[c];
    }
  }
  out_ << '\n';
}

}  // namespace byz::util
