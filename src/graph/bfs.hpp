// Breadth-first search toolkit. Everything here operates on the dedup'd
// adjacency view (parallel edges do not change distances).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace byz::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Reusable BFS scratch space: a generation-stamped visited array avoids
/// O(n) clears between traversals, which matters when we run one bounded
/// BFS per node (small-world construction, tree-like classification).
class BfsScratch {
 public:
  void ensure(std::size_t n);

  /// Begins a new traversal epoch; `visited()` resets implicitly.
  void new_epoch() noexcept { ++epoch_; }
  [[nodiscard]] bool visited(NodeId v) const noexcept {
    return stamp_[v] == epoch_;
  }
  void mark(NodeId v) noexcept { stamp_[v] = epoch_; }

  std::vector<NodeId> queue;  ///< reusable frontier storage

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
};

/// Distances from `src` to every node (kUnreachable where disconnected),
/// optionally truncated at `max_depth`.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const Graph& g, NodeId src,
    std::uint32_t max_depth = kUnreachable);

/// One entry of a bounded-ball enumeration: node plus its distance.
struct BallEntry {
  NodeId node;
  std::uint8_t dist;
};

/// Enumerates B(src, radius): all nodes within `radius` hops, including
/// `src` itself at distance 0, in BFS order. Uses caller-provided scratch.
void bfs_ball(const Graph& g, NodeId src, std::uint32_t radius,
              BfsScratch& scratch, std::vector<BallEntry>& out);

/// Multi-source BFS: distance from each node to the nearest source.
[[nodiscard]] std::vector<std::uint32_t> multi_source_distances(
    const Graph& g, std::span<const NodeId> sources,
    std::uint32_t max_depth = kUnreachable);

/// Eccentricity of `src` within its component.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId src);

/// The farthest node from `src` and its distance (ties: smallest id).
struct Farthest {
  NodeId node;
  std::uint32_t dist;
};
[[nodiscard]] Farthest farthest_node(const Graph& g, NodeId src);

}  // namespace byz::graph
