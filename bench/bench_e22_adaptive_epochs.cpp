// E22 — drift-adaptive vs fixed-cadence re-estimation: a deployment that
// re-runs the protocol every epoch pays full flood cost even when almost
// nothing changed; one that waits for accumulated membership drift to
// cross a bound spends estimates where the drift is. The scenario compares
// the two policies on identical churn traces: protocol invocations,
// messages, estimates-per-unit-drift, and what coasting costs — the stale
// in-band fraction on the epochs the adaptive scheduler skipped.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Policy {
  const char* name;
  bool adaptive;
  double threshold;
};

void run_e22(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 12;
  const Policy policies[] = {
      {"fixed", false, 0.0},
      {"adaptive 5%", true, 0.05},
      {"adaptive 10%", true, 0.10},
  };

  util::Table table("E22: adaptive vs fixed re-estimation cadence, d=6 (" +
                    std::to_string(t) + " trials, " + std::to_string(kEpochs) +
                    " epochs, ~3% drift/epoch)");
  table.columns({"n0", "policy", "estimates", "msgs", "est/drift",
                 "fresh in-band", "stale in-band (skipped)"});
  std::vector<double> skipped_band;
  for (const auto n0 : sizes) {
    for (const auto& policy : policies) {
      dynamics::ChurnRunConfig cfg;
      cfg.trace.n0 = n0;
      cfg.trace.epochs = kEpochs;
      cfg.trace.arrival_rate = n0 / 64.0;
      cfg.trace.departure_rate = n0 / 64.0;
      cfg.trace.min_n = n0 / 2;
      cfg.d = 6;
      cfg.delta = 0.7;
      cfg.strategy = adv::StrategyKind::kFakeColor;
      cfg.incremental.incremental = true;
      cfg.incremental.adaptive = policy.adaptive;
      cfg.incremental.drift_threshold = policy.threshold;

      const std::uint64_t base_seed = 0xE22 + n0;
      const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
        auto trial_cfg = cfg;
        trial_cfg.trace.seed =
            bench_core::TrialScheduler::trial_seed(base_seed, i);
        trial_cfg.seed = trial_cfg.trace.seed;
        return dynamics::run_churn(trial_cfg);
      });

      std::uint64_t estimates = 0, epochs_total = 0, msgs = 0;
      double drift_total = 0.0;
      util::OnlineStats fresh, stale_skipped;
      for (const auto& run : runs) {
        for (std::uint32_t e = 0; e < run.epochs.size(); ++e) {
          const auto& ep = run.epochs[e];
          ++epochs_total;
          msgs += ep.messages;
          const auto& trace_epoch = run.trace.epochs[e];
          drift_total += static_cast<double>(
                             trace_epoch.joins + trace_epoch.sybil_joins +
                             trace_epoch.leaves) /
                         static_cast<double>(ep.n_true);
          if (ep.estimated) {
            ++estimates;
            fresh.add(ep.fresh.frac_in_band);
          } else if (ep.stale_nodes > 0) {
            stale_skipped.add(ep.stale_frac_in_band);
            skipped_band.push_back(ep.stale_frac_in_band);
          }
        }
      }
      table.row()
          .cell(std::uint64_t{n0})
          .cell(policy.name)
          .cell(std::to_string(estimates) + "/" +
                std::to_string(epochs_total))
          .cell(static_cast<double>(msgs), 0)
          .cell(drift_total > 0.0
                    ? static_cast<double>(estimates) / drift_total
                    : 0.0,
                1)
          .cell(fresh.mean(), 4)
          .cell(stale_skipped.count() == 0
                    ? std::string("-")
                    : util::format_double(stale_skipped.mean(), 4));

      Json j = Json::object();
      j["estimates"] = estimates;
      j["epochs"] = epochs_total;
      j["messages"] = msgs;
      j["estimates_per_unit_drift"] =
          drift_total > 0.0 ? static_cast<double>(estimates) / drift_total
                            : 0.0;
      j["stale_in_band_skipped"] =
          stale_skipped.count() ? stale_skipped.mean() : 1.0;
      ctx.metric("policy_n" + std::to_string(n0) + "_" +
                     std::string(policy.adaptive
                                     ? "adaptive" +
                                           std::to_string(static_cast<int>(
                                               policy.threshold * 100))
                                     : "fixed"),
                 std::move(j));
    }
  }
  table.note("Same traces, different cadence. The adaptive scheduler "
             "re-estimates when accumulated drift crosses the bound, so it "
             "spends a constant number of estimates per unit drift instead "
             "of per unit time; the price is the stale column — how far "
             "out of band the carried estimates fall on skipped epochs "
             "(small, because Theorem-1 estimates are log-scale and drift "
             "below the bound barely moves log n).");
  ctx.emit(table);
  ctx.record_accuracy("stale_in_band_skipped", skipped_band);
}

}  // namespace

BYZBENCH_REGISTER(e22) {
  ScenarioSpec spec;
  spec.id = "e22";
  spec.title = "Drift-adaptive re-estimation cadence vs fixed";
  spec.claim = "Adaptive epochs: re-estimating on drift (not time) cuts "
               "protocol invocations and messages at near-constant "
               "estimates-per-unit-drift, with bounded staleness on "
               "skipped epochs";
  spec.grid = {{"policy", {"fixed", "adaptive-5", "adaptive-10"}},
               {"epochs", {"12"}},
               pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"policy_n<k>_<policy>.estimates_per_unit_drift",
                  "accuracy.stale_in_band_skipped"};
  spec.run = run_e22;
  return spec;
}
