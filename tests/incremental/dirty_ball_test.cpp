// The dirty-ball contract: after ANY interleaving of joins, leaves, and
// rewires, the incremental snapshot — which re-runs BFS only for nodes the
// tracker marked — must be bitwise identical to the full rebuild. The
// randomized property suite replays 200+ seeded op traces against that
// oracle; the focused tests pin the tracker mechanics (attachment, dirty
// accounting, drain).
#include "incremental/dirty_ball.hpp"

#include <gtest/gtest.h>

#include "incremental/engine.hpp"

namespace byz::incremental {
namespace {

using dynamics::MutableOverlay;

void apply_random_ops(MutableOverlay& overlay, util::Xoshiro256& rng,
                      std::uint32_t ops) {
  for (std::uint32_t i = 0; i < ops; ++i) {
    switch (rng.below(3)) {
      case 0:
        overlay.join(rng);
        break;
      case 1:
        if (overlay.num_alive() > 8) {
          overlay.leave(overlay.random_alive(rng));
        } else {
          overlay.join(rng);
        }
        break;
      default:
        overlay.rewire(overlay.random_alive(rng), rng);
        break;
    }
  }
}

TEST(DirtyBall, IncrementalBallsBitwiseEqualFullRebuildOn200SeededTraces) {
  constexpr std::uint32_t kTraces = 200;
  for (std::uint32_t trace = 1; trace <= kTraces; ++trace) {
    // Vary size, degree (and with it the dirty radius k-1), and op mix.
    const graph::NodeId n0 = 24 + (trace * 7) % 120;
    const std::uint32_t d = 4 + 2 * (trace % 3);  // 4, 6, 8
    MutableOverlay overlay(n0, d, 0, 1000 + trace);
    IncrementalEngine engine(overlay, {/*incremental=*/true,
                                       /*verify_against_full=*/false});
    util::Xoshiro256 rng(trace);

    const std::uint32_t rounds = 1 + trace % 3;
    for (std::uint32_t round = 0; round <= rounds; ++round) {
      if (round > 0) apply_random_ops(overlay, rng, 1 + rng.below(24));
      const auto full = overlay.snapshot();
      const auto inc = engine.snapshot();
      ASSERT_EQ(full.dense_to_stable, inc.dense_to_stable)
          << "trace " << trace << " round " << round;
      ASSERT_TRUE(overlays_identical(full.overlay, inc.overlay))
          << "trace " << trace << " round " << round << " (n0=" << n0
          << ", d=" << d << ")";
    }
  }
}

TEST(DirtyBall, TracksOnlyTheSpliceNeighborhood) {
  MutableOverlay overlay(512, 6, 0, 9);
  IncrementalEngine engine(overlay);
  (void)engine.snapshot();  // bootstrap: tracker drained
  EXPECT_EQ(engine.tracker().dirty_count(), 0u);

  util::Xoshiro256 rng(3);
  overlay.join(rng);
  const auto& tracker = engine.tracker();
  EXPECT_EQ(tracker.splices_seen(), 1u);
  EXPECT_GT(tracker.dirty_count(), 0u);
  // One join touches the joiner plus d anchors/successors; their (k-1)-
  // neighborhood is a vanishing fraction of 512 nodes.
  EXPECT_LT(tracker.dirty_count(), 256u);

  const auto before = engine.stats().balls_reused;
  (void)engine.snapshot();
  EXPECT_GT(engine.stats().balls_reused, before);
  EXPECT_EQ(engine.tracker().dirty_count(), 0u);  // drained again
}

TEST(DirtyBall, DepartedNodesAreMarkedAndDropped) {
  MutableOverlay overlay(64, 6, 0, 5);
  IncrementalEngine engine(overlay);
  (void)engine.snapshot();
  const graph::NodeId victim = 7;
  overlay.leave(victim);
  EXPECT_TRUE(engine.tracker().is_dirty(victim));
  const auto snap = engine.snapshot();
  for (const auto stable : snap.dense_to_stable) EXPECT_NE(stable, victim);
}

TEST(DirtyBall, DetachesOnDestruction) {
  MutableOverlay overlay(64, 6, 0, 5);
  {
    DirtyBallTracker tracker(overlay);
    EXPECT_EQ(overlay.observer(), &tracker);
  }
  EXPECT_EQ(overlay.observer(), nullptr);
  // Splices after detach must not touch freed state.
  util::Xoshiro256 rng(1);
  overlay.join(rng);
  EXPECT_EQ(overlay.num_alive(), 65u);
}

TEST(DirtyBall, MarkAllDirtyCoversTheAliveSet) {
  MutableOverlay overlay(64, 6, 0, 5);
  DirtyBallTracker tracker(overlay);
  tracker.mark_all_dirty();
  EXPECT_EQ(tracker.dirty_count(), 64u);
  tracker.clear();
  EXPECT_EQ(tracker.dirty_count(), 0u);
  EXPECT_EQ(tracker.splices_seen(), 0u);
}

}  // namespace
}  // namespace byz::incremental
