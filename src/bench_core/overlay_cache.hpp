// Shared overlay cache for the orchestrator: scenarios that sweep the same
// (n, d, seed) grid reuse one immutable Overlay instead of re-sampling it.
// Concurrent requests for the same key build once — later callers block on
// the builder's shared_future. Overlays are handed out as
// shared_ptr<const Overlay>, so eviction never invalidates a live user.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "graph/small_world.hpp"

namespace byz::bench_core {

class OverlayCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::size_t entries = 0;
  };

  /// `max_bytes` bounds resident overlay memory (0 = unlimited); least
  /// recently used entries are evicted past the bound.
  explicit OverlayCache(std::uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Returns the overlay for `params`, building it on a miss. Thread-safe;
  /// a concurrent miss on the same key builds exactly once.
  [[nodiscard]] std::shared_ptr<const graph::Overlay> get(
      const graph::OverlayParams& params);

  /// Convenience overload for the common (n, d, seed) case (paper k).
  [[nodiscard]] std::shared_ptr<const graph::Overlay> get(graph::NodeId n,
                                                          std::uint32_t d,
                                                          std::uint64_t seed);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Key {
    graph::NodeId n;
    std::uint32_t d;
    std::uint32_t k;
    std::uint64_t seed;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::shared_future<std::shared_ptr<const graph::Overlay>> overlay;
    std::list<Key>::iterator lru_pos;
    std::uint64_t bytes = 0;  ///< 0 until the build completes
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< front = most recently used
  std::uint64_t max_bytes_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace byz::bench_core
