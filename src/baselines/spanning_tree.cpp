#include "baselines/spanning_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace byz::base {

using graph::NodeId;

SpanningTreeResult run_spanning_tree_count(const graph::Graph& h,
                                           const std::vector<bool>& byz_mask,
                                           NodeId root, TreeAttack attack) {
  const NodeId n = h.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("spanning_tree: mask size mismatch");
  }
  if (root >= n) throw std::out_of_range("spanning_tree: bad root");

  SpanningTreeResult result;
  const auto dist = graph::bfs_distances(h, root);
  std::uint32_t depth = 0;
  for (const auto dv : dist) {
    if (dv != graph::kUnreachable) depth = std::max(depth, dv);
  }
  // Parent assignment (smallest-id BFS parent); one message per node for
  // tree construction, one per node for the converge-cast.
  std::vector<NodeId> parent(n, graph::kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root || dist[v] == graph::kUnreachable) continue;
    for (const NodeId w : h.neighbors(v)) {
      if (dist[w] + 1 == dist[v] &&
          (parent[v] == graph::kInvalidNode || w < parent[v])) {
        parent[v] = w;
      }
    }
  }
  // Converge-cast from the deepest level upward.
  std::vector<std::uint64_t> subtree(n, 1);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[a] > dist[b];
  });
  for (const NodeId v : order) {
    if (v == root || dist[v] == graph::kUnreachable) continue;
    std::uint64_t report = subtree[v];
    if (byz_mask[v]) {
      switch (attack) {
        case TreeAttack::kNone: break;
        case TreeAttack::kInflate: report = 1'000'000'000ULL; break;
        case TreeAttack::kZero: report = 0; break;
      }
    }
    subtree[parent[v]] += report;
    ++result.messages;
  }
  result.messages += n - 1;  // tree-construction beacons
  result.root_count = subtree[root];
  result.rounds = 2 * depth;
  return result;
}

}  // namespace byz::base
