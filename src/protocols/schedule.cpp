#include "protocols/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace byz::proto {

namespace {

void check(const ScheduleConfig& cfg, std::uint32_t i, std::uint32_t d) {
  if (i == 0) throw std::invalid_argument("schedule: phase >= 1 required");
  if (d < 3) throw std::invalid_argument("schedule: d >= 3 required");
  if (!(cfg.epsilon > 0.0 && cfg.epsilon < 1.0)) {
    throw std::invalid_argument("schedule: epsilon in (0,1) required");
  }
}

std::uint32_t clamp_alpha(double a, const ScheduleConfig& cfg) {
  if (!(a > 0.0)) return 1;
  return static_cast<std::uint32_t>(
      std::clamp<double>(std::ceil(a), 1.0, cfg.max_alpha));
}

/// Pseudocode else-branch: 1 + (i+1)/log(1/ε). Shared fallback.
std::uint32_t fallback_alpha(std::uint32_t i, const ScheduleConfig& cfg) {
  const double log_inv_eps = std::log2(1.0 / cfg.epsilon);
  return clamp_alpha(1.0 + static_cast<double>(i + 1) / log_inv_eps, cfg);
}

}  // namespace

std::uint32_t alpha_i(std::uint32_t i, std::uint32_t d,
                      const ScheduleConfig& cfg) {
  check(cfg, i, d);
  const double log_inv_eps = std::log2(1.0 / cfg.epsilon);
  const double log_d = std::log2(static_cast<double>(d));
  const double log_dm1 = std::log2(static_cast<double>(d - 1));
  switch (cfg.policy) {
    case SchedulePolicy::kAppendix: {
      if (i <= 2) return fallback_alpha(i, cfg);
      const double numer = log_inv_eps + i + 1 - log_d;
      const double denom = static_cast<double>(i - 2) * log_dm1;
      return clamp_alpha(numer / denom, cfg);
    }
    case SchedulePolicy::kPseudocode: {
      // Guard: d (d-1)^(i-2) <= 2/ε.
      const double log_guard = log_d + static_cast<double>(static_cast<std::int64_t>(i) - 2) * log_dm1;
      if (log_guard <= std::log2(2.0 / cfg.epsilon)) {
        const double denom = log_d + static_cast<double>(static_cast<std::int64_t>(i) - 2) * log_dm1;
        if (denom <= 0.0) return fallback_alpha(i, cfg);
        return clamp_alpha((log_inv_eps + i + 1) / denom - 1.0, cfg);
      }
      return fallback_alpha(i, cfg);
    }
  }
  throw std::logic_error("alpha_i: unknown policy");
}

std::uint32_t subphases_in_phase(std::uint32_t i, std::uint32_t d,
                                 const ScheduleConfig& cfg) {
  const std::uint32_t a = alpha_i(i, d, cfg);
  return cfg.subphases_times_i ? i * a : a;
}

std::uint64_t rounds_in_phase(std::uint32_t i, std::uint32_t d,
                              const ScheduleConfig& cfg) {
  return static_cast<std::uint64_t>(subphases_in_phase(i, d, cfg)) * i;
}

std::uint64_t rounds_through_phase(std::uint32_t i, std::uint32_t d,
                                   const ScheduleConfig& cfg) {
  std::uint64_t total = 0;
  for (std::uint32_t p = 1; p <= i; ++p) total += rounds_in_phase(p, d, cfg);
  return total;
}

std::uint32_t global_subphase_index(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t d, const ScheduleConfig& cfg) {
  check(cfg, i, d);
  if (j == 0 || j > subphases_in_phase(i, d, cfg)) {
    throw std::out_of_range("global_subphase_index: bad subphase");
  }
  std::uint32_t base = 0;
  for (std::uint32_t p = 1; p < i; ++p) base += subphases_in_phase(p, d, cfg);
  return base + (j - 1);
}

double factor_a(double delta, std::uint32_t k, std::uint32_t d) {
  if (k == 0 || d < 3) throw std::invalid_argument("factor_a: bad k or d");
  return delta / (10.0 * k * std::log2(static_cast<double>(d - 1)));
}

double factor_b(double gamma, std::uint32_t d) {
  if (d == 0) throw std::invalid_argument("factor_b: bad d");
  return 4.0 / std::log2(1.0 + gamma / static_cast<double>(d));
}

}  // namespace byz::proto
