// The small-world overlay of §2.1: G = H ∪ L where (u,v) ∈ E(L) iff
// dist_H(u,v) <= k, k = ceil(d/3). Adding L raises the clustering
// coefficient (neighbors of a node are interconnected) while H supplies the
// expansion; Algorithm 2 exploits both. Nodes do NOT know which of their
// G-edges are H-edges — the protocol reconstructs that (Lemma 3) — but the
// simulator of course does.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace byz::graph {

struct OverlayParams {
  NodeId n = 0;
  std::uint32_t d = 8;       ///< H-degree; even, >= 4
  std::uint32_t k = 0;       ///< L-radius; 0 means the paper's ceil(d/3)
  std::uint64_t seed = 1;    ///< drives the H(n,d) sample
  /// Topology build tag: 0 = the static H(n,d) sample determined by `seed`;
  /// dynamics::MutableOverlay snapshots stamp their (nonzero) mutation
  /// generation here, so caches keyed on the full params can never alias an
  /// epoch snapshot with the static overlay of the same (n, d, seed).
  std::uint64_t generation = 0;
};

/// Distance value meaning "w is not within v's k-ball".
inline constexpr std::uint8_t kNotInBall = 0xFF;

/// A sampled overlay: the H multigraph, its simple view, and the dedup'd
/// G = k-ball adjacency annotated with exact H-distances per slot.
class Overlay {
 public:
  /// Samples H(n,d) and materializes G. Cost: one bounded BFS per node
  /// (OpenMP-parallel); memory O(n * (d-1)^k).
  [[nodiscard]] static Overlay build(const OverlayParams& params);

  /// Materializes G over a caller-supplied H multigraph (must be an exactly
  /// d-regular multigraph on params.n nodes; parallel edges allowed). Used
  /// by dynamics::MutableOverlay to turn an epoch's cycle state into the
  /// immutable overlay the protocols run on; params.seed/generation are
  /// recorded as provenance, not re-sampled.
  [[nodiscard]] static Overlay build_from_h(const OverlayParams& params,
                                            Graph h);

  /// Assembles an overlay from a caller-supplied H **and** ready-made k-ball
  /// adjacency: `g` must be the dedup'd union of all balls B_H(v, k) \ {v}
  /// with `g_dist[slot]` the exact H-distance of each neighbor slot — the
  /// arrays build_from_h would have derived by running one bounded BFS per
  /// node. Skipping that BFS is the incremental snapshot engine's hot path;
  /// it is the CALLER's contract that the balls match H (the engine's debug
  /// mode cross-checks against a full rebuild). Only cheap shape invariants
  /// are validated here.
  [[nodiscard]] static Overlay build_with_balls(
      const OverlayParams& params, Graph h, Graph g,
      std::vector<std::uint8_t> g_dist);

  [[nodiscard]] const OverlayParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return h_.num_nodes(); }

  [[nodiscard]] const Graph& h() const noexcept { return h_; }
  [[nodiscard]] const Graph& h_simple() const noexcept { return h_simple_; }
  [[nodiscard]] const Graph& g() const noexcept { return g_; }

  /// H-distances aligned with g().neighbors(v); values in [1, k].
  [[nodiscard]] std::span<const std::uint8_t> g_dists(NodeId v) const {
    return {g_dist_.data() + g_.first_slot(v),
            g_dist_.data() + g_.first_slot(v) + g_.degree(v)};
  }

  /// Exact H-distance from v to w if w lies within v's k-ball, else
  /// kNotInBall. O(log deg_G(v)).
  [[nodiscard]] std::uint8_t h_dist(NodeId v, NodeId w) const;

  /// v's H-neighbors (distance exactly 1 within G's annotation); equals
  /// h_simple().neighbors(v).
  [[nodiscard]] std::span<const NodeId> h_neighbors(NodeId v) const {
    return h_simple_.neighbors(v);
  }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return h_.memory_bytes() + h_simple_.memory_bytes() + g_.memory_bytes() +
           g_dist_.size();
  }

 private:
  OverlayParams params_;
  std::uint32_t k_ = 0;
  Graph h_;
  Graph h_simple_;
  Graph g_;
  std::vector<std::uint8_t> g_dist_;
};

/// The paper's k = ceil(d/3).
[[nodiscard]] constexpr std::uint32_t paper_k(std::uint32_t d) noexcept {
  return (d + 2) / 3;
}

}  // namespace byz::graph
