// E5 — Algorithm 1 estimate quality in the clean setting (Lemmas 11 + 13):
// every node decides, estimates are a constant factor of log2 n, and the
// factor is stable across two orders of magnitude in n.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e05(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(15));
  const auto t = ctx.trials(5);

  for (const double eps : {0.05, 0.1, 0.2}) {
    struct Cell {
      analysis::AccuracyAggregate agg;
      util::OnlineStats est_mean;
      util::OnlineStats phases;
      util::OnlineStats rounds;
    };
    // (size x trial) units fan out onto the scheduler; aggregation runs
    // in index order afterwards so --jobs never changes the table.
    const auto runs =
        ctx.scheduler().map(sizes.size() * t, [&](std::uint64_t unit) {
          const auto n = sizes[unit / t];
          const auto trial = static_cast<std::uint32_t>(unit % t);
          const auto overlay =
              ctx.overlay(n, 8, util::mix_seed(0xE5 + n, trial));
          proto::ScheduleConfig sched;
          sched.epsilon = eps;
          const auto run = proto::run_basic_counting(
              *overlay, util::mix_seed(0xC5, trial), sched);
          return std::make_pair(proto::summarize_accuracy(run, n),
                                std::make_pair(run.phases_executed,
                                               run.flood_rounds));
        });

    util::Table table("E5: Algorithm 1 accuracy, eps=" +
                      util::format_double(eps, 2) + " (d=8, " +
                      std::to_string(t) + " trials)");
    table.columns({"n", "log2 n", "mean est", "est/log2n mean", "min", "max",
                   "in-band frac", "phases", "rounds"});
    std::vector<double> ratios;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const auto n = sizes[s];
      Cell cell;
      for (std::uint32_t trial = 0; trial < t; ++trial) {
        const auto& [acc, meta] = runs[s * t + trial];
        cell.agg.add(acc);
        cell.est_mean.add(acc.mean_ratio * lg(n));
        cell.phases.add(meta.first);
        cell.rounds.add(static_cast<double>(meta.second));
        ratios.push_back(acc.mean_ratio);
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(lg(n), 1)
          .cell(cell.est_mean.mean(), 2)
          .cell(cell.agg.mean_ratio.mean(), 3)
          .cell(cell.agg.min_ratio.mean(), 3)
          .cell(cell.agg.max_ratio.mean(), 3)
          .cell(cell.agg.frac_in_band.mean(), 4)
          .cell(cell.phases.mean(), 1)
          .cell(cell.rounds.mean(), 0);
    }
    table.note("Constant-factor estimate of log n: the ratio column must be "
               "flat in n (Theorem 1, clean case). Termination tracks "
               "diameter(H) ~ log n / log(d-1), i.e. ratio ~ 1/log2(7) = 0.36.");
    ctx.emit(table);
    ctx.record_accuracy("eps" + util::format_double(eps, 2), ratios);
  }
}

}  // namespace

BYZBENCH_REGISTER(e05) {
  ScenarioSpec spec;
  spec.id = "e05";
  spec.title = "Algorithm 1 clean accuracy";
  spec.claim = "Lemmas 11+13: all nodes decide within a constant factor of "
               "log2 n, flat in n";
  spec.grid = {{"eps", {"0.05", "0.1", "0.2"}}, pow2_axis(10, 15)};
  spec.base_trials = 5;
  spec.metrics = {"accuracy.eps0.05", "accuracy.eps0.10", "accuracy.eps0.20"};
  spec.run = run_e05;
  return spec;
}
