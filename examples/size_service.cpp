// Size service: the full production pipeline a P2P deployment would run —
//   Algorithm 2  →  model-aware refinement  →  one median-smoothing round
// — turning "a constant-factor estimate of log n at most honest nodes"
// into "log n ± O(1), agreed almost everywhere", while Byzantine peers
// attack every stage (fake colors during the protocol, inflated values
// during smoothing).
//
// Runs --trials independent deployments through the shared bench_core
// scheduler (seeds split per trial, results identical for any --jobs).
//
//   $ ./size_service [--n=16384] [--d=8] [--delta=0.5] [--seed=11]
//                    [--trials=4] [--jobs=0]
//
// With --churn the service switches from one-shot deployments to the
// continuous loop of the dynamics subsystem: a churn trace (steady Poisson,
// departure burst, or sybil-join burst) evolves the overlay and the
// protocol re-estimates on every epoch snapshot, reporting fresh vs stale
// accuracy per epoch:
//
//   $ ./size_service --churn [--model=steady|burst|sybil-join]
//                    [--epochs=10] [--arrival=16] [--departure=16]
//                    [--burst-epoch=4] [--burst-fraction=0.25]
//                    [--adversary=none|sybil-burst|targeted-departure|eclipse]
//
// --incremental switches the continuous loop onto the incremental tier:
// dirty-ball snapshot maintenance (only churn-affected BFS balls are
// recomputed per epoch) plus the warm-started protocol (cached verifier
// rows, lazy subphases) — decision-identical to the cold loop, cheaper per
// epoch. --adaptive replaces the fixed per-epoch cadence with the
// drift-adaptive scheduler: re-estimate when accumulated membership drift
// crosses --drift-bound, coast on stale estimates below it. --eps-warm
// (with --incremental) additionally skips warm runs' early phases,
// spending the paper's ε·n outlier budget (--eps-budget, --eps-margin) on
// flood savings; divergence stays within the budget by the warm tier's
// accounting invariant (E25 asserts it against a cold shadow).
//
// --mid-run-churn applies each epoch's joins/leaves DURING its estimation
// run — placed on individual flood rounds — instead of between runs, under
// --policy=silent (membership changes are silence until the next run) or
// --policy=readmit (live neighbor resolution, joiners admitted at phase
// boundaries). --schedule picks the event timing: uniform over the
// expected rounds, frontier-leaves (departures strike the observed flood
// wavefront at its peak rounds), or boundary-join-storm (joins packed
// onto phase-final rounds to stress readmission). --engine-oracle
// additionally replays every epoch's schedule through the message-level
// sim::Engine and reports whether the two tiers agreed bitwise (the E26
// contract). Mid-run churn COMPOSES with the incremental tier (E28):
// with --incremental the run starts from the dirty-ball snapshot (only
// balls the previous run's splices touched are recomputed) with warm
// verifier-row reuse, --adaptive coasts through drift-quiet epochs, and
// --eps-warm enters the phase loop late with the schedule clock
// pre-advanced.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

namespace {

struct StageStats {
  byz::util::OnlineStats ratio;
  byz::util::OnlineStats spread;
  byz::util::OnlineStats coverage;
};

byz::dynamics::ChurnModel parse_model(const std::string& name) {
  for (const auto model : byz::dynamics::all_churn_models()) {
    if (name == byz::dynamics::to_string(model)) return model;
  }
  throw std::invalid_argument("unknown churn model: " + name +
                              " (try steady, burst, sybil-join)");
}

byz::adv::ChurnAdversary parse_churn_adversary(const std::string& name) {
  for (const auto adversary : byz::adv::all_churn_adversaries()) {
    if (name == byz::adv::to_string(adversary)) return adversary;
  }
  throw std::invalid_argument(
      "unknown churn adversary: " + name +
      " (try none, sybil-burst, targeted-departure, eclipse)");
}

byz::proto::MembershipPolicy parse_policy(const std::string& name) {
  if (name == "silent") return byz::proto::MembershipPolicy::kTreatAsSilent;
  if (name == "readmit") {
    return byz::proto::MembershipPolicy::kReadmitNextPhase;
  }
  throw std::invalid_argument("unknown membership policy: " + name +
                              " (try silent, readmit)");
}

/// --trace-out plumbing: dump the Chrome trace collected so far (no-op
/// when the flag was not given).
void write_trace_if_requested(const std::string& path) {
  if (path.empty()) return;
  if (!byz::obs::write_chrome_trace(path)) {
    BYZ_ERROR << "size_service: cannot write trace file " << path;
  }
}

byz::adv::MidRunScheduleStrategy parse_schedule(const std::string& name) {
  for (const auto s : byz::adv::all_midrun_schedule_strategies()) {
    if (name == byz::adv::to_string(s)) return s;
  }
  throw std::invalid_argument(
      "unknown mid-run schedule: " + name +
      " (try uniform, frontier-leaves, boundary-join-storm)");
}

/// Resolves a --backend / --shadow-backend name against the estimator
/// registry; empty is allowed (means "default"). Exits with the known-name
/// list on an unknown name, like byzbench does.
bool backend_name_ok(const std::string& flag, const std::string& name) {
  if (name.empty() || byz::proto::estimator_registered(name)) return true;
  std::cerr << "size_service: unknown " << flag << " '" << name
            << "'; known:";
  for (const auto& known : byz::proto::estimator_names()) {
    std::cerr << " " << known;
  }
  std::cerr << "\n";
  return false;
}

/// The --churn mode: --trials independent churn runs through the shared
/// scheduler, aggregated per epoch.
int run_churn_mode(const byz::util::ArgParser& args) {
  using namespace byz;

  // The continuous loop (incremental/warm/mid-run tiers, engine oracle) is
  // Algorithm-2 machinery; other backends ride along as the per-epoch
  // cross-algorithm shadow instead of replacing the primary.
  const auto backend = args.str("backend");
  if (!backend.empty() && backend != "algo2") {
    std::cerr << "size_service: --churn runs the algo2 stack as the primary "
                 "estimator; use --shadow-backend="
              << backend << " to cross-check it per epoch\n";
    return 2;
  }
  const auto shadow = args.str("shadow-backend");

  dynamics::ChurnRunConfig cfg;
  cfg.shadow_backend = shadow;
  cfg.trace.n0 = static_cast<graph::NodeId>(args.integer("n"));
  cfg.trace.epochs = static_cast<std::uint32_t>(args.integer("epochs"));
  cfg.trace.arrival_rate = args.real("arrival");
  cfg.trace.departure_rate = args.real("departure");
  cfg.trace.model = parse_model(args.str("model"));
  cfg.trace.burst_epoch =
      static_cast<std::uint32_t>(args.integer("burst-epoch"));
  cfg.trace.burst_fraction = args.real("burst-fraction");
  cfg.trace.min_n = std::max<graph::NodeId>(cfg.trace.n0 / 4, 16);
  cfg.d = static_cast<std::uint32_t>(args.integer("d"));
  cfg.delta = args.real("delta");
  cfg.strategy = adv::StrategyKind::kFakeColor;
  cfg.churn_adversary = parse_churn_adversary(args.str("adversary"));
  const bool incremental = args.flag("incremental");
  const bool adaptive = args.flag("adaptive");
  const bool eps_warm = args.flag("eps-warm");
  const bool mid_run = args.flag("mid-run-churn");
  cfg.incremental.incremental = incremental;
  cfg.incremental.warm_start = incremental;
  cfg.incremental.adaptive = adaptive;
  cfg.incremental.drift_threshold = args.real("drift-bound");
  cfg.incremental.eps_warm = eps_warm;
  cfg.incremental.eps_budget = args.real("eps-budget");
  cfg.incremental.eps_margin =
      static_cast<std::uint32_t>(args.integer("eps-margin"));
  const bool engine_oracle = args.flag("engine-oracle");
  cfg.mid_run.enabled = mid_run;
  cfg.mid_run.policy = parse_policy(args.str("policy"));
  cfg.mid_run.schedule = parse_schedule(args.str("schedule"));
  cfg.run_engine = engine_oracle;
  // Divergence audit: digest every tier at the driver's oracle seams and
  // write byzobs/forensics/v1 reports (under --audit-dir) on divergence.
  // Pure read-side — the table below is identical with or without it.
  cfg.audit = args.flag("audit") || !args.str("audit-dir").empty();
  cfg.audit_dir = args.str("audit-dir");
  const auto flood_threads =
      static_cast<std::uint32_t>(args.integer("flood-threads"));
  if (flood_threads > 0) {
    cfg.flood = {proto::FloodMode::kParallel, flood_threads};
  }
  if (eps_warm && !incremental) {
    BYZ_ERROR << "size_service: --eps-warm needs the warm tier "
                 "(pass --incremental)";
    return 2;
  }
  if (engine_oracle && incremental && !mid_run) {
    BYZ_ERROR << "size_service: in snapshot-churn mode --engine-oracle "
                 "compares against the cold message-level engine and cannot "
                 "be combined with --incremental (with --mid-run-churn the "
                 "oracle runs with its own copy of the warm state, so the "
                 "composed combination is fine)";
    return 2;
  }

  const auto seed = static_cast<std::uint64_t>(args.integer("seed"));
  const auto trials = static_cast<std::uint32_t>(args.integer("trials"));
  const bench_core::TrialScheduler scheduler(
      static_cast<unsigned>(args.integer("jobs")));
  const auto runs = scheduler.map(trials, [&](std::uint64_t t) {
    auto trial_cfg = cfg;
    trial_cfg.trace.seed = bench_core::TrialScheduler::trial_seed(seed, t);
    trial_cfg.seed = trial_cfg.trace.seed;
    return dynamics::run_churn(trial_cfg);
  });

  std::string title =
      "Continuous size service under churn (model: " +
      std::string(dynamics::to_string(cfg.trace.model)) + ", adversary: " +
      adv::to_string(cfg.churn_adversary) + ", " + std::to_string(trials) +
      " deployments, " + std::to_string(scheduler.jobs()) + " workers";
  if (incremental) title += ", incremental tier";
  if (adaptive) title += ", adaptive cadence";
  if (eps_warm) title += ", eps-warm";
  if (mid_run) {
    title += std::string(", mid-run churn [") +
             proto::to_string(cfg.mid_run.policy) + ", " +
             adv::to_string(cfg.mid_run.schedule) + "]";
  }
  if (engine_oracle) title += ", engine oracle";
  if (!shadow.empty()) title += ", shadow backend: " + shadow;
  if (cfg.audit) title += ", audited";
  util::Table table(title + ")");
  std::vector<std::string> columns = {
      "epoch",         "n(t)",           "byz",  "joins", "leaves",
      "fresh in-band", "stale in-band",  "mean est/log2n", "msgs"};
  if (adaptive) columns.push_back("estimated");
  if (incremental) columns.push_back("balls redone");
  if (eps_warm) columns.push_back("entry phase");
  if (mid_run) columns.push_back("events mid-run");
  if (engine_oracle) columns.push_back("engine ok");
  if (!shadow.empty()) {
    columns.push_back("shadow agree");
    columns.push_back("shadow in-band");
  }
  table.columns(columns);
  for (std::uint32_t e = 0; e < cfg.trace.epochs; ++e) {
    util::OnlineStats n_t, byz_n, joins, leaves, fresh, stale, ratio, msgs;
    util::OnlineStats estimated, redone, entry, applied_frac, engine_ok;
    util::OnlineStats shadow_agree, shadow_band;
    for (const auto& run : runs) {
      const auto& ep = run.epochs[e];
      n_t.add(static_cast<double>(ep.n_true));
      byz_n.add(static_cast<double>(ep.byz_alive));
      joins.add(static_cast<double>(ep.joins));
      leaves.add(static_cast<double>(ep.leaves));
      msgs.add(static_cast<double>(ep.messages));
      estimated.add(ep.estimated ? 1.0 : 0.0);
      if (ep.estimated) {
        fresh.add(ep.fresh.frac_in_band);
        ratio.add(ep.fresh.mean_ratio);
        redone.add(static_cast<double>(ep.balls_recomputed) /
                   static_cast<double>(ep.n_true));
      }
      if (ep.eps_used) entry.add(static_cast<double>(ep.eps_entry_phase));
      const std::uint64_t events =
          ep.midrun_events_applied + ep.midrun_events_flushed;
      if (events > 0) {
        applied_frac.add(static_cast<double>(ep.midrun_events_applied) /
                         static_cast<double>(events));
      }
      if (ep.estimated) engine_ok.add(ep.engine_match ? 1.0 : 0.0);
      if (ep.shadow_ran) {
        shadow_agree.add(ep.shadow_agree ? 1.0 : 0.0);
        shadow_band.add(ep.shadow_in_band ? 1.0 : 0.0);
      }
      // Runs with no carried-over estimates contribute nothing (averaging
      // in 0.0 would bias the column toward zero).
      if (ep.stale_nodes > 0) stale.add(ep.stale_frac_in_band);
    }
    auto& row = table.row();
    row.cell(std::uint64_t{e})
        .cell(n_t.mean(), 0)
        .cell(byz_n.mean(), 0)
        .cell(joins.mean(), 1)
        .cell(leaves.mean(), 1)
        .cell(fresh.count() == 0 ? std::string("-")
                                 : util::format_double(fresh.mean(), 4))
        .cell(stale.count() == 0 ? std::string("-")
                                 : util::format_double(stale.mean(), 4))
        .cell(ratio.count() == 0 ? std::string("-")
                                 : util::format_double(ratio.mean(), 3))
        .cell(msgs.mean(), 0);
    if (adaptive) {
      row.cell(util::format_double(100.0 * estimated.mean(), 0) + "%");
    }
    if (incremental) {
      row.cell(redone.count() == 0
                   ? std::string("-")
                   : util::format_double(100.0 * redone.mean(), 1) + "%");
    }
    if (eps_warm) {
      row.cell(entry.count() == 0 ? std::string("-")
                                  : util::format_double(entry.mean(), 2));
    }
    if (mid_run) {
      row.cell(applied_frac.count() == 0
                   ? std::string("-")
                   : util::format_double(100.0 * applied_frac.mean(), 1) +
                         "% live");
    }
    if (engine_oracle) {
      row.cell(engine_ok.count() == 0
                   ? std::string("-")
                   : util::format_double(100.0 * engine_ok.mean(), 0) + "%");
    }
    if (!shadow.empty()) {
      row.cell(shadow_agree.count() == 0
                   ? std::string("-")
                   : util::format_double(100.0 * shadow_agree.mean(), 0) +
                         "%");
      row.cell(shadow_band.count() == 0
                   ? std::string("-")
                   : util::format_double(100.0 * shadow_band.mean(), 0) +
                         "%");
    }
  }
  std::string note =
      "Each epoch applies the trace's joins/leaves to the mutable "
      "overlay (O(d) ring splices per event), snapshots it, and "
      "re-runs Algorithm 2 under the fake-color attack. Stale = "
      "estimates surviving from earlier epochs judged against the "
      "current n(t); epoch 0 has none.";
  if (incremental) {
    note += " Incremental tier: only churn-affected BFS balls are "
            "recomputed per snapshot ('balls redone') and the protocol is "
            "warm-started — decisions are identical to the cold loop.";
  }
  if (adaptive) {
    note += " Adaptive cadence: epochs below the drift bound skip "
            "re-estimation and coast on stale estimates.";
  }
  if (eps_warm) {
    note += " eps-warm: warm runs enter the phase loop at the "
            "budget-bounded quantile of the seeded estimates ('entry "
            "phase'), trading up to eps*n divergent decisions for the "
            "skipped early-phase floods.";
  }
  if (mid_run) {
    note += " Mid-run churn: the epoch's events strike DURING the run at "
            "scheduled flood rounds ('events mid-run' = share the run "
            "reached before terminating; the rest apply right after). "
            "Schedule '" +
            std::string(adv::to_string(cfg.mid_run.schedule)) +
            "' decides WHEN the same event budget lands (and, for "
            "frontier-leaves, that departures strike the observed flood "
            "wavefront).";
  }
  if (engine_oracle) {
    note += " Engine oracle: every epoch's run is replayed by the "
            "message-level sim::Engine and 'engine ok' reports bitwise "
            "agreement with the fast path.";
  }
  if (!shadow.empty()) {
    note += " Shadow backend: every estimated epoch also runs '" + shadow +
            "' (an INDEPENDENT algorithm) cold on the post-churn snapshot "
            "alongside a cold algo2 reference; 'shadow agree' is the share "
            "of epochs whose median-estimate ratio landed in the combined "
            "declared band, 'shadow in-band' the share where the shadow "
            "honored its own bound.";
  }
  table.note(note);
  std::cout << table;
  if (cfg.audit) {
    // Surface any forensics the engine-oracle seam wrote (verify_warm
    // seams throw instead, with the report path in the exception message).
    for (const auto& run : runs) {
      for (const auto& ep : run.epochs) {
        if (!ep.forensics_path.empty()) {
          BYZ_ERROR << "size_service: divergence forensics written to "
                    << ep.forensics_path;
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("size_service", "estimate -> refine -> agree");
  args.add_option("n", "network size (churn: bootstrap size)", "16384");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.5");
  args.add_option("seed", "trial-series seed", "11");
  args.add_option("trials", "independent deployments", "4");
  args.add_option("jobs", "scheduler workers (0 = hardware)", "0");
  args.add_flag("churn", "continuous mode: replay a churn trace and "
                         "re-estimate on every epoch snapshot");
  args.add_option("model", "churn model: steady, burst, sybil-join",
                  "steady");
  args.add_option("epochs", "churn epochs", "10");
  args.add_option("arrival", "mean joins per epoch", "16");
  args.add_option("departure", "mean departures per epoch", "16");
  args.add_option("burst-epoch", "epoch of the burst (burst/sybil-join)",
                  "4");
  args.add_option("burst-fraction", "burst size as a fraction of n", "0.25");
  args.add_option("adversary", "churn adversary: none, sybil-burst, "
                               "targeted-departure, eclipse",
                  "none");
  args.add_flag("incremental", "churn mode: dirty-ball snapshots + "
                               "warm-started protocol (decision-identical, "
                               "cheaper per epoch)");
  args.add_flag("adaptive", "churn mode: re-estimate when accumulated "
                            "drift crosses --drift-bound instead of every "
                            "epoch");
  args.add_option("drift-bound", "adaptive cadence: drift fraction that "
                                 "triggers re-estimation",
                  "0.05");
  args.add_flag("eps-warm", "churn mode (with --incremental): skip warm "
                            "runs' early phases, spending the paper's "
                            "eps*n outlier budget on flood savings");
  args.add_option("eps-budget", "eps-warm: divergence budget as a fraction "
                                "of honest nodes",
                  "0.1");
  args.add_option("eps-margin", "eps-warm: safety phases below the "
                                "quantile entry",
                  "1");
  args.add_flag("mid-run-churn", "churn mode: apply each epoch's "
                                 "joins/leaves DURING its estimation run "
                                 "(composes with --incremental/--adaptive/"
                                 "--eps-warm)");
  args.add_option("policy", "mid-run membership policy: silent, readmit",
                  "readmit");
  args.add_option("schedule", "mid-run event timing: uniform, "
                              "frontier-leaves, boundary-join-storm",
                  "uniform");
  args.add_flag("engine-oracle", "churn mode: replay every epoch's run "
                                 "through the message-level engine and "
                                 "report bitwise agreement (works with "
                                 "--mid-run-churn, composed or not; not "
                                 "with snapshot-mode --incremental)");
  args.add_flag("audit", "churn mode: record hierarchical digest trails in "
                         "every tier and explain oracle failures with "
                         "byzobs/forensics/v1 reports (pure read-side)");
  args.add_option("audit-dir", "directory for forensics reports (implies "
                               "--audit; \"\" = embed paths only)",
                  "");
  args.add_option("backend",
                  "counting backend for stage 1 (registered proto::Estimator "
                  "name: algo2, algo1, brc; \"\" = algo2). Non-algo2 "
                  "backends skip the refine/smooth stages — those read "
                  "Algorithm-2 phase semantics. In --churn mode only algo2 "
                  "is accepted (use --shadow-backend)",
                  "");
  args.add_option("shadow-backend",
                  "churn mode: per-epoch cross-algorithm shadow oracle — "
                  "runs this backend cold on every estimated epoch's "
                  "snapshot and checks the combined declared accuracy band "
                  "(\"\" = off)",
                  "");
  args.add_option("flood-threads",
                  "flood kernel: 0 = serial reference, N > 0 = word-packed "
                  "parallel kernel with N threads (results are bitwise "
                  "identical either way)",
                  "0");
  args.add_option("trace-out",
                  "Chrome trace-event JSON file (Perfetto/chrome://tracing; "
                  "empty = tracing off)",
                  "");

  graph::NodeId n;
  std::uint32_t d;
  double delta;
  std::uint64_t seed;
  std::uint32_t trials;
  unsigned jobs;
  std::string trace_out;
  try {
    if (!args.parse(argc, argv)) return 0;
    trace_out = args.str("trace-out");
    {
      const auto flood_threads =
          static_cast<std::uint32_t>(args.integer("flood-threads"));
      if (flood_threads > 0) {
        proto::set_default_flood_exec(
            {proto::FloodMode::kParallel, flood_threads});
      }
    }
    // Observability is opt-in and pure read-side (src/obs/obs.hpp):
    // estimates and tables are identical with or without tracing.
    if (!trace_out.empty()) obs::set_enabled(true);
    if (!backend_name_ok("--backend", args.str("backend")) ||
        !backend_name_ok("--shadow-backend", args.str("shadow-backend"))) {
      return 2;
    }
    if (!args.str("shadow-backend").empty() && !args.flag("churn")) {
      std::cerr << "size_service: --shadow-backend is the per-epoch churn "
                   "oracle; it needs --churn (one-shot runs take "
                   "--backend)\n";
      return 2;
    }
    if (args.flag("churn")) {
      const int rc = run_churn_mode(args);
      write_trace_if_requested(trace_out);
      return rc;
    }
    n = static_cast<graph::NodeId>(args.integer("n"));
    d = static_cast<std::uint32_t>(args.integer("d"));
    delta = args.real("delta");
    seed = static_cast<std::uint64_t>(args.integer("seed"));
    trials = static_cast<std::uint32_t>(args.integer("trials"));
    jobs = static_cast<unsigned>(args.integer("jobs"));
  } catch (const std::exception& e) {
    BYZ_ERROR << "size_service: " << e.what();
    std::cerr << '\n' << args.help();
    return 2;
  }
  const double truth = std::log2(static_cast<double>(n));
  // --backend plumbing: an empty flag keeps the historical pipeline
  // (run_counting + the generic band) bit for bit; naming a backend —
  // including "algo2" — routes stage 1 through the registry and judges it
  // against that backend's OWN declared bound. Refine/smooth read
  // Algorithm-2 phase semantics, so non-algo2 backends stop after stage 1.
  const auto backend = args.str("backend");
  const bool algo2_stack = backend.empty() || backend == "algo2";
  const auto estimator =
      backend.empty() ? nullptr : proto::make_estimator(backend);

  struct TrialOut {
    proto::Accuracy raw;
    proto::RefinedAccuracy refined;
    proto::RefinedAccuracy smoothed;
  };
  const bench_core::TrialScheduler scheduler(jobs);
  const auto outs = scheduler.map(trials, [&](std::uint64_t t) {
    const auto trial_seed = bench_core::TrialScheduler::trial_seed(seed, t);
    graph::OverlayParams params;
    params.n = n;
    params.d = d;
    params.seed = trial_seed;
    const auto overlay = graph::Overlay::build(params);
    util::Xoshiro256 rng(trial_seed ^ 0xB12);
    const auto byz =
        graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);

    // Stage 1: Byzantine counting under the fake-color attack.
    const auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    TrialOut out;
    proto::RunResult run;
    if (estimator != nullptr) {
      run = estimator->run(overlay, byz, *strategy, trial_seed);
      const auto bound = estimator->bound(overlay);
      out.raw = proto::summarize_accuracy(run, n, bound.lo, bound.hi);
    } else {
      run = proto::run_counting(overlay, byz, *strategy, cfg, trial_seed);
      out.raw = proto::summarize_accuracy(run, n);
    }
    if (!algo2_stack) return out;

    // Stage 2: model-aware refinement l_{i*-2}.
    const auto refined = proto::refine_run(run, d);
    out.refined = proto::summarize_refined(refined, byz, n);

    // Stage 3: median smoothing over direct channels; Byzantine neighbors
    // respond with absurd inflation.
    const auto smoothed = proto::smooth_estimates(overlay, byz, refined,
                                                  proto::EstimateLie::kInflate);
    out.smoothed = proto::summarize_refined(smoothed, byz, n);
    return out;
  });

  StageStats raw, refined, smoothed;
  for (const auto& out : outs) {
    raw.ratio.add(out.raw.mean_ratio);
    raw.coverage.add(100.0 * out.raw.frac_in_band);
    refined.ratio.add(out.refined.mean_ratio);
    refined.spread.add(out.refined.stddev_ratio);
    refined.coverage.add(static_cast<double>(out.refined.with_estimate));
    smoothed.ratio.add(out.smoothed.mean_ratio);
    smoothed.spread.add(out.smoothed.stddev_ratio);
    smoothed.coverage.add(static_cast<double>(out.smoothed.with_estimate));
  }

  std::string title = "Size service pipeline (truth: log2 n = " +
                      util::format_double(truth, 2) + ", B = " +
                      std::to_string(sim::derive_byz_count(n, delta)) + ", " +
                      std::to_string(trials) + " deployments, " +
                      std::to_string(scheduler.jobs()) + " workers";
  if (!backend.empty()) title += ", backend: " + backend;
  util::Table table(title + ")");
  table.columns({"stage", "mean est (log2)", "ratio to truth", "spread (sd)",
                 "coverage"});
  table.row()
      .cell(algo2_stack ? "1. Algorithm 2 phase i*"
                        : "1. " + backend + " estimate")
      .cell(raw.ratio.mean() * truth, 2)
      .cell(raw.ratio.mean(), 3)
      .cell("-")
      .cell(util::format_double(raw.coverage.mean(), 1) + "% in band");
  if (algo2_stack) {
    table.row()
        .cell("2. refined l_{i*-2}")
        .cell(refined.ratio.mean() * truth, 2)
        .cell(refined.ratio.mean(), 3)
        .cell(refined.spread.mean(), 3)
        .cell(util::format_double(refined.coverage.mean(), 0) + " nodes");
    table.row()
        .cell("3. median-smoothed")
        .cell(smoothed.ratio.mean() * truth, 2)
        .cell(smoothed.ratio.mean(), 3)
        .cell(smoothed.spread.mean(), 3)
        .cell(util::format_double(smoothed.coverage.mean(), 0) + " nodes");
    table.note("Stage 3's adversary: every Byzantine G-neighbor reports a "
               "10^6 estimate during smoothing; the neighborhood median "
               "ignores it. Means are over " + std::to_string(trials) +
               " seed-split deployments run on the shared trial scheduler.");
  } else {
    table.note("Backend '" + backend +
               "' does not expose Algorithm-2 phase semantics, so the "
               "refine/smooth stages are skipped; 'in band' judges stage 1 "
               "against the backend's own declared EstimatorBound.");
  }
  std::cout << table;
  write_trace_if_requested(trace_out);
  return 0;
}
