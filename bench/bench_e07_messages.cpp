// E7 — Message accounting ("small-sized messages", §2.1): per-node
// per-round fan-out is bounded by the constant d, payloads are O(1) ids +
// O(log n) bits, and the message-level engine's per-round volumes confirm
// the fast path's aggregate accounting (the equivalence suite asserts exact
// equality; here we show the magnitudes).
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e07(RunContext& ctx) {
  {
    const auto sizes = analysis::pow2_sizes(8, std::max(ctx.max_exp(11), 11u));
    struct Row {
      sim::Instrumentation instr;
      std::uint64_t peak = 0;
      double bytes_node_round = 0.0;
    };
    const auto rows = ctx.scheduler().map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      const auto overlay = ctx.overlay(n, 6, 0xE7 + n);
      const auto byz = place_byz(n, 0.7, 0xE7 + n);
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      sim::Engine engine(*overlay, byz, *strat, cfg, 0xC7);
      const auto run = engine.run();
      Row row;
      row.instr = run.instr;
      for (const auto m : engine.round_messages())
        row.peak = std::max(row.peak, m);
      row.bytes_node_round =
          static_cast<double>(run.instr.total_bytes()) /
          (static_cast<double>(n) * static_cast<double>(run.flood_rounds));
      return row;
    });

    util::Table table("E7a: message-level engine accounting (d=6, fake-color)");
    table.columns({"n", "tokens", "token bytes", "verify msgs", "setup msgs",
                   "peak msgs/round", "max node fan-out", "bytes/node/round"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& row = rows[i];
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(row.instr.token_messages)
          .cell(row.instr.token_bytes)
          .cell(row.instr.verify_messages)
          .cell(row.instr.setup_messages)
          .cell(row.peak)
          .cell(row.instr.max_node_round_sends)
          .cell(row.bytes_node_round, 1);
      ctx.count_messages(row.instr);
    }
    table.note("Max per-node fan-out equals the H-degree d: messages are "
               "'small-sized' (constant ids + O(log n) bits) and per-round "
               "load is constant per node.");
    ctx.emit(table);
  }
  {
    const auto max_exp = std::max(ctx.max_exp(15), 12u);
    const auto sizes = analysis::pow2_sizes(12, max_exp);
    struct Row {
      sim::Instrumentation instr;
      std::uint64_t flood_rounds = 0;
    };
    const auto rows = ctx.scheduler().map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      const auto overlay = ctx.overlay(n, 8, 0xE7B + n);
      const auto byz = place_byz(n, 0.5, 0xE7B + n);
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(*overlay, byz, *strat, cfg, 0xC7);
      return Row{run.instr, run.flood_rounds};
    });

    util::Table table("E7b: fast-path aggregate accounting at scale (d=8)");
    table.columns({"n", "tokens", "verify msgs", "verify/token ratio",
                   "total MB", "rounds"});
    std::vector<double> verify_ratio;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& row = rows[i];
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(row.instr.token_messages)
          .cell(row.instr.verify_messages)
          .cell(static_cast<double>(row.instr.verify_messages) /
                    static_cast<double>(row.instr.token_messages),
                1)
          .cell(static_cast<double>(row.instr.total_bytes()) / 1e6, 1)
          .cell(row.flood_rounds);
      verify_ratio.push_back(static_cast<double>(row.instr.verify_messages) /
                             static_cast<double>(row.instr.token_messages));
      ctx.count_messages(row.instr);
    }
    table.note("Verification costs a constant factor over the flood "
               "(2|B(w,k-1)| round trips per received token, k and d "
               "constants).");
    ctx.emit(table);
    ctx.metric("verify_per_token", bench_core::quantiles_json(verify_ratio));
  }
}

}  // namespace

BYZBENCH_REGISTER(e07) {
  ScenarioSpec spec;
  spec.id = "e07";
  spec.title = "message accounting: engine vs fast path";
  spec.claim = "S2.1: small-sized messages, per-node fan-out bounded by d, "
               "verification a constant factor over the flood";
  spec.grid = {{"tier", {"engine", "fastpath"}}, pow2_axis(8, 15)};
  spec.base_trials = 1;
  spec.metrics = {"messages", "verify_per_token"};
  spec.run = run_e07;
  return spec;
}
