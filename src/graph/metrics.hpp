// Whole-graph metrics used by the small-world and expansion experiments:
// clustering coefficient, diameter (exact or bounded), average path length.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace byz::graph {

/// Average local clustering coefficient (Watts–Strogatz definition):
/// mean over nodes of (#edges among neighbors) / C(deg, 2). Nodes with
/// degree < 2 contribute 0. `sample` = 0 means exact over all nodes;
/// otherwise `sample` nodes drawn with the given seed.
[[nodiscard]] double average_clustering(const Graph& simple, std::uint32_t sample,
                                        std::uint64_t seed);

struct DiameterResult {
  std::uint32_t value = 0;  ///< exact diameter or the best lower bound found
  bool exact = false;
};

/// Diameter of the (assumed connected) graph. Runs all-pairs BFS when
/// n <= exact_threshold; otherwise iterated double-sweep from `probes`
/// random starts, which yields a lower bound that is in practice tight on
/// expanders.
[[nodiscard]] DiameterResult diameter(const Graph& g,
                                      std::uint32_t exact_threshold = 4096,
                                      std::uint32_t probes = 8,
                                      std::uint64_t seed = 1);

/// Mean shortest-path length over `sources` sampled BFS roots.
[[nodiscard]] double average_path_length(const Graph& g, std::uint32_t sources,
                                         std::uint64_t seed);

}  // namespace byz::graph
