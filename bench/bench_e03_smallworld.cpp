// E3 — Small-world structure of G = H ∪ L (§2.1): adding the k-hop lattice
// edges raises the clustering coefficient by orders of magnitude while the
// diameter stays logarithmic (the expander part is untouched).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(14);
  util::Table table("E3: small-world structure of G = H ∪ L (d=8, k=3)");
  table.columns({"n", "CC(H)", "CC(G)", "gain", "diam(H)", "log2n/log2(d-1)",
                 "APL(H)", "deg(G) avg"});
  for (const auto n : analysis::pow2_sizes(10, max_exp)) {
    const auto overlay = make_overlay(n, 8, 0xE3 + n);
    const double ch = graph::average_clustering(overlay.h_simple(),
                                                n > 8192 ? 2048 : 0, 0xE3);
    const double cg = graph::average_clustering(overlay.g(), 512, 0xE3);
    const auto diam = graph::diameter(overlay.h_simple(), 4096, 8, 0xE3);
    const double apl = graph::average_path_length(overlay.h_simple(), 8, 0xE3);
    const double avg_deg_g =
        2.0 * static_cast<double>(overlay.g().num_edges()) / n;
    table.row()
        .cell(std::uint64_t{n})
        .cell(ch, 5)
        .cell(cg, 4)
        .cell(cg / (ch > 0 ? ch : 1e-9), 1)
        .cell(std::string(std::to_string(diam.value)) +
              (diam.exact ? "" : "+"))
        .cell(lg(n) / lg(7.0), 2)
        .cell(apl, 2)
        .cell(avg_deg_g, 1);
  }
  table.note("Watts-Strogatz small-world signature: clustering gain of 10-100x "
             "over the random regular graph at unchanged O(log n) diameter. "
             "'+' marks double-sweep lower bounds (n > 4096).");
  analysis::emit(table);
  return 0;
}
