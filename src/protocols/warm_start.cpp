#include "protocols/warm_start.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/refine.hpp"

namespace byz::proto {

using graph::NodeId;

namespace {

NodeId stable_bound(std::span<const NodeId> dense_to_stable) {
  NodeId bound = 0;
  for (const NodeId s : dense_to_stable) bound = std::max(bound, s);
  return bound + 1;
}

}  // namespace

void invalidate_dirty_rows(WarmState& state,
                           std::span<const std::uint8_t> dirty_stable) {
  const std::size_t end =
      std::min(dirty_stable.size(), state.row_valid.size());
  for (std::size_t s = 0; s < end; ++s) {
    if (dirty_stable[s] != 0) state.row_valid[s] = 0;
  }
}

void fold_verifier_rows(WarmState& state, std::uint32_t k,
                        std::span<const NodeId> dense_to_stable,
                        std::span<const std::uint32_t> rows,
                        std::span<const std::uint8_t> chains) {
  const std::size_t n = dense_to_stable.size();
  if (rows.size() < n * k || chains.size() < n) {
    throw std::invalid_argument("fold_verifier_rows: table size mismatch");
  }
  const NodeId bound = stable_bound(dense_to_stable);
  if (state.chain_len.size() < bound) {
    state.chain_len.resize(bound, 0);
    state.row_valid.resize(bound, 0);
  }
  if (state.ball_counts.size() < static_cast<std::size_t>(bound) * k) {
    state.ball_counts.resize(static_cast<std::size_t>(bound) * k, 0);
  }
  state.k = k;
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId s = dense_to_stable[v];
    std::copy_n(rows.data() + v * k, k,
                state.ball_counts.data() + static_cast<std::size_t>(s) * k);
    state.chain_len[s] = chains[v];
    state.row_valid[s] = 1;
  }
}

RefineFold fold_run_estimates(WarmState& state, const RunResult& run,
                              std::span<const NodeId> dense_to_stable,
                              std::uint32_t d) {
  RefineFold out;
  const NodeId bound = stable_bound(dense_to_stable);
  if (state.estimate.size() < bound) {
    state.estimate.resize(bound, 0);
    state.refined.resize(bound, 0.0);
  }
  for (std::size_t v = 0; v < dense_to_stable.size(); ++v) {
    const NodeId s = dense_to_stable[v];
    const std::uint32_t est =
        run.status[v] == NodeStatus::kDecided ? run.estimate[v] : 0;
    if (est == 0) {
      state.estimate[s] = 0;
      state.refined[s] = 0.0;
      continue;
    }
    // The refined readout is a pure function of the decided phase: re-run
    // the calibration only where the phase actually moved.
    if (state.estimate[s] == est) {
      ++out.reused;
    } else {
      state.refined[s] = refined_log_estimate(est, d);
      ++out.recomputed;
    }
    state.estimate[s] = est;
  }
  state.has_run = true;
  return out;
}

EpsEntryPlan choose_eps_entry(const WarmState& state,
                              std::span<const NodeId> dense_to_stable,
                              const std::vector<bool>& byz_mask,
                              std::uint32_t max_phase, std::uint32_t d,
                              const ScheduleConfig& schedule,
                              const WarmConfig& warm_cfg, bool allow_skip) {
  EpsEntryPlan plan;
  obs::Span eps_span("warm.eps_entry");
  const std::size_t n = dense_to_stable.size();
  std::uint64_t honest = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!byz_mask[v]) ++honest;
  }
  plan.budget_nodes = static_cast<std::uint64_t>(
      warm_cfg.eps_budget * static_cast<double>(honest));
  eps_span.arg("budget_nodes", plan.budget_nodes)
      .arg("allow_skip", allow_skip ? 1 : 0);
  if (!allow_skip) return plan;

  // Entry is the QUANTILE of the seeded estimate distribution, not its
  // minimum: a handful of poorly-connected nodes decide at phase 1-2 every
  // epoch (see the file comment), so "skip to seed_min" would never skip
  // anything. The tier pre-spends at most HALF the ε·n budget: entry is
  // the deepest phase such that the predicted at-risk population — nodes
  // seeded BELOW the entry, plus nodes with no seed at all (joiners,
  // previously undecided) — fits in budget/2, minus eps_margin phases of
  // safety for the epoch-to-epoch wobble of fresh colors. The other half
  // of the budget absorbs the realized wobble and the upward cascade from
  // skipped deciders still generating at the entry phase.
  std::vector<std::uint64_t> seeded_at(max_phase + 2, 0);
  std::uint64_t at_risk = 0;  // honest nodes with no usable seed
  for (std::size_t v = 0; v < n; ++v) {
    if (byz_mask[v]) continue;
    const NodeId s = dense_to_stable[v];
    const std::uint32_t est =
        s < state.estimate.size() ? state.estimate[s] : 0;
    if (est == 0) {
      ++at_risk;
    } else {
      ++seeded_at[std::min(est, max_phase + 1)];
    }
  }
  const std::uint64_t allowed = plan.budget_nodes / 2;
  std::uint32_t entry = 1;
  std::uint64_t below = at_risk;
  for (std::uint32_t p = 2; p <= max_phase; ++p) {
    below += seeded_at[p - 1];
    if (below > allowed) break;
    entry = p;
  }
  entry = entry > warm_cfg.eps_margin ? entry - warm_cfg.eps_margin : 1;
  if (entry > 1) {
    plan.eps_used = true;
    plan.entry_phase = entry;
    for (std::uint32_t i = 1; i < entry; ++i) {
      plan.skipped_subphases += subphases_in_phase(i, d, schedule);
    }
  }
  eps_span.arg("entry_phase", plan.entry_phase)
      .arg("skipped_subphases", plan.skipped_subphases);
  return plan;
}

WarmRun run_counting_warm(const graph::Overlay& overlay,
                          const std::vector<bool>& byz_mask,
                          adv::Strategy& strategy, const ProtocolConfig& cfg,
                          std::uint64_t color_seed,
                          std::span<const NodeId> dense_to_stable,
                          std::span<const std::uint8_t> dirty_stable,
                          double drift, const WarmConfig& warm_cfg,
                          WarmState& state, obs::RunDigester* digester) {
  const NodeId n = overlay.num_nodes();
  const std::uint32_t k = overlay.k();
  if (dense_to_stable.size() != n) {
    throw std::invalid_argument("run_counting_warm: stable map size mismatch");
  }
  if (byz_mask.size() != n) {
    throw std::invalid_argument("run_counting_warm: mask size mismatch");
  }

  WarmRun out;

  // Cold-fallback decision: no state to seed from, a k-regime change, or
  // too much drift for the cached state to be worth carrying.
  const bool cold =
      !state.has_run || state.k != k || drift > warm_cfg.max_drift;
  if (!cold) {
    // Report the seeded decision window (observability; E21 tables it).
    for (NodeId v = 0; v < n; ++v) {
      if (byz_mask[v]) continue;
      const NodeId s = dense_to_stable[v];
      if (s >= state.estimate.size() || state.estimate[s] == 0) continue;
      ++out.estimates_seeded;
      if (out.seed_min == 0 || state.estimate[s] < out.seed_min) {
        out.seed_min = state.estimate[s];
      }
      out.seed_max = std::max(out.seed_max, state.estimate[s]);
    }
  }

  // The Verifier is built HERE on both paths so its per-node rows can be
  // cached into `state` afterwards. Cold: every row fresh. Warm: cached
  // rows for clean nodes (ball counts and usable chains are k-ball-local,
  // so a clean ball pins both), recomputed rows for dirty ones. Dirty rows
  // are dropped from the cache up front, so validity alone decides reuse.
  invalidate_dirty_rows(state, dirty_stable);
  static const obs::Counter obs_rows_reused("warm.rows_reused");
  static const obs::Counter obs_rows_recomputed("warm.rows_recomputed");
  std::vector<std::uint32_t> rows(static_cast<std::size_t>(n) * k);
  std::vector<std::uint8_t> chains(n);
  {
    obs::Span rows_span("warm.rows");
    // A parallel kernel selection also batches the row refresh: every v
    // writes a disjoint row slice and the reuse decision is per-node, so
    // the table — and via the reduction, the accounting — is identical at
    // every thread count.
    const FloodExec warm_exec = resolve_flood_exec(warm_cfg.flood);
    const int rows_nt = static_cast<int>(
        warm_exec.mode != FloodMode::kParallel
            ? 1
            : (warm_exec.threads > 0
                   ? warm_exec.threads
                   : std::max(1u, std::thread::hardware_concurrency())));
    (void)rows_nt;
    std::uint64_t reused = 0;
    std::uint64_t recomputed = 0;
#pragma omp parallel for schedule(dynamic, 64) num_threads(rows_nt) \
    if (rows_nt > 1) reduction(+ : reused, recomputed)
    for (std::int64_t sv = 0; sv < static_cast<std::int64_t>(n); ++sv) {
      const auto v = static_cast<NodeId>(sv);
      const NodeId s = dense_to_stable[v];
      const bool reuse = !cold && s < state.row_valid.size() &&
                         state.row_valid[s] != 0;
      if (reuse) {
        std::copy_n(state.ball_counts.data() + static_cast<std::size_t>(s) * k,
                    k, rows.data() + static_cast<std::size_t>(v) * k);
        chains[v] = state.chain_len[s];
        ++reused;
      } else {
        verifier_ball_row(overlay, v,
                          rows.data() + static_cast<std::size_t>(v) * k);
        chains[v] = verifier_chain_len(overlay, byz_mask, v,
                                       cfg.verification.chain_model);
        ++recomputed;
      }
    }
    out.rows_reused = reused;
    out.rows_recomputed = recomputed;
    rows_span.arg("reused", out.rows_reused)
        .arg("recomputed", out.rows_recomputed);
    obs_rows_reused.add(out.rows_reused);
    obs_rows_recomputed.add(out.rows_recomputed);
  }
  fold_verifier_rows(state, k, dense_to_stable, rows, chains);
  const Verifier verifier(overlay, byz_mask, cfg.verification, std::move(rows),
                          std::move(chains));

  out.warm_used = !cold;
  RunControls controls;
  controls.lazy_subphases = !cold;
  controls.verifier = &verifier;
  controls.digester = digester;
  controls.flood = warm_cfg.flood;
  if (digester != nullptr) {
    digester->note(obs::FlightEventKind::kWarmRowReuse, out.rows_reused,
                   out.rows_recomputed);
  }
  // ε-warm phase skip (choose_eps_entry has the entry rule; cold fallbacks
  // and first-ever runs never skip but still report the budget).
  if (warm_cfg.eps_phase_skip) {
    const auto plan = choose_eps_entry(
        state, dense_to_stable, byz_mask, resolve_max_phase(overlay, cfg),
        overlay.params().d, cfg.schedule, warm_cfg, /*allow_skip=*/!cold);
    out.eps_budget_nodes = plan.budget_nodes;
    if (plan.eps_used) {
      out.eps_used = true;
      out.eps_entry_phase = plan.entry_phase;
      out.eps_skipped_subphases = plan.skipped_subphases;
      controls.start_phase = plan.entry_phase;
      if (digester != nullptr) {
        digester->note(obs::FlightEventKind::kEpsEntry, plan.entry_phase,
                       plan.skipped_subphases);
      }
    }
  }
  out.run = run_counting_with(overlay, byz_mask, strategy, cfg, color_seed,
                              controls);

  // Fold this run back into the stable-indexed state for the next epoch
  // (the verifier rows were folded above, before the tables moved).
  const auto fold =
      fold_run_estimates(state, out.run, dense_to_stable, overlay.params().d);
  out.refine_reused = fold.reused;
  out.refine_recomputed = fold.recomputed;
  return out;
}

}  // namespace byz::proto
