#include "protocols/color.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace byz::proto {
namespace {

TEST(Ell, ClosedForm) {
  EXPECT_NEAR(ell(8, 0), 3.0, 1e-12);
  EXPECT_NEAR(ell(8, 1), 3.0 + std::log2(7.0), 1e-12);
  EXPECT_NEAR(ell(8, 2) - ell(8, 1), std::log2(7.0), 1e-12);  // l_r = l_{r-1}+log(d-1)
}

TEST(Ell, RejectsSmallDegree) {
  EXPECT_THROW((void)ell(2, 1), std::invalid_argument);
}

TEST(ContinueThreshold, MatchesDefinition) {
  // thr(i) = l_{i-1} - log2(l_{i-1}).
  for (std::uint32_t i : {1u, 2u, 5u, 10u}) {
    const double li = ell(8, i - 1);
    EXPECT_NEAR(continue_threshold(i, 8), li - std::log2(li), 1e-12);
  }
}

TEST(ContinueThreshold, MonotoneInPhase) {
  double prev = continue_threshold(1, 8);
  for (std::uint32_t i = 2; i <= 30; ++i) {
    const double cur = continue_threshold(i, 8);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(ContinueThreshold, PhaseZeroThrows) {
  EXPECT_THROW((void)continue_threshold(0, 8), std::invalid_argument);
}

TEST(ColorAt, DeterministicRandomAccess) {
  EXPECT_EQ(color_at(42, 7, 3), color_at(42, 7, 3));
  // Different coordinates give (almost surely) different draw streams; over
  // many cells at least one must differ.
  bool any_diff = false;
  for (std::uint32_t s = 0; s < 64 && !any_diff; ++s) {
    any_diff = color_at(42, 7, s) != color_at(43, 7, s);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ColorAt, FollowsGeometricLaw) {
  int ones = 0;
  constexpr int kCells = 100000;
  for (int i = 0; i < kCells; ++i) {
    if (color_at(9, static_cast<std::uint32_t>(i), 0) == 1) ++ones;
  }
  EXPECT_NEAR(ones, kCells / 2, 1500);
}

TEST(Probabilities, Observation4) {
  EXPECT_DOUBLE_EQ(prob_color_eq(1), 0.5);
  EXPECT_DOUBLE_EQ(prob_color_eq(3), 0.125);
  EXPECT_DOUBLE_EQ(prob_color_ge(1), 1.0);
  EXPECT_DOUBLE_EQ(prob_color_ge(4), 0.125);
}

TEST(Probabilities, Observation5MaxLaw) {
  // Pr[max over n' <= r] = (1 - 2^-r)^{n'}.
  EXPECT_NEAR(prob_max_color_le(10, 1024.0), std::pow(1.0 - 1.0 / 1024.0, 1024.0),
              1e-12);
  // Lemma 4 flavor: Pr[max > 2 log n'] <= 1/n'.
  const double n = 4096.0;
  const double p_gt = 1.0 - prob_max_color_le(24, n);  // 2*log2(4096)=24
  EXPECT_LE(p_gt, 1.0 / n + 1e-9);
}

TEST(Probabilities, Lemma5LowerTail) {
  // Pr[max <= log n' - log log n'] < 1/n'.
  const double n = 65536.0;  // log2 = 16, log2 log2 = 4
  EXPECT_LT(prob_max_color_le(12, n), 1.0 / n);
}

}  // namespace
}  // namespace byz::proto
