#include "dynamics/epoch_driver.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/categories.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace byz::dynamics {

namespace {

using graph::NodeId;

/// Seed-stream tags (arbitrary distinct constants).
constexpr std::uint64_t kOverlayStream = 0x0B00;
constexpr std::uint64_t kPlacementStream = 0x0B12;
constexpr std::uint64_t kChurnStream = 0xC002;
constexpr std::uint64_t kColorStream = 0xE000;

bool same_outcome(const proto::RunResult& a, const proto::RunResult& b) {
  if (a.status != b.status || a.estimate != b.estimate) return false;
  if (a.phases_executed != b.phases_executed) return false;
  if (a.flood_rounds != b.flood_rounds) return false;
  const auto& ia = a.instr;
  const auto& ib = b.instr;
  return ia.setup_messages == ib.setup_messages &&
         ia.token_messages == ib.token_messages &&
         ia.verify_messages == ib.verify_messages &&
         ia.injections_attempted == ib.injections_attempted &&
         ia.injections_accepted == ib.injections_accepted &&
         ia.injections_caught == ib.injections_caught &&
         ia.crashes == ib.crashes;
}

}  // namespace

ChurnRunResult run_churn(const ChurnRunConfig& cfg) {
  ChurnRunResult out;
  out.trace = generate_trace(cfg.trace);

  MutableOverlay overlay(cfg.trace.n0, cfg.d, cfg.k,
                         util::mix_seed(cfg.seed, kOverlayStream));

  // Initial Byzantine placement on the bootstrap ids (the paper's uniform
  // model); the mask is indexed by STABLE id and grows with joins.
  util::Xoshiro256 place_rng(util::mix_seed(cfg.seed, kPlacementStream));
  std::vector<bool> byz = graph::random_byzantine_mask(
      cfg.trace.n0, sim::derive_byz_count(cfg.trace.n0, cfg.delta), place_rng);

  util::Xoshiro256 churn_rng(util::mix_seed(cfg.seed, kChurnStream));
  // Last decided estimate per stable id (0 = none yet); feeds staleness.
  std::vector<std::uint32_t> last_estimate(overlay.id_bound(), 0);

  out.epochs.reserve(out.trace.epochs.size());
  for (std::uint32_t e = 0; e < out.trace.epochs.size(); ++e) {
    const ChurnEpoch& epoch = out.trace.epochs[e];

    // Joins first (honest, then sybil), then departures — the bookkeeping
    // order generate_trace assumed when it clamped the counts.
    for (std::uint32_t i = 0; i < epoch.joins; ++i) {
      const auto anchors = adv::plan_join_anchors(
          overlay, byz, cfg.churn_adversary, /*joiner_byzantine=*/false,
          churn_rng);
      overlay.join_at(anchors);
      byz.push_back(false);
    }
    for (std::uint32_t i = 0; i < epoch.sybil_joins; ++i) {
      const auto anchors = adv::plan_join_anchors(
          overlay, byz, cfg.churn_adversary, /*joiner_byzantine=*/true,
          churn_rng);
      overlay.join_at(anchors);
      byz.push_back(true);
    }
    for (std::uint32_t i = 0; i < epoch.leaves; ++i) {
      overlay.leave(adv::pick_departure(overlay, byz, cfg.churn_adversary,
                                        churn_rng));
    }
    if (overlay.num_alive() != epoch.n_after) {
      throw std::logic_error("run_churn: replay diverged from trace n_after");
    }
    // Joiners have no previous estimate: grow the stable-id table BEFORE
    // the staleness scan reads it.
    last_estimate.resize(overlay.id_bound(), 0);

    // Snapshot and re-estimate.
    const auto snap = overlay.snapshot();
    const NodeId n = snap.overlay.num_nodes();
    std::vector<bool> dense_byz(n, false);
    NodeId byz_alive = 0;
    for (NodeId i = 0; i < n; ++i) {
      if (byz[snap.dense_to_stable[i]]) {
        dense_byz[i] = true;
        ++byz_alive;
      }
    }
    const std::uint64_t color_seed =
        util::mix_seed(cfg.seed, kColorStream + e);
    auto strategy = adv::make_strategy(cfg.strategy);
    const auto run = proto::run_counting(snap.overlay, dense_byz, *strategy,
                                         cfg.protocol, color_seed);

    EpochStats stats;
    stats.n_true = n;
    stats.byz_alive = byz_alive;
    stats.joins = epoch.joins + epoch.sybil_joins;
    stats.leaves = epoch.leaves;
    stats.fresh =
        proto::summarize_accuracy(run, n, cfg.band_lo, cfg.band_hi);
    stats.messages = run.instr.total_messages();

    // Staleness: judge the estimates honest survivors still carry from
    // previous epochs against the CURRENT truth.
    const double log_n = std::log2(static_cast<double>(n));
    for (NodeId i = 0; i < n; ++i) {
      if (dense_byz[i]) continue;
      const std::uint32_t est = last_estimate[snap.dense_to_stable[i]];
      if (est == 0) continue;
      ++stats.stale_nodes;
      const double ratio = static_cast<double>(est) / log_n;
      if (ratio >= cfg.band_lo && ratio <= cfg.band_hi) ++stats.stale_in_band;
    }
    stats.stale_frac_in_band =
        stats.stale_nodes == 0
            ? 0.0
            : static_cast<double>(stats.stale_in_band) /
                  static_cast<double>(stats.stale_nodes);

    if (cfg.run_engine) {
      auto strategy2 = adv::make_strategy(cfg.strategy);
      sim::Engine engine(snap.overlay, dense_byz, *strategy2, cfg.protocol,
                         color_seed);
      stats.engine_match = same_outcome(run, engine.run());
    }

    for (NodeId i = 0; i < n; ++i) {
      if (run.status[i] == proto::NodeStatus::kDecided) {
        last_estimate[snap.dense_to_stable[i]] = run.estimate[i];
      }
    }
    out.epochs.push_back(stats);
  }
  return out;
}

std::int32_t recovery_epochs(const ChurnRunResult& result,
                             std::uint32_t burst_epoch, double threshold) {
  for (std::uint32_t e = burst_epoch; e < result.epochs.size(); ++e) {
    if (result.epochs[e].fresh.frac_in_band >= threshold) {
      return static_cast<std::int32_t>(e - burst_epoch);
    }
  }
  return -1;
}

}  // namespace byz::dynamics
