// Span tracer: RAII scoped spans buffered per-thread and exported as
// Chrome trace-event JSON ("traceEvents" of ph:"X" complete events),
// openable in Perfetto or chrome://tracing.
//
// A Span stamps steady-clock microseconds at construction and pushes one
// complete event into the calling thread's buffer at destruction; args
// attached in between land in the event's "args" object. Buffers are
// bounded (overflow is counted, never reallocated past the cap) and are
// moved into a retained list when their thread exits, so worker-pool
// spans survive the join. write_chrome_trace() merges every buffer,
// sorts by timestamp, and emits one JSON document with process/thread
// metadata records.
//
// Like every obs/ facility this is pure read-side (see obs.hpp): spans
// observe; they never influence protocol, RNG, or scheduling state. With
// the runtime switch off a Span is one relaxed load; with
// BYZ_OBS_ENABLED=0 it is an empty inline stub.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace byz::obs {

/// One recorded complete event (ph:"X").
struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   ///< start, microseconds since process anchor
  std::uint64_t dur_us = 0;  ///< wall duration, microseconds
  std::uint32_t tid = 0;     ///< dense per-process thread index
  std::string args;          ///< pre-rendered JSON object body ("" = none)
};

/// Microseconds since the process-wide trace anchor (first use).
[[nodiscard]] std::uint64_t trace_now_us() noexcept;

/// Names the calling thread in the exported trace ("worker-3", ...).
void set_trace_thread_name(std::string_view name);

#if BYZ_OBS_ENABLED
class Span {
 public:
  /// `name` must outlive the span (string literals at every call site).
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key to the event's args object. No-ops when inactive.
  Span& arg(const char* key, std::int64_t value);
  Span& arg(const char* key, double value);
  Span& arg(const char* key, const char* value);
  template <typename T>
    requires std::is_integral_v<T>
  Span& arg(const char* key, T value) {
    return arg(key, static_cast<std::int64_t>(value));
  }

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::string args_;
  bool active_;
};
#else
class Span {
 public:
  explicit Span(const char*) noexcept {}
  template <typename T>
  Span& arg(const char*, T) noexcept {
    return *this;
  }
};
#endif

/// Point-in-time merge of every span buffer, timestamp-sorted.
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> threads;  ///< tid, name
  std::uint64_t dropped = 0;  ///< spans lost to per-thread buffer caps
};

/// Merges retained + live thread buffers. Call after parallel sections
/// have joined; a still-recording thread's tail may be missed.
[[nodiscard]] TraceSnapshot trace_snapshot();

/// Chrome trace-event JSON document for a snapshot.
[[nodiscard]] std::string chrome_trace_json(const TraceSnapshot& snap);

/// Writes chrome_trace_json(trace_snapshot()) to `path`. False on I/O
/// error.
bool write_chrome_trace(const std::string& path);

/// Discards every buffered event (thread registrations persist). Tests.
void reset_trace();

}  // namespace byz::obs
