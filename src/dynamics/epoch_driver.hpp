// Epoch driver: replays a churn trace against a MutableOverlay and re-runs
// the counting protocol on every epoch snapshot — the continuous-estimation
// loop a long-running deployment would operate, versus the repo's one-shot
// experiments. Per epoch it records fresh accuracy against the true n(t),
// the STALENESS of the previous epoch's estimates (how wrong a node that
// skips re-estimation becomes as the network drifts), and optionally runs
// the message-level sim::Engine on the same snapshot to assert the two
// protocol tiers still agree decision-for-decision under churn.
//
// Everything is derived from cfg.seed with SplitMix64 streams and replayed
// sequentially, so a churn run is bitwise reproducible regardless of how
// many scheduler workers fan out the surrounding trials.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/strategies.hpp"
#include "dynamics/churn_trace.hpp"
#include "dynamics/mutable_overlay.hpp"
#include "protocols/estimate.hpp"
#include "protocols/fastpath.hpp"

namespace byz::dynamics {

struct ChurnRunConfig {
  ChurnTraceParams trace;
  std::uint32_t d = 8;
  std::uint32_t k = 0;  ///< 0 = paper k
  /// Initial Byzantine placement: floor(n0^(1-delta)) uniform nodes.
  double delta = 0.7;
  adv::StrategyKind strategy = adv::StrategyKind::kFakeColor;
  adv::ChurnAdversary churn_adversary = adv::ChurnAdversary::kNone;
  proto::ProtocolConfig protocol;
  std::uint64_t seed = 1;
  /// Also run the message-level Engine per snapshot and compare outcomes.
  bool run_engine = false;
  /// Accuracy band for est/log2(n(t)) (summarize_accuracy defaults).
  double band_lo = 0.05;
  double band_hi = 3.0;
};

struct EpochStats {
  graph::NodeId n_true = 0;       ///< membership after this epoch's churn
  graph::NodeId byz_alive = 0;
  std::uint32_t joins = 0;        ///< honest + sybil arrivals applied
  std::uint32_t leaves = 0;
  proto::Accuracy fresh;          ///< this epoch's run, judged against n(t)
  std::uint64_t stale_nodes = 0;  ///< honest survivors carrying a previous
                                  ///< epoch's estimate
  std::uint64_t stale_in_band = 0;
  double stale_frac_in_band = 0.0;
  std::uint64_t messages = 0;     ///< protocol messages this epoch
  bool engine_match = true;       ///< engine == fastpath (when run_engine)
};

struct ChurnRunResult {
  ChurnTrace trace;
  std::vector<EpochStats> epochs;
};

/// Replays cfg.trace and runs estimation on every epoch snapshot.
[[nodiscard]] ChurnRunResult run_churn(const ChurnRunConfig& cfg);

/// Epochs the fresh in-band fraction needs to climb back to >= threshold
/// from `burst_epoch` on: 0 = already recovered at the burst epoch itself,
/// -1 = never within the trace.
[[nodiscard]] std::int32_t recovery_epochs(const ChurnRunResult& result,
                                           std::uint32_t burst_epoch,
                                           double threshold = 0.9);

}  // namespace byz::dynamics
