// Shared plumbing for the registered byzbench scenarios. Each
// bench_eXX.cpp registers one ScenarioSpec against the bench_core
// registry; the byzbench binary links them all and drives them through
// the orchestrator (shared scheduler + overlay cache + JSON emitters).
#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "byzcount.hpp"
#include "obs/digest.hpp"

namespace byz::bench {

using bench_core::GridAxis;
using bench_core::Json;
using bench_core::RunContext;
using bench_core::ScenarioSpec;

/// Byzantine placement for a trial.
inline std::vector<bool> place_byz(graph::NodeId n, double delta,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix_seed(seed, 0x0B12));
  return graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);
}

/// log2 helper.
inline double lg(double x) { return std::log2(x); }

/// Grid axis covering the pow2 sweep [2^lo, 2^hi] (declarative view).
inline GridAxis pow2_axis(std::uint32_t lo, std::uint32_t hi) {
  return {"n", {"2^" + std::to_string(lo) + "..2^" + std::to_string(hi)}};
}

/// Divergence-audit sidecar: DIGEST_<exp>.json under ctx.digest_out(),
/// carrying the order-independent XOR of the scenario's per-run digests.
/// Deliberately OUTSIDE the BENCH manifest so audited and plain byzbench
/// runs stay bitwise identical there; CI diffs the sidecar across --jobs
/// values instead (the XOR fold makes scheduler interleaving irrelevant).
inline void write_digest_sidecar(RunContext& ctx, const std::string& exp,
                                 std::uint64_t digest_xor,
                                 std::uint64_t runs_digested,
                                 std::uint64_t trail_divergences) {
  if (ctx.digest_out().empty()) return;
  std::ofstream out(ctx.digest_out() + "/DIGEST_" + exp + ".json");
  out << "{\n"
      << "  \"schema\": \"byzobs/digest/v1\",\n"
      << "  \"experiment\": \"" << exp << "\",\n"
      << "  \"runs_digested\": " << runs_digested << ",\n"
      << "  \"digest_xor\": \"" << obs::hex_u64(digest_xor) << "\",\n"
      << "  \"trail_divergences\": " << trail_divergences << "\n"
      << "}\n";
}

}  // namespace byz::bench
