#include "obs/obs.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>

namespace byz::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace detail
}  // namespace byz::obs
