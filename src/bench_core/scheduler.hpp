// Shared trial scheduler for the byzbench orchestrator: a work-stealing
// index pool over std::thread. Work items claim indices from an atomic
// counter, so load-balancing is dynamic, but every item derives its own
// seed from (base_seed, index) with SplitMix64 and writes to its own slot —
// results are bitwise identical for any worker count (the determinism
// contract the tests pin down).
//
// This replaces per-binary OpenMP loops for everything above the overlay
// builder: scenarios, Monte-Carlo sweeps, and the examples all share one
// scheduler so a single --jobs flag governs the whole run.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace byz::bench_core {

class TrialScheduler {
 public:
  /// `jobs` worker threads; 0 = hardware concurrency.
  explicit TrialScheduler(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(index) for every index in [0, count). Blocks until all items
  /// finish. Items are claimed dynamically (work stealing via a shared
  /// atomic cursor); with jobs() == 1 the loop runs inline, no threads.
  /// The first exception thrown by any item is rethrown to the caller
  /// after the pool drains.
  void for_each(std::uint64_t count,
                const std::function<void(std::uint64_t)>& fn) const;

  /// Deterministic seed of trial `index` in a series rooted at `base`.
  /// Matches the sim::run_trials convention: mix_seed(base, index + 1).
  [[nodiscard]] static std::uint64_t trial_seed(std::uint64_t base,
                                                std::uint64_t index) noexcept {
    return util::mix_seed(base, index + 1);
  }

  /// Maps fn over [0, count), collecting results by index — the canonical
  /// deterministic fan-out. fn must not depend on execution order.
  template <typename Fn>
  [[nodiscard]] auto map(std::uint64_t count, Fn&& fn) const
      -> std::vector<decltype(fn(std::uint64_t{0}))> {
    std::vector<decltype(fn(std::uint64_t{0}))> results(count);
    for_each(count, [&](std::uint64_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  unsigned jobs_;
};

}  // namespace byz::bench_core
