// Cross-backend oracle: run two independent proto::Estimator backends on
// the SAME overlay, adversary placement, and seed, then assert (a) each
// lands within its own declared accuracy bound and (b) their median
// decided estimates agree within the combined band implied by those
// bounds. The backends share no decision logic — Algorithm 2 reads a
// threshold race's stopping phase, BRC reads a committed-color maximum —
// so agreement is evidence against implementation bugs that same-algorithm
// tier parity can never catch (a bug in shared machinery shifts both tiers
// identically; it will NOT shift two algorithms identically). E31/E32
// sweep this check across the grid; run_churn's shadow backend applies it
// per epoch in production runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimator.hpp"

namespace byz::analysis {

/// One backend's judged outcome on the shared instance.
struct BackendOutcome {
  std::string name;
  proto::EstimatorBound bound;   ///< the backend's own declared contract
  proto::Accuracy accuracy;      ///< judged against that contract's band
  double median_estimate = 0.0;  ///< median decided estimate (0 if none)
  double median_ratio = 0.0;     ///< median_estimate / log2(n)
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  /// The backend's own-bound verdict: some node decided, the in-band
  /// fraction honors the declared ε outlier budget, and the median ratio
  /// itself sits inside the declared band.
  bool in_band = false;
};

/// The pairwise verdict. `ratio` is a.median_estimate / b.median_estimate;
/// [combined_lo, combined_hi] is combined_agreement_bound(a.bound,
/// b.bound). `agree` is the ground-truth-free check (the deployable one);
/// ok() additionally demands both own-bound verdicts — the full oracle
/// E32 guards at zero violations.
struct BackendComparison {
  BackendOutcome a;
  BackendOutcome b;
  double ratio = 0.0;
  double combined_lo = 0.0;
  double combined_hi = 0.0;
  bool agree = false;

  [[nodiscard]] bool ok() const { return agree && a.in_band && b.in_band; }
};

/// Runs `ea` and `eb` cold on identical inputs and judges both. Each
/// backend gets a FRESH adversary strategy of the same kind (strategies
/// carry per-run plan state); both see the same byz_mask and color_seed,
/// so the instance — topology, corruption placement, coin table — is held
/// fixed while the algorithm varies.
[[nodiscard]] BackendComparison compare_backends(
    const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
    adv::StrategyKind strategy, std::uint64_t color_seed,
    const proto::Estimator& ea, const proto::Estimator& eb,
    proto::FloodExec flood = {});

/// The own-bound + median-ratio judgment for a single backend run
/// (compare_backends applies it to both sides; the run_churn shadow uses
/// it directly on the shadow's RunResult).
[[nodiscard]] BackendOutcome judge_backend(const proto::Estimator& estimator,
                                           const graph::Overlay& overlay,
                                           const proto::RunResult& result);

}  // namespace byz::analysis
