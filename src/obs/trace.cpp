#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace byz::obs {

namespace {

// Per-thread event cap: a smoke-scale traced run emits thousands of spans;
// the cap only bites on full-scale runs, where dropped tails are counted
// and reported in the export rather than silently eating memory.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 19;

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
  // Guards `events`/`name` against the scraper; uncontended on the hot
  // path (only the owner thread pushes).
  std::mutex mutex;
};

struct TraceState {
  std::mutex mutex;
  std::uint32_t next_tid = 0;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retained_events;
  std::vector<std::pair<std::uint32_t, std::string>> retained_threads;
  std::uint64_t retained_dropped = 0;
};

TraceState& trace_state() {
  static TraceState* s = new TraceState;  // leaked; see metrics.cpp
  return *s;
}

#if BYZ_OBS_ENABLED
struct ThreadBufferHandle {
  ThreadBuffer* buf;

  ThreadBufferHandle() : buf(new ThreadBuffer) {
    TraceState& s = trace_state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    buf->tid = s.next_tid++;
    s.live.push_back(buf);
  }

  ~ThreadBufferHandle() {
    TraceState& s = trace_state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.retained_events.insert(s.retained_events.end(),
                             std::make_move_iterator(buf->events.begin()),
                             std::make_move_iterator(buf->events.end()));
    s.retained_threads.emplace_back(buf->tid, std::move(buf->name));
    s.retained_dropped += buf->dropped;
    std::erase(s.live, buf);
    delete buf;
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBufferHandle tls;
  return *tls.buf;
}
#endif

}  // namespace

std::uint64_t trace_now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            anchor)
          .count());
}

void set_trace_thread_name(std::string_view name) {
#if BYZ_OBS_ENABLED
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name.assign(name);
#else
  (void)name;
#endif
}

#if BYZ_OBS_ENABLED

Span::Span(const char* name) noexcept : name_(name), active_(enabled()) {
  if (active_) start_us_ = trace_now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_us = trace_now_us();
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back({name_, start_us_, end_us - start_us_, buf.tid,
                        std::move(args_)});
}

Span& Span::arg(const char* key, std::int64_t value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += '"';
  detail::append_json_escaped(args_, key);
  args_ += "\": " + std::to_string(value);
  return *this;
}

Span& Span::arg(const char* key, double value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += '"';
  detail::append_json_escaped(args_, key);
  args_ += "\": ";
  detail::append_json_double(args_, value);
  return *this;
}

Span& Span::arg(const char* key, const char* value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ", ";
  args_ += '"';
  detail::append_json_escaped(args_, key);
  args_ += "\": \"";
  detail::append_json_escaped(args_, value);
  args_ += '"';
  return *this;
}

#endif  // BYZ_OBS_ENABLED

TraceSnapshot trace_snapshot() {
  TraceState& s = trace_state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  TraceSnapshot snap;
  snap.events = s.retained_events;
  snap.threads = s.retained_threads;
  snap.dropped = s.retained_dropped;
  for (ThreadBuffer* buf : s.live) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    snap.events.insert(snap.events.end(), buf->events.begin(),
                       buf->events.end());
    snap.threads.emplace_back(buf->tid, buf->name);
    snap.dropped += buf->dropped;
  }
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
            });
  std::sort(snap.threads.begin(), snap.threads.end());
  return snap;
}

std::string chrome_trace_json(const TraceSnapshot& snap) {
  std::string out;
  out.reserve(128 + snap.events.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"schema\": \"byzobs/trace/v1\", \"dropped\": " +
         std::to_string(snap.dropped) + "},\n";
  out += "\"traceEvents\": [\n";
  out +=
      " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"byzcount\"}}";
  for (const auto& [tid, name] : snap.threads) {
    out += ",\n {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": \"";
    detail::append_json_escaped(
        out, name.empty() ? "thread-" + std::to_string(tid) : name);
    out += "\"}}";
  }
  for (const auto& e : snap.events) {
    out += ",\n {\"name\": \"";
    detail::append_json_escaped(out, e.name);
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    out += ", \"ts\": " + std::to_string(e.ts_us);
    out += ", \"dur\": " + std::to_string(e.dur_us);
    out += ", \"args\": {" + e.args + "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json(trace_snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void reset_trace() {
  TraceState& s = trace_state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.retained_events.clear();
  s.retained_threads.clear();
  s.retained_dropped = 0;
  for (ThreadBuffer* buf : s.live) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace byz::obs
