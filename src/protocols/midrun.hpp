// Mid-protocol churn: the protocol-side interface for overlays that mutate
// WHILE a counting run is in flight (ROADMAP "mid-protocol churn"; the
// dynamics layer implements it over MutableOverlay in dynamics/midrun.*).
//
// The static tiers (cold, warm, ε-warm) all freeze one Overlay snapshot for
// the whole run. MidRunHooks instead lets run_counting_with resolve the
// topology PER ROUND:
//
//   * node_bound() fixes the id space up front — every node that is alive
//     at run start plus every joiner the round schedule will ever splice in.
//     Ids of not-yet-joined nodes are inert (absent) until their round.
//   * begin_round() is invoked by the flood kernel before the sends of each
//     flood step; the implementation applies the join/leave events scheduled
//     for that round, after which alive()/neighbors() answer for the NEW
//     topology. Departed nodes drop messages from their departure round on;
//     joiners receive and relay from their entry round on ("flood from
//     entry").
//   * begin_phase() is invoked by the run loop at each phase boundary. The
//     implementation applies its MembershipPolicy (verification.hpp): under
//     kReadmitNextPhase it reports the joiners to admit as generating
//     participants and returns a Verifier refreshed against the live
//     topology; under kTreatAsSilent it admits nobody and keeps the
//     run-start Verifier.
//
// Contract (E24, tests/sim/midrun_equivalence_test.cpp): with an EMPTY
// round schedule the hooks are pure pass-throughs and run_counting_with
// must produce a RunResult bitwise identical — status, estimates, phase and
// round counts, every instrumentation counter — to the plain static run on
// the same snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "protocols/verification.hpp"

namespace byz::proto {

/// Position of one flood step in the run: phase i (1-based), subphase j
/// within it (1-based), step t within the subphase (1-based, t <= i), and
/// the 0-based global round counter the churn schedule is keyed on.
struct RoundClock {
  std::uint32_t phase = 1;
  std::uint32_t subphase = 1;
  std::uint32_t step = 1;
  std::uint64_t round = 0;
};

/// Live-topology callbacks for a mutating overlay (see file comment).
/// Implemented by dynamics::LiveOverlayFeed; the protocol layer only ever
/// talks to this interface, so protocols/ stays independent of dynamics/.
class MidRunHooks {
 public:
  virtual ~MidRunHooks() = default;

  /// Upper bound of the run's id space: nodes alive at run start occupy
  /// [0, n); scheduled joiners are pre-assigned ids [n, node_bound()).
  /// Fixed for the whole run.
  [[nodiscard]] virtual graph::NodeId node_bound() const = 0;

  /// Is v present in the overlay as of the last begin_round()? Joiners are
  /// dead until their entry round; departed nodes are dead forever after.
  [[nodiscard]] virtual bool alive(graph::NodeId v) const = 0;

  /// True iff v WAS present and has left (distinguishes a departure from a
  /// joiner whose entry round has not arrived — both are !alive()).
  [[nodiscard]] virtual bool departed(graph::NodeId v) const = 0;

  /// v's current H-neighbors (simple view, dedup'd). Only meaningful while
  /// alive(v); resolved against the live rings, so splices applied by
  /// begin_round are visible immediately.
  [[nodiscard]] virtual std::span<const graph::NodeId> neighbors(
      graph::NodeId v) const = 0;

  /// Applies every churn event scheduled for clock.round. Called by the
  /// flood kernel before that round's sends; monotone in clock.round.
  ///
  /// `frontier` is the round's flood wavefront: the sorted run-ids of the
  /// protocol-conformant senders of this round — nodes whose running
  /// maximum improved in the previous step (at step 1, the color
  /// generators), minus crashed nodes, minus Byzantine ids when the
  /// strategy does not relay floods, minus nodes dead as of the PREVIOUS
  /// round (this round's events have not been applied yet — that is what
  /// this call is about to do). Both protocol tiers derive the identical
  /// set, so an implementation may key adversarial decisions on it (the
  /// adaptive adversary of the paper's model watches the wavefront; see
  /// adversary/midrun_schedule.hpp) without breaking engine↔fastpath
  /// equivalence. Derived only when wants_frontier() is true (empty span
  /// otherwise); only valid for the duration of the call.
  virtual void begin_round(const RoundClock& clock,
                           std::span<const graph::NodeId> frontier) = 0;

  /// Does this implementation consume begin_round's frontier? When false
  /// (the default for non-targeting schedules), BOTH tiers skip the
  /// wavefront derivation identically and hand begin_round an empty span
  /// — the gate depends only on the shared hooks instance, so tier
  /// equivalence is unaffected while the common path pays nothing.
  [[nodiscard]] virtual bool wants_frontier() const { return false; }

  /// Phase boundary: applies the membership policy. Fills `admitted` with
  /// the joiner ids that become full (generating) participants this phase
  /// and returns the Verifier the phase's floods must use — refreshed
  /// against the live topology under kReadmitNextPhase, the frozen
  /// run-start Verifier under kTreatAsSilent. Never null.
  [[nodiscard]] virtual const Verifier* begin_phase(
      std::uint32_t phase, std::vector<graph::NodeId>& admitted) = 0;
};

}  // namespace byz::proto
