// Property coverage of the adversarial mid-run schedules
// (adversary/midrun_schedule.hpp): every strategy spends EXACTLY the
// epoch's event budget inside the horizon (matched budgets are what make
// E27's accuracy comparison meaningful), derivation is a pure function of
// its inputs (the --jobs determinism contract), the adversarial timings
// land where their contracts say (phase-final rounds for join storms,
// deep-phase wavefront peaks for frontier leaves), and the frontier
// victim picker only ever strikes honest alive wavefront members.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/midrun_schedule.hpp"
#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

dynamics::ChurnEpoch make_epoch(std::uint32_t joins, std::uint32_t sybils,
                                std::uint32_t leaves) {
  dynamics::ChurnEpoch epoch;
  epoch.joins = joins;
  epoch.sybil_joins = sybils;
  epoch.leaves = leaves;
  return epoch;
}

TEST(AdversarialScheduleTest, EveryStrategyRespectsBudgetAndHorizon) {
  const proto::ScheduleConfig sched;
  for (const auto strategy : adv::all_midrun_schedule_strategies()) {
    for (const std::uint64_t seed : {1u, 7u, 23u, 91u}) {
      for (const std::uint64_t horizon : {1u, 12u, 120u, 800u}) {
        const auto epoch = make_epoch(9, 3, 7);
        const auto s = adv::derive_adversarial_schedule(epoch, horizon, seed,
                                                        strategy, 6, sched);
        EXPECT_EQ(s.joins(), epoch.joins) << adv::to_string(strategy);
        EXPECT_EQ(s.sybil_joins(), epoch.sybil_joins);
        EXPECT_EQ(s.leaves(), epoch.leaves);
        for (const auto& e : s.events) {
          EXPECT_LT(e.round, std::max<std::uint64_t>(horizon, 1))
              << adv::to_string(strategy) << " horizon " << horizon;
        }
        EXPECT_TRUE(std::is_sorted(
            s.events.begin(), s.events.end(),
            [](const auto& a, const auto& b) { return a.round < b.round; }));
      }
    }
  }
}

TEST(AdversarialScheduleTest, DerivationIsAPureFunctionOfItsInputs) {
  const proto::ScheduleConfig sched;
  const auto epoch = make_epoch(11, 2, 9);
  for (const auto strategy : adv::all_midrun_schedule_strategies()) {
    const auto a =
        adv::derive_adversarial_schedule(epoch, 300, 5, strategy, 6, sched);
    const auto b =
        adv::derive_adversarial_schedule(epoch, 300, 5, strategy, 6, sched);
    EXPECT_EQ(a.events, b.events) << adv::to_string(strategy);
    const auto c =
        adv::derive_adversarial_schedule(epoch, 300, 6, strategy, 6, sched);
    if (strategy == adv::MidRunScheduleStrategy::kBoundaryJoinStorm) {
      // Leaves are the uniform component here; joins may collide on the
      // few boundary rounds, so only demand the leave placement moves.
      std::vector<std::uint64_t> ar, cr;
      for (const auto& e : a.events) {
        if (e.kind == dynamics::MidRunEventKind::kLeave) ar.push_back(e.round);
      }
      for (const auto& e : c.events) {
        if (e.kind == dynamics::MidRunEventKind::kLeave) cr.push_back(e.round);
      }
      EXPECT_NE(ar, cr) << "different seeds must move the events";
    } else {
      EXPECT_NE(a.events, c.events) << "different seeds must move the events";
    }
  }
}

TEST(AdversarialScheduleTest, UniformDelegatesToDeriveScheduleBitwise) {
  const proto::ScheduleConfig sched;
  const auto epoch = make_epoch(9, 3, 7);
  const auto uniform = adv::derive_adversarial_schedule(
      epoch, 120, 42, adv::MidRunScheduleStrategy::kUniform, 6, sched);
  const auto reference = dynamics::derive_schedule(epoch, 120, 42);
  EXPECT_EQ(uniform.events, reference.events);
}

TEST(AdversarialScheduleTest, BoundaryStormJoinsLandOnPhaseFinalRounds) {
  const proto::ScheduleConfig sched;
  constexpr std::uint32_t kD = 6;
  const std::uint64_t horizon =
      dynamics::expected_horizon_rounds(1024, kD, sched);
  // The contract's target set: the last round of every phase that
  // completes within the horizon.
  std::set<std::uint64_t> finals;
  for (std::uint32_t i = 1;; ++i) {
    const auto through = proto::rounds_through_phase(i, kD, sched);
    if (through > horizon) break;
    finals.insert(through - 1);
  }
  ASSERT_FALSE(finals.empty());
  const auto s = adv::derive_adversarial_schedule(
      make_epoch(14, 5, 10), horizon, 77,
      adv::MidRunScheduleStrategy::kBoundaryJoinStorm, kD, sched);
  for (const auto& e : s.events) {
    if (e.kind == dynamics::MidRunEventKind::kLeave) continue;
    EXPECT_TRUE(finals.count(e.round) == 1)
        << "join at round " << e.round << " is not phase-final";
  }
}

TEST(AdversarialScheduleTest, FrontierLeavesStrikeDeepPhaseMidSubphase) {
  const proto::ScheduleConfig sched;
  constexpr std::uint32_t kD = 6;
  const std::uint64_t horizon =
      dynamics::expected_horizon_rounds(1024, kD, sched);
  const auto s = adv::derive_adversarial_schedule(
      make_epoch(6, 2, 12), horizon, 77,
      adv::MidRunScheduleStrategy::kFrontierLeaves, kD, sched);
  // Deepest phase started within the horizon, and the deep half below it
  // — leaves must strike there (at mid-subphase steps), never in the
  // shallow warm-up phases where the wavefront is trivial.
  std::uint32_t max_i = 0;
  while (proto::rounds_through_phase(max_i, kD, sched) < horizon) ++max_i;
  const std::uint32_t lo = std::max<std::uint32_t>(1, max_i / 2 + 1);
  const std::uint64_t deep_start =
      proto::rounds_through_phase(lo - 1, kD, sched);
  for (const auto& e : s.events) {
    if (e.kind != dynamics::MidRunEventKind::kLeave) continue;
    EXPECT_GE(e.round, deep_start)
        << "frontier leave scheduled in a shallow phase";
    // Identify the phase/step the round falls in and check it is the
    // contract's peak step.
    std::uint32_t i = lo;
    while (proto::rounds_through_phase(i, kD, sched) <= e.round) ++i;
    const std::uint64_t within =
        e.round - proto::rounds_through_phase(i - 1, kD, sched);
    const auto step = static_cast<std::uint32_t>(within % i) + 1;  // 1-based
    EXPECT_EQ(step, (i + 1) / 2)
        << "leave at round " << e.round << " is not phase " << i
        << "'s mid-subphase peak";
  }
}

TEST(FrontierDeparturePickerTest, OnlyStrikesHonestAliveFrontierMembers) {
  constexpr NodeId kN0 = 128;
  dynamics::MutableOverlay overlay(kN0, 6, 0, 3);
  util::Xoshiro256 place_rng(11);
  const std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.6), place_rng);

  util::Xoshiro256 rng(99);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < 32; ++v) frontier.push_back(v);
  for (int trial = 0; trial < 64; ++trial) {
    const NodeId victim =
        adv::pick_frontier_departure(overlay, byz, frontier, rng);
    EXPECT_TRUE(overlay.is_alive(victim));
    EXPECT_FALSE(byz[victim]);
    EXPECT_TRUE(std::find(frontier.begin(), frontier.end(), victim) !=
                frontier.end());
  }
  // An all-Byzantine frontier falls back to the honest alive pool.
  std::vector<NodeId> byz_frontier;
  for (NodeId v = 0; v < kN0; ++v) {
    if (byz[v]) byz_frontier.push_back(v);
  }
  ASSERT_FALSE(byz_frontier.empty());
  const NodeId fallback =
      adv::pick_frontier_departure(overlay, byz, byz_frontier, rng);
  EXPECT_TRUE(overlay.is_alive(fallback));
  EXPECT_FALSE(byz[fallback]);
}

TEST(FrontierDeparturePickerTest, DeterministicGivenRngState) {
  constexpr NodeId kN0 = 96;
  dynamics::MutableOverlay overlay(kN0, 6, 0, 5);
  const std::vector<bool> byz(kN0, false);
  std::vector<NodeId> frontier{3, 9, 27, 81};
  util::Xoshiro256 rng_a(7);
  util::Xoshiro256 rng_b(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(adv::pick_frontier_departure(overlay, byz, frontier, rng_a),
              adv::pick_frontier_departure(overlay, byz, frontier, rng_b));
  }
}

}  // namespace
}  // namespace byz
