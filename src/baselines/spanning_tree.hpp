// Exact counting by spanning-tree converge-cast (§1.2: "it is possible to
// solve the counting problem exactly ... by simply building a spanning tree
// and converge-casting the nodes' counts to the root"). Works perfectly in
// a clean network; one Byzantine node anywhere in the tree corrupts every
// subtree above it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::base {

enum class TreeAttack : std::uint8_t {
  kNone,       ///< honest counts
  kInflate,    ///< Byzantine children report 10^9 nodes
  kZero,       ///< Byzantine children report 0 (hide their subtrees)
};

struct SpanningTreeResult {
  std::uint64_t root_count = 0;  ///< what the root believes n to be
  std::uint32_t rounds = 0;      ///< 2 * tree depth (build + converge-cast)
  std::uint64_t messages = 0;
};

/// BFS-builds a tree from `root` over H and converge-casts subtree sizes.
[[nodiscard]] SpanningTreeResult run_spanning_tree_count(
    const graph::Graph& h, const std::vector<bool>& byz_mask,
    graph::NodeId root, TreeAttack attack);

}  // namespace byz::base
