// Flight recorder: a bounded ring buffer of recent structured run events
// (round begin/close, phase begin, membership changes, straggler floods,
// warm-row reuse decisions, eps-entry) that is inert until a failure —
// nothing is rendered or written unless a divergence report asks for the
// tail. One recorder serves one run and is confined to the worker thread
// executing that run, so recording is a plain store into a preallocated
// ring: no locks, no atomics, no allocation past construction.
//
// Like every obs/ facility this is pure read-side (see obs.hpp): events
// describe protocol state, they never feed back into it. Under
// BYZ_OBS_ENABLED=0 the recorder is an empty stub and record() compiles
// away at the call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace byz::obs {

enum class FlightEventKind : std::uint8_t {
  kRoundClose,      ///< a = token count this round, b = round digest
  kPhaseBegin,      ///< a = active count, b = admitted count
  kJoin,            ///< a = stable id, b = run id
  kLeave,           ///< a = run id, b = 1 if deferred (floor), else 0
  kStragglerFlood,  ///< a = unfired straggler count, b = flood steps
  kWarmRowReuse,    ///< a = verifier rows reused, b = rows recomputed
  kEpsEntry,        ///< a = entry phase, b = skipped subphases
  kNote,            ///< free-form marker (a, b caller-defined)
};

[[nodiscard]] const char* to_string(FlightEventKind kind);

/// One recorded event, stamped with the digester's hierarchical clock at
/// record time (phase/subphase/round; zero when outside the run loop).
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kNote;
  std::uint32_t phase = 0;
  std::uint32_t subphase = 0;
  std::uint64_t round = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

inline constexpr std::size_t kDefaultFlightCapacity = 256;

#if BYZ_OBS_ENABLED

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultFlightCapacity);

  void record(const FlightEvent& event) noexcept;

  /// The retained events, oldest -> newest (at most capacity() entries).
  [[nodiscard]] std::vector<FlightEvent> tail() const;

  /// Total events ever recorded (>= tail().size(); the difference is how
  /// many the ring has evicted).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t total_ = 0;
};

#else

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t = kDefaultFlightCapacity) noexcept {}
  void record(const FlightEvent&) noexcept {}
  [[nodiscard]] std::vector<FlightEvent> tail() const { return {}; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
};

#endif  // BYZ_OBS_ENABLED

/// JSON array rendering of a recorder's tail (oldest -> newest), used as
/// the "flight_tail" evidence block of a byzobs/forensics/v1 report.
[[nodiscard]] std::string flight_tail_json(const FlightRecorder& recorder);

}  // namespace byz::obs
