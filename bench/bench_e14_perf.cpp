// E14 — Engineering performance: overlay construction, the flood kernel,
// full protocol runs on both tiers, and trial throughput through the
// shared scheduler at 1..N workers. Not a paper claim — this is the
// simulator's own perf trajectory, now emitted as BENCH_e14.json metrics
// (ms/op medians) instead of a google-benchmark dependency.
#include <algorithm>
#include <functional>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

/// Runs `op` `reps` times and returns per-rep milliseconds.
std::vector<double> time_reps(std::uint32_t reps,
                              const std::function<void()>& op) {
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::uint32_t r = 0; r < reps; ++r) {
    util::Timer timer;
    op();
    ms.push_back(timer.milliseconds());
  }
  return ms;
}

void run_e14(RunContext& ctx) {
  const auto reps = ctx.trials(5);
  const auto max_exp = ctx.max_exp(16);

  util::Table table("E14: kernel timings (median of " + std::to_string(reps) +
                    " reps; wall-clock, machine-dependent)");
  table.columns({"kernel", "n", "median ms", "min ms", "items/s"});

  auto report = [&](const std::string& kernel, graph::NodeId n,
                    std::vector<double> ms, double items_per_rep) {
    const double med = util::median(ms);
    const double best = *std::min_element(ms.begin(), ms.end());
    table.row()
        .cell(kernel)
        .cell(std::uint64_t{n})
        .cell(med, 3)
        .cell(best, 3)
        .cell(med > 0 ? items_per_rep / (med / 1e3) : 0.0, 0);
    Json j = Json::object();
    j["n"] = std::uint64_t{n};
    j["median_ms"] = med;
    j["min_ms"] = best;
    ctx.metric(kernel + "_n" + std::to_string(n), std::move(j));
  };

  for (const auto n : analysis::pow2_sizes(12, std::min(max_exp, 16u))) {
    std::uint64_t seed = 1;
    report("overlay_build", n, time_reps(reps, [&] {
             graph::OverlayParams params;
             params.n = n;
             params.d = 8;
             params.seed = seed++;
             const auto overlay = graph::Overlay::build(params);
             (void)overlay.g().num_edges();
           }),
           static_cast<double>(n));
  }

  for (const auto n : analysis::pow2_sizes(12, std::min(max_exp, 16u))) {
    const auto overlay = ctx.overlay(n, 8, 42);
    const std::vector<bool> byz(n, false);
    const std::vector<bool> crashed(n, false);
    const proto::Verifier verifier(*overlay, byz, {});
    proto::FloodWorkspace ws;
    sim::Instrumentation instr;
    std::vector<proto::Color> gen(n);
    util::Xoshiro256 rng(7);
    for (auto& c : gen) c = util::geometric_color(rng);
    proto::FloodParams params;
    params.steps = 6;
    report("flood_subphase", n, time_reps(reps, [&] {
             proto::run_flood_subphase(*overlay, byz, crashed, verifier,
                                       params, gen, {}, ws, instr);
           }),
           static_cast<double>(n) * params.steps);
  }

  for (const auto n : analysis::pow2_sizes(12, std::min(max_exp, 16u))) {
    const auto overlay = ctx.overlay(n, 8, 42);
    std::uint64_t seed = 1;
    report("algo1_fastpath", n, time_reps(reps, [&] {
             const auto run = proto::run_basic_counting(*overlay, seed++);
             (void)run.estimate.size();
           }),
           static_cast<double>(n));
  }

  for (const auto n : analysis::pow2_sizes(12, std::min(max_exp, 14u))) {
    const auto overlay = ctx.overlay(n, 8, 42);
    const auto byz = place_byz(n, 0.5, 99);
    std::uint64_t seed = 1;
    report("algo2_fake_color", n, time_reps(reps, [&] {
             const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
             proto::ProtocolConfig cfg;
             const auto run = proto::run_counting(*overlay, byz, *strat, cfg,
                                                  seed++);
             (void)run.estimate.size();
           }),
           static_cast<double>(n));
  }

  for (const auto n : analysis::pow2_sizes(10, std::min(max_exp, 12u))) {
    const auto overlay = ctx.overlay(n, 6, 42);
    const auto byz = place_byz(n, 0.7, 99);
    std::uint64_t seed = 1;
    report("engine_reference", n, time_reps(reps, [&] {
             const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
             proto::ProtocolConfig cfg;
             sim::Engine engine(*overlay, byz, *strat, cfg, seed++);
             const auto run = engine.run();
             (void)run.estimate.size();
           }),
           static_cast<double>(n));
  }

  // Trial throughput through the shared scheduler: the same 16-trial batch
  // at 1 worker and at the run's --jobs setting.
  {
    sim::TrialConfig cfg;
    cfg.overlay.n = 1 << 12;
    cfg.overlay.d = 8;
    cfg.delta = 0.5;
    cfg.strategy = adv::StrategyKind::kFakeColor;
    cfg.seed = 1;
    const std::uint32_t batch = 16;
    for (const unsigned jobs : {1u, ctx.scheduler().jobs()}) {
      const bench_core::TrialScheduler sched(jobs);
      const auto ms = time_reps(std::max(1u, reps / 2), [&] {
        const auto sweep = analysis::sweep_trials(cfg, batch, sched);
        (void)sweep.results.size();
      });
      report("trial_throughput_j" + std::to_string(jobs), cfg.overlay.n,
             ms, static_cast<double>(batch));
      if (jobs == ctx.scheduler().jobs() && jobs == 1) break;
    }
  }

  table.note("Wall-clock medians; absolute numbers are machine-dependent, "
             "the JSON metrics track the trajectory across PRs. "
             "trial_throughput_jN uses the shared work-stealing scheduler; "
             "per-trial results are seed-derived and identical at any job "
             "count.");
  ctx.emit(table);
}

}  // namespace

BYZBENCH_REGISTER(e14) {
  ScenarioSpec spec;
  spec.id = "e14";
  spec.title = "kernel timings and scheduler throughput";
  spec.claim = "engineering: overlay build, flood kernel, both protocol "
               "tiers, and scheduler scaling tracked across PRs";
  spec.grid = {{"kernel", {"overlay_build", "flood_subphase", "algo1_fastpath",
                           "algo2_fake_color", "engine_reference",
                           "trial_throughput"}},
               pow2_axis(10, 16)};
  spec.base_trials = 5;
  spec.metrics = {"<kernel>_n<size>.median_ms"};
  spec.run = run_e14;
  return spec;
}
