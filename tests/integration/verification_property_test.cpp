// Parameterized acceptance-rule truth table: for every (d, chain length,
// step) combination, the Verifier's decision must equal the Lemma-16 rule
//   accept  ⇔  step == 1  ∨  c == legit_fresh  ∨  chain >= min(step, k).
// Byzantine chains of the exact required length are planted explicitly.
#include <gtest/gtest.h>

#include "protocols/verification.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct Param {
  std::uint32_t d;
  std::uint32_t chain_len;  ///< planted Byzantine chain length (1 = isolated)
  std::uint64_t seed;
};

class AcceptanceTruthTable : public ::testing::TestWithParam<Param> {
 protected:
  /// Plants a Byzantine path of exactly `len` nodes along H edges starting
  /// from node 0; returns the endpoint (the injector).
  static NodeId plant_chain(const Overlay& overlay, std::vector<bool>& byz,
                            std::uint32_t len) {
    NodeId current = 0;
    byz[current] = true;
    for (std::uint32_t i = 1; i < len; ++i) {
      NodeId next = graph::kInvalidNode;
      for (const NodeId w : overlay.h_simple().neighbors(current)) {
        if (!byz[w]) {
          next = w;
          break;
        }
      }
      if (next == graph::kInvalidNode) break;  // dead end (tiny graphs only)
      byz[next] = true;
      current = next;
    }
    return current;
  }
};

TEST_P(AcceptanceTruthTable, MatchesLemma16Rule) {
  const Param p = GetParam();
  OverlayParams op;
  op.n = 512;
  op.d = p.d;
  op.seed = p.seed;
  const Overlay overlay = Overlay::build(op);
  std::vector<bool> byz(overlay.num_nodes(), false);
  const NodeId injector = plant_chain(overlay, byz, p.chain_len);
  const Verifier verifier(overlay, byz, {});
  const std::uint32_t k = overlay.k();

  // The planted path gives the injector a usable chain of >= chain_len
  // (DFS may find longer ones only if the random graph closes a cycle,
  // which the assertion tolerates via >=).
  EXPECT_GE(verifier.usable_chain(injector), std::min(p.chain_len, k + 1));

  for (std::uint32_t step = 1; step <= k + 3; ++step) {
    sim::Instrumentation instr;
    const bool accepted =
        verifier.accept(injector, /*c=*/777777, step, /*legit_fresh=*/0,
                        /*sender_is_byz=*/true, instr);
    const bool expected =
        step == 1 || verifier.usable_chain(injector) >= std::min(step, k);
    EXPECT_EQ(accepted, expected)
        << "d=" << p.d << " chain=" << p.chain_len << " step=" << step;
    // Protocol-conformant forwards are always accepted regardless.
    sim::Instrumentation instr2;
    EXPECT_TRUE(verifier.accept(injector, 42, step, 42, true, instr2));
  }
}

TEST_P(AcceptanceTruthTable, HonestSendersNeverCounted) {
  const Param p = GetParam();
  OverlayParams op;
  op.n = 256;
  op.d = p.d;
  op.seed = p.seed;
  const Overlay overlay = Overlay::build(op);
  const std::vector<bool> byz(overlay.num_nodes(), false);
  const Verifier verifier(overlay, byz, {});
  sim::Instrumentation instr;
  for (std::uint32_t step = 1; step <= 4; ++step) {
    EXPECT_TRUE(verifier.accept(1, 9, step, 9, false, instr));
  }
  EXPECT_EQ(instr.injections_attempted, 0u);
  EXPECT_EQ(instr.injections_caught, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Table, AcceptanceTruthTable,
    ::testing::Values(Param{6, 1, 1}, Param{6, 2, 2}, Param{6, 3, 3},
                      Param{8, 1, 4}, Param{8, 2, 5}, Param{8, 3, 6},
                      Param{8, 4, 7}, Param{12, 2, 8}, Param{12, 4, 9},
                      Param{12, 5, 10}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "d" + std::to_string(info.param.d) + "_chain" +
             std::to_string(info.param.chain_len) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace byz::proto
