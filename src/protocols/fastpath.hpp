// Whole-network protocol execution, array-based (the optimized tier; the
// message-level reference implementation lives in sim/engine.*). Runs
// Algorithm 2 — and Algorithm 1 as the ablation with verification and the
// crash rule disabled — phase by phase until every honest node has decided
// or the phase cap is reached.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/flooding.hpp"
#include "protocols/midrun.hpp"
#include "protocols/schedule.hpp"
#include "protocols/verification.hpp"

namespace byz::obs {
class RunDigester;
}  // namespace byz::obs

namespace byz::proto {

struct ProtocolConfig {
  ScheduleConfig schedule;
  VerificationConfig verification;
  bool crash_rule = true;     ///< Algorithm 2 line 2 (ablation switch)
  std::uint32_t max_phase = 0;  ///< 0 = auto: 4·log2(n)/log2(d-1) + 8
};

/// The Algorithm-1 configuration: no Byzantine countermeasures at all.
[[nodiscard]] inline ProtocolConfig basic_config(ScheduleConfig sched = {}) {
  ProtocolConfig cfg;
  cfg.schedule = sched;
  cfg.verification.enabled = false;
  cfg.crash_rule = false;
  return cfg;
}

/// Resolved phase cap for a given overlay.
[[nodiscard]] std::uint32_t resolve_max_phase(const graph::Overlay& overlay,
                                              const ProtocolConfig& cfg);

/// Runs the (Byzantine) counting protocol. `byz_mask` marks Byzantine
/// nodes (all-false = the clean setting of §3.1/§3.2); `strategy` drives
/// them; `color_seed` keys the coin table shared with the adversary.
[[nodiscard]] RunResult run_counting(const graph::Overlay& overlay,
                                     const std::vector<bool>& byz_mask,
                                     adv::Strategy& strategy,
                                     const ProtocolConfig& cfg,
                                     std::uint64_t color_seed);

/// Extension points for run_counting. The warm-tier pair (lazy_subphases,
/// verifier) is DECISION-EXACT: the per-node status/estimate vectors are
/// bitwise identical to the plain run for every input (only message/round
/// accounting changes). start_phase and midrun deliberately are NOT — they
/// are the ε-warm and mid-run-churn tiers, whose divergence is bounded and
/// accounted elsewhere (warm_start.hpp, dynamics/midrun.hpp).
struct RunControls {
  /// Lazy subphase evaluation: stop each phase at the first subphase after
  /// which every active node has fired. The fired flags are monotone
  /// within a phase and are the ONLY state subphases share, so the skipped
  /// subphases cannot change any decision — they are pure message cost.
  /// (Skipping whole PHASES, by contrast, is never decision-exact: with
  /// fresh per-epoch colors a poorly-connected node fails phase i's
  /// threshold with probability ~(1/2)^(m*alpha_i) for m live neighbors,
  /// so "nobody decides before the previous epoch's minimum" is a
  /// positive-probability bet, not an invariant.)
  bool lazy_subphases = false;
  /// Replaces the internally constructed Verifier; must be equivalent to
  /// Verifier(overlay, byz_mask, cfg.verification). The warm tier
  /// assembles it from cached rows, recomputing only dirty-ball nodes.
  const Verifier* verifier = nullptr;
  /// ε-warm phase skip: start the phase loop at this phase instead of 1,
  /// executing zero subphases for the skipped prefix. Any node that would
  /// have decided below start_phase decides at start_phase or later — a
  /// DIVERGENT decision the ε-warm tier accounts against the paper's ε·n
  /// outlier budget (WarmConfig::eps_*; E25 asserts the budget holds).
  /// 1 = no skip (the exact tiers).
  std::uint32_t start_phase = 1;
  /// Mid-protocol churn hooks (protocols/midrun.hpp): the run sizes its
  /// id space by node_bound(), the flood kernel resolves neighbors live,
  /// and phase boundaries apply the MembershipPolicy (joiner admission +
  /// verifier refresh). byz_mask must then cover node_bound() ids.
  /// Incompatible with lazy_subphases (skipped subphases would shift the
  /// churn-schedule clock, changing which round each event lands on) and
  /// with an external verifier (begin_phase owns the verifier);
  /// run_counting_with throws on those combinations. start_phase > 1 DOES
  /// compose: the global round clock is pre-advanced past the skipped
  /// prefix, so events scheduled there burst-apply at the entry phase's
  /// first round — the ε-warm × mid-run composition the epoch driver
  /// runs. Null = static run.
  MidRunHooks* midrun = nullptr;
  /// Divergence-forensics digester (obs/digest.hpp): when attached the run
  /// folds a hierarchical digest trail (round -> subphase -> phase -> run)
  /// at the same semantic points the message-level engine does, so two
  /// trails localize the first divergent round. Pure read-side; null = no
  /// digesting (the default).
  obs::RunDigester* digester = nullptr;
  /// Flood-kernel selection (flooding.hpp): kSerial is the scalar
  /// reference, kParallel the word-packed OpenMP kernel, kDefault the
  /// process default (BYZ_FLOOD_THREADS / set_default_flood_exec). The
  /// kernels are bitwise-equivalent at every thread count, so this knob is
  /// DECISION-EXACT like the warm-tier pair. A parallel run also batches
  /// the internally constructed Verifier's row precompute.
  FloodExec flood;
};

/// run_counting with explicit controls; run_counting == default controls.
[[nodiscard]] RunResult run_counting_with(const graph::Overlay& overlay,
                                          const std::vector<bool>& byz_mask,
                                          adv::Strategy& strategy,
                                          const ProtocolConfig& cfg,
                                          std::uint64_t color_seed,
                                          const RunControls& controls);

/// Folds the phase-begin protocol state into the digester's open phase
/// accumulator: per-node status/estimate, then the phase verifier's ball
/// rows and usable-chain lengths over ids [0, id_bound). Both execution
/// tiers call this at the same semantic point — right after the phase's
/// verifier is resolved — so the per-phase digests are comparable.
void digest_phase_state(obs::RunDigester& digester, const Verifier& verifier,
                        std::span<const NodeStatus> status,
                        std::span<const std::uint32_t> estimate,
                        graph::NodeId id_bound);

/// Algorithm 1 with no Byzantine nodes at all (§3.1's exposition setting).
[[nodiscard]] RunResult run_basic_counting(const graph::Overlay& overlay,
                                           std::uint64_t color_seed,
                                           ScheduleConfig sched = {});

}  // namespace byz::proto
