// Output channel for the bench binaries: tables go to stdout; when
// BYZCOUNT_CAPTURE=<path> is set, the markdown rendering is also appended
// to that file (how EXPERIMENTS.md's raw sections are produced).
#pragma once

#include <string>

#include "util/table.hpp"

namespace byz::analysis {

/// Prints the table to stdout; appends markdown to $BYZCOUNT_CAPTURE if set.
void emit(const util::Table& table);

/// Emits a free-form headline line (also captured).
void emit_line(const std::string& line);

}  // namespace byz::analysis
