#include "baselines/flood_diameter.hpp"

#include <stdexcept>

#include "graph/bfs.hpp"

namespace byz::base {

using graph::NodeId;

FloodDiameterResult run_flood_diameter(const graph::Graph& h,
                                       const std::vector<bool>& byz_mask,
                                       NodeId leader, bool suppress,
                                       std::uint32_t max_rounds) {
  const NodeId n = h.num_nodes();
  if (byz_mask.size() != n) {
    throw std::invalid_argument("flood_diameter: mask size mismatch");
  }
  if (leader >= n) throw std::out_of_range("flood_diameter: bad leader");

  FloodDiameterResult result;
  result.first_seen.assign(n, graph::kUnreachable);

  // A Byzantine leader does not start the beacon at all.
  if (byz_mask[leader]) {
    result.rounds = 0;
    return result;
  }
  result.first_seen[leader] = 0;
  std::vector<NodeId> frontier{leader};
  std::vector<NodeId> next;
  std::uint32_t round = 0;
  while (!frontier.empty() && round < max_rounds) {
    ++round;
    next.clear();
    for (const NodeId u : frontier) {
      if (suppress && byz_mask[u]) continue;  // blackhole relay
      const auto nbrs = h.neighbors(u);
      result.messages += nbrs.size();
      for (const NodeId v : nbrs) {
        if (result.first_seen[v] == graph::kUnreachable) {
          result.first_seen[v] = round;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  result.rounds = round;
  return result;
}

}  // namespace byz::base
