#!/usr/bin/env python3
"""Render a byzobs/forensics/v1 divergence report for humans.

Usage: divergence_report.py FORENSICS.json [FORENSICS.json ...] [--json]

The C++ oracle seams (compare_midrun_tiers, run_churn's engine oracle and
verify_warm shadows, the E24 anchor) write these documents when two
execution tiers that must agree bitwise stop agreeing. The JSON localizes
the FIRST divergent (phase, subphase, round) by binary-searching the
hierarchical digest trails; this tool turns that into a readable
localization: the headline, a side-by-side digest walk down the divergent
branch with the first mismatch marked, and each tier's flight-recorder
tail around the failure.

Exits 0 after rendering (even for divergent reports — the report IS the
product); nonzero only on unreadable/malformed input, so CI can cat every
report an oracle failure produced without masking the original failure.

Stdlib only.
"""

import argparse
import json
import sys


class ReportError(Exception):
    pass


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        raise ReportError(f"{path}: {err}") from err
    if not isinstance(doc, dict) or doc.get("schema") != "byzobs/forensics/v1":
        raise ReportError(f"{path}: not a byzobs/forensics/v1 document")
    if len(doc.get("tiers", [])) != 2:
        raise ReportError(f"{path}: expected exactly 2 tiers")
    return doc


def index_by(entries, key):
    return {e[key]: e.get("digest", "?") for e in entries or []}


def side_by_side(label, key, a_entries, b_entries, names):
    """Rows of (label value, digest_a, digest_b, marker), first mismatch
    marked and the walk cut shortly after it."""
    a, b = index_by(a_entries, key), index_by(b_entries, key)
    rows = []
    mismatched = False
    for k in sorted(set(a) | set(b)):
        da, db = a.get(k, "(missing)"), b.get(k, "(missing)")
        bad = da != db
        rows.append((f"{label} {k}", da, db, "<-- FIRST DIVERGENCE"
                     if bad and not mismatched else ""))
        if bad and not mismatched:
            mismatched = True
        elif bad:
            rows[-1] = (rows[-1][0], da, db, "(also differs)")
    if not rows:
        return
    wa = max(len(r[1]) for r in rows)
    wl = max(len(r[0]) for r in rows)
    print(f"  digest walk ({names[0]} vs {names[1]}):")
    for name, da, db, mark in rows:
        sep = "==" if da == db else "!="
        print(f"    {name.ljust(wl)}  {da.ljust(wa)} {sep} {db}"
              f"{'  ' + mark if mark else ''}")


def flight_tail(tier, limit):
    tail = tier.get("flight_tail")
    if not tail:
        return
    total = tier.get("flight_total", len(tail))
    shown = tail[-limit:] if limit else tail
    print(f"  flight recorder [{tier.get('name', '?')}]: last "
          f"{len(shown)} of {total} events")
    for e in shown:
        print(f"    p{e.get('phase', 0)}/s{e.get('subphase', 0)}"
              f"/r{e.get('round', 0)}  {e.get('kind', '?'):<16}"
              f" a={e.get('a', 0)} b={e.get('b', 0)}")


def render(path, doc, tail_limit):
    div = doc.get("first_divergence", {})
    level = div.get("level", "none")
    a, b = doc["tiers"]
    names = (a.get("name", "tier A"), b.get("name", "tier B"))
    print(f"== {path} ==")
    print(f"  scenario : {doc.get('scenario', '?')}  seed "
          f"{doc.get('seed', '?')}  flags: {doc.get('flags', '') or '-'}")
    print(f"  headline : {doc.get('detail', '?')}")
    if level == "none":
        print("  verdict  : trails agree at every level (outcome-level "
              "divergence only — see the headline)")
    else:
        where = [f"level={level}"]
        for k in ("phase", "subphase", "round"):
            if k in div:
                where.append(f"{k}={div[k]}")
        print(f"  verdict  : first divergence at {', '.join(where)}")
    print(f"  run digests: {names[0]} {a.get('run_digest', '?')}  |  "
          f"{names[1]} {b.get('run_digest', '?')}")
    print(f"  extent   : {names[0]} {a.get('phases_total', 0)} phases / "
          f"{a.get('subphases_total', 0)} subphases / "
          f"{a.get('rounds_total', 0)} rounds; {names[1]} "
          f"{b.get('phases_total', 0)} / {b.get('subphases_total', 0)} / "
          f"{b.get('rounds_total', 0)}")
    side_by_side("phase", "phase", a.get("phases"), b.get("phases"), names)
    if "divergent_phase_subphases" in a or "divergent_phase_subphases" in b:
        side_by_side("subphase", "subphase",
                     a.get("divergent_phase_subphases"),
                     b.get("divergent_phase_subphases"), names)
    if "divergent_subphase_rounds" in a or "divergent_subphase_rounds" in b:
        side_by_side("round", "round", a.get("divergent_subphase_rounds"),
                     b.get("divergent_subphase_rounds"), names)
    for tier in (a, b):
        flight_tail(tier, tail_limit)
    repro = doc.get("repro")
    if repro:
        print(f"  repro    : {repro}")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+",
                        help="byzobs/forensics/v1 JSON files")
    parser.add_argument("--json", action="store_true",
                        help="re-emit the parsed documents as one JSON "
                             "array instead of rendering")
    parser.add_argument("--tail", type=int, default=12,
                        help="flight-recorder events to show per tier "
                             "(0 = all; default 12)")
    args = parser.parse_args(argv[1:])

    docs = []
    for path in args.reports:
        try:
            docs.append((path, load(path)))
        except ReportError as err:
            print(f"ERROR: {err}", file=sys.stderr)
            return 1
    if args.json:
        json.dump([doc for _, doc in docs], sys.stdout, indent=2)
        print()
        return 0
    for i, (path, doc) in enumerate(docs):
        if i:
            print()
        render(path, doc, args.tail)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
