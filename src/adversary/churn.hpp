// Join-time adversary strategies for the dynamics subsystem. The static
// strategies (strategies.hpp) attack a FROZEN topology through messages;
// these attack the topology itself at the churn surface, the operational
// threat model of real DHT deployments:
//   * kSybilBurst        — the Byzantine join burst of a sybil attack: the
//                          sybils splice randomly, so their damage is the
//                          paper's random-placement model with a budget
//                          that jumps mid-trace;
//   * kTargetedDeparture — the adversary steers WHICH nodes leave: honest
//                          ring-neighbors of Byzantine nodes, thickening
//                          Byzantine chains and crash neighborhoods;
//   * kEclipse           — joining Byzantine nodes anchor EVERY ring at one
//                          victim, wrapping it in Byzantine direct
//                          neighbors (the eclipse placement of the §4 open
//                          problem, reached through legal joins).
//
// All three act at event-REPLAY time: the trace fixes how many events an
// epoch has, these strategies decide who. The third axis — WHEN events
// strike relative to an in-flight run, and frontier-aware victim choice —
// is the mid-run schedule adversary in midrun_schedule.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamics/mutable_overlay.hpp"
#include "util/rng.hpp"

namespace byz::adv {

enum class ChurnAdversary : std::uint8_t {
  kNone,               ///< uniform departures, random splices (clean churn)
  kSybilBurst,         ///< Byzantine joiners, random placement
  kTargetedDeparture,  ///< departures target Byzantine ring-neighbors
  kEclipse,            ///< Byzantine joiners wrap a victim in every ring
};

[[nodiscard]] const char* to_string(ChurnAdversary adversary);
[[nodiscard]] std::vector<ChurnAdversary> all_churn_adversaries();

/// The eclipse victim: the lowest-id alive honest node (deterministic, so
/// the whole sybil burst piles onto one target). kInvalidNode if none.
[[nodiscard]] graph::NodeId eclipse_victim(
    const dynamics::MutableOverlay& overlay, const std::vector<bool>& byz);

/// Picks the victim of one departure event. kTargetedDeparture picks an
/// honest ring-neighbor of an alive Byzantine node when one exists (falling
/// back to uniform honest); every other adversary departs uniformly over
/// the alive set. `byz` is indexed by stable id.
[[nodiscard]] graph::NodeId pick_departure(
    const dynamics::MutableOverlay& overlay, const std::vector<bool>& byz,
    ChurnAdversary adversary, util::Xoshiro256& rng);

/// Ring anchors for one joining node (one per cycle). Honest joiners and
/// non-eclipse Byzantine joiners splice uniformly at random; kEclipse
/// Byzantine joiners anchor every ring at the eclipse victim.
[[nodiscard]] std::vector<graph::NodeId> plan_join_anchors(
    const dynamics::MutableOverlay& overlay, const std::vector<bool>& byz,
    ChurnAdversary adversary, bool joiner_byzantine, util::Xoshiro256& rng);

}  // namespace byz::adv
