#include "protocols/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace byz::proto {
namespace {

TEST(Alpha, AppendixFormulaAtI3) {
  ScheduleConfig cfg;
  cfg.epsilon = 0.1;
  cfg.policy = SchedulePolicy::kAppendix;
  // i=3, d=8: ceil((log2(10) + 4 - 3) / (1 * log2 7)) = ceil(4.32/2.81) = 2.
  EXPECT_EQ(alpha_i(3, 8, cfg), 2u);
}

TEST(Alpha, AppendixSatisfiesLemma26Inequality) {
  // (1 / (d (d-1)^(i-2)))^{α_i} <= ε / 2^{i+1} for i >= 3.
  ScheduleConfig cfg;
  cfg.epsilon = 0.1;
  for (std::uint32_t d : {6u, 8u, 12u}) {
    for (std::uint32_t i = 3; i <= 20; ++i) {
      const auto a = alpha_i(i, d, cfg);
      const double fail_prob =
          std::pow(1.0 / (d * std::pow(d - 1.0, i - 2.0)), a);
      EXPECT_LE(fail_prob, cfg.epsilon / std::pow(2.0, i + 1.0) + 1e-12)
          << "d=" << d << " i=" << i;
    }
  }
}

TEST(Alpha, SmallPhasesUseFallback) {
  ScheduleConfig cfg;
  cfg.epsilon = 0.1;
  // i ∈ {1,2}: 1 + (i+1)/log2(10) rounded up.
  EXPECT_EQ(alpha_i(1, 8, cfg), static_cast<std::uint32_t>(
                                    std::ceil(1.0 + 2.0 / std::log2(10.0))));
  EXPECT_EQ(alpha_i(2, 8, cfg), static_cast<std::uint32_t>(
                                    std::ceil(1.0 + 3.0 / std::log2(10.0))));
}

TEST(Alpha, AtLeastOneAlways) {
  ScheduleConfig cfg;
  for (const double eps : {0.01, 0.1, 0.5, 0.9}) {
    cfg.epsilon = eps;
    for (const auto policy :
         {SchedulePolicy::kAppendix, SchedulePolicy::kPseudocode}) {
      cfg.policy = policy;
      for (std::uint32_t i = 1; i <= 40; ++i) {
        EXPECT_GE(alpha_i(i, 8, cfg), 1u);
        EXPECT_LE(alpha_i(i, 8, cfg), cfg.max_alpha);
      }
    }
  }
}

TEST(Alpha, SmallerEpsilonNeverFewerSubphases) {
  ScheduleConfig strict;
  strict.epsilon = 0.01;
  ScheduleConfig loose;
  loose.epsilon = 0.2;
  for (std::uint32_t i = 3; i <= 20; ++i) {
    EXPECT_GE(alpha_i(i, 8, strict), alpha_i(i, 8, loose));
  }
}

TEST(Alpha, InvalidParamsThrow) {
  ScheduleConfig cfg;
  EXPECT_THROW((void)alpha_i(0, 8, cfg), std::invalid_argument);
  EXPECT_THROW((void)alpha_i(1, 2, cfg), std::invalid_argument);
  cfg.epsilon = 0.0;
  EXPECT_THROW((void)alpha_i(1, 8, cfg), std::invalid_argument);
  cfg.epsilon = 1.0;
  EXPECT_THROW((void)alpha_i(1, 8, cfg), std::invalid_argument);
}

TEST(Subphases, TimesIMultiplier) {
  ScheduleConfig cfg;
  cfg.subphases_times_i = true;
  EXPECT_EQ(subphases_in_phase(4, 8, cfg), 4 * alpha_i(4, 8, cfg));
  cfg.subphases_times_i = false;
  EXPECT_EQ(subphases_in_phase(4, 8, cfg), alpha_i(4, 8, cfg));
}

TEST(Rounds, PhaseRoundsAreSubphasesTimesSteps) {
  ScheduleConfig cfg;
  EXPECT_EQ(rounds_in_phase(5, 8, cfg),
            static_cast<std::uint64_t>(subphases_in_phase(5, 8, cfg)) * 5);
}

TEST(Rounds, CumulativeMonotone) {
  ScheduleConfig cfg;
  std::uint64_t prev = 0;
  for (std::uint32_t i = 1; i <= 15; ++i) {
    const auto total = rounds_through_phase(i, 8, cfg);
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(Rounds, PolylogarithmicGrowth) {
  // Theorem 1: O(log^3 n) rounds. Through phase i the round count is
  // O(i^3); check the cubic envelope empirically.
  ScheduleConfig cfg;
  cfg.epsilon = 0.1;
  const double r10 = static_cast<double>(rounds_through_phase(10, 8, cfg));
  const double r20 = static_cast<double>(rounds_through_phase(20, 8, cfg));
  // Doubling i should grow rounds by at most ~2^3 (+ slack).
  EXPECT_LT(r20 / r10, 10.0);
  EXPECT_GT(r20 / r10, 3.0);
}

TEST(GlobalIndex, ContiguousAcrossPhases) {
  ScheduleConfig cfg;
  std::uint32_t expected = 0;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const auto count = subphases_in_phase(i, 8, cfg);
    for (std::uint32_t j = 1; j <= count; ++j) {
      EXPECT_EQ(global_subphase_index(i, j, 8, cfg), expected);
      ++expected;
    }
  }
}

TEST(GlobalIndex, OutOfRangeThrows) {
  ScheduleConfig cfg;
  EXPECT_THROW((void)global_subphase_index(3, 0, 8, cfg), std::out_of_range);
  const auto count = subphases_in_phase(3, 8, cfg);
  EXPECT_THROW((void)global_subphase_index(3, count + 1, 8, cfg),
               std::out_of_range);
}

TEST(Factors, PaperEndpoints) {
  // a = δ/(10 k log2(d-1)), b = 4/log2(1+γ/d); 0 < a < b for sane params.
  const double a = factor_a(0.5, 3, 8);
  const double b = factor_b(1.0, 8);
  EXPECT_NEAR(a, 0.5 / (30.0 * std::log2(7.0)), 1e-12);
  EXPECT_NEAR(b, 4.0 / std::log2(1.125), 1e-9);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, a);
}

TEST(Factors, BadParamsThrow) {
  EXPECT_THROW((void)factor_a(0.5, 0, 8), std::invalid_argument);
  EXPECT_THROW((void)factor_b(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace byz::proto
