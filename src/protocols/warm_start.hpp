// Warm-started Algorithm 2 — protocol-level continuity across epochs.
//
// A long-running deployment re-estimates on every churn snapshot, but
// consecutive snapshots differ by a handful of splices, so most per-node
// protocol state is reusable. The warm tier exploits exactly the reuse
// that is DECISION-EXACT — the warm run's status/estimate vectors are
// bitwise identical to a cold run on the same snapshot (the epoch driver's
// verify_warm mode asserts it on every epoch):
//
//   * Verifier state is k-ball-local (cumulative ball counts, usable
//     Byzantine chains), so rows are cached by STABLE id across epochs and
//     re-derived only for dirty-ball nodes — the splice-affected superset
//     the DirtyBallTracker maintains.
//   * Subphases are evaluated lazily: each phase stops at the first
//     subphase after which every active node has fired. Fired flags are
//     monotone within a phase and the only cross-subphase state, so the
//     skipped subphases are pure flood cost with no decision content. In
//     the phases below the termination point this collapses i*alpha_i
//     subphases to the first couple, which is where a cold run burns most
//     of its messages.
//   * The refined readout (refine.hpp's model-aware calibration) is a pure
//     function of the decided phase, so it is re-run only for nodes whose
//     estimate actually moved.
//
// Whole-PHASE skipping — seeding the loop above phase 1 because last
// epoch's minimum estimate was higher — is deliberately NOT part of the
// (exact) warm tier: colors are drawn fresh every epoch, so a node with m
// live H-neighbors fails phase i's threshold in every subphase with
// probability ~(1/2)^(m*alpha), and under crash-heavy adversaries such
// low-m nodes decide at phase 1-2 with constant probability. "No one
// decides below last epoch's minimum" is a positive-probability bet, not
// an invariant, and the exact tier's equivalence contract does not take
// bets.
//
// The ε-WARM tier (WarmConfig::eps_phase_skip) takes exactly that bet,
// priced against the paper's own error model. Theorem 1 only promises the
// estimate band for all but ε·n honest nodes — an outlier budget the exact
// runs never spend. ε-warm spends it: the entry phase is chosen from the
// QUANTILE of the seeded estimate distribution — the deepest phase whose
// predicted at-risk population (nodes seeded below it, plus nodes with no
// seed) pre-spends at most half of floor(eps_budget·honest), minus
// eps_margin phases of safety — and the phases below it (where a cold run
// burns most of its subphases) are dropped entirely.
// The accounting invariant, asserted by the epoch driver's verify mode and
// the warm-start tests:
//
//     realized divergent decisions (vs the cold run on the same snapshot)
//         <= floor(eps_budget * honest members)          -- per epoch
//
// "Divergent" compares status AND estimate per node. The run itself
// reports the a-priori side (entry phase, skipped subphases, budget in
// nodes); the realized count needs the cold shadow, so it lives in
// dynamics::EpochStats (eps_divergent). Divergence is one-sided in the
// phase order — a node clamped at entry can only report >= its cold
// estimate, and extra still-active generators can only push later phases'
// maxima UP — so the failure mode is over-estimation of log n, the
// direction the refinement stage already tolerates.
//
// The previous-epoch estimates still seed the run: they are carried per
// stable id, define the expected decision window (reported for
// observability and E21), and anchor the drift fallback — when membership
// drift since the seeding run exceeds WarmConfig::max_drift, the cached
// state is presumed stale and a full cold run re-baselines it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "adversary/strategies.hpp"
#include "protocols/fastpath.hpp"

namespace byz::proto {

struct WarmConfig {
  /// Fall back to a cold run (no state reuse, eager subphases) when the
  /// membership drift since the seeding run exceeds this fraction.
  double max_drift = 0.05;
  /// ε-warm tier: skip the early phases of warm runs, entering at the
  /// budget-bounded quantile of the seeded estimate distribution (see
  /// file comment). Only engages on a warm run; cold fallbacks and
  /// first-ever runs are never skipped.
  bool eps_phase_skip = false;
  /// The ε of the accounting invariant: divergent decisions per run must
  /// stay within floor(eps_budget * honest members). The entry-phase rule
  /// pre-spends at most half of it; callers verifying the invariant
  /// (epoch driver, E25) shadow-run cold and throw past the full budget.
  double eps_budget = 0.10;
  /// Safety margin subtracted from the quantile entry phase; one phase
  /// absorbs the typical epoch-to-epoch wobble of fresh colors (the
  /// decided-phase distribution is broad — see E05/E25 — so every extra
  /// margin phase sharply shrinks the skippable prefix).
  std::uint32_t eps_margin = 1;
  /// Flood-kernel selection forwarded to the underlying runs (warm AND
  /// cold fallback); a parallel selection also batches the dirty-row
  /// recomputation. Bitwise-neutral at every thread count.
  FloodExec flood;
};

/// Per-node protocol state carried across epochs, indexed by STABLE id so
/// it survives the dense-id compaction shifts churn causes. Owned by the
/// caller (the epoch driver keeps one per deployment).
struct WarmState {
  bool has_run = false;
  std::uint32_t k = 0;  ///< verifier row width the cache was built with
  std::vector<std::uint32_t> estimate;     ///< decided phase (0 = none)
  std::vector<double> refined;             ///< refined_log_estimate cache
  std::vector<std::uint32_t> ball_counts;  ///< k cumulative counts per id
  std::vector<std::uint8_t> chain_len;     ///< usable-chain cache
  std::vector<std::uint8_t> row_valid;     ///< verifier rows present
};

struct WarmRun {
  RunResult run;
  bool warm_used = false;         ///< false = cold fallback taken
  std::uint64_t estimates_seeded = 0;
  std::uint32_t seed_min = 0;     ///< seeded-estimate window (0 = none)
  std::uint32_t seed_max = 0;
  std::uint64_t rows_reused = 0;
  std::uint64_t rows_recomputed = 0;
  std::uint64_t refine_reused = 0;
  std::uint64_t refine_recomputed = 0;
  // --- ε-warm tier (meaningful when WarmConfig::eps_phase_skip) ---
  bool eps_used = false;            ///< the run actually entered above 1
  std::uint32_t eps_entry_phase = 1;
  std::uint64_t eps_budget_nodes = 0;       ///< floor(eps_budget * honest)
  std::uint64_t eps_skipped_subphases = 0;  ///< schedule cost of the skip
};

/// Runs the counting protocol on `overlay`, warm-started from `state` when
/// safe (see file comment). `dense_to_stable` maps the snapshot's dense ids
/// to stable ids; `dirty_stable` marks the stable ids whose k-balls may
/// have changed since the run that produced `state` (ids past its end are
/// clean; an empty span = nothing changed). `drift` is the accumulated
/// membership drift since that run. Updates `state` to this run's outcome
/// on both the warm and the cold path. `digester` attaches divergence
/// forensics (obs/digest.hpp): the run's digest trail plus flight-recorder
/// notes for warm-row reuse and the ε-entry decision; pure read-side, the
/// run outcome is bitwise unaffected.
[[nodiscard]] WarmRun run_counting_warm(
    const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
    adv::Strategy& strategy, const ProtocolConfig& cfg,
    std::uint64_t color_seed, std::span<const graph::NodeId> dense_to_stable,
    std::span<const std::uint8_t> dirty_stable, double drift,
    const WarmConfig& warm_cfg, WarmState& state,
    obs::RunDigester* digester = nullptr);

// --- Shared warm-state plumbing ---------------------------------------
//
// The helpers below are the reusable pieces of run_counting_warm, split
// out so the mid-run churn tier (dynamics/midrun.*) can warm-start its
// runs from the same stable-indexed cache: the epoch driver invalidates
// the rows the previous epoch's splices dirtied, LiveOverlayFeed reuses
// the surviving rows for its run-start Verifier and folds the refreshed
// rows back, and the driver folds the run's estimates after the flush.

/// Drops the cached verifier rows of every dirty stable id (ids past the
/// mask's end are clean). After this, `row_valid[s]` alone decides reuse —
/// callers need not re-check the dirty mask.
void invalidate_dirty_rows(WarmState& state,
                           std::span<const std::uint8_t> dirty_stable);

/// Folds freshly computed verifier rows into the cache: `rows` is the
/// n*k row-major cumulative ball-count table and `chains` the usable-chain
/// lengths, both indexed by the dense ids `dense_to_stable` maps. Grows the
/// stable-indexed tables as needed and stamps `state.k`.
void fold_verifier_rows(WarmState& state, std::uint32_t k,
                        std::span<const graph::NodeId> dense_to_stable,
                        std::span<const std::uint32_t> rows,
                        std::span<const std::uint8_t> chains);

/// Folds a finished run's decisions into the estimate/refined caches
/// (kDecided nodes keep their phase, everyone else seeds 0) and marks the
/// state runnable. The refined readout is a pure function of the decided
/// phase, so it is recomputed only where the phase moved; the returned
/// counts feed the reuse accounting.
struct RefineFold {
  std::uint64_t reused = 0;
  std::uint64_t recomputed = 0;
};
RefineFold fold_run_estimates(WarmState& state, const RunResult& run,
                              std::span<const graph::NodeId> dense_to_stable,
                              std::uint32_t d);

/// The ε-warm entry rule (see file comment): budget = floor(eps_budget ·
/// honest), and — when `allow_skip` (a warm, non-cold run) — the entry
/// phase is the deepest one whose predicted at-risk population (honest
/// nodes seeded below it, plus nodes with no seed) pre-spends at most half
/// the budget, minus eps_margin phases of safety.
struct EpsEntryPlan {
  bool eps_used = false;  ///< entry > 1 was chosen
  std::uint32_t entry_phase = 1;
  std::uint64_t budget_nodes = 0;  ///< floor(eps_budget * honest)
  std::uint64_t skipped_subphases = 0;
};
[[nodiscard]] EpsEntryPlan choose_eps_entry(
    const WarmState& state, std::span<const graph::NodeId> dense_to_stable,
    const std::vector<bool>& byz_mask, std::uint32_t max_phase,
    std::uint32_t d, const ScheduleConfig& schedule,
    const WarmConfig& warm_cfg, bool allow_skip);

}  // namespace byz::proto
