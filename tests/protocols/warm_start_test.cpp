// The warm tier's contract: run_counting_warm is DECISION-identical to the
// cold run on every input — lazy subphase evaluation and cached verifier
// rows change only message accounting — and the drift bound downgrades it
// to a cold run rather than ever trusting stale state.
#include "protocols/warm_start.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/categories.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;

struct Fixture {
  graph::Overlay overlay;
  std::vector<bool> byz;
  std::vector<NodeId> identity;  // dense == stable on a static overlay

  explicit Fixture(NodeId n, std::uint64_t seed) {
    graph::OverlayParams params;
    params.n = n;
    params.d = 6;
    params.seed = seed;
    overlay = graph::Overlay::build(params);
    util::Xoshiro256 rng(seed ^ 0xB12);
    byz = graph::random_byzantine_mask(n, n / 64, rng);
    identity.resize(n);
    std::iota(identity.begin(), identity.end(), NodeId{0});
  }
};

TEST(WarmStart, ColdBootstrapThenWarmRerunMatchesDecisionsExactly) {
  Fixture f(512, 21);
  ProtocolConfig cfg;
  WarmState state;
  const std::uint64_t color_seed = 77;

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto boot = run_counting_warm(f.overlay, f.byz, *s1, cfg, color_seed,
                                      f.identity, {}, 0.0, {}, state);
  EXPECT_FALSE(boot.warm_used);  // nothing to seed from
  EXPECT_TRUE(state.has_run);
  EXPECT_EQ(boot.rows_recomputed, 512u);

  // Second run on the same snapshot with a different color seed: warm path
  // (all rows clean), decisions must equal the cold reference exactly.
  const std::uint64_t color_seed2 = 78;
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto warm = run_counting_warm(f.overlay, f.byz, *s2, cfg, color_seed2,
                                      f.identity, {}, 0.001, {}, state);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_EQ(warm.rows_reused, 512u);
  EXPECT_EQ(warm.rows_recomputed, 0u);
  EXPECT_GT(warm.estimates_seeded, 0u);
  EXPECT_GE(warm.seed_min, 1u);
  EXPECT_LE(warm.seed_min, warm.seed_max);

  auto s3 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto cold = run_counting(f.overlay, f.byz, *s3, cfg, color_seed2);
  EXPECT_EQ(warm.run.status, cold.status);
  EXPECT_EQ(warm.run.estimate, cold.estimate);
  EXPECT_EQ(warm.run.phases_executed, cold.phases_executed);
  // The lazy tier never floods MORE than the schedule.
  EXPECT_LE(warm.run.subphases_executed, warm.run.subphases_scheduled);
  EXPECT_LE(warm.run.instr.total_messages(), cold.instr.total_messages());
}

TEST(WarmStart, DirtyNodesGetFreshVerifierRows) {
  Fixture f(256, 5);
  ProtocolConfig cfg;
  WarmState state;
  auto s1 = adv::make_strategy(adv::StrategyKind::kHonest);
  (void)run_counting_warm(f.overlay, f.byz, *s1, cfg, 1, f.identity, {}, 0.0,
                          {}, state);
  std::vector<std::uint8_t> dirty(256, 0);
  dirty[3] = dirty[40] = dirty[41] = 1;
  auto s2 = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto warm = run_counting_warm(f.overlay, f.byz, *s2, cfg, 2,
                                      f.identity, dirty, 0.01, {}, state);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_EQ(warm.rows_recomputed, 3u);
  EXPECT_EQ(warm.rows_reused, 253u);
}

TEST(WarmStart, DriftBeyondTheBoundFallsBackCold) {
  Fixture f(256, 9);
  ProtocolConfig cfg;
  WarmState state;
  auto s1 = adv::make_strategy(adv::StrategyKind::kHonest);
  (void)run_counting_warm(f.overlay, f.byz, *s1, cfg, 1, f.identity, {}, 0.0,
                          {}, state);
  WarmConfig warm_cfg;
  warm_cfg.max_drift = 0.05;
  auto s2 = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto run = run_counting_warm(f.overlay, f.byz, *s2, cfg, 2,
                                     f.identity, {}, 0.2, warm_cfg, state);
  EXPECT_FALSE(run.warm_used);
  EXPECT_EQ(run.rows_recomputed, 256u);
  EXPECT_EQ(run.run.subphases_executed, run.run.subphases_scheduled);
}

TEST(WarmStart, RefinementRerunsOnlyWhereTheEstimateMoved) {
  Fixture f(256, 31);
  ProtocolConfig cfg;
  WarmState state;
  auto s1 = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto boot = run_counting_warm(f.overlay, f.byz, *s1, cfg, 11,
                                      f.identity, {}, 0.0, {}, state);
  EXPECT_GT(boot.refine_recomputed, 0u);
  EXPECT_EQ(boot.refine_reused, 0u);
  // Identical snapshot AND color seed: every decided phase repeats, so the
  // calibration is pure cache hits.
  auto s2 = adv::make_strategy(adv::StrategyKind::kHonest);
  const auto rerun = run_counting_warm(f.overlay, f.byz, *s2, cfg, 11,
                                       f.identity, {}, 0.0, {}, state);
  EXPECT_EQ(rerun.refine_recomputed, 0u);
  EXPECT_EQ(rerun.refine_reused, boot.refine_recomputed);
}

TEST(EpsWarm, NeverEngagesOnColdOrBootstrapRuns) {
  Fixture f(256, 9);
  ProtocolConfig cfg;
  WarmState state;
  WarmConfig warm;
  warm.eps_phase_skip = true;
  warm.eps_margin = 0;
  auto s = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto boot = run_counting_warm(f.overlay, f.byz, *s, cfg, 5,
                                      f.identity, {}, 0.0, warm, state);
  EXPECT_FALSE(boot.warm_used);
  EXPECT_FALSE(boot.eps_used);  // first-ever run: nothing seeded to skip to
  EXPECT_EQ(boot.eps_entry_phase, 1u);

  // Excess drift forces the cold fallback; the skip must not survive it.
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto cold = run_counting_warm(f.overlay, f.byz, *s2, cfg, 6,
                                      f.identity, {}, 0.9, warm, state);
  EXPECT_FALSE(cold.warm_used);
  EXPECT_FALSE(cold.eps_used);
}

TEST(EpsWarm, QuantileEntrySkipsPhasesWithinTheBudget) {
  Fixture f(1024, 33);
  ProtocolConfig cfg;
  WarmState state;
  const std::uint64_t seed1 = 101, seed2 = 202;

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  WarmConfig warm;
  (void)run_counting_warm(f.overlay, f.byz, *s1, cfg, seed1, f.identity, {},
                          0.0, warm, state);

  warm.eps_phase_skip = true;
  warm.eps_budget = 0.10;
  warm.eps_margin = 0;
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto eps = run_counting_warm(f.overlay, f.byz, *s2, cfg, seed2,
                                     f.identity, {}, 0.0, warm, state);
  ASSERT_TRUE(eps.warm_used);
  ASSERT_TRUE(eps.eps_used) << "seeded estimates deep enough, skip expected";
  EXPECT_GT(eps.eps_entry_phase, 1u);
  EXPECT_GT(eps.eps_skipped_subphases, 0u);
  EXPECT_GT(eps.eps_budget_nodes, 0u);

  // Every decision respects the entry clamp by construction.
  for (std::size_t v = 0; v < eps.run.status.size(); ++v) {
    if (eps.run.status[v] == NodeStatus::kDecided) {
      EXPECT_GE(eps.run.estimate[v], eps.eps_entry_phase);
    }
  }

  // The accounting invariant against the cold shadow on the same colors:
  // divergent decisions fit in floor(eps_budget * honest).
  auto s3 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto cold = run_counting(f.overlay, f.byz, *s3, cfg, seed2);
  std::uint64_t divergent = 0;
  for (std::size_t v = 0; v < cold.status.size(); ++v) {
    if (cold.status[v] != eps.run.status[v] ||
        cold.estimate[v] != eps.run.estimate[v]) {
      ++divergent;
    }
  }
  // Zero is legitimate (the entry phase can sit exactly at the cold
  // minimum); the invariant is the upper bound.
  EXPECT_LE(divergent, eps.eps_budget_nodes);
}

TEST(WarmStart, RejectsMismatchedInputs) {
  Fixture f(64, 1);
  ProtocolConfig cfg;
  WarmState state;
  auto s = adv::make_strategy(adv::StrategyKind::kHonest);
  std::vector<NodeId> short_map(63);
  EXPECT_THROW((void)run_counting_warm(f.overlay, f.byz, *s, cfg, 1,
                                       short_map, {}, 0.0, {}, state),
               std::invalid_argument);
}

}  // namespace
}  // namespace byz::proto
