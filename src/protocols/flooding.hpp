// The per-subphase flood kernel (Algorithm 1/2 lines 10-17 inner loop),
// array-based. One subphase of phase i floods colors along H for exactly i
// steps under the forward-once rule: a node re-broadcasts only when its
// running maximum improves, so each send carries the sender's fresh max.
// Byzantine senders are driven by injections; honest receivers filter every
// received color through the Verifier.
//
// Round/phase lifecycle: a RUN is a sequence of phases i = 1, 2, ...; phase
// i runs subphases_in_phase(i) independent subphases; one subphase is one
// call into this kernel and floods for exactly i steps (= i protocol
// ROUNDS, the unit the paper's O(log³ n) bound counts). Within a subphase,
// step 1 broadcasts generated colors and steps 2..i relay improvements.
// Subphases share no state except the caller's fired flags; phases share
// no state except which nodes are still active.
//
// Per-node bookkeeping matches the pseudocode: k_t is the maximum ACCEPTED
// color received in step t; the subphase "fires" for v iff
//   k_i > k_t for all t < i   and   k_i > continue_threshold(i, d).
//
// Mid-protocol churn (FloodParams::live): when live hooks are attached the
// kernel resolves every neighbor set against the LIVE topology instead of
// `overlay`, and calls live->begin_round() before each step's sends so the
// owner can splice scheduled joins/leaves in first. Departed nodes drop
// messages from their departure round (sends and receives); joiners
// receive and relay from their entry round ("flood from entry") but never
// generate mid-subphase — generation is granted at phase boundaries by the
// MembershipPolicy (see verification.hpp / fastpath.hpp). With live ==
// nullptr the kernel is the static path, unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/small_world.hpp"
#include "protocols/color.hpp"
#include "protocols/midrun.hpp"
#include "protocols/verification.hpp"
#include "sim/instrumentation.hpp"

namespace byz::obs {
class RunDigester;
}  // namespace byz::obs

namespace byz::proto {

/// One Byzantine token emission: node `from` sends `value` to its
/// H-neighbors at subphase step `step` (1-based). Acceptance is decided by
/// the Verifier at each honest receiver.
struct Injection {
  graph::NodeId from;
  std::uint32_t step;
  Color value;
};

/// Reusable per-subphase state (avoids reallocation across the hundreds of
/// subphases of a run).
class FloodWorkspace {
 public:
  void ensure(graph::NodeId n);

  std::vector<Color> known;          ///< running max (own color at start)
  std::vector<std::uint32_t> fresh;  ///< step at which known last improved
  std::vector<Color> best_before;    ///< max over k_t, t < current
  std::vector<Color> last_step;      ///< k_i of the final step
  std::vector<Color> recv;           ///< per-step accepted receive max
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;
  std::vector<graph::NodeId> touched;
  /// Canonical (sorted) wavefront handed to MidRunHooks::begin_round; only
  /// populated when live hooks are attached.
  std::vector<graph::NodeId> live_frontier;
};

struct FloodParams {
  std::uint32_t steps = 1;      ///< = phase index i
  bool byz_forward = true;      ///< Byzantine nodes relay the flood
  /// Focused mode (the warm tier's straggler re-evaluation): when
  /// non-empty, only marked nodes generate, forward, and receive — the
  /// flood runs on the induced subgraph. A node's step-t value depends
  /// only on B_H(node, t), so outputs are EXACT at every node whose
  /// radius-`steps` ball the region covers; the caller must only read
  /// those. Empty = the ordinary whole-network flood.
  std::span<const std::uint8_t> region;
  /// Mid-protocol churn hooks (see file comment). Null = static path.
  /// Incompatible with `region` (the lazy tier is a static-topology
  /// optimization); run_flood_subphase throws if both are set.
  MidRunHooks* live = nullptr;
  /// Clock of this subphase's FIRST step; the kernel advances step/round
  /// per flood step and hands the result to live->begin_round(). Ignored
  /// when live is null.
  RoundClock clock;
  /// Divergence-forensics digester (obs/digest.hpp). When attached the
  /// kernel folds each round's conformant senders and accepted receivers
  /// and closes one round digest per flood step. Null = no digesting
  /// (the default; pure read-side either way).
  obs::RunDigester* digest = nullptr;
};

/// Runs one subphase. `gen_color[v]` is v's generated color (0 = does not
/// generate: decided or crashed honest nodes, and Byzantine nodes whose
/// strategy emits via `injections` instead). `crashed[v]` nodes neither
/// send nor receive. Outputs land in the workspace (`best_before`,
/// `last_step` drive the caller's termination predicate).
void run_flood_subphase(const graph::Overlay& overlay,
                        const std::vector<bool>& byz_mask,
                        const std::vector<bool>& crashed,
                        const Verifier& verifier, const FloodParams& params,
                        std::span<const Color> gen_color,
                        std::span<const Injection> injections,
                        FloodWorkspace& ws, sim::Instrumentation& instr);

}  // namespace byz::proto
