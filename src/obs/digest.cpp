#include "obs/digest.hpp"

#include <algorithm>
#include <cstdio>

namespace byz::obs {

std::string hex_u64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

const char* to_string(DigestDivergence::Level level) {
  switch (level) {
    case DigestDivergence::Level::kNone: return "none";
    case DigestDivergence::Level::kRun: return "run";
    case DigestDivergence::Level::kPhase: return "phase";
    case DigestDivergence::Level::kSubphase: return "subphase";
    case DigestDivergence::Level::kRound: return "round";
  }
  return "unknown";
}

DigestDivergence first_divergence(const DigestTrail& a, const DigestTrail& b) {
  using Level = DigestDivergence::Level;
  DigestDivergence out;

  // Phase level: first entry where label or digest disagrees, or where one
  // trail ends early.
  const std::size_t np = std::min(a.phases.size(), b.phases.size());
  bool phase_found = false;
  for (std::size_t i = 0; i < np && !phase_found; ++i) {
    if (a.phases[i].phase != b.phases[i].phase ||
        a.phases[i].digest != b.phases[i].digest) {
      out.phase = std::min(a.phases[i].phase, b.phases[i].phase);
      phase_found = true;
    }
  }
  if (!phase_found && a.phases.size() != b.phases.size()) {
    out.phase = (a.phases.size() > b.phases.size() ? a.phases : b.phases)[np]
                    .phase;
    phase_found = true;
  }
  if (!phase_found) {
    if (a.run_digest != b.run_digest || a.closed != b.closed) {
      out.level = Level::kRun;
    }
    return out;
  }
  out.level = Level::kPhase;

  // Subphase level, scoped to the divergent phase.
  std::vector<SubphaseDigest> sub_a, sub_b;
  for (const auto& s : a.subphases) {
    if (s.phase == out.phase) sub_a.push_back(s);
  }
  for (const auto& s : b.subphases) {
    if (s.phase == out.phase) sub_b.push_back(s);
  }
  const std::size_t ns = std::min(sub_a.size(), sub_b.size());
  bool sub_found = false;
  for (std::size_t i = 0; i < ns && !sub_found; ++i) {
    if (sub_a[i].subphase != sub_b[i].subphase ||
        sub_a[i].digest != sub_b[i].digest) {
      out.subphase = std::min(sub_a[i].subphase, sub_b[i].subphase);
      sub_found = true;
    }
  }
  if (!sub_found && sub_a.size() != sub_b.size()) {
    out.subphase = (sub_a.size() > sub_b.size() ? sub_a : sub_b)[ns].subphase;
    sub_found = true;
  }
  if (!sub_found) return out;
  out.level = Level::kSubphase;

  // Round level, scoped to the divergent subphase.
  std::vector<RoundDigest> rd_a, rd_b;
  for (const auto& r : a.rounds) {
    if (r.phase == out.phase && r.subphase == out.subphase) rd_a.push_back(r);
  }
  for (const auto& r : b.rounds) {
    if (r.phase == out.phase && r.subphase == out.subphase) rd_b.push_back(r);
  }
  const std::size_t nr = std::min(rd_a.size(), rd_b.size());
  for (std::size_t i = 0; i < nr; ++i) {
    if (rd_a[i].round != rd_b[i].round || rd_a[i].digest != rd_b[i].digest) {
      out.level = Level::kRound;
      out.round = std::min(rd_a[i].round, rd_b[i].round);
      return out;
    }
  }
  if (rd_a.size() != rd_b.size()) {
    out.level = Level::kRound;
    out.round = (rd_a.size() > rd_b.size() ? rd_a : rd_b)[nr].round;
  }
  return out;
}

#if BYZ_OBS_ENABLED

RunDigester::RunDigester(std::uint64_t seed) : seed_(seed), run_acc_(seed) {}

void RunDigester::note(FlightEventKind kind, std::uint64_t a,
                       std::uint64_t b) {
  if (recorder_ == nullptr) return;
  recorder_->record({kind, phase_, subphase_, round_index_, a, b});
}

void RunDigester::begin_phase(std::uint32_t phase) {
  phase_ = phase;
  subphase_ = 0;
  phase_acc_ = mix2(seed_, phase);
}

void RunDigester::begin_subphase(std::uint32_t subphase) {
  subphase_ = subphase;
  subphase_acc_ = mix2(mix2(seed_, phase_), subphase);
  round_acc_ = 0;
}

void RunDigester::close_round(std::uint64_t tokens) {
  std::uint64_t digest =
      mix64(round_acc_ ^
            mix2(mix2(phase_, subphase_), mix2(round_index_, tokens)) ^ seed_);
  if (round_index_ == perturb_round_) digest ^= perturb_mask_;
  trail_.rounds.push_back({phase_, subphase_, round_index_, digest});
  subphase_acc_ = mix2(subphase_acc_, digest);
  if (recorder_ != nullptr) {
    recorder_->record({FlightEventKind::kRoundClose, phase_, subphase_,
                       round_index_, tokens, digest});
  }
  round_acc_ = 0;
  ++round_index_;
}

void RunDigester::close_subphase() {
  const std::uint64_t digest = mix64(subphase_acc_);
  trail_.subphases.push_back({phase_, subphase_, digest});
  phase_acc_ = mix2(phase_acc_, digest);
}

void RunDigester::close_phase() {
  const std::uint64_t digest = mix64(phase_acc_);
  trail_.phases.push_back({phase_, digest});
  run_acc_ = mix2(run_acc_, digest);
}

void RunDigester::close_run() {
  trail_.run_digest = mix64(run_acc_);
  trail_.closed = true;
}

#endif  // BYZ_OBS_ENABLED

namespace {

void append_tier_json(std::string& out, const std::string& name,
                      const DigestTrail& trail, const FlightRecorder* recorder,
                      const DigestDivergence& div) {
  using Level = DigestDivergence::Level;
  out += "    {\"name\": \"";
  detail::append_json_escaped(out, name);
  out += "\",\n     \"closed\": ";
  out += trail.closed ? "true" : "false";
  out += ",\n     \"run_digest\": \"" + hex_u64(trail.run_digest) + "\"";
  out += ",\n     \"phases_total\": " + std::to_string(trail.phases.size());
  out +=
      ",\n     \"subphases_total\": " + std::to_string(trail.subphases.size());
  out += ",\n     \"rounds_total\": " + std::to_string(trail.rounds.size());
  out += ",\n     \"phases\": [";
  for (std::size_t i = 0; i < trail.phases.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"phase\": " + std::to_string(trail.phases[i].phase) +
           ", \"digest\": \"" + hex_u64(trail.phases[i].digest) + "\"}";
  }
  out += "]";
  // Subphase/round evidence is scoped to the divergent branch so the
  // report stays bounded on long runs.
  if (div.level == Level::kPhase || div.level == Level::kSubphase ||
      div.level == Level::kRound) {
    out += ",\n     \"divergent_phase_subphases\": [";
    bool first = true;
    for (const auto& s : trail.subphases) {
      if (s.phase != div.phase) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"subphase\": " + std::to_string(s.subphase) +
             ", \"digest\": \"" + hex_u64(s.digest) + "\"}";
    }
    out += "]";
  }
  if (div.level == Level::kSubphase || div.level == Level::kRound) {
    out += ",\n     \"divergent_subphase_rounds\": [";
    bool first = true;
    for (const auto& r : trail.rounds) {
      if (r.phase != div.phase || r.subphase != div.subphase) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"round\": " + std::to_string(r.round) + ", \"digest\": \"" +
             hex_u64(r.digest) + "\"}";
    }
    out += "]";
  }
  if (recorder != nullptr) {
    out += ",\n     \"flight_total\": " +
           std::to_string(recorder->total_recorded());
    out += ",\n     \"flight_tail\": " + flight_tail_json(*recorder);
  }
  out += "}";
}

}  // namespace

std::string forensics_json(const ForensicsInfo& info, const DigestTrail& a,
                           const DigestTrail& b,
                           const FlightRecorder* recorder_a,
                           const FlightRecorder* recorder_b) {
  const DigestDivergence div = first_divergence(a, b);
  std::string out;
  out += "{\n  \"schema\": \"byzobs/forensics/v1\",\n";
  out += "  \"scenario\": \"";
  detail::append_json_escaped(out, info.scenario);
  out += "\",\n  \"seed\": " + std::to_string(info.seed);
  out += ",\n  \"flags\": \"";
  detail::append_json_escaped(out, info.flags);
  out += "\",\n  \"detail\": \"";
  detail::append_json_escaped(out, info.detail);
  out += "\",\n  \"repro\": \"";
  std::string repro = "scenario=" + info.scenario +
                      " seed=" + std::to_string(info.seed);
  if (!info.flags.empty()) repro += " " + info.flags;
  detail::append_json_escaped(out, repro);
  out += "\",\n  \"first_divergence\": {\"level\": \"";
  out += to_string(div.level);
  out += "\", \"phase\": " + std::to_string(div.phase);
  out += ", \"subphase\": " + std::to_string(div.subphase);
  out += ", \"round\": " + std::to_string(div.round);
  out += "},\n  \"tiers\": [\n";
  append_tier_json(out, info.tier_a, a, recorder_a, div);
  out += ",\n";
  append_tier_json(out, info.tier_b, b, recorder_b, div);
  out += "\n  ]\n}\n";
  return out;
}

bool write_forensics_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace byz::obs
