// E10 — Lemma 14: after the crash-maximizing attack, the surviving honest
// nodes' largest component (the Core) still contains n - o(n) nodes and
// remains an expander.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(14);
  util::Table table("E10: the Core after crash-maximizing lies (d=6)");
  table.columns({"n", "delta", "B", "crashed", "crashed %", "|Core|",
                 "core frac", "core lambda2/avgdeg", "core sweep-cut h"});
  for (const double delta : {0.6, 0.7}) {
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      const auto overlay = make_overlay(n, 6, 0xEA + n);
      const auto byz = place_byz(n, delta, 0xEA + n);
      const auto strat = adv::make_strategy(adv::StrategyKind::kCrashMaximizer);
      const auto world = sim::World::make(overlay, byz, 0xCA);
      proto::ClaimSet claims(overlay);
      strat->setup_lies(world, claims);
      const auto crashed = proto::compute_crash_set(claims, byz, nullptr);

      // Uncrashed honest nodes; Core = largest component they induce in H.
      std::vector<bool> keep(n, false);
      std::uint64_t crashed_count = 0;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (byz[v]) continue;
        if (crashed[v]) {
          ++crashed_count;
        } else {
          keep[v] = true;
        }
      }
      const auto core_mask =
          graph::largest_component_mask(overlay.h_simple(), keep);
      const auto core = graph::induced_subgraph(overlay.h_simple(), core_mask);
      const auto core_n = core.num_nodes();
      double mu2 = 0.0;
      double sweep = 0.0;
      if (core_n > 2) {
        const auto spec = graph::second_eigenvalue(core, 1500, 1e-9, 0xEA);
        mu2 = spec.mu2;
        sweep = graph::sweep_cut_expansion(core, spec.vector2);
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(delta, 1)
          .cell(std::uint64_t{sim::derive_byz_count(n, delta)})
          .cell(crashed_count)
          .cell(100.0 * static_cast<double>(crashed_count) / n, 2)
          .cell(std::uint64_t{core_n})
          .cell(static_cast<double>(core_n) / n, 4)
          .cell(mu2, 3)
          .cell(sweep, 3);
    }
  }
  table.note("Lemma 14: |Core| >= n - o(n) and Core keeps constant edge "
             "expansion. Crashed nodes are exactly the honest G-neighbors "
             "of Byzantine nodes, so crashed% shrinks like n^{-delta} * "
             "(d-1)^{k+1} as n grows.");
  analysis::emit(table);
  return 0;
}
