#include "protocols/run_common.hpp"

#include "obs/digest.hpp"

namespace byz::proto {

using graph::NodeId;

void digest_phase_state(obs::RunDigester& digester, const Verifier& verifier,
                        std::span<const NodeStatus> status,
                        std::span<const std::uint32_t> estimate,
                        NodeId id_bound) {
  for (NodeId v = 0; v < id_bound; ++v) {
    digester.fold_phase(obs::digest_state_term(
        v, (static_cast<std::uint64_t>(status[v]) << 32) | estimate[v]));
  }
  for (NodeId v = 0; v < id_bound; ++v) {
    std::uint64_t row = 0;
    for (const std::uint32_t count : verifier.ball_row(v)) {
      row = obs::mix2(row, count);
    }
    digester.fold_phase(
        obs::digest_state_term(v, obs::mix2(row, verifier.usable_chain(v))));
  }
}

const Verifier* admit_at_phase_boundary(
    MidRunHooks& midrun, std::uint32_t phase,
    const std::vector<bool>& byz_mask, const std::vector<bool>& crashed,
    std::span<const NodeStatus> status, std::vector<std::uint8_t>& participates,
    std::vector<bool>& active, std::uint64_t& active_count,
    std::vector<graph::NodeId>& admitted) {
  const auto nb = static_cast<NodeId>(participates.size());
  admitted.clear();
  const Verifier* verifier = midrun.begin_phase(phase, admitted);
  for (const NodeId a : admitted) {
    if (a >= nb || participates[a] != 0) continue;
    participates[a] = 1;
    if (!byz_mask[a] && !crashed[a] && status[a] == NodeStatus::kUndecided) {
      active[a] = true;
      ++active_count;
    }
  }
  return verifier;
}

void sweep_departed(MidRunHooks& midrun, std::vector<bool>& active,
                    std::uint64_t& active_count, RunResult& result,
                    obs::RunDigester* digester) {
  const auto nb = static_cast<NodeId>(result.status.size());
  for (NodeId v = 0; v < nb; ++v) {
    if (result.status[v] == NodeStatus::kDeparted || !midrun.departed(v)) {
      continue;
    }
    if (active[v]) {
      active[v] = false;
      --active_count;
    }
    if (result.status[v] != NodeStatus::kByzantine) {
      result.status[v] = NodeStatus::kDeparted;
      result.estimate[v] = 0;
      if (digester != nullptr) {
        digester->fold_phase(obs::digest_state_term(v, 0xDE9));
      }
    }
  }
}

void fold_run_outcome(obs::RunDigester& digester, const RunResult& result,
                      NodeId id_bound) {
  for (NodeId v = 0; v < id_bound; ++v) {
    digester.fold_run(obs::digest_state_term(
        v, (static_cast<std::uint64_t>(result.status[v]) << 32) |
               result.estimate[v]));
  }
  digester.close_run();
}

}  // namespace byz::proto
