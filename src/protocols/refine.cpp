#include "protocols/refine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "protocols/color.hpp"
#include "util/stats.hpp"

namespace byz::proto {

using graph::NodeId;

double refined_log_estimate(std::uint32_t decided_phase, std::uint32_t d) {
  if (decided_phase == 0) return 0.0;
  const std::uint32_t r = decided_phase > 2 ? decided_phase - 2 : 0;
  return ell(d, r);
}

std::vector<double> refine_run(const RunResult& result, std::uint32_t d) {
  std::vector<double> refined(result.estimate.size(), 0.0);
  for (std::size_t v = 0; v < result.estimate.size(); ++v) {
    if (result.status[v] == NodeStatus::kDecided) {
      refined[v] = refined_log_estimate(result.estimate[v], d);
    }
  }
  return refined;
}

std::vector<double> smooth_estimates(const graph::Overlay& overlay,
                                     const std::vector<bool>& byz_mask,
                                     const std::vector<double>& estimates,
                                     EstimateLie lie) {
  const NodeId n = overlay.num_nodes();
  if (byz_mask.size() != n || estimates.size() != n) {
    throw std::invalid_argument("smooth_estimates: size mismatch");
  }
  std::vector<double> smoothed(n, 0.0);
  std::vector<double> window;
  for (NodeId v = 0; v < n; ++v) {
    if (byz_mask[v]) continue;
    window.clear();
    if (estimates[v] > 0.0) window.push_back(estimates[v]);  // self
    for (const NodeId w : overlay.g().neighbors(v)) {
      if (byz_mask[w]) {
        switch (lie) {
          case EstimateLie::kHonest:
            // A plausible lie is indistinguishable from an honest report;
            // model it as the Byzantine node's own (honest) estimate slot,
            // or silence if it has none.
            if (estimates[w] > 0.0) window.push_back(estimates[w]);
            break;
          case EstimateLie::kInflate:
            window.push_back(1e6);
            break;
          case EstimateLie::kDeflate:
            window.push_back(0.0);
            break;
        }
      } else if (estimates[w] > 0.0) {
        window.push_back(estimates[w]);
      }
    }
    if (window.empty()) continue;
    smoothed[v] = util::median(window);
  }
  return smoothed;
}

RefinedAccuracy summarize_refined(const std::vector<double>& estimates,
                                  const std::vector<bool>& byz_mask,
                                  std::uint64_t true_n) {
  if (estimates.size() != byz_mask.size()) {
    throw std::invalid_argument("summarize_refined: size mismatch");
  }
  RefinedAccuracy acc;
  const double log_n = std::log2(static_cast<double>(true_n));
  util::OnlineStats stats;
  for (std::size_t v = 0; v < estimates.size(); ++v) {
    if (byz_mask[v] || estimates[v] <= 0.0) continue;
    stats.add(estimates[v] / log_n);
  }
  acc.with_estimate = stats.count();
  acc.mean_ratio = stats.mean();
  acc.min_ratio = stats.count() ? stats.min() : 0.0;
  acc.max_ratio = stats.count() ? stats.max() : 0.0;
  acc.stddev_ratio = stats.stddev();
  return acc;
}

}  // namespace byz::proto
