#include <gtest/gtest.h>

#include <cmath>

#include "baselines/birthday.hpp"
#include "baselines/flood_diameter.hpp"
#include "baselines/spanning_tree.hpp"
#include "baselines/support_estimation.hpp"
#include "graph/bfs.hpp"
#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::base {
namespace {

using graph::Graph;
using graph::NodeId;

Graph make_h(NodeId n, std::uint32_t d, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return graph::simplify(graph::build_hamiltonian_graph(n, d, rng));
}

// ---------------------------------------------------------------- geometric

TEST(GeometricSupport, CleanEstimateInLogBand) {
  const NodeId n = 4096;
  const Graph h = make_h(n, 8, 1);
  const std::vector<bool> byz(n, false);
  const auto r = run_geometric_support(h, byz, FloodAttack::kNone, 100, 7);
  // §1.2: max is in [log n / 2, 2 log n] w.h.p. (log2 n = 12).
  for (const auto est : r.estimate) {
    EXPECT_GE(est, 6u);
    EXPECT_LE(est, 24u);
  }
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.messages, 0u);
}

TEST(GeometricSupport, AllNodesAgreeOnMax) {
  const NodeId n = 512;
  const Graph h = make_h(n, 6, 2);
  const std::vector<bool> byz(n, false);
  const auto r = run_geometric_support(h, byz, FloodAttack::kNone, 100, 9);
  for (const auto est : r.estimate) EXPECT_EQ(est, r.estimate[0]);
}

TEST(GeometricSupport, SingleByzantineDestroysEveryEstimate) {
  // The paper's motivating failure: one inflating Byzantine node ruins all.
  const NodeId n = 512;
  const Graph h = make_h(n, 6, 3);
  std::vector<bool> byz(n, false);
  byz[100] = true;
  const auto r = run_geometric_support(h, byz, FloodAttack::kInflate, 100, 9);
  for (NodeId v = 0; v < n; ++v) {
    if (!byz[v]) EXPECT_GE(r.estimate[v], 1u << 30);
  }
}

TEST(GeometricSupport, SuppressionLeavesLocalMaxima) {
  const NodeId n = 512;
  const Graph h = make_h(n, 6, 4);
  std::vector<bool> byz(n, false);
  // A Byzantine belt cannot stop the flood on an expander (many disjoint
  // paths), but a suppressing byz node itself never forwards.
  byz[0] = true;
  const auto clean = run_geometric_support(h, byz, FloodAttack::kNone, 100, 11);
  const auto sup = run_geometric_support(h, byz, FloodAttack::kSuppress, 100, 11);
  // With one suppressor the flood still converges to the honest max.
  std::uint32_t honest_max = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!byz[v]) honest_max = std::max(honest_max, sup.estimate[v]);
  }
  EXPECT_GT(honest_max, 0u);
  EXPECT_LE(honest_max, clean.estimate[0]);
}

// -------------------------------------------------------------- exponential

TEST(ExponentialSupport, CleanEstimateWithinFactorTwo) {
  const NodeId n = 1024;
  const Graph h = make_h(n, 8, 5);
  const std::vector<bool> byz(n, false);
  const auto r = run_exponential_support(h, byz, FloodAttack::kNone, 64, 100, 13);
  for (NodeId v = 0; v < n; v += 97) {
    EXPECT_GT(r.estimate[v], n / 2.0);
    EXPECT_LT(r.estimate[v], n * 2.0);
  }
}

TEST(ExponentialSupport, ByzantineInflatesUnboundedly) {
  const NodeId n = 512;
  const Graph h = make_h(n, 6, 6);
  std::vector<bool> byz(n, false);
  byz[7] = true;
  const auto r = run_exponential_support(h, byz, FloodAttack::kInflate, 16, 100, 13);
  for (NodeId v = 0; v < n; v += 31) {
    if (!byz[v]) EXPECT_GT(r.estimate[v], 1e6);
  }
}

TEST(ExponentialSupport, RejectsZeroSamples) {
  const Graph h = make_h(64, 6, 7);
  EXPECT_THROW(
      (void)run_exponential_support(h, std::vector<bool>(64, false),
                                    FloodAttack::kNone, 0, 10, 1),
      std::invalid_argument);
}

// ----------------------------------------------------------------- birthday

TEST(Birthday, CleanEstimateRightOrderOfMagnitude) {
  const NodeId n = 4096;
  const std::vector<bool> byz(n, false);
  // m = 8 sqrt(n) samples gives ~32 expected collisions: stable estimate.
  const auto r = run_birthday(n, byz, 8 * 64, 21);
  EXPECT_GT(r.estimate, n / 3.0);
  EXPECT_LT(r.estimate, n * 3.0);
}

TEST(Birthday, ByzantineCollisionsDeflateEstimate) {
  const NodeId n = 4096;
  std::vector<bool> byz(n, false);
  for (NodeId v = 0; v < 256; ++v) byz[v * 16] = true;  // 256 byz
  const auto clean = run_birthday(n, std::vector<bool>(n, false), 512, 23);
  const auto attacked = run_birthday(n, byz, 512, 23);
  EXPECT_LT(attacked.estimate, clean.estimate / 2.0);
}

TEST(Birthday, NoCollisionsMeansNoEstimate) {
  const std::vector<bool> byz(1u << 20, false);
  const auto r = run_birthday(1u << 20, byz, 8, 25);  // far below birthday bound
  EXPECT_EQ(r.estimate, 0.0);
}

// ------------------------------------------------------------ spanning tree

TEST(SpanningTree, ExactWhenHonest) {
  const NodeId n = 777;
  const Graph h = make_h(n, 6, 8);
  const std::vector<bool> byz(n, false);
  const auto r = run_spanning_tree_count(h, byz, 0, TreeAttack::kNone);
  EXPECT_EQ(r.root_count, n);
  EXPECT_GT(r.rounds, 0u);
}

TEST(SpanningTree, InflationAttackCorruptsRoot) {
  const NodeId n = 256;
  const Graph h = make_h(n, 6, 9);
  std::vector<bool> byz(n, false);
  byz[50] = true;
  const auto r = run_spanning_tree_count(h, byz, 0, TreeAttack::kInflate);
  EXPECT_GT(r.root_count, 1'000'000'000ULL);
}

TEST(SpanningTree, ZeroAttackHidesSubtree) {
  const NodeId n = 256;
  const Graph h = make_h(n, 6, 10);
  std::vector<bool> byz(n, false);
  byz[50] = true;
  const auto r = run_spanning_tree_count(h, byz, 0, TreeAttack::kZero);
  EXPECT_LT(r.root_count, n);
}

TEST(SpanningTree, BadRootThrows) {
  const Graph h = make_h(64, 6, 11);
  EXPECT_THROW((void)run_spanning_tree_count(h, std::vector<bool>(64, false),
                                             64, TreeAttack::kNone),
               std::out_of_range);
}

// ----------------------------------------------------------- flood diameter

TEST(FloodDiameter, HonestLeaderGivesDistances) {
  const NodeId n = 512;
  const Graph h = make_h(n, 8, 12);
  const std::vector<bool> byz(n, false);
  const auto r = run_flood_diameter(h, byz, 0, false, 100);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NE(r.first_seen[v], graph::kUnreachable);
  }
  // First-seen = BFS distance; max should be ≈ log_{d-1} n.
  std::uint32_t ecc = 0;
  for (const auto f : r.first_seen) ecc = std::max(ecc, f);
  EXPECT_GE(ecc, 2u);
  EXPECT_LE(ecc, 8u);
}

TEST(FloodDiameter, ByzantineLeaderNeverStarts) {
  const NodeId n = 128;
  const Graph h = make_h(n, 6, 13);
  std::vector<bool> byz(n, false);
  byz[5] = true;
  const auto r = run_flood_diameter(h, byz, 5, false, 100);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(r.first_seen[v], graph::kUnreachable);
  }
}

TEST(FloodDiameter, SuppressionDelaysButExpanderRoutesAround) {
  const NodeId n = 1024;
  const Graph h = make_h(n, 8, 14);
  std::vector<bool> byz(n, false);
  util::Xoshiro256 rng(15);
  for (int i = 0; i < 32; ++i) byz[rng.below(n)] = true;
  const auto r = run_flood_diameter(h, byz, 0, true, 100);
  std::uint32_t reached = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (r.first_seen[v] != graph::kUnreachable) ++reached;
  }
  // Expansion: a 3% random blackhole cannot disconnect the flood.
  EXPECT_GT(reached, n * 9 / 10);
}

}  // namespace
}  // namespace byz::base
