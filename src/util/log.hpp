// Leveled logger with a global threshold. The protocol trace example raises
// the level to `kTrace` to narrate phases/subphases; benches keep `kInfo`.
#pragma once

#include <sstream>
#include <string>

namespace byz::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

/// Optional sink hook: when set, passing lines go to the sink instead of
/// stderr (tests capture output this way). Null restores stderr.
using LogSink = void (*)(LogLevel level, const std::string& message,
                         void* user);
void set_log_sink(LogSink sink, void* user = nullptr) noexcept;

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define BYZ_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::byz::util::log_level())) { \
  } else                                                   \
    ::byz::util::detail::LogStream(level)

#define BYZ_TRACE BYZ_LOG(::byz::util::LogLevel::kTrace)
#define BYZ_DEBUG BYZ_LOG(::byz::util::LogLevel::kDebug)
#define BYZ_INFO BYZ_LOG(::byz::util::LogLevel::kInfo)
#define BYZ_WARN BYZ_LOG(::byz::util::LogLevel::kWarn)
#define BYZ_ERROR BYZ_LOG(::byz::util::LogLevel::kError)

}  // namespace byz::util
