#include "util/bitops.hpp"

#include <gtest/gtest.h>

namespace byz::util {
namespace {

TEST(Bitops, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1ULL << 63), 63u);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(10, 0), 0u);  // guarded
}

}  // namespace
}  // namespace byz::util
