// E8 — Theorem 1 under attack: fraction of honest nodes with a
// constant-factor estimate of log n, for every adversary strategy, across
// n and the Byzantine budget exponent delta.
//
// Run at d=6 (k=2): DESIGN.md §3.5 explains why the crash bound's
// asymptotics need the smaller G-ball at simulation scale; delta stays
// above the paper's 3/d requirement.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(13);
  const auto t = trials(3);

  for (const double delta : {0.6, 0.7, 0.8}) {
    util::Table table("E8: Algorithm 2 under attack, d=6, delta=" +
                      util::format_double(delta, 1) + " (" +
                      std::to_string(t) + " trials)");
    table.columns({"n", "B", "strategy", "in-band frac", "mean est/log2n",
                   "crashed %", "undecided %", "inj caught"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      for (const auto kind : adv::all_strategies()) {
        analysis::AccuracyAggregate agg;
        util::OnlineStats caught;
        graph::NodeId b = 0;
        for (std::uint32_t trial = 0; trial < t; ++trial) {
          sim::TrialConfig cfg;
          cfg.overlay.n = n;
          cfg.overlay.d = 6;
          cfg.delta = delta;
          cfg.strategy = kind;
          cfg.seed = util::mix_seed(0xE8 + n, trial);
          const auto r = sim::run_trial(cfg);
          agg.add(r.accuracy);
          caught.add(static_cast<double>(r.run.instr.injections_caught));
          b = r.byz_count;
        }
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{b})
            .cell(adv::to_string(kind))
            .cell(agg.frac_in_band.mean(), 4)
            .cell(agg.mean_ratio.mean(), 3)
            .cell(100.0 * agg.crashed_frac.mean(), 2)
            .cell(100.0 * agg.undecided_frac.mean(), 2)
            .cell(caught.mean(), 0);
      }
    }
    table.note("Theorem 1: in-band fraction -> 1 as n grows, for every "
               "strategy. Crash-style attacks cost exactly the Byzantine "
               "G-neighborhoods (o(n)); color attacks lower the mean ratio "
               "toward the delta-dependent floor but never below Θ(log n).");
    analysis::emit(table);
  }
  return 0;
}
