#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST(GraphIo, EdgeListRoundTripSimple) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(5, edges, true);  // node 4 isolated
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_TRUE(graphs_equal(g, back));
  EXPECT_EQ(back.num_nodes(), 5u);  // isolated node survives via header
}

TEST(GraphIo, EdgeListRoundTripMultigraph) {
  util::Xoshiro256 rng(3);
  const Graph g = build_hamiltonian_graph(64, 8, rng);  // has parallel edges
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_TRUE(graphs_equal(g, back));
  EXPECT_TRUE(back.is_regular(8));
}

TEST(GraphIo, SelfLoopRoundTrip) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges, false);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_TRUE(graphs_equal(g, back));
  EXPECT_EQ(back.degree(0), 3u);  // loop counts twice + edge to 1
}

TEST(GraphIo, MissingHeaderThrows) {
  std::stringstream buffer("0 1\n1 2\n");
  EXPECT_THROW((void)read_edge_list(buffer), std::runtime_error);
}

TEST(GraphIo, MalformedLineThrows) {
  std::stringstream buffer("# nodes 3\n0 x\n");
  EXPECT_THROW((void)read_edge_list(buffer), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  util::Xoshiro256 rng(7);
  const Graph g = simplify(build_hamiltonian_graph(128, 6, rng));
  const std::string path = ::testing::TempDir() + "/byz_io_test.edges";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_TRUE(graphs_equal(g, back));
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_edge_list("/nonexistent/nowhere.edges"),
               std::runtime_error);
}

TEST(GraphIo, DotOutputShape) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, true);
  std::vector<bool> highlight(3, false);
  highlight[1] = true;
  std::stringstream buffer;
  write_dot(buffer, g, highlight);
  const std::string dot = buffer.str();
  EXPECT_NE(dot.find("graph byzcount {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=red"), std::string::npos);
  EXPECT_EQ(dot.find("n2 -- n1;"), std::string::npos);  // each edge once
}

}  // namespace
}  // namespace byz::graph
