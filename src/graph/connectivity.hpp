// Connected components and induced subgraphs; used to extract the Core
// (largest honest uncrashed component, Lemma 14).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::graph {

struct Components {
  std::vector<std::uint32_t> id;     ///< component id per node
  std::vector<std::uint64_t> sizes;  ///< size per component id
  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(sizes.size());
  }
  /// Id of the largest component (ties: smallest id).
  [[nodiscard]] std::uint32_t largest() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

/// True iff the graph is connected (and nonempty).
[[nodiscard]] bool is_connected(const Graph& g);

/// Subgraph induced by the nodes with keep[v] == true. `old_to_new` (if
/// non-null) receives the node remapping (kInvalidNode for dropped nodes);
/// `new_to_old` (if non-null) the inverse list.
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     const std::vector<bool>& keep,
                                     std::vector<NodeId>* old_to_new = nullptr,
                                     std::vector<NodeId>* new_to_old = nullptr);

/// Mask of the largest connected component among nodes with keep[v] == true.
[[nodiscard]] std::vector<bool> largest_component_mask(
    const Graph& g, const std::vector<bool>& keep);

}  // namespace byz::graph
