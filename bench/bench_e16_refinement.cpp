// E16 (extension) — Estimate refinement toward the paper's open problem of
// a 1 ± o(1) factor: the model-aware readout l_{i*-2} plus one round of
// median smoothing over G-neighborhoods. Compares raw phase ratios with
// refined and smoothed ratios, clean and under attack (including lying
// responses during the smoothing round).
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e16(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));

  struct Point {
    graph::NodeId n;
    bool attacked;
  };
  std::vector<Point> grid;
  for (const auto n : sizes) {
    for (const bool attacked : {false, true}) grid.push_back({n, attacked});
  }

  struct Cell {
    proto::Accuracy raw;
    proto::RefinedAccuracy racc;
    proto::RefinedAccuracy sacc;
  };
  const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
    const auto [n, attacked] = grid[i];
    const auto overlay = ctx.overlay(n, 8, 0xF0 + n);
    std::vector<bool> byz(n, false);
    if (attacked) byz = place_byz(n, 0.5, 0xF0 + n);
    const auto strat = adv::make_strategy(attacked
                                              ? adv::StrategyKind::kFakeColor
                                              : adv::StrategyKind::kHonest);
    proto::ProtocolConfig cfg;
    const auto run = proto::run_counting(*overlay, byz, *strat, cfg, 0xD0);
    Cell cell;
    cell.raw = proto::summarize_accuracy(run, n);
    const auto refined = proto::refine_run(run, 8);
    cell.racc = proto::summarize_refined(refined, byz, n);
    const auto smoothed = proto::smooth_estimates(
        *overlay, byz, refined,
        attacked ? proto::EstimateLie::kInflate : proto::EstimateLie::kHonest);
    cell.sacc = proto::summarize_refined(smoothed, byz, n);
    return cell;
  });

  util::Table table("E16: raw vs refined vs smoothed estimates of log2 n "
                    "(d=8, fake-color, delta=0.5)");
  table.columns({"n", "attack", "raw mean", "refined mean", "refined sd",
                 "smoothed mean", "smoothed sd", "smoothed min..max"});
  std::vector<double> smoothed_means;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [n, attacked] = grid[i];
    const auto& cell = cells[i];
    table.row()
        .cell(std::uint64_t{n})
        .cell(attacked ? "fake-color+inflate" : "none")
        .cell(cell.raw.mean_ratio, 3)
        .cell(cell.racc.mean_ratio, 3)
        .cell(cell.racc.stddev_ratio, 3)
        .cell(cell.sacc.mean_ratio, 3)
        .cell(cell.sacc.stddev_ratio, 3)
        .cell(util::format_double(cell.sacc.min_ratio, 2) + " .. " +
              util::format_double(cell.sacc.max_ratio, 2));
    smoothed_means.push_back(cell.sacc.mean_ratio);
  }
  table.note("The refined readout moves the estimate from a ~0.3-0.5x "
             "multiplicative factor to near-1x with additive-O(1) error; "
             "median smoothing over G-neighborhoods collapses the spread "
             "and shrugs off inflating Byzantine responses (they are a "
             "minority of every honest node's G-ball). Under attack the "
             "mean sits below 1 because color injection stops phases early "
             "near Byzantine nodes — the floor is Θ(delta log n), as in E8.");
  ctx.emit(table);
  ctx.record_accuracy("smoothed_mean_ratio", smoothed_means);
}

}  // namespace

BYZBENCH_REGISTER(e16) {
  ScenarioSpec spec;
  spec.id = "e16";
  spec.title = "refinement toward a 1 +- o(1) estimate";
  spec.claim = "S4 open problem: refined + median-smoothed readout reaches "
               "near-1x with additive-O(1) error";
  spec.grid = {{"attack", {"none", "fake-color+inflate"}}, pow2_axis(10, 14)};
  spec.base_trials = 1;
  spec.metrics = {"accuracy.smoothed_mean_ratio"};
  spec.run = run_e16;
  return spec;
}
