// Engine-specific behaviors beyond the equivalence suite: the per-round
// message trace, crash handling at setup, and determinism.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/categories.hpp"
#include "util/rng.hpp"

namespace byz::sim {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 256, std::uint32_t d = 6, std::uint64_t seed = 3) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(Engine, RoundTraceSumsToTokenTotal) {
  const Overlay o = sample();
  const std::vector<bool> byz(o.num_nodes(), false);
  const auto strat = adv::make_strategy(adv::StrategyKind::kHonest);
  proto::ProtocolConfig cfg;
  Engine engine(o, byz, *strat, cfg, 42);
  const auto run = engine.run();
  const auto& trace = engine.round_messages();
  EXPECT_EQ(trace.size(), run.flood_rounds);
  const std::uint64_t total =
      std::accumulate(trace.begin(), trace.end(), std::uint64_t{0});
  EXPECT_EQ(total, run.instr.token_messages);
}

TEST(Engine, FirstRoundIsFullBroadcast) {
  // In subphase step 1 every active node broadcasts its color: the first
  // trace entry must equal the sum of H-degrees (2|E(H_simple)|).
  const Overlay o = sample();
  const std::vector<bool> byz(o.num_nodes(), false);
  const auto strat = adv::make_strategy(adv::StrategyKind::kHonest);
  proto::ProtocolConfig cfg;
  Engine engine(o, byz, *strat, cfg, 7);
  (void)engine.run();
  EXPECT_EQ(engine.round_messages().at(0), o.h_simple().num_slots());
}

TEST(Engine, CrashMaximizerSilencesVictimsEntirely) {
  const Overlay o = sample(256, 6, 5);
  util::Xoshiro256 rng(9);
  const auto byz = graph::random_byzantine_mask(o.num_nodes(), 4, rng);
  const auto strat = adv::make_strategy(adv::StrategyKind::kCrashMaximizer);
  proto::ProtocolConfig cfg;
  Engine engine(o, byz, *strat, cfg, 11);
  const auto run = engine.run();
  std::uint64_t crashed = 0;
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (run.status[v] == proto::NodeStatus::kCrashed) {
      ++crashed;
      EXPECT_EQ(run.estimate[v], 0u);
    }
  }
  EXPECT_EQ(crashed, run.instr.crashes);
  EXPECT_GT(crashed, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const Overlay o = sample(200, 6, 7);
  util::Xoshiro256 rng(13);
  const auto byz = graph::random_byzantine_mask(o.num_nodes(), 8, rng);
  proto::ProtocolConfig cfg;
  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  Engine e1(o, byz, *s1, cfg, 17);
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  Engine e2(o, byz, *s2, cfg, 17);
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.estimate, r2.estimate);
  EXPECT_EQ(r1.instr.token_messages, r2.instr.token_messages);
}

TEST(Engine, MaskSizeMismatchThrows) {
  const Overlay o = sample(64, 6, 9);
  auto strat = adv::make_strategy(adv::StrategyKind::kHonest);
  proto::ProtocolConfig cfg;
  EXPECT_THROW(Engine(o, std::vector<bool>(3, false), *strat, cfg, 1),
               std::invalid_argument);
}

TEST(Engine, NoVerificationTrafficWhenDisabled) {
  const Overlay o = sample(128, 6, 11);
  util::Xoshiro256 rng(15);
  const auto byz = graph::random_byzantine_mask(o.num_nodes(), 4, rng);
  const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
  proto::ProtocolConfig cfg;
  cfg.verification.enabled = false;
  cfg.max_phase = 6;  // bounded: unverified injections can stall forever
  Engine engine(o, byz, *strat, cfg, 19);
  const auto run = engine.run();
  EXPECT_EQ(run.instr.verify_messages, 0u);
}

TEST(Engine, PhaseCapRespected) {
  const Overlay o = sample(128, 6, 13);
  const std::vector<bool> byz(o.num_nodes(), false);
  const auto strat = adv::make_strategy(adv::StrategyKind::kHonest);
  proto::ProtocolConfig cfg;
  cfg.max_phase = 2;  // force an early stop
  Engine engine(o, byz, *strat, cfg, 21);
  const auto run = engine.run();
  EXPECT_LE(run.phases_executed, 2u);
  for (const auto e : run.estimate) EXPECT_LE(e, 2u);
}

}  // namespace
}  // namespace byz::sim
