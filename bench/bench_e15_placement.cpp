// E15 (extension) — Adversarial Byzantine PLACEMENT: the paper's §4 open
// problem. Random placement is what keeps Byzantine chains below k
// (Observation 6); here the adversary also chooses where its nodes sit.
// Chain placement defeats the Lemma-16 bound by construction; clustering
// concentrates crash damage; spreading is weaker than random.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(13);
  const auto t = trials(3);

  util::Table table("E15: Byzantine placement strategies (d=8, k=3, "
                    "fake-color attack, delta=0.5, " + std::to_string(t) +
                    " trials)");
  table.columns({"n", "B", "placement", "max chain", "in-band frac",
                 "undecided %", "mean est/log2n", "inj accepted"});
  for (const auto n : analysis::pow2_sizes(10, max_exp)) {
    for (const auto placement : adv::all_placements()) {
      analysis::AccuracyAggregate agg;
      util::OnlineStats chain_stat;
      util::OnlineStats accepted;
      graph::NodeId b = 0;
      for (std::uint32_t trial = 0; trial < t; ++trial) {
        const auto overlay =
            make_overlay(n, 8, util::mix_seed(0xEF + n, trial));
        b = sim::derive_byz_count(n, 0.5);
        util::Xoshiro256 rng(util::mix_seed(0xEF2 + n, trial));
        const auto byz = adv::place_byzantine(overlay, b, placement, rng);
        chain_stat.add(static_cast<double>(
            graph::longest_byzantine_chain(overlay.h_simple(), byz, 32)));
        const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
        proto::ProtocolConfig cfg;
        const auto run = proto::run_counting(overlay, byz, *strat, cfg,
                                             util::mix_seed(0xCF, trial));
        agg.add(proto::summarize_accuracy(run, n));
        accepted.add(static_cast<double>(run.instr.injections_accepted));
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{b})
          .cell(adv::to_string(placement))
          .cell(chain_stat.max(), 0)
          .cell(agg.frac_in_band.mean(), 4)
          .cell(100.0 * agg.undecided_frac.mean(), 2)
          .cell(agg.mean_ratio.mean(), 3)
          .cell(accepted.mean(), 0);
    }
  }
  table.note("Chain placement manufactures Byzantine paths of length B >> k: "
             "last-step injections become acceptable near the chain and its "
             "neighborhoods stall (undecided%) — random placement is a REAL "
             "assumption, exactly as the paper's open problem suggests. "
             "Spread placement produces shorter chains than random and is "
             "the adversary's worst choice.");
  analysis::emit(table);
  return 0;
}
