// Small integer helpers shared across modules.
#pragma once

#include <bit>
#include <cstdint>

namespace byz::util {

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : 63 - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// True iff x is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Integer ceiling division for nonnegative values.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return b == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace byz::util
