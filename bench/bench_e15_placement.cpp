// E15 (extension) — Adversarial Byzantine PLACEMENT: the paper's §4 open
// problem. Random placement is what keeps Byzantine chains below k
// (Observation 6); here the adversary also chooses where its nodes sit.
// Chain placement defeats the Lemma-16 bound by construction; clustering
// concentrates crash damage; spreading is weaker than random.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e15(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(13));
  const auto t = ctx.trials(3);
  const auto placements = adv::all_placements();

  struct Point {
    graph::NodeId n;
    adv::Placement placement;
  };
  std::vector<Point> grid;
  for (const auto n : sizes) {
    for (const auto placement : placements) grid.push_back({n, placement});
  }

  struct Cell {
    analysis::AccuracyAggregate agg;
    util::OnlineStats chain_stat;
    util::OnlineStats accepted;
    graph::NodeId b = 0;
    sim::Instrumentation instr;
  };
  const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
    const auto [n, placement] = grid[i];
    Cell cell;
    for (std::uint32_t trial = 0; trial < t; ++trial) {
      const auto overlay = ctx.overlay(n, 8, util::mix_seed(0xEF + n, trial));
      cell.b = sim::derive_byz_count(n, 0.5);
      util::Xoshiro256 rng(util::mix_seed(0xEF2 + n, trial));
      const auto byz = adv::place_byzantine(*overlay, cell.b, placement, rng);
      cell.chain_stat.add(static_cast<double>(
          graph::longest_byzantine_chain(overlay->h_simple(), byz, 32)));
      const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(*overlay, byz, *strat, cfg,
                                           util::mix_seed(0xCF, trial));
      cell.agg.add(proto::summarize_accuracy(run, n));
      cell.accepted.add(static_cast<double>(run.instr.injections_accepted));
      cell.instr.merge(run.instr);
    }
    return cell;
  });

  util::Table table("E15: Byzantine placement strategies (d=8, k=3, "
                    "fake-color attack, delta=0.5, " + std::to_string(t) +
                    " trials)");
  table.columns({"n", "B", "placement", "max chain", "in-band frac",
                 "undecided %", "mean est/log2n", "inj accepted"});
  std::vector<double> in_band;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [n, placement] = grid[i];
    const auto& cell = cells[i];
    table.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{cell.b})
        .cell(adv::to_string(placement))
        .cell(cell.chain_stat.max(), 0)
        .cell(cell.agg.frac_in_band.mean(), 4)
        .cell(100.0 * cell.agg.undecided_frac.mean(), 2)
        .cell(cell.agg.mean_ratio.mean(), 3)
        .cell(cell.accepted.mean(), 0);
    in_band.push_back(cell.agg.frac_in_band.mean());
    ctx.count_messages(cell.instr);
  }
  table.note("Chain placement manufactures Byzantine paths of length B >> k: "
             "last-step injections become acceptable near the chain and its "
             "neighborhoods stall (undecided%) — random placement is a REAL "
             "assumption, exactly as the paper's open problem suggests. "
             "Spread placement produces shorter chains than random and is "
             "the adversary's worst choice.");
  ctx.emit(table);
  ctx.record_accuracy("in_band", in_band);
}

}  // namespace

BYZBENCH_REGISTER(e15) {
  ScenarioSpec spec;
  spec.id = "e15";
  spec.title = "adversarial Byzantine placement";
  spec.claim = "S4 open problem: chain placement defeats Observation 6; "
               "random placement is a real assumption";
  spec.grid = {{"placement", {"random", "clustered", "chain", "spread"}},
               pow2_axis(10, 13)};
  spec.base_trials = 3;
  spec.metrics = {"messages", "accuracy.in_band"};
  spec.run = run_e15;
  return spec;
}
