// Protocol trace: a narrated, phase-by-phase view of one Algorithm-2 run —
// useful for building intuition about the termination predicate. Enables
// trace logging (stderr) and prints the distribution of decision phases
// plus the per-phase schedule (alpha_i, subphases, rounds).
//
//   $ ./protocol_trace [--n=2048] [--d=8] [--delta=0.6] [--seed=5]
//                      [--strategy=fake-color]
#include <cmath>
#include <iostream>

#include "byzcount.hpp"

namespace {

byz::adv::StrategyKind parse_strategy(const std::string& name) {
  for (const auto kind : byz::adv::all_strategies()) {
    if (name == byz::adv::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown strategy: " + name +
                              " (try honest, fake-color, suppress, "
                              "topology-liar, crash-max, adaptive)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace byz;

  util::ArgParser args("protocol_trace", "narrated Algorithm-2 run");
  args.add_option("n", "network size", "2048");
  args.add_option("d", "H-degree", "8");
  args.add_option("delta", "Byzantine exponent", "0.6");
  args.add_option("seed", "trial seed", "5");
  args.add_option("strategy", "adversary strategy", "fake-color");
  if (!args.parse(argc, argv)) return 0;

  util::set_log_level(util::LogLevel::kTrace);  // narrate phases to stderr

  const auto n = static_cast<graph::NodeId>(args.integer("n"));
  const auto d = static_cast<std::uint32_t>(args.integer("d"));
  const auto seed = static_cast<std::uint64_t>(args.integer("seed"));

  graph::OverlayParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 rng(seed ^ 0xB12);
  const auto byz = graph::random_byzantine_mask(
      n, sim::derive_byz_count(n, args.real("delta")), rng);
  const auto strategy = adv::make_strategy(parse_strategy(args.str("strategy")));

  // The schedule the nodes will follow (they all know i and j, §3.1).
  proto::ProtocolConfig cfg;
  util::Table sched("Phase schedule (eps=" +
                    util::format_double(cfg.schedule.epsilon, 2) + ", d=" +
                    std::to_string(d) + ")");
  sched.columns({"phase i", "alpha_i", "subphases", "flood rounds",
                 "continue threshold"});
  for (std::uint32_t i = 1; i <= 8; ++i) {
    sched.row()
        .cell(i)
        .cell(proto::alpha_i(i, d, cfg.schedule))
        .cell(proto::subphases_in_phase(i, d, cfg.schedule))
        .cell(proto::rounds_in_phase(i, d, cfg.schedule))
        .cell(proto::continue_threshold(i, d), 2);
  }
  std::cout << sched;

  const auto run =
      proto::run_counting(overlay, byz, *strategy, cfg, seed ^ 0xC01);

  // Decision-phase histogram.
  std::uint32_t max_est = 1;
  for (const auto e : run.estimate) max_est = std::max(max_est, e);
  util::Histogram hist(0.5, max_est + 0.5, max_est);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (run.status[v] == proto::NodeStatus::kDecided) {
      hist.add(static_cast<double>(run.estimate[v]));
    }
  }
  std::cout << "\nDecision-phase histogram (truth: log2 n = "
            << util::format_double(std::log2(static_cast<double>(n)), 2)
            << ", diameter-ish reference log2(n)/log2(d-1) = "
            << util::format_double(
                   std::log2(static_cast<double>(n)) / std::log2(d - 1.0), 2)
            << "):\n"
            << hist.ascii(48);

  const auto acc = proto::summarize_accuracy(run, n);
  std::cout << "\ndecided=" << acc.decided << " crashed=" << acc.crashed
            << " undecided=" << acc.undecided
            << " | mean ratio=" << util::format_double(acc.mean_ratio, 3)
            << " | rounds=" << run.flood_rounds
            << " | injections accepted/caught="
            << run.instr.injections_accepted << "/"
            << run.instr.injections_caught << "\n";
  return 0;
}
