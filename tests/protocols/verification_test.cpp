#include "protocols/verification.hpp"

#include <gtest/gtest.h>

#include "graph/categories.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 256, std::uint32_t d = 8, std::uint64_t seed = 91) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(ByzPath, HonestEndpointIsZero) {
  const Overlay o = sample();
  const std::vector<bool> byz(o.num_nodes(), false);
  EXPECT_EQ(byz_path_ending_at(o.h_simple(), byz, 0, 10), 0u);
}

TEST(ByzPath, IsolatedByzIsOne) {
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  byz[3] = true;
  EXPECT_EQ(byz_path_ending_at(o.h_simple(), byz, 3, 10), 1u);
}

TEST(ByzPath, ChainAlongHEdges) {
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  // Walk three H-hops from node 0 marking everything Byzantine.
  NodeId a = 0;
  byz[a] = true;
  NodeId b = o.h_simple().neighbors(a)[0];
  byz[b] = true;
  NodeId c = graph::kInvalidNode;
  for (const NodeId w : o.h_simple().neighbors(b)) {
    if (w != a) {
      c = w;
      break;
    }
  }
  ASSERT_NE(c, graph::kInvalidNode);
  byz[c] = true;
  EXPECT_GE(byz_path_ending_at(o.h_simple(), byz, c, 10), 3u);
  EXPECT_GE(byz_path_ending_at(o.h_simple(), byz, a, 10), 3u);
}

TEST(Verifier, CheckBallSizesMatchOverlay) {
  const Overlay o = sample(256, 8);
  const std::vector<bool> byz(o.num_nodes(), false);
  const Verifier ver(o, byz, {});
  // step 1 -> |B_H(v,1)| = 1 + deg_H; step >= k-1 caps at |B_H(v,k-1)|.
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(ver.check_ball_size(v, 1),
              1u + o.h_simple().degree(v));
    std::uint32_t within2 = 1;
    for (const auto dval : o.g_dists(v)) {
      if (dval <= 2) ++within2;
    }
    EXPECT_EQ(ver.check_ball_size(v, 2), within2);
    EXPECT_EQ(ver.check_ball_size(v, 99), within2);  // k-1 = 2 cap
  }
}

TEST(Verifier, HonestForwardAlwaysAccepted) {
  const Overlay o = sample();
  const std::vector<bool> byz(o.num_nodes(), false);
  const Verifier ver(o, byz, {});
  sim::Instrumentation instr;
  EXPECT_TRUE(ver.accept(0, 5, 3, 5, false, instr));
  EXPECT_EQ(instr.injections_attempted, 0u);
  EXPECT_GT(instr.verify_messages, 0u);
}

TEST(Verifier, GenerationClaimAlwaysAccepted) {
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  byz[0] = true;
  const Verifier ver(o, byz, {});
  sim::Instrumentation instr;
  EXPECT_TRUE(ver.accept(0, 1'000'000, 1, 0, true, instr));
  EXPECT_EQ(instr.injections_accepted, 1u);
  EXPECT_EQ(instr.injections_caught, 0u);
}

TEST(Verifier, MidSubphaseFabricationCaughtWithoutChain) {
  // Lemma 16: an isolated Byzantine node cannot push a fake color at any
  // step t >= 2.
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  byz[7] = true;
  const Verifier ver(o, byz, {});
  sim::Instrumentation instr;
  for (std::uint32_t t = 2; t <= 6; ++t) {
    EXPECT_FALSE(ver.accept(7, 999, t, 0, true, instr)) << "t=" << t;
  }
  EXPECT_EQ(instr.injections_caught, 5u);
  EXPECT_EQ(instr.injections_accepted, 0u);
}

TEST(Verifier, ChainOfTwoAllowsStepTwoOnly) {
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  const NodeId a = 0;
  const NodeId b = o.h_simple().neighbors(a)[0];
  byz[a] = byz[b] = true;
  const Verifier ver(o, byz, {});
  sim::Instrumentation instr;
  EXPECT_TRUE(ver.accept(a, 999, 2, 0, true, instr));   // needs chain 2: have it
  EXPECT_FALSE(ver.accept(a, 999, 3, 0, true, instr));  // needs chain 3 (= k)
  EXPECT_FALSE(ver.accept(a, 999, 9, 2, true, instr));  // needs chain k
}

TEST(Verifier, ByzCanReplayLegitFreshValue) {
  // A Byzantine node forwarding exactly what an honest node would forward
  // is indistinguishable from honest behavior: accepted, not an injection.
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  byz[4] = true;
  const Verifier ver(o, byz, {});
  sim::Instrumentation instr;
  EXPECT_TRUE(ver.accept(4, 6, 4, 6, true, instr));
  EXPECT_EQ(instr.injections_attempted, 0u);
}

TEST(Verifier, DisabledAcceptsEverythingSilently) {
  // Algorithm-1 ablation: no verification traffic, everything believed.
  const Overlay o = sample();
  std::vector<bool> byz(o.num_nodes(), false);
  byz[2] = true;
  VerificationConfig cfg;
  cfg.enabled = false;
  const Verifier ver(o, byz, cfg);
  sim::Instrumentation instr;
  EXPECT_TRUE(ver.accept(2, 12345, 5, 0, true, instr));
  EXPECT_EQ(instr.verify_messages, 0u);
  EXPECT_EQ(instr.injections_accepted, 1u);
}

TEST(Verifier, RewiredModelAtLeastAsPermissive) {
  // The rewired chain model counts Byzantine nodes in the (k-1)-ball, which
  // upper-bounds the strict simple-path model.
  const Overlay o = sample(512, 8, 97);
  util::Xoshiro256 rng(13);
  const auto byz = graph::random_byzantine_mask(o.num_nodes(), 48, rng);
  VerificationConfig strict;
  strict.chain_model = ChainModel::kStrict;
  VerificationConfig rewired;
  rewired.chain_model = ChainModel::kRewired;
  const Verifier vs(o, byz, strict);
  const Verifier vr(o, byz, rewired);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (!byz[v]) continue;
    EXPECT_GE(vr.usable_chain(v), vs.usable_chain(v)) << "v=" << v;
  }
}

TEST(Verifier, VerificationTrafficScalesWithBall) {
  const Overlay o = sample();
  const std::vector<bool> byz(o.num_nodes(), false);
  const Verifier ver(o, byz, {});
  sim::Instrumentation i1;
  sim::Instrumentation i2;
  (void)ver.accept(0, 3, 1, 3, false, i1);
  (void)ver.accept(0, 3, 2, 3, false, i2);
  EXPECT_GT(i2.verify_messages, i1.verify_messages);  // bigger checked ball
}

TEST(Verifier, MaskSizeMismatchThrows) {
  const Overlay o = sample(64, 6, 101);
  EXPECT_THROW(Verifier(o, std::vector<bool>(5, false), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace byz::proto
