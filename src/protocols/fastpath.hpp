// Whole-network protocol execution, array-based (the optimized tier; the
// message-level reference implementation lives in sim/engine.*). Runs
// Algorithm 2 — and Algorithm 1 as the ablation with verification and the
// crash rule disabled — phase by phase until every honest node has decided
// or the phase cap is reached.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/run_common.hpp"
#include "protocols/schedule.hpp"

namespace byz::proto {

struct ProtocolConfig {
  ScheduleConfig schedule;
  VerificationConfig verification;
  bool crash_rule = true;     ///< Algorithm 2 line 2 (ablation switch)
  std::uint32_t max_phase = 0;  ///< 0 = auto: 4·log2(n)/log2(d-1) + 8
};

/// The Algorithm-1 configuration: no Byzantine countermeasures at all.
[[nodiscard]] inline ProtocolConfig basic_config(ScheduleConfig sched = {}) {
  ProtocolConfig cfg;
  cfg.schedule = sched;
  cfg.verification.enabled = false;
  cfg.crash_rule = false;
  return cfg;
}

/// Resolved phase cap for a given overlay.
[[nodiscard]] std::uint32_t resolve_max_phase(const graph::Overlay& overlay,
                                              const ProtocolConfig& cfg);

/// Runs the (Byzantine) counting protocol. `byz_mask` marks Byzantine
/// nodes (all-false = the clean setting of §3.1/§3.2); `strategy` drives
/// them; `color_seed` keys the coin table shared with the adversary.
[[nodiscard]] RunResult run_counting(const graph::Overlay& overlay,
                                     const std::vector<bool>& byz_mask,
                                     adv::Strategy& strategy,
                                     const ProtocolConfig& cfg,
                                     std::uint64_t color_seed);

/// run_counting with explicit controls (protocols/run_common.hpp);
/// run_counting == default controls.
[[nodiscard]] RunResult run_counting_with(const graph::Overlay& overlay,
                                          const std::vector<bool>& byz_mask,
                                          adv::Strategy& strategy,
                                          const ProtocolConfig& cfg,
                                          std::uint64_t color_seed,
                                          const RunControls& controls);

/// Algorithm 1 with no Byzantine nodes at all (§3.1's exposition setting).
[[nodiscard]] RunResult run_basic_counting(const graph::Overlay& overlay,
                                           std::uint64_t color_seed,
                                           ScheduleConfig sched = {});

}  // namespace byz::proto
