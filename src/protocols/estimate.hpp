// Per-node protocol outcomes shared by the message-level engine and the
// fast path, plus the accuracy summaries the experiments report.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/instrumentation.hpp"

namespace byz::proto {

enum class NodeStatus : std::uint8_t {
  kDecided,    ///< honest, terminated with an estimate
  kUndecided,  ///< honest, still active when the phase cap was reached
  kCrashed,    ///< honest, shut down by the Algorithm-2 line-2 crash rule
  kByzantine,
  kDeparted,   ///< left the overlay during a mid-run-churn run; no longer a
               ///< member, so accuracy summaries skip it like a Byzantine id
};

struct RunResult {
  std::vector<NodeStatus> status;       ///< per node
  std::vector<std::uint32_t> estimate;  ///< decided phase i (0 if none)
  std::uint32_t phases_executed = 0;
  std::uint64_t flood_rounds = 0;       ///< protocol rounds (paper's count)
  /// Subphase accounting: scheduled = what the paper's schedule prescribes
  /// for the executed phases; executed < scheduled only for lazily
  /// evaluated (warm-tier) runs, which stop a phase at the first subphase
  /// after which every active node has fired.
  std::uint64_t subphases_scheduled = 0;
  std::uint64_t subphases_executed = 0;
  sim::Instrumentation instr;

  /// Bitwise identity: statuses, estimates, phase/round/subphase counts,
  /// and every instrumentation counter. This is the relation the E24/E26
  /// parity anchors and the tier-equivalence suites assert.
  bool operator==(const RunResult&) const = default;
};

/// Accuracy summary against the true size n: the paper's guarantee is that
/// all but ε·n honest nodes land in [c1·log n, c2·log n].
struct Accuracy {
  std::uint64_t honest = 0;
  std::uint64_t decided = 0;
  std::uint64_t crashed = 0;
  std::uint64_t undecided = 0;
  std::uint64_t in_band = 0;       ///< decided with ratio in [lo, hi]
  double min_ratio = 0.0;          ///< min over decided of est / log2(n)
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  double frac_in_band = 0.0;       ///< in_band / honest
  double frac_good = 0.0;          ///< in_band / decided

  bool operator==(const Accuracy&) const = default;
};

/// Computes the summary. `lo`/`hi` bound the accepted ratio est/log2(n);
/// the defaults cover the d-dependent termination point diameter ≈
/// log n / log(d-1) with generous slack (a "constant factor" band).
/// Backends with a tighter contract pass their own EstimatorBound.
[[nodiscard]] Accuracy summarize_accuracy(const RunResult& result,
                                          std::uint64_t true_n,
                                          double lo = 0.05, double hi = 3.0);

/// Median estimate over the decided nodes (0.0 if none decided). This is
/// the scale-free per-run aggregate the cross-backend agreement oracle
/// compares: unlike summarize_accuracy it needs no ground-truth n, so the
/// pairwise check is deployable in production, not just in tests.
[[nodiscard]] double median_decided_estimate(const RunResult& result);

}  // namespace byz::proto
