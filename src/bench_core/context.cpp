#include "bench_core/context.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/report.hpp"
#include "bench_core/registry.hpp"
#include "util/stats.hpp"

namespace byz::bench_core {

RunContext::RunContext(const ScenarioSpec& spec, const RunOptions& opts,
                       OverlayCache& cache, const TrialScheduler& scheduler)
    : spec_(spec),
      opts_(opts),
      cache_(cache),
      scheduler_(scheduler),
      scale_(opts.scale * analysis::env_scale()),
      doc_(Json::object()) {
  // Only DETERMINISTIC content goes into the BENCH_<exp>.json doc: the
  // manifest must be bitwise identical for every --jobs value. Volatile run
  // facts (worker count, wall-time, cache stats) go into the RUNMETA
  // sidecar the orchestrator writes.
  doc_["schema"] = "byzbench/v1";
  doc_["experiment"] = spec.id;
  doc_["title"] = spec.title;
  doc_["scale"] = scale_;
  doc_["tables"] = Json::array();
  doc_["metrics"] = Json::object();
}

bool RunContext::audit() const noexcept { return opts_.audit; }

const std::string& RunContext::digest_out() const noexcept {
  return opts_.digest_out;
}

const std::string& RunContext::backend() const noexcept {
  return opts_.backend;
}

std::uint32_t RunContext::trials(std::uint32_t base) const {
  const double scaled = base * scale_;
  return scaled < 1.0 ? 1u : static_cast<std::uint32_t>(scaled);
}

std::uint32_t RunContext::max_exp(std::uint32_t fallback) const {
  std::uint32_t exp = analysis::env_max_exp(fallback);
  if (scale_ < 1.0) {
    const auto shrink =
        static_cast<std::uint32_t>(std::ceil(-std::log2(std::max(scale_, 1e-9))));
    exp = exp > shrink ? exp - shrink : 0;
  }
  return std::max(exp, 10u);
}

std::shared_ptr<const graph::Overlay> RunContext::overlay(graph::NodeId n,
                                                          std::uint32_t d,
                                                          std::uint64_t seed) {
  return cache_.get(n, d, seed);
}

std::vector<sim::TrialResult> RunContext::run_trials(
    const sim::TrialConfig& cfg, std::uint32_t count) {
  auto results = scheduler_.map(count, [&](std::uint64_t t) {
    sim::TrialConfig trial_cfg = cfg;
    trial_cfg.seed = TrialScheduler::trial_seed(cfg.seed, t);
    return sim::run_trial(trial_cfg);
  });
  for (const auto& r : results) count_messages(r.run.instr);
  return results;
}

void RunContext::emit(const util::Table& table) {
  if (!opts_.quiet) analysis::emit(table);
  doc_["tables"].push_back(table_json(table));
}

void RunContext::line(const std::string& text) {
  if (!opts_.quiet) analysis::emit_line(text);
}

void RunContext::metric(const std::string& name, Json value) {
  doc_["metrics"][name] = std::move(value);
}

void RunContext::count_messages(const sim::Instrumentation& instr) {
  message_totals_.merge(instr);
  has_messages_ = true;
  doc_["metrics"]["messages"] = instrumentation_json(message_totals_);
}

void RunContext::record_accuracy(const std::string& name,
                                 std::span<const double> ratios) {
  doc_["metrics"]["accuracy"][name] = quantiles_json(ratios);
}

Json instrumentation_json(const sim::Instrumentation& instr) {
  Json j = Json::object();
  j["setup_messages"] = instr.setup_messages;
  j["token_messages"] = instr.token_messages;
  j["verify_messages"] = instr.verify_messages;
  j["total_messages"] = instr.total_messages();
  j["total_bytes"] = instr.total_bytes();
  j["flood_rounds"] = instr.flood_rounds;
  j["injections_attempted"] = instr.injections_attempted;
  j["injections_accepted"] = instr.injections_accepted;
  j["injections_caught"] = instr.injections_caught;
  j["crashes"] = instr.crashes;
  j["max_node_round_sends"] = instr.max_node_round_sends;
  return j;
}

Json quantiles_json(std::span<const double> sample) {
  Json j = Json::object();
  j["count"] = std::uint64_t{sample.size()};
  if (sample.empty()) return j;
  util::OnlineStats stats;
  for (const double v : sample) stats.add(v);
  j["mean"] = stats.mean();
  j["p10"] = util::percentile(sample, 0.10);
  j["p50"] = util::percentile(sample, 0.50);
  j["p90"] = util::percentile(sample, 0.90);
  j["min"] = stats.min();
  j["max"] = stats.max();
  return j;
}

Json table_json(const util::Table& table) {
  Json j = Json::object();
  j["title"] = table.title();
  Json columns = Json::array();
  for (const auto& c : table.header()) columns.push_back(c);
  j["columns"] = std::move(columns);
  Json rows = Json::array();
  for (const auto& r : table.rows()) {
    Json row = Json::array();
    for (const auto& cell : r) row.push_back(cell);
    rows.push_back(std::move(row));
  }
  j["rows"] = std::move(rows);
  Json notes = Json::array();
  for (const auto& n : table.notes()) notes.push_back(n);
  j["notes"] = std::move(notes);
  return j;
}

}  // namespace byz::bench_core
