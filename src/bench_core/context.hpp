// Per-scenario run context handed to every registered experiment: scaling,
// the shared trial scheduler, the overlay cache, table emission (stdout +
// capture + structured JSON), and metric recording for BENCH_<exp>.json.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "bench_core/json.hpp"
#include "bench_core/overlay_cache.hpp"
#include "bench_core/scheduler.hpp"
#include "sim/instrumentation.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"

namespace byz::bench_core {

struct ScenarioSpec;

/// Orchestrator-level options (parsed by byzbench's main).
struct RunOptions {
  std::string filter;        ///< comma-separated substrings; empty = all
  double scale = 1.0;        ///< multiplies trial counts, shrinks sweeps
  unsigned jobs = 0;         ///< scheduler workers; 0 = hardware
  std::string json_out;      ///< directory for BENCH_<exp>.json; empty = off
  bool list_only = false;
  bool quiet = false;        ///< suppress table stdout (tests)
  /// Chrome trace-event JSON file (src/obs/trace.hpp); empty = tracing
  /// off. Setting it flips the obs runtime switch for the whole run.
  std::string trace_out;
  /// byzobs/metrics/v1 JSON file (src/obs/metrics.hpp); empty = off.
  std::string metrics_out;
  /// Divergence-forensics audit (src/obs/digest.hpp): oracle scenarios
  /// attach digesters to both execution tiers, compare the hierarchical
  /// digest trails, and emit a byzobs/forensics/v1 report on divergence.
  /// Pure read-side: BENCH manifests are bitwise identical with auditing
  /// on and off (E29 + CI guard it).
  bool audit = false;
  /// Directory for DIGEST_<exp>.json sidecars (run-level digests) and
  /// forensic reports; empty = render-only audit (nothing written).
  std::string digest_out;
  /// Protocol backend for scenarios that honor a backend selection (the
  /// cross-backend scenarios always run their full backend set). Must be
  /// a registered proto::Estimator name; byzbench validates it against
  /// the registry before any scenario runs. "" = the scenario's default
  /// (the Algorithm-2 stack).
  std::string backend;
};

class RunContext {
 public:
  RunContext(const ScenarioSpec& spec, const RunOptions& opts,
             OverlayCache& cache, const TrialScheduler& scheduler);

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] const TrialScheduler& scheduler() const noexcept {
    return scheduler_;
  }
  [[nodiscard]] OverlayCache& cache() noexcept { return cache_; }
  /// Audit mode (RunOptions::audit): scenarios with an oracle seam thread
  /// an obs::AuditConfig through it when this is set.
  [[nodiscard]] bool audit() const noexcept;
  /// RunOptions::digest_out (forensics / digest-sidecar directory).
  [[nodiscard]] const std::string& digest_out() const noexcept;
  /// RunOptions::backend — registry-validated estimator name, or "" for
  /// the scenario's default stack.
  [[nodiscard]] const std::string& backend() const noexcept;

  /// Trial count after scaling (>= 1). Folds in the legacy BYZCOUNT_SCALE
  /// environment knob so capture scripts keep working.
  [[nodiscard]] std::uint32_t trials(std::uint32_t base) const;

  /// Sweep cap: env-controlled BYZCOUNT_MAX_EXP, shrunk by --scale < 1
  /// (every halving of scale drops one exponent, floor 10) so smoke runs
  /// stay small without per-scenario plumbing.
  [[nodiscard]] std::uint32_t max_exp(std::uint32_t fallback) const;

  /// Cached overlay lookup (paper k).
  [[nodiscard]] std::shared_ptr<const graph::Overlay> overlay(
      graph::NodeId n, std::uint32_t d, std::uint64_t seed);

  /// `count` independent protocol trials through the shared scheduler,
  /// seeds derived per index from cfg.seed — bitwise identical to
  /// sim::run_trials for every --jobs value.
  [[nodiscard]] std::vector<sim::TrialResult> run_trials(
      const sim::TrialConfig& cfg, std::uint32_t count);

  /// Emits a finished table: stdout (+ BYZCOUNT_CAPTURE) and the JSON doc.
  void emit(const util::Table& table);

  /// Free-form headline (stdout + capture only).
  void line(const std::string& text);

  /// Records a scalar / structured metric into the JSON doc.
  void metric(const std::string& name, Json value);

  /// Accumulates message-accounting totals; emitted as metrics.messages.
  void count_messages(const sim::Instrumentation& instr);

  /// Records accuracy quantiles (p10/p50/p90/mean over trials) under
  /// metrics.accuracy.<name>.
  void record_accuracy(const std::string& name, std::span<const double> ratios);

  /// The BENCH_<exp>.json document built so far (orchestrator adds
  /// wall-time and cache stats before writing).
  [[nodiscard]] Json& doc() noexcept { return doc_; }

 private:
  const ScenarioSpec& spec_;
  const RunOptions& opts_;
  OverlayCache& cache_;
  const TrialScheduler& scheduler_;
  double scale_;
  sim::Instrumentation message_totals_;
  bool has_messages_ = false;
  Json doc_;
};

/// Message-accounting counters as a JSON object.
[[nodiscard]] Json instrumentation_json(const sim::Instrumentation& instr);

/// {count, mean, p10, p50, p90, min, max} of a sample.
[[nodiscard]] Json quantiles_json(std::span<const double> sample);

/// Serializes a rendered table ({title, columns, rows, notes}).
[[nodiscard]] Json table_json(const util::Table& table);

}  // namespace byz::bench_core
