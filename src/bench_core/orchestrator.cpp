#include "bench_core/orchestrator.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace byz::bench_core {

namespace {

/// Resident-overlay budget of the run-wide cache (LRU past this).
constexpr std::uint64_t kCacheBytes = 1ull << 30;  // 1 GiB

std::string grid_summary(const ScenarioSpec& spec) {
  std::ostringstream os;
  for (std::size_t i = 0; i < spec.grid.size(); ++i) {
    if (i != 0) os << " x ";
    os << spec.grid[i].name << "(" << spec.grid[i].values.size() << ")";
  }
  return os.str();
}

std::string join(const std::vector<std::string>& parts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) os << ",";
    os << parts[i];
  }
  return os.str();
}

/// A metrics-registry snapshot (typically a per-scenario delta) as JSON
/// for the RUNMETA sidecar. Histograms are summarized to count/sum —
/// the full bucket vectors live in the --metrics-out file.
Json metrics_summary_json(const obs::MetricsSnapshot& snap) {
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) counters[name] = value;
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  Json histograms = Json::object();
  for (const auto& h : snap.histograms) {
    Json entry = Json::object();
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    histograms[h.name] = std::move(entry);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace

std::vector<ScenarioOutcome> run_scenarios(const Registry& registry,
                                           const RunOptions& opts) {
  const auto selected = registry.match(opts.filter);
  const TrialScheduler scheduler(opts.jobs);
  // Observability is opt-in per run: asking for either output file flips
  // the runtime switch. It is pure read-side (src/obs/obs.hpp), so the
  // BENCH manifests below are bitwise identical either way (CI-guarded).
  const bool observe = !opts.trace_out.empty() || !opts.metrics_out.empty();
  if (observe) obs::set_enabled(true);
  // Shared across scenarios so common (n, d, seed) grids build once, but
  // bounded: a full run otherwise pins every overlay until process exit.
  OverlayCache cache(kCacheBytes);

  if (!opts.json_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.json_out, ec);
  }

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(selected.size());
  for (const auto* spec : selected) {
    ScenarioOutcome outcome;
    outcome.id = spec->id;
    RunContext ctx(*spec, opts, cache, scheduler);
    const auto cache_before = cache.stats();
    const auto metrics_before =
        observe ? obs::metrics_snapshot() : obs::MetricsSnapshot{};
    util::Timer timer;
    {
      obs::Span scenario_span("bench.scenario");
      scenario_span.arg("id", spec->id.c_str());
      try {
        spec->run(ctx);
        outcome.ok = true;
      } catch (const std::exception& e) {
        outcome.error = e.what();
      } catch (...) {
        outcome.error = "unknown error";
      }
    }
    outcome.wall_seconds = timer.seconds();

    if (!opts.json_out.empty()) {
      // The BENCH manifest carries only deterministic content — it is
      // bitwise identical for every --jobs value (the contract the
      // determinism tests and CI smoke pin down).
      auto& doc = ctx.doc();
      doc["ok"] = outcome.ok;
      if (!outcome.ok) doc["error"] = outcome.error;

      // Volatile run facts live in the RUNMETA sidecar: worker count,
      // wall-time, and the overlay-cache stats. Hits/misses are reported
      // as this scenario's delta (the cache is shared across the run);
      // entries/resident_bytes are the global snapshot after it finished.
      const auto cache_stats = cache.stats();
      Json cache_json = Json::object();
      cache_json["hits"] = cache_stats.hits - cache_before.hits;
      cache_json["misses"] = cache_stats.misses - cache_before.misses;
      cache_json["entries"] = std::uint64_t{cache_stats.entries};
      cache_json["resident_bytes"] = cache_stats.resident_bytes;
      Json meta = Json::object();
      meta["schema"] = "byzbench/meta/v1";
      meta["experiment"] = spec->id;
      meta["jobs"] = std::uint64_t{scheduler.jobs()};
      meta["wall_seconds"] = outcome.wall_seconds;
      meta["ok"] = outcome.ok;
      if (!outcome.ok) meta["error"] = outcome.error;
      meta["overlay_cache"] = std::move(cache_json);
      if (observe) {
        // Metrics summary for this scenario (counter deltas against the
        // run-so-far). RUNMETA is the right home: the numbers are volatile
        // (timings, worker interleavings) and must NEVER leak into the
        // bitwise-deterministic BENCH manifest above.
        Json observability = metrics_summary_json(
            obs::metrics_delta(metrics_before, obs::metrics_snapshot()));
        // Span-buffer saturation so far: nonzero means the trace file will
        // be missing tails (tools/trace_summary.py fails on it).
        observability["dropped_spans"] = obs::trace_snapshot().dropped;
        meta["observability"] = std::move(observability);
      }

      outcome.json_path = opts.json_out + "/BENCH_" + spec->id + ".json";
      const std::string meta_path =
          opts.json_out + "/RUNMETA_" + spec->id + ".json";
      std::ofstream out(outcome.json_path);
      if (out) {
        out << doc.dump(2) << '\n';
      } else {
        outcome.ok = false;
        outcome.error = "cannot write " + outcome.json_path;
        outcome.json_path.clear();
      }
      std::ofstream meta_out(meta_path);
      if (meta_out) {
        meta_out << meta.dump(2) << '\n';
      } else if (outcome.ok) {
        outcome.ok = false;
        outcome.error = "cannot write " + meta_path;
      }
    }
    outcomes.push_back(std::move(outcome));
  }

  if (!opts.trace_out.empty() && !obs::write_chrome_trace(opts.trace_out)) {
    BYZ_ERROR << "byzbench: cannot write trace file " << opts.trace_out;
  }
  if (!opts.metrics_out.empty() && !obs::write_metrics_file(opts.metrics_out)) {
    BYZ_ERROR << "byzbench: cannot write metrics file " << opts.metrics_out;
  }
  return outcomes;
}

std::string list_scenarios(const Registry& registry) {
  util::Table table("byzbench scenarios");
  table.columns({"id", "title", "trials", "grid", "metrics"});
  for (const auto* spec : registry.all()) {
    table.row()
        .cell(spec->id)
        .cell(spec->title)
        .cell(spec->base_trials)
        .cell(grid_summary(*spec))
        .cell(join(spec->metrics));
  }
  return table.str();
}

std::string summarize_outcomes(const std::vector<ScenarioOutcome>& outcomes) {
  util::Table table("byzbench run summary");
  table.columns({"id", "status", "wall s", "json"});
  for (const auto& o : outcomes) {
    table.row()
        .cell(o.id)
        .cell(o.ok ? "ok" : ("FAILED: " + o.error))
        .cell(o.wall_seconds, 2)
        .cell(o.json_path.empty() ? "-" : o.json_path);
  }
  return table.str();
}

}  // namespace byz::bench_core
