// Hierarchical state digests for divergence forensics.
//
// A RunDigester folds a streaming 64-bit digest of protocol state upward
// through the paper's own execution hierarchy — round -> subphase -> phase
// -> run — so the digest trails of two executions that should be bitwise
// identical (engine vs fastpath, audit on vs off, composed vs monolithic)
// can be walked to the FIRST divergent phase/subphase/round instead of a
// boolean "divergences=1".
//
// The mix is a seeded splitmix64-style finalizer: deterministic, no RNG
// draws, no allocation past the trail vectors. Per-round folds are a
// commutative XOR of per-node terms because the two tiers visit the same
// close set in different orders (the fastpath iterates its touched list in
// insertion order, the engine iterates node ids ascending); everything
// above the round level folds sequentially at points both tiers reach in
// the same order. Recording is gated on POINTER ATTACHMENT, not on
// obs::enabled(): a null digester costs one branch, and an attached one
// produces the same trail in traced and untraced runs.
//
// Like every obs/ facility this is pure read-side (see obs.hpp): a
// digester observes the run, it never feeds anything back — BENCH
// manifests are bitwise identical with auditing on and off (CI-guarded,
// E29). Under BYZ_OBS_ENABLED=0 the digester is an empty stub, trails are
// empty, and audit comparisons degrade to the plain outcome check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/recorder.hpp"

namespace byz::obs {

inline constexpr std::uint64_t kDigestSeed = 0xB12C0047D16E57ull;

/// splitmix64 finalizer: full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combine of two words (mix chains / labeled terms).
[[nodiscard]] constexpr std::uint64_t mix2(std::uint64_t a,
                                           std::uint64_t b) noexcept {
  return mix64(a ^ mix64(b ^ kDigestSeed));
}

// Per-node round terms, tagged by role so a sender term can never cancel
// a receiver term under the commutative XOR fold. Node ids are 32-bit.
[[nodiscard]] constexpr std::uint64_t digest_sender_term(
    std::uint64_t node, std::uint64_t value) noexcept {
  return mix2(0x51ull ^ (node << 8), value);
}
[[nodiscard]] constexpr std::uint64_t digest_receiver_term(
    std::uint64_t node, std::uint64_t value) noexcept {
  return mix2(0x52ull ^ (node << 8), value);
}
[[nodiscard]] constexpr std::uint64_t digest_member_term(
    std::uint64_t node, std::uint64_t value) noexcept {
  return mix2(0x53ull ^ (node << 8), value);
}
[[nodiscard]] constexpr std::uint64_t digest_state_term(
    std::uint64_t node, std::uint64_t value) noexcept {
  return mix2(0x54ull ^ (node << 8), value);
}

/// "0x" + 16 lowercase hex digits — digests travel through JSON as strings
/// so no reader coerces them through a double.
[[nodiscard]] std::string hex_u64(std::uint64_t value);

struct RoundDigest {
  std::uint32_t phase = 0;
  std::uint32_t subphase = 0;
  std::uint64_t round = 0;  ///< global round index (digester's own counter)
  std::uint64_t digest = 0;
};

struct SubphaseDigest {
  std::uint32_t phase = 0;
  std::uint32_t subphase = 0;
  std::uint64_t digest = 0;
};

struct PhaseDigest {
  std::uint32_t phase = 0;
  std::uint64_t digest = 0;
};

/// The full hierarchical trail of one execution. Two runs that should be
/// identical must produce entry-for-entry identical trails.
struct DigestTrail {
  std::vector<RoundDigest> rounds;
  std::vector<SubphaseDigest> subphases;
  std::vector<PhaseDigest> phases;
  std::uint64_t run_digest = 0;
  bool closed = false;  ///< close_run() reached
};

/// Where two trails first disagree, at the deepest level the hierarchy
/// can localize. kRun means every per-level entry matched but the run
/// fold differs (a run-level-only fold diverged); kNone means identical.
struct DigestDivergence {
  enum class Level : std::uint8_t { kNone, kRun, kPhase, kSubphase, kRound };
  Level level = Level::kNone;
  std::uint32_t phase = 0;
  std::uint32_t subphase = 0;
  std::uint64_t round = 0;
  [[nodiscard]] bool diverged() const noexcept { return level != Level::kNone; }
};

[[nodiscard]] const char* to_string(DigestDivergence::Level level);

/// Walks two trails top-down (phase list -> that phase's subphases -> that
/// subphase's rounds) to the first divergent entry. A missing entry (one
/// trail shorter) counts as a divergence at the first absent label.
[[nodiscard]] DigestDivergence first_divergence(const DigestTrail& a,
                                                const DigestTrail& b);

#if BYZ_OBS_ENABLED

class RunDigester {
 public:
  explicit RunDigester(std::uint64_t seed = kDigestSeed);

  /// Optional flight recorder: the digester stamps events with its
  /// hierarchical clock and records round-close events itself.
  void attach_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] FlightRecorder* recorder() const noexcept { return recorder_; }

  /// Records a flight event stamped with the current phase/subphase/round.
  void note(FlightEventKind kind, std::uint64_t a, std::uint64_t b);

  void begin_phase(std::uint32_t phase);
  void begin_subphase(std::uint32_t subphase);

  /// Commutative fold into the current round (XOR of tagged terms).
  void fold_round(std::uint64_t term) noexcept { round_acc_ ^= term; }

  /// Seals the current round: mixes the round fold with the hierarchical
  /// position and the round's token count, appends the entry, and chains
  /// it into the enclosing subphase.
  void close_round(std::uint64_t tokens);

  /// Order-dependent fold into the current subphase (e.g. the fired set).
  void fold_subphase(std::uint64_t term) noexcept {
    subphase_acc_ = mix2(subphase_acc_, term);
  }
  void close_subphase();

  /// Order-dependent fold into the current phase (verifier rows, statuses,
  /// decide/departed sweeps).
  void fold_phase(std::uint64_t term) noexcept {
    phase_acc_ = mix2(phase_acc_, term);
  }
  void close_phase();

  /// Order-dependent fold into the run (final statuses and estimates).
  void fold_run(std::uint64_t term) noexcept { run_acc_ = mix2(run_acc_, term); }
  void close_run();

  [[nodiscard]] const DigestTrail& trail() const noexcept { return trail_; }

  /// Test-only fault injection: XOR `mask` into the digest of global round
  /// `round_index` when it closes. Perturbs the TRAIL only — protocol
  /// state is untouched — so forensics localization can be asserted
  /// against a known-injected round.
  void set_perturbation(std::uint64_t round_index,
                        std::uint64_t mask) noexcept {
    perturb_round_ = round_index;
    perturb_mask_ = mask;
  }

 private:
  std::uint64_t seed_;
  DigestTrail trail_;
  FlightRecorder* recorder_ = nullptr;
  std::uint32_t phase_ = 0;
  std::uint32_t subphase_ = 0;
  std::uint64_t round_index_ = 0;  ///< global index of the OPEN round
  std::uint64_t round_acc_ = 0;
  std::uint64_t subphase_acc_ = 0;
  std::uint64_t phase_acc_ = 0;
  std::uint64_t run_acc_ = 0;
  std::uint64_t perturb_round_ = ~std::uint64_t{0};
  std::uint64_t perturb_mask_ = 0;
};

#else

class RunDigester {
 public:
  explicit RunDigester(std::uint64_t = kDigestSeed) noexcept {}
  void attach_recorder(FlightRecorder*) noexcept {}
  [[nodiscard]] FlightRecorder* recorder() const noexcept { return nullptr; }
  void note(FlightEventKind, std::uint64_t, std::uint64_t) {}
  void begin_phase(std::uint32_t) {}
  void begin_subphase(std::uint32_t) {}
  void fold_round(std::uint64_t) noexcept {}
  void close_round(std::uint64_t) {}
  void fold_subphase(std::uint64_t) noexcept {}
  void close_subphase() {}
  void fold_phase(std::uint64_t) noexcept {}
  void close_phase() {}
  void fold_run(std::uint64_t) noexcept {}
  void close_run() {}
  [[nodiscard]] const DigestTrail& trail() const noexcept {
    static const DigestTrail kEmpty;
    return kEmpty;
  }
  void set_perturbation(std::uint64_t, std::uint64_t) noexcept {}
};

#endif  // BYZ_OBS_ENABLED

/// Oracle audit mode: passed through the comparison seams
/// (dynamics::compare_midrun_tiers, ChurnRunConfig) to attach digesters to
/// both tiers and emit a byzobs/forensics/v1 report on divergence.
struct AuditConfig {
  std::string out_dir;   ///< forensic report directory ("" = render only)
  std::string scenario;  ///< repro line: scenario name
  std::uint64_t seed = 0;
  std::string flags;     ///< repro line: config flags, human-readable
  // Test-only fault injection (see RunDigester::set_perturbation): which
  // tier's trail to perturb (0 = first/fastpath, 1 = second/engine,
  // -1 = none), at which global round, with which XOR mask.
  int perturb_tier = -1;
  std::uint64_t perturb_round = 0;
  std::uint64_t perturb_mask = 0;
};

/// Repro-line fields for a forensics report.
struct ForensicsInfo {
  std::string scenario;
  std::uint64_t seed = 0;
  std::string flags;
  std::string detail;  ///< headline: what the oracle saw diverge
  std::string tier_a = "fastpath";
  std::string tier_b = "engine";
};

/// byzobs/forensics/v1 JSON document: first divergent phase/subphase/round,
/// both digest trails (full phase level; subphase/round level scoped to
/// the divergent branch so the report stays bounded), both flight-recorder
/// tails, and a one-line repro.
[[nodiscard]] std::string forensics_json(const ForensicsInfo& info,
                                         const DigestTrail& a,
                                         const DigestTrail& b,
                                         const FlightRecorder* recorder_a,
                                         const FlightRecorder* recorder_b);

/// Writes a rendered report to `path`. False on I/O error.
bool write_forensics_file(const std::string& path, const std::string& doc);

}  // namespace byz::obs
