// E8 — Theorem 1 under attack: fraction of honest nodes with a
// constant-factor estimate of log n, for every adversary strategy, across
// n and the Byzantine budget exponent delta.
//
// Run at d=6 (k=2): DESIGN.md §3.5 explains why the crash bound's
// asymptotics need the smaller G-ball at simulation scale; delta stays
// above the paper's 3/d requirement.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e08(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(13));
  const auto t = ctx.trials(3);

  for (const double delta : {0.6, 0.7, 0.8}) {
    util::Table table("E8: Algorithm 2 under attack, d=6, delta=" +
                      util::format_double(delta, 1) + " (" +
                      std::to_string(t) + " trials)");
    table.columns({"n", "B", "strategy", "in-band frac", "mean est/log2n",
                   "crashed %", "undecided %", "inj caught"});
    std::vector<double> in_band;
    for (const auto n : sizes) {
      for (const auto kind : adv::all_strategies()) {
        sim::TrialConfig cfg;
        cfg.overlay.n = n;
        cfg.overlay.d = 6;
        cfg.delta = delta;
        cfg.strategy = kind;
        cfg.seed = 0xE8 + n;
        // The Monte-Carlo sweep runs through the shared scheduler: the
        // per-trial seed split keeps results identical for any --jobs.
        const auto sweep = analysis::sweep_trials(cfg, t, ctx.scheduler());
        util::OnlineStats caught;
        graph::NodeId b = 0;
        for (const auto& r : sweep.results) {
          caught.add(static_cast<double>(r.run.instr.injections_caught));
          ctx.count_messages(r.run.instr);
          b = r.byz_count;
        }
        const auto& agg = sweep.aggregate;
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{b})
            .cell(adv::to_string(kind))
            .cell(agg.frac_in_band.mean(), 4)
            .cell(agg.mean_ratio.mean(), 3)
            .cell(100.0 * agg.crashed_frac.mean(), 2)
            .cell(100.0 * agg.undecided_frac.mean(), 2)
            .cell(caught.mean(), 0);
        in_band.insert(in_band.end(), sweep.frac_in_band.begin(),
                       sweep.frac_in_band.end());
      }
    }
    table.note("Theorem 1: in-band fraction -> 1 as n grows, for every "
               "strategy. Crash-style attacks cost exactly the Byzantine "
               "G-neighborhoods (o(n)); color attacks lower the mean ratio "
               "toward the delta-dependent floor but never below Θ(log n).");
    ctx.emit(table);
    ctx.record_accuracy("in_band_delta" + util::format_double(delta, 1),
                        in_band);
  }
}

}  // namespace

BYZBENCH_REGISTER(e08) {
  ScenarioSpec spec;
  spec.id = "e08";
  spec.title = "Algorithm 2 accuracy under every attack strategy";
  spec.claim = "Theorem 1: in-band fraction -> 1 under attack for all "
               "strategies and deltas";
  spec.grid = {{"delta", {"0.6", "0.7", "0.8"}},
               {"strategy", {"honest", "fake-color", "crash-maximizer",
                             "topology-liar", "adaptive"}},
               pow2_axis(10, 13)};
  spec.base_trials = 3;
  spec.metrics = {"messages", "accuracy.in_band_delta*"};
  spec.run = run_e08;
  return spec;
}
