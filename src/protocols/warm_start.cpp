#include "protocols/warm_start.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/refine.hpp"

namespace byz::proto {

using graph::NodeId;

WarmRun run_counting_warm(const graph::Overlay& overlay,
                          const std::vector<bool>& byz_mask,
                          adv::Strategy& strategy, const ProtocolConfig& cfg,
                          std::uint64_t color_seed,
                          std::span<const NodeId> dense_to_stable,
                          std::span<const std::uint8_t> dirty_stable,
                          double drift, const WarmConfig& warm_cfg,
                          WarmState& state) {
  const NodeId n = overlay.num_nodes();
  const std::uint32_t k = overlay.k();
  if (dense_to_stable.size() != n) {
    throw std::invalid_argument("run_counting_warm: stable map size mismatch");
  }
  if (byz_mask.size() != n) {
    throw std::invalid_argument("run_counting_warm: mask size mismatch");
  }

  WarmRun out;
  const auto is_dirty = [&](NodeId stable) {
    return stable < dirty_stable.size() && dirty_stable[stable] != 0;
  };

  // Cold-fallback decision: no state to seed from, a k-regime change, or
  // too much drift for the cached state to be worth carrying.
  const bool cold =
      !state.has_run || state.k != k || drift > warm_cfg.max_drift;
  if (!cold) {
    // Report the seeded decision window (observability; E21 tables it).
    for (NodeId v = 0; v < n; ++v) {
      if (byz_mask[v]) continue;
      const NodeId s = dense_to_stable[v];
      if (s >= state.estimate.size() || state.estimate[s] == 0) continue;
      ++out.estimates_seeded;
      if (out.seed_min == 0 || state.estimate[s] < out.seed_min) {
        out.seed_min = state.estimate[s];
      }
      out.seed_max = std::max(out.seed_max, state.estimate[s]);
    }
  }

  // The Verifier is built HERE on both paths so its per-node rows can be
  // cached into `state` afterwards. Cold: every row fresh. Warm: cached
  // rows for clean nodes (ball counts and usable chains are k-ball-local,
  // so a clean ball pins both), recomputed rows for dirty ones.
  std::vector<std::uint32_t> rows(static_cast<std::size_t>(n) * k);
  std::vector<std::uint8_t> chains(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId s = dense_to_stable[v];
    const bool reuse = !cold && !is_dirty(s) && s < state.row_valid.size() &&
                       state.row_valid[s] != 0;
    if (reuse) {
      std::copy_n(state.ball_counts.data() + static_cast<std::size_t>(s) * k,
                  k, rows.data() + static_cast<std::size_t>(v) * k);
      chains[v] = state.chain_len[s];
      ++out.rows_reused;
    } else {
      verifier_ball_row(overlay, v,
                        rows.data() + static_cast<std::size_t>(v) * k);
      chains[v] = verifier_chain_len(overlay, byz_mask, v,
                                     cfg.verification.chain_model);
      ++out.rows_recomputed;
    }
  }
  const Verifier verifier(overlay, byz_mask, cfg.verification, std::move(rows),
                          std::move(chains));

  out.warm_used = !cold;
  RunControls controls;
  controls.lazy_subphases = !cold;
  controls.verifier = &verifier;
  // ε-warm phase skip. The entry phase is the QUANTILE of the seeded
  // estimate distribution, not its minimum: a handful of poorly-connected
  // nodes decide at phase 1-2 every epoch (see the file comment), so
  // "skip to seed_min" would never skip anything. Instead the tier
  // pre-spends at most HALF the ε·n budget: entry is the deepest phase
  // such that the predicted at-risk population — nodes seeded BELOW the
  // entry, plus nodes with no seed at all (joiners, previously undecided)
  // — fits in budget/2, minus eps_margin phases of safety for the
  // epoch-to-epoch wobble of fresh colors. The other half of the budget
  // absorbs the realized wobble and the upward cascade from skipped
  // deciders still generating at the entry phase.
  if (warm_cfg.eps_phase_skip) {
    std::uint64_t honest = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!byz_mask[v]) ++honest;
    }
    out.eps_budget_nodes = static_cast<std::uint64_t>(
        warm_cfg.eps_budget * static_cast<double>(honest));
  }
  if (!cold && warm_cfg.eps_phase_skip) {
    const std::uint32_t max_phase = resolve_max_phase(overlay, cfg);
    std::vector<std::uint64_t> seeded_at(max_phase + 2, 0);
    std::uint64_t at_risk = 0;  // honest nodes with no usable seed
    for (NodeId v = 0; v < n; ++v) {
      if (byz_mask[v]) continue;
      const NodeId s = dense_to_stable[v];
      const std::uint32_t est =
          s < state.estimate.size() ? state.estimate[s] : 0;
      if (est == 0) {
        ++at_risk;
      } else {
        ++seeded_at[std::min(est, max_phase + 1)];
      }
    }
    const std::uint64_t allowed = out.eps_budget_nodes / 2;
    std::uint32_t entry = 1;
    std::uint64_t below = at_risk;
    for (std::uint32_t p = 2; p <= max_phase; ++p) {
      below += seeded_at[p - 1];
      if (below > allowed) break;
      entry = p;
    }
    entry = entry > warm_cfg.eps_margin ? entry - warm_cfg.eps_margin : 1;
    if (entry > 1) {
      out.eps_used = true;
      out.eps_entry_phase = entry;
      controls.start_phase = entry;
      const std::uint32_t d_sched = overlay.params().d;
      for (std::uint32_t i = 1; i < entry; ++i) {
        out.eps_skipped_subphases +=
            subphases_in_phase(i, d_sched, cfg.schedule);
      }
    }
  }
  out.run = run_counting_with(overlay, byz_mask, strategy, cfg, color_seed,
                              controls);

  // Fold this run back into the stable-indexed state for the next epoch.
  NodeId bound = 0;
  for (const NodeId s : dense_to_stable) bound = std::max(bound, s);
  ++bound;
  if (state.estimate.size() < bound) {
    state.estimate.resize(bound, 0);
    state.refined.resize(bound, 0.0);
    state.chain_len.resize(bound, 0);
    state.row_valid.resize(bound, 0);
  }
  state.k = k;
  if (state.ball_counts.size() < static_cast<std::size_t>(bound) * k) {
    state.ball_counts.resize(static_cast<std::size_t>(bound) * k, 0);
  }
  const std::uint32_t d = overlay.params().d;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId s = dense_to_stable[v];
    const auto row = verifier.ball_row(v);
    std::copy(row.begin(), row.end(),
              state.ball_counts.data() + static_cast<std::size_t>(s) * k);
    state.chain_len[s] = static_cast<std::uint8_t>(verifier.usable_chain(v));
    state.row_valid[s] = 1;

    const std::uint32_t est = out.run.status[v] == NodeStatus::kDecided
                                  ? out.run.estimate[v]
                                  : 0;
    if (est == 0) {
      state.estimate[s] = 0;
      state.refined[s] = 0.0;
      continue;
    }
    // The refined readout is a pure function of the decided phase: re-run
    // the calibration only where the phase actually moved.
    if (state.estimate[s] == est) {
      ++out.refine_reused;
    } else {
      state.refined[s] = refined_log_estimate(est, d);
      ++out.refine_recomputed;
    }
    state.estimate[s] = est;
  }
  state.has_run = true;
  return out;
}

}  // namespace byz::proto
