#include "bench_core/scheduler.hpp"

#include <algorithm>
#include <mutex>

namespace byz::bench_core {

TrialScheduler::TrialScheduler(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void TrialScheduler::for_each(
    std::uint64_t count, const std::function<void(std::uint64_t)>& fn) const {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(jobs_, count));
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::uint64_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining items without running them.
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace byz::bench_core
