#include "adversary/placement.hpp"

#include <gtest/gtest.h>

#include "graph/categories.hpp"
#include "graph/connectivity.hpp"

namespace byz::adv {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 1024, std::uint32_t d = 8, std::uint64_t seed = 5) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

NodeId count_marked(const std::vector<bool>& mask) {
  NodeId c = 0;
  for (const bool b : mask) c += b ? 1 : 0;
  return c;
}

TEST(Placement, NamesAndEnumeration) {
  EXPECT_EQ(all_placements().size(), 4u);
  EXPECT_STREQ(to_string(Placement::kRandom), "random");
  EXPECT_STREQ(to_string(Placement::kChain), "chain");
}

TEST(Placement, ExactBudgetForEveryStrategy) {
  const Overlay o = sample();
  for (const auto placement : all_placements()) {
    util::Xoshiro256 rng(7);
    const auto mask = place_byzantine(o, 40, placement, rng);
    EXPECT_EQ(count_marked(mask), 40u) << to_string(placement);
  }
}

TEST(Placement, ZeroBudgetIsEmpty) {
  const Overlay o = sample(128, 6);
  util::Xoshiro256 rng(9);
  const auto mask = place_byzantine(o, 0, Placement::kClustered, rng);
  EXPECT_EQ(count_marked(mask), 0u);
}

TEST(Placement, OverBudgetThrows) {
  const Overlay o = sample(64, 6);
  util::Xoshiro256 rng(9);
  EXPECT_THROW((void)place_byzantine(o, 65, Placement::kRandom, rng),
               std::invalid_argument);
}

TEST(Placement, ChainBuildsLongByzantinePaths) {
  const Overlay o = sample();
  util::Xoshiro256 rng(11);
  const auto mask = place_byzantine(o, 32, Placement::kChain, rng);
  const auto chain = graph::longest_byzantine_chain(o.h_simple(), mask, 64);
  // A self-avoiding walk of 32 nodes on a d=8 expander rarely dead-ends:
  // the realized chain must vastly exceed k = 3.
  EXPECT_GE(chain, 16u);
}

TEST(Placement, ClusteredIsConnectedBlob) {
  const Overlay o = sample();
  util::Xoshiro256 rng(13);
  const auto mask = place_byzantine(o, 50, Placement::kClustered, rng);
  // The Byzantine-induced subgraph of H is (one) connected component.
  const auto sub_mask = graph::largest_component_mask(o.h_simple(), mask);
  EXPECT_EQ(count_marked(sub_mask), 50u);
}

TEST(Placement, SpreadKeepsNodesApart) {
  const Overlay o = sample();
  util::Xoshiro256 rng(17);
  const auto spread = place_byzantine(o, 24, Placement::kSpread, rng);
  const auto chain = graph::longest_byzantine_chain(o.h_simple(), spread, 8);
  EXPECT_LE(chain, 2u);  // far-apart nodes are (essentially) never adjacent
}

TEST(Placement, RandomMatchesMaskHelper) {
  const Overlay o = sample(256, 6);
  util::Xoshiro256 a(21);
  util::Xoshiro256 b(21);
  const auto via_place = place_byzantine(o, 10, Placement::kRandom, a);
  const auto via_mask = graph::random_byzantine_mask(256, 10, b);
  EXPECT_EQ(via_place, via_mask);
}

TEST(Placement, DeterministicGivenSeed) {
  const Overlay o = sample(512, 6);
  for (const auto placement : all_placements()) {
    util::Xoshiro256 a(31);
    util::Xoshiro256 b(31);
    EXPECT_EQ(place_byzantine(o, 20, placement, a),
              place_byzantine(o, 20, placement, b))
        << to_string(placement);
  }
}

}  // namespace
}  // namespace byz::adv
