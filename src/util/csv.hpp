// CSV writer for experiment result capture (plotting pipelines read these).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace byz::util {

/// Streams rows to a CSV file with RFC-4180 quoting. The file is flushed
/// and closed by the destructor (RAII); write failures throw on close().
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  /// Explicit close with error check; destructor swallows errors.
  void close();

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void emit(const std::vector<std::string>& cells);
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
  bool closed_ = false;
};

}  // namespace byz::util
