// E30 — parallel flood kernel vs the serial reference oracle: single-trial
// rounds/sec at large n. Every timed pair is also compared bitwise (known /
// best_before / last_step, every instrumentation counter, and the
// hierarchical digest trail), so the speedup column is a claim about an
// EQUAL result — the determinism-by-construction contract documented in
// src/protocols/flooding.cpp. Wall-clock numbers go to stdout via
// ctx.line/table only; the guard metric carries the speedup for the CI
// perf step, which strips it before the cross---jobs manifest comparison.
#include <algorithm>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct KernelRun {
  double ms = 0.0;
  proto::FloodWorkspace ws;
  sim::Instrumentation instr;
  obs::RunDigester digester;
};

/// One subphase of `steps` flood rounds under the given kernel. The
/// workspace is fresh per run so the two kernels start from identical
/// state; the digester trail is the order-insensitivity witness.
void run_kernel(const graph::Overlay& overlay, const std::vector<bool>& byz,
                const std::vector<bool>& crashed,
                const proto::Verifier& verifier,
                std::span<const proto::Color> gen, std::uint32_t steps,
                proto::FloodExec exec, KernelRun& out) {
  proto::FloodParams params;
  params.steps = steps;
  params.exec = exec;
  params.digest = &out.digester;
  out.digester.begin_phase(1);
  out.digester.begin_subphase(1);
  util::Timer timer;
  proto::run_flood_subphase(overlay, byz, crashed, verifier, params, gen, {},
                            out.ws, out.instr);
  out.ms = timer.milliseconds();
  out.digester.close_subphase();
  out.digester.close_phase();
  out.digester.close_run();
}

void run_e30(RunContext& ctx) {
  // Smoke scales shrink max_exp below the full-size floor of 2^16; clamp
  // the low end so the sweep (and the guard metric CI asserts on) never
  // degenerates to zero sizes.
  const auto hi_exp = ctx.max_exp(20);
  const auto sizes = analysis::pow2_sizes(std::min(16u, hi_exp), hi_exp);
  const auto reps = ctx.trials(3);
  constexpr std::uint32_t kSteps = 8;
  const auto hw = std::max(1u, std::thread::hardware_concurrency());

  util::Table table("E30: parallel flood kernel vs serial reference, d=6 (" +
                    std::to_string(reps) + " reps of " +
                    std::to_string(kSteps) + " rounds, " +
                    std::to_string(hw) + " hw threads)");
  table.columns({"n", "serial ms", "parallel ms", "rounds/s serial",
                 "rounds/s par", "speedup", "identical"});

  std::uint64_t digest_xor = 0;
  std::uint64_t runs_digested = 0;
  std::uint64_t trail_divergences = 0;
  double guard_speedup = 0.0;
  bool guard_identical = true;
  std::uint64_t guard_compared = 0;
  for (const auto n : sizes) {
    const std::uint64_t seed =
        bench_core::TrialScheduler::trial_seed(0xE30 + n, 0);
    const auto overlay = ctx.overlay(n, 6, seed);
    const auto byz = place_byz(n, 0.01, seed);
    const std::vector<bool> crashed(n, false);
    const proto::Verifier verifier(*overlay, byz, {});
    util::Xoshiro256 rng(util::mix_seed(seed, 0xF100D));
    std::vector<proto::Color> gen(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      gen[v] = byz[v] ? 0 : util::geometric_color(rng);
    }

    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    bool identical = true;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      KernelRun serial;
      KernelRun parallel;
      run_kernel(*overlay, byz, crashed, verifier, gen, kSteps,
                 {proto::FloodMode::kSerial, 0}, serial);
      run_kernel(*overlay, byz, crashed, verifier, gen, kSteps,
                 {proto::FloodMode::kParallel, 0}, parallel);
      serial_ms += serial.ms;
      parallel_ms += parallel.ms;
      identical = identical && serial.ws.known == parallel.ws.known &&
                  serial.ws.best_before == parallel.ws.best_before &&
                  serial.ws.last_step == parallel.ws.last_step &&
                  serial.instr == parallel.instr;
      const auto div = obs::first_divergence(serial.digester.trail(),
                                             parallel.digester.trail());
      if (div.diverged()) ++trail_divergences;
      digest_xor ^= serial.digester.trail().run_digest ^
                    parallel.digester.trail().run_digest;
      runs_digested += 2;
      ++guard_compared;
    }
    const double rounds = static_cast<double>(reps) * kSteps;
    const double rs_serial = serial_ms > 0.0 ? 1000.0 * rounds / serial_ms : 0;
    const double rs_par = parallel_ms > 0.0 ? 1000.0 * rounds / parallel_ms : 0;
    const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    table.row()
        .cell(std::uint64_t{n})
        .cell(serial_ms / reps, 2)
        .cell(parallel_ms / reps, 2)
        .cell(rs_serial, 1)
        .cell(rs_par, 1)
        .cell(util::format_double(speedup, 2) + "x")
        .cell(identical ? "yes" : "NO");
    ctx.line("e30: n=" + std::to_string(n) + " serial " +
             util::format_double(serial_ms / reps, 2) + " ms/subphase, " +
             "parallel " + util::format_double(parallel_ms / reps, 2) +
             " ms/subphase (" + util::format_double(speedup, 2) + "x)");
    guard_identical = guard_identical && identical;
    // Guard cell: the largest size in this run.
    if (n == sizes.back()) {
      guard_speedup = speedup;
      Json g = Json::object();
      g["n"] = std::uint64_t{n};
      g["threads"] = std::uint64_t{hw};
      g["hw_threads"] = std::uint64_t{hw};
      g["speedup"] = guard_speedup;
      g["identical"] = guard_identical;
      g["divergences"] = trail_divergences;
      g["compared"] = guard_compared;
      // The >=3x acceptance bound only binds where the hardware can give
      // it: the CI perf step checks speedup iff enforced is true.
      g["enforced"] = hw >= 4;
      ctx.metric("guard", std::move(g));
    }
  }
  table.note("Same overlay, colors, and Byzantine set for both kernels, "
             "fresh workspaces per rep; 'identical' asserts bitwise-equal "
             "per-node state and instrumentation, and the digest trails are "
             "compared entry for entry (" +
             std::to_string(trail_divergences) +
             " divergences). The parallel kernel merges per-worker state in "
             "node-id order, so equality holds at every thread count.");
  ctx.emit(table);
  write_digest_sidecar(ctx, "e30", digest_xor, runs_digested,
                       trail_divergences);
}

}  // namespace

BYZBENCH_REGISTER(e30) {
  ScenarioSpec spec;
  spec.id = "e30";
  spec.title = "Parallel flood kernel vs serial reference oracle";
  spec.claim = "Word-packed parallel flooding: >=3x single-trial speedup at "
               "n=2^20 with >=4 threads, bitwise identical estimates, "
               "instrumentation, and digest trails";
  spec.grid = {{"steps", {"8"}}, {"byz_delta", {"0.01"}}, pow2_axis(16, 20)};
  spec.base_trials = 3;
  spec.metrics = {"guard.speedup", "guard.identical", "guard.divergences"};
  spec.run = run_e30;
  return spec;
}
