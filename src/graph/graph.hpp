// Compressed-sparse-row undirected (multi)graph. This is the substrate for
// both H (the d-regular Hamiltonian-union multigraph, where parallel edges
// must be preserved to keep exact d-regularity) and G = H ∪ L (deduplicated).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/aligned.hpp"

namespace byz::graph {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable CSR adjacency. Neighbor lists are sorted, which makes
/// `has_edge` a binary search and set intersections linear.
class Graph {
 public:
  /// CSR row storage is cache-line aligned: the flood kernel and verifier
  /// row recomputation stream these arrays, and 64-byte alignment keeps
  /// row starts from straddling an extra line. Callers that assemble CSR
  /// arrays for from_csr build them in these types so the adoption stays
  /// a move.
  using OffsetVec = util::aligned_vector<std::uint64_t>;
  using NeighborVec = util::aligned_vector<NodeId>;

  Graph() = default;

  /// Builds from an undirected edge list. Each {u, v} contributes one slot
  /// to u's list and one to v's. `dedup` removes parallel edges and
  /// self-loops; H keeps them (multigraph), G drops them.
  [[nodiscard]] static Graph from_edges(
      NodeId num_nodes, std::span<const std::pair<NodeId, NodeId>> edges,
      bool dedup);

  /// Builds directly from per-node adjacency lists (they get sorted).
  [[nodiscard]] static Graph from_adjacency(std::vector<std::vector<NodeId>> adj);

  /// Adopts ready-made CSR arrays without per-edge work — the fast path for
  /// callers that already hold sorted per-node ranges (the incremental
  /// snapshot engine). `offsets` must be monotone with offsets[0] == 0 and
  /// offsets.back() == neighbors.size(); each node's range must be sorted
  /// ascending (checked in debug builds only).
  [[nodiscard]] static Graph from_csr(OffsetVec offsets,
                                      NeighborVec neighbors);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  /// Number of adjacency slots / 2 (undirected edge count incl. parallels).
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return neighbors_.size() / 2;
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  /// True iff at least one {u, v} edge exists (binary search).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Total adjacency slots (= 2 * num_edges()).
  [[nodiscard]] std::uint64_t num_slots() const noexcept {
    return neighbors_.size();
  }

  /// Index of v's first adjacency slot; parallel arrays (e.g. per-slot
  /// distance annotations in the small-world overlay) use this to align.
  [[nodiscard]] std::uint64_t first_slot(NodeId v) const { return offsets_[v]; }

  /// Maximum and minimum degree over all nodes (0 for the empty graph).
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  [[nodiscard]] std::uint32_t min_degree() const noexcept;

  /// True iff every node has degree exactly d.
  [[nodiscard]] bool is_regular(std::uint32_t d) const noexcept;

  /// Memory used by the CSR arrays, in bytes (for the perf experiments).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           neighbors_.size() * sizeof(NodeId);
  }

 private:
  OffsetVec offsets_;      // size n+1
  NeighborVec neighbors_;  // size 2m, sorted per node
};

}  // namespace byz::graph
