#include "analysis/backend_compare.hpp"

#include <algorithm>
#include <cmath>

namespace byz::analysis {

BackendOutcome judge_backend(const proto::Estimator& estimator,
                             const graph::Overlay& overlay,
                             const proto::RunResult& result) {
  BackendOutcome out;
  out.name = std::string(estimator.name());
  out.bound = estimator.bound(overlay);
  out.accuracy = proto::summarize_accuracy(result, overlay.num_nodes(),
                                           out.bound.lo, out.bound.hi);
  out.median_estimate = proto::median_decided_estimate(result);
  const double log_n =
      std::log2(std::max(2.0, static_cast<double>(overlay.num_nodes())));
  out.median_ratio = out.median_estimate / log_n;
  out.rounds = result.flood_rounds;
  out.messages = result.instr.total_messages();
  out.in_band = out.accuracy.decided > 0 &&
                out.accuracy.frac_in_band >= 1.0 - out.bound.eps &&
                out.median_ratio >= out.bound.lo &&
                out.median_ratio <= out.bound.hi;
  return out;
}

BackendComparison compare_backends(const graph::Overlay& overlay,
                                   const std::vector<bool>& byz_mask,
                                   adv::StrategyKind strategy,
                                   std::uint64_t color_seed,
                                   const proto::Estimator& ea,
                                   const proto::Estimator& eb,
                                   proto::FloodExec flood) {
  proto::RunControls controls;
  controls.flood = flood;

  // Fresh strategy per backend: strategies carry per-run plan state, and
  // sharing one would leak backend A's observations into backend B's run.
  const auto sa = adv::make_strategy(strategy);
  const auto sb = adv::make_strategy(strategy);

  BackendComparison cmp;
  cmp.a = judge_backend(
      ea, overlay, ea.run(overlay, byz_mask, *sa, color_seed, controls));
  cmp.b = judge_backend(
      eb, overlay, eb.run(overlay, byz_mask, *sb, color_seed, controls));

  const proto::AgreementBound band =
      proto::combined_agreement_bound(cmp.a.bound, cmp.b.bound);
  cmp.combined_lo = band.lo;
  cmp.combined_hi = band.hi;
  cmp.ratio = cmp.b.median_estimate > 0.0
                  ? cmp.a.median_estimate / cmp.b.median_estimate
                  : 0.0;
  cmp.agree = cmp.a.median_estimate > 0.0 && cmp.b.median_estimate > 0.0 &&
              cmp.ratio >= cmp.combined_lo && cmp.ratio <= cmp.combined_hi;
  return cmp;
}

}  // namespace byz::analysis
