#include "graph/small_world.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/bfs.hpp"

namespace byz::graph {
namespace {

Overlay sample(NodeId n = 256, std::uint32_t d = 8, std::uint64_t seed = 11) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(SmallWorld, PaperK) {
  EXPECT_EQ(paper_k(6), 2u);
  EXPECT_EQ(paper_k(8), 3u);   // ceil(8/3)
  EXPECT_EQ(paper_k(9), 3u);
  EXPECT_EQ(paper_k(10), 4u);
  EXPECT_EQ(paper_k(12), 4u);
}

TEST(SmallWorld, ResolvesDefaultK) {
  const Overlay o = sample(128, 8);
  EXPECT_EQ(o.k(), 3u);
}

TEST(SmallWorld, ExplicitKRespected) {
  OverlayParams p;
  p.n = 128;
  p.d = 8;
  p.k = 2;
  p.seed = 3;
  const Overlay o = Overlay::build(p);
  EXPECT_EQ(o.k(), 2u);
}

TEST(SmallWorld, GMatchesBallDefinition) {
  // (u,v) ∈ E(G) iff dist_H(u,v) <= k — checked against ground-truth BFS.
  const Overlay o = sample(128, 6, 5);
  const std::uint32_t k = o.k();
  for (NodeId v = 0; v < 32; ++v) {  // spot-check a prefix of nodes
    const auto dist = bfs_distances(o.h_simple(), v);
    for (NodeId w = 0; w < o.num_nodes(); ++w) {
      if (w == v) continue;
      const bool in_g = o.g().has_edge(v, w);
      const bool within = dist[w] <= k;
      EXPECT_EQ(in_g, within) << "v=" << v << " w=" << w;
    }
  }
}

TEST(SmallWorld, DistanceAnnotationsExact) {
  const Overlay o = sample(128, 6, 7);
  for (NodeId v = 0; v < 16; ++v) {
    const auto dist = bfs_distances(o.h_simple(), v);
    const auto nbrs = o.g().neighbors(v);
    const auto dists = o.g_dists(v);
    ASSERT_EQ(nbrs.size(), dists.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(dists[i], dist[nbrs[i]]);
    }
  }
}

TEST(SmallWorld, HDistLookup) {
  const Overlay o = sample(128, 6, 9);
  EXPECT_EQ(o.h_dist(5, 5), 0u);
  const auto nbrs = o.g().neighbors(5);
  const auto dists = o.g_dists(5);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(o.h_dist(5, nbrs[i]), dists[i]);
  }
}

TEST(SmallWorld, HDistSymmetric) {
  const Overlay o = sample(64, 6, 13);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    for (const NodeId w : o.g().neighbors(v)) {
      EXPECT_EQ(o.h_dist(v, w), o.h_dist(w, v));
    }
  }
}

TEST(SmallWorld, NotInBallSentinel) {
  const Overlay o = sample(512, 4, 17);  // k=2, sparse: far pairs exist
  bool found_far = false;
  const auto dist = bfs_distances(o.h_simple(), 0);
  for (NodeId w = 0; w < o.num_nodes(); ++w) {
    if (dist[w] > o.k()) {
      EXPECT_EQ(o.h_dist(0, w), kNotInBall);
      found_far = true;
      break;
    }
  }
  EXPECT_TRUE(found_far);
}

TEST(SmallWorld, HNeighborsMatchSimpleH) {
  const Overlay o = sample(128, 8, 19);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    const auto a = o.h_neighbors(v);
    const auto b = o.h_simple().neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(SmallWorld, GDegreeBoundObservation2) {
  // |B_G(v,1)| < (d-1)^(k+1) + 1 (Observation 2 with τ=1).
  const Overlay o = sample(1024, 8, 23);
  const double bound = std::pow(7.0, 4.0);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    EXPECT_LT(o.g().degree(v), bound);
  }
}

TEST(SmallWorld, DeterministicGivenSeed) {
  const Overlay a = sample(64, 6, 31);
  const Overlay b = sample(64, 6, 31);
  EXPECT_EQ(a.g().num_edges(), b.g().num_edges());
  for (NodeId v = 0; v < 64; ++v) {
    const auto na = a.g().neighbors(v);
    const auto nb = b.g().neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
  }
}

TEST(SmallWorld, RejectsZeroK) {
  OverlayParams p;
  p.n = 16;
  p.d = 4;
  p.k = 0;  // resolves to paper k = 2, fine
  EXPECT_NO_THROW((void)Overlay::build(p));
}

}  // namespace
}  // namespace byz::graph
