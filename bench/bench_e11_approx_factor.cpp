// E11 — The approximation factor of Theorem 1: measured spread of honest
// estimates (max/min over nodes and trials) against the analysis'
// guaranteed band [a log n, b log n] with a = delta/(10 k log(d-1)) and
// b = 4/log(1 + gamma/d) (gamma from the measured spectral gap).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(14);
  const auto t = trials(3);
  util::Table table("E11: measured estimate band vs the analytic [a,b] band "
                    "(fake-color attack, " + std::to_string(t) + " trials)");
  table.columns({"n", "d", "delta", "min ratio", "max ratio", "spread",
                 "a (theory)", "b (theory)", "b/a (theory)"});
  for (const std::uint32_t d : {6u, 8u}) {
    const double delta = d == 6 ? 0.7 : 0.5;
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      const auto overlay = make_overlay(n, d, 0xEB + n + d);
      // gamma: edge-expansion lower bound from the measured spectral gap.
      const auto spec =
          graph::second_eigenvalue(overlay.h(), 2000, 1e-10, 0xEB);
      const double gamma = graph::cheeger_bounds(d, spec.lambda2).lower;
      double min_ratio = 1e9;
      double max_ratio = 0.0;
      for (std::uint32_t trial = 0; trial < t; ++trial) {
        util::Xoshiro256 rng(util::mix_seed(0xEB2 + n, trial));
        const auto byz = graph::random_byzantine_mask(
            n, sim::derive_byz_count(n, delta), rng);
        const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
        proto::ProtocolConfig cfg;
        const auto run = proto::run_counting(overlay, byz, *strat, cfg,
                                             util::mix_seed(0xCB, trial));
        const auto acc = proto::summarize_accuracy(run, n);
        if (acc.decided > 0) {
          min_ratio = std::min(min_ratio, acc.min_ratio);
          max_ratio = std::max(max_ratio, acc.max_ratio);
        }
      }
      const double a = proto::factor_a(delta, overlay.k(), d);
      const double b = proto::factor_b(gamma, d);
      table.row()
          .cell(std::uint64_t{n})
          .cell(d)
          .cell(delta, 1)
          .cell(min_ratio, 3)
          .cell(max_ratio, 3)
          .cell(max_ratio / (min_ratio > 0 ? min_ratio : 1.0), 2)
          .cell(a, 4)
          .cell(b, 1)
          .cell(b / a, 0);
    }
  }
  table.note("Theorem 1 guarantees ratios within [a, b]; the analysis' "
             "constants are loose by design (b/a in the thousands) while "
             "the measured spread stays within a small constant — the "
             "protocol is far better than its worst-case bound, and every "
             "measured ratio respects the band.");
  analysis::emit(table);
  return 0;
}
