#include "adversary/midrun_schedule.hpp"

#include <algorithm>

#include "dynamics/midrun.hpp"

namespace byz::adv {

namespace {

using dynamics::ChurnSchedule;
using dynamics::MidRunEvent;
using dynamics::MidRunEventKind;
using graph::NodeId;

/// Deepest phase whose FIRST round still lies inside the horizon (phase
/// geometry of proto::schedule; the horizon is the run's expected rounds).
std::uint32_t max_phase_in_horizon(std::uint64_t horizon, std::uint32_t d,
                                   const proto::ScheduleConfig& schedule) {
  std::uint32_t i = 0;
  while (proto::rounds_through_phase(i, d, schedule) < horizon) ++i;
  return i;
}

/// Wavefront-peak rounds: the middle step of every subphase of the
/// deepest half of the phases the run is expected to execute — where the
/// flood frontier of phase i's i-step flood is widest and the phases are
/// deep enough that silencing a relay actually truncates dissemination.
std::vector<std::uint64_t> frontier_peak_rounds(
    std::uint64_t horizon, std::uint32_t d,
    const proto::ScheduleConfig& schedule) {
  const std::uint32_t max_i = max_phase_in_horizon(horizon, d, schedule);
  const std::uint32_t lo = std::max<std::uint32_t>(1, max_i / 2 + 1);
  std::vector<std::uint64_t> rounds;
  for (std::uint32_t i = lo; i <= max_i; ++i) {
    const std::uint64_t phase_start =
        proto::rounds_through_phase(i - 1, d, schedule);
    const std::uint32_t peak_step = (i + 1) / 2;  // 1-based middle step
    const std::uint32_t subphases = proto::subphases_in_phase(i, d, schedule);
    for (std::uint32_t j = 0; j < subphases; ++j) {
      const std::uint64_t r =
          phase_start + static_cast<std::uint64_t>(j) * i + (peak_step - 1);
      if (r < horizon) rounds.push_back(r);
    }
  }
  return rounds;
}

/// Phase-final rounds: the last round of every phase that completes within
/// the horizon — one round before the next begin_phase admission point.
std::vector<std::uint64_t> boundary_rounds(
    std::uint64_t horizon, std::uint32_t d,
    const proto::ScheduleConfig& schedule) {
  std::vector<std::uint64_t> rounds;
  for (std::uint32_t i = 1;; ++i) {
    const std::uint64_t through = proto::rounds_through_phase(i, d, schedule);
    if (through > horizon) break;
    rounds.push_back(through - 1);
  }
  return rounds;
}

}  // namespace

const char* to_string(MidRunScheduleStrategy strategy) {
  switch (strategy) {
    case MidRunScheduleStrategy::kUniform:
      return "uniform";
    case MidRunScheduleStrategy::kFrontierLeaves:
      return "frontier-leaves";
    case MidRunScheduleStrategy::kBoundaryJoinStorm:
      return "boundary-join-storm";
  }
  return "?";
}

std::vector<MidRunScheduleStrategy> all_midrun_schedule_strategies() {
  return {MidRunScheduleStrategy::kUniform,
          MidRunScheduleStrategy::kFrontierLeaves,
          MidRunScheduleStrategy::kBoundaryJoinStorm};
}

dynamics::ChurnSchedule derive_adversarial_schedule(
    const dynamics::ChurnEpoch& epoch, std::uint64_t horizon_rounds,
    std::uint64_t seed, MidRunScheduleStrategy strategy, std::uint32_t d,
    const proto::ScheduleConfig& schedule) {
  if (strategy == MidRunScheduleStrategy::kUniform) {
    return dynamics::derive_schedule(epoch, horizon_rounds, seed);
  }
  if (horizon_rounds == 0) horizon_rounds = 1;

  // Adversarially timed event classes draw from the strategy's candidate
  // rounds; everything else stays uniform. A degenerate horizon with no
  // candidates falls back to uniform placement — the budget is spent
  // either way.
  std::vector<std::uint64_t> candidates;
  if (strategy == MidRunScheduleStrategy::kFrontierLeaves) {
    candidates = frontier_peak_rounds(horizon_rounds, d, schedule);
  } else {
    candidates = boundary_rounds(horizon_rounds, d, schedule);
  }

  ChurnSchedule out;
  util::Xoshiro256 rng(util::mix_seed(seed, 0x31D2));
  const auto emit = [&](std::uint32_t count, MidRunEventKind kind,
                        bool adversarial) {
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t round =
          (adversarial && !candidates.empty())
              ? candidates[rng.below(candidates.size())]
              : rng.below(horizon_rounds);
      out.events.push_back({round, kind});
    }
  };
  const bool storm = strategy == MidRunScheduleStrategy::kBoundaryJoinStorm;
  // Generation order joins -> sybil joins -> leaves; the stable sort keeps
  // that order within a round, matching the trace bookkeeping order.
  emit(epoch.joins, MidRunEventKind::kJoin, storm);
  emit(epoch.sybil_joins, MidRunEventKind::kSybilJoin, storm);
  emit(epoch.leaves, MidRunEventKind::kLeave, !storm);
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const MidRunEvent& a, const MidRunEvent& b) {
                     return a.round < b.round;
                   });
  return out;
}

graph::NodeId pick_frontier_departure(
    const dynamics::MutableOverlay& overlay, const std::vector<bool>& byz,
    std::span<const graph::NodeId> frontier_stable, util::Xoshiro256& rng) {
  const auto is_byz = [&](NodeId v) { return v < byz.size() && byz[v]; };
  // Honest alive wavefront members, deduplicated in stable-id order so the
  // draw is independent of traversal incidentals.
  std::vector<NodeId> targets;
  for (const NodeId v : frontier_stable) {
    if (overlay.is_alive(v) && !is_byz(v)) targets.push_back(v);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  if (targets.empty()) {
    for (NodeId v = 0; v < overlay.id_bound(); ++v) {
      if (overlay.is_alive(v) && !is_byz(v)) targets.push_back(v);
    }
  }
  if (targets.empty()) return overlay.random_alive(rng);
  return targets[rng.below(targets.size())];
}

}  // namespace byz::adv
