#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

using Edge = std::pair<NodeId, NodeId>;

TEST(Components, SingleComponent) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, true);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count(), 1u);
  EXPECT_EQ(comps.sizes[0], 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, TwoComponentsAndIsolated) {
  const std::vector<Edge> edges{{0, 1}, {2, 3}, {3, 4}};
  const Graph g = Graph::from_edges(6, edges, true);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count(), 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_EQ(comps.sizes[comps.largest()], 3u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, EmptyGraphNotConnected) {
  const Graph g = Graph::from_edges(0, {}, true);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, LargestThrowsOnEmpty) {
  const Graph g = Graph::from_edges(0, {}, true);
  const auto comps = connected_components(g);
  EXPECT_THROW((void)comps.largest(), std::logic_error);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const Graph g = Graph::from_edges(4, edges, true);
  std::vector<bool> keep{true, true, true, false};
  std::vector<NodeId> old_to_new;
  std::vector<NodeId> new_to_old;
  const Graph sub = induced_subgraph(g, keep, &old_to_new, &new_to_old);
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // {0,1},{1,2}; edges to 3 dropped
  EXPECT_EQ(old_to_new[3], kInvalidNode);
  EXPECT_EQ(new_to_old.size(), 3u);
  EXPECT_TRUE(sub.has_edge(old_to_new[0], old_to_new[1]));
}

TEST(InducedSubgraph, MaskSizeMismatchThrows) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}}, true);
  EXPECT_THROW((void)induced_subgraph(g, std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST(LargestComponentMask, PicksBiggerSide) {
  const std::vector<Edge> edges{{0, 1}, {2, 3}, {3, 4}};
  const Graph g = Graph::from_edges(5, edges, true);
  const auto mask = largest_component_mask(g, std::vector<bool>(5, true));
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[4]);
}

TEST(LargestComponentMask, RespectsKeepFilter) {
  // Removing the bridge node splits the path 0-1-2-3-4.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const Graph g = Graph::from_edges(5, edges, true);
  std::vector<bool> keep(5, true);
  keep[2] = false;
  const auto mask = largest_component_mask(g, keep);
  // Two components of size 2; the first found ({0,1}) wins ties.
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 2);
  EXPECT_FALSE(mask[2]);
}

TEST(LargestComponentMask, RandomRegularRemainsWholeAfterFewRemovals) {
  util::Xoshiro256 rng(51);
  const Graph h = simplify(build_hamiltonian_graph(1024, 8, rng));
  std::vector<bool> keep(1024, true);
  for (NodeId v = 0; v < 16; ++v) keep[v * 64] = false;  // remove 16 nodes
  const auto mask = largest_component_mask(h, keep);
  // Lemma-14 flavor: the giant component retains essentially everything.
  EXPECT_GE(std::count(mask.begin(), mask.end(), true), 1000);
}

}  // namespace
}  // namespace byz::graph
