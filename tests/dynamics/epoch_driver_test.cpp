// The epoch driver: replay consistency with the trace, staleness
// bookkeeping, the churn adversaries, and bitwise determinism of whole
// churn runs under the shared trial scheduler for any worker count.
#include "dynamics/epoch_driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bench_core/scheduler.hpp"

namespace byz::dynamics {
namespace {

ChurnRunConfig small_config() {
  ChurnRunConfig cfg;
  cfg.trace.n0 = 128;
  cfg.trace.epochs = 4;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 64;
  cfg.trace.seed = 17;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.seed = 17;
  return cfg;
}

bool same_epoch(const EpochStats& a, const EpochStats& b) {
  return a.n_true == b.n_true && a.byz_alive == b.byz_alive &&
         a.joins == b.joins && a.leaves == b.leaves &&
         a.fresh.decided == b.fresh.decided &&
         a.fresh.in_band == b.fresh.in_band &&
         a.fresh.mean_ratio == b.fresh.mean_ratio &&
         a.stale_nodes == b.stale_nodes &&
         a.stale_in_band == b.stale_in_band && a.messages == b.messages;
}

TEST(EpochDriver, ReplayTracksTheTrace) {
  const auto cfg = small_config();
  const auto result = run_churn(cfg);
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  ASSERT_EQ(result.trace.epochs.size(), cfg.trace.epochs);
  for (std::uint32_t e = 0; e < cfg.trace.epochs; ++e) {
    const auto& stats = result.epochs[e];
    const auto& epoch = result.trace.epochs[e];
    EXPECT_EQ(stats.n_true, epoch.n_after);
    EXPECT_EQ(stats.joins, epoch.joins + epoch.sybil_joins);
    EXPECT_EQ(stats.leaves, epoch.leaves);
    EXPECT_GT(stats.fresh.honest, 0u);
    EXPECT_GT(stats.messages, 0u);
  }
  // Epoch 0 has no carried-over estimates; later epochs do (survivors of
  // a 128-node overlay with ~4 departures/epoch).
  EXPECT_EQ(result.epochs[0].stale_nodes, 0u);
  EXPECT_GT(result.epochs[1].stale_nodes, 0u);
}

TEST(EpochDriver, DeterministicAcrossSchedulerWorkerCounts) {
  const auto base = small_config();
  constexpr std::uint32_t kTrials = 4;

  std::vector<std::vector<EpochStats>> per_jobs;
  for (const unsigned jobs : {1u, 4u}) {
    const bench_core::TrialScheduler scheduler(jobs);
    const auto runs = scheduler.map(kTrials, [&](std::uint64_t t) {
      auto cfg = base;
      cfg.trace.seed = bench_core::TrialScheduler::trial_seed(base.seed, t);
      cfg.seed = cfg.trace.seed;
      return run_churn(cfg);
    });
    std::vector<EpochStats> flat;
    for (const auto& run : runs) {
      flat.insert(flat.end(), run.epochs.begin(), run.epochs.end());
    }
    per_jobs.push_back(std::move(flat));
  }
  ASSERT_EQ(per_jobs[0].size(), per_jobs[1].size());
  for (std::size_t i = 0; i < per_jobs[0].size(); ++i) {
    EXPECT_TRUE(same_epoch(per_jobs[0][i], per_jobs[1][i])) << "index " << i;
  }
}

TEST(EpochDriver, SybilBurstRaisesTheByzantineBudget) {
  auto cfg = small_config();
  cfg.trace.epochs = 5;
  cfg.trace.model = ChurnModel::kSybilJoin;
  cfg.trace.burst_epoch = 2;
  cfg.trace.burst_fraction = 0.25;
  cfg.churn_adversary = adv::ChurnAdversary::kSybilBurst;
  const auto result = run_churn(cfg);
  EXPECT_GT(result.epochs[2].byz_alive, result.epochs[1].byz_alive + 10);
}

TEST(EpochDriver, EclipseAndTargetedAdversariesRun) {
  for (const auto adversary : {adv::ChurnAdversary::kEclipse,
                               adv::ChurnAdversary::kTargetedDeparture}) {
    auto cfg = small_config();
    cfg.trace.model = adversary == adv::ChurnAdversary::kEclipse
                          ? ChurnModel::kSybilJoin
                          : ChurnModel::kBurst;
    cfg.trace.burst_epoch = 1;
    cfg.trace.burst_fraction = 0.2;
    cfg.churn_adversary = adversary;
    const auto result = run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    for (const auto& epoch : result.epochs) {
      EXPECT_GT(epoch.fresh.honest, 0u);
    }
  }
}

TEST(EpochDriver, RecoveryEpochsHelper) {
  ChurnRunResult result;
  const auto with_band = [](double frac) {
    EpochStats stats;
    stats.fresh.frac_in_band = frac;
    return stats;
  };
  result.epochs = {with_band(1.0), with_band(0.4), with_band(0.6),
                   with_band(0.95), with_band(1.0)};
  EXPECT_EQ(recovery_epochs(result, 1, 0.9), 2);
  EXPECT_EQ(recovery_epochs(result, 3, 0.9), 0);
  EXPECT_EQ(recovery_epochs(result, 1, 1.1), -1);
  EXPECT_EQ(recovery_epochs(result, 9, 0.5), -1);  // past the trace
}

}  // namespace
}  // namespace byz::dynamics
