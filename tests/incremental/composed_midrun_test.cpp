// Property suite for the composed tier: random churn traces driven through
// mid-run runs whose run-start snapshot is injected from an attached
// IncrementalEngine. The contract under test is the tentpole invariant —
// after a run's mid-run splices and post-run flush land in the
// MutableOverlay through the engine's SpliceObserver, the NEXT
// IncrementalEngine::snapshot() (recomputing only the dirtied balls) is
// bitwise identical to a cold MutableOverlay::snapshot() rebuild — across
// membership policies and adversarial schedule strategies, for many seeded
// trace interleavings.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adversary/midrun_schedule.hpp"
#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "incremental/engine.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

struct TraceTotals {
  std::uint64_t balls_reused = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t warm_rows_reused = 0;
};

/// Drives `epochs` random mid-run epochs: each run executes on the
/// incremental snapshot, splices strike the overlay (and the tracker)
/// while it floods, the tail flushes after, and the next epoch's
/// incremental snapshot is asserted bitwise against a cold rebuild.
TraceTotals drive_random_trace(proto::MembershipPolicy policy,
                               adv::MidRunScheduleStrategy strategy,
                               std::uint64_t seed, std::uint32_t epochs,
                               bool verify_mode) {
  constexpr NodeId kN0 = 320;
  constexpr std::uint32_t kD = 6;
  dynamics::MutableOverlay overlay(kN0, kD, 0, util::mix_seed(seed, 1));
  incremental::IncrementalEngine inc(
      overlay, {/*incremental=*/true, /*verify_against_full=*/verify_mode});

  util::Xoshiro256 place_rng(util::mix_seed(seed, 2));
  std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.7), place_rng);

  util::Xoshiro256 trace_rng(util::mix_seed(seed, 3));
  util::Xoshiro256 churn_rng(util::mix_seed(seed, 4));
  proto::ProtocolConfig cfg;
  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = policy;
  mid_cfg.schedule_strategy = strategy;

  TraceTotals totals;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    dynamics::ChurnEpoch epoch;
    epoch.joins = static_cast<std::uint32_t>(trace_rng.below(5));
    epoch.sybil_joins = static_cast<std::uint32_t>(trace_rng.below(2));
    epoch.leaves = static_cast<std::uint32_t>(trace_rng.below(5));
    const std::uint64_t horizon = dynamics::expected_horizon_rounds(
        overlay.num_alive(), kD, cfg.schedule);
    const auto schedule = adv::derive_adversarial_schedule(
        epoch, horizon, util::mix_seed(seed, 100 + e), strategy, kD,
        cfg.schedule);

    // The oracle: the incremental snapshot the run will execute on must be
    // bitwise identical to a cold full rebuild — including the stable-id
    // mapping — with only the previous epoch's dirtied balls recomputed.
    const auto snap = inc.snapshot();
    const auto full = overlay.snapshot();
    EXPECT_TRUE(incremental::overlays_identical(snap.overlay, full.overlay))
        << "epoch " << e;
    EXPECT_EQ(snap.dense_to_stable, full.dense_to_stable) << "epoch " << e;
    EXPECT_EQ(inc.stats().last_recomputed + inc.stats().last_reused,
              overlay.num_alive());
    if (e > 0) totals.balls_reused += inc.stats().last_reused;

    dynamics::MidRunComposed composed;
    composed.snapshot = &snap;
    auto strategy_impl = adv::make_strategy(adv::StrategyKind::kFakeColor);
    const auto out = dynamics::run_counting_midrun(
        overlay, byz, *strategy_impl, cfg, util::mix_seed(seed, 200 + e),
        schedule, mid_cfg, adv::ChurnAdversary::kNone, churn_rng, &composed);
    totals.events_applied += out.stats.events_applied;
    totals.warm_rows_reused += out.stats.warm_rows_reused;

    // Stable-id mapping stays coherent across the flush: every run id
    // resolves, and the Byzantine mask tracks the id space.
    for (const NodeId s : out.run_to_stable) {
      EXPECT_NE(s, graph::kInvalidNode) << "epoch " << e;
    }
    EXPECT_EQ(byz.size(), overlay.id_bound());
  }
  // One final post-flush check so the LAST epoch's splices are covered too.
  const auto snap = inc.snapshot();
  const auto full = overlay.snapshot();
  EXPECT_TRUE(incremental::overlays_identical(snap.overlay, full.overlay));
  EXPECT_EQ(snap.dense_to_stable, full.dense_to_stable);
  return totals;
}

TEST(ComposedMidRunProperty, IncrementalSnapshotMatchesColdRebuildAcrossGrid) {
  for (const auto policy : {proto::MembershipPolicy::kTreatAsSilent,
                            proto::MembershipPolicy::kReadmitNextPhase}) {
    for (const auto strategy :
         {adv::MidRunScheduleStrategy::kUniform,
          adv::MidRunScheduleStrategy::kFrontierLeaves,
          adv::MidRunScheduleStrategy::kBoundaryJoinStorm}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto totals =
            drive_random_trace(policy, strategy, seed, /*epochs=*/4,
                               /*verify_mode=*/false);
        // The trace must exercise the mid-run path (events landing during
        // runs) and the incremental path (clean balls actually reused).
        EXPECT_GT(totals.events_applied, 0u)
            << adv::to_string(strategy) << " seed " << seed;
        EXPECT_GT(totals.balls_reused, 0u)
            << adv::to_string(strategy) << " seed " << seed;
      }
    }
  }
}

TEST(ComposedMidRunProperty, VerifyModeStaysCleanUnderMidRunSplices) {
  // verify_against_full cross-checks EVERY incremental snapshot against the
  // full rebuild inside the engine and throws on any divergence — driving
  // it through mid-run splices is the strictest form of the exactness
  // oracle (the engine observes joins/leaves it did not apply itself).
  for (const auto strategy : {adv::MidRunScheduleStrategy::kUniform,
                              adv::MidRunScheduleStrategy::kFrontierLeaves}) {
    EXPECT_NO_THROW((void)drive_random_trace(
        proto::MembershipPolicy::kReadmitNextPhase, strategy, 99,
        /*epochs=*/3, /*verify_mode=*/true));
  }
}

TEST(ComposedMidRunProperty, InjectedSnapshotLeavesOutcomeUnchanged) {
  // Snapshot injection is pure plumbing: a mid-run trial executed on the
  // incremental snapshot must produce the same MidRunOutcome bit for bit
  // as the standalone feed's own full rebuild (the E24/E26 anchors
  // transfer to the composed tier unchanged).
  constexpr NodeId kN0 = 256;
  constexpr std::uint32_t kD = 6;
  for (std::uint64_t seed = 5; seed <= 7; ++seed) {
    dynamics::MutableOverlay inc_overlay(kN0, kD, 0, util::mix_seed(seed, 1));
    dynamics::MutableOverlay ref_overlay(kN0, kD, 0, util::mix_seed(seed, 1));
    incremental::IncrementalEngine inc(inc_overlay);

    util::Xoshiro256 place_rng(util::mix_seed(seed, 2));
    std::vector<bool> inc_byz = graph::random_byzantine_mask(
        kN0, sim::derive_byz_count(kN0, 0.7), place_rng);
    std::vector<bool> ref_byz = inc_byz;

    dynamics::ChurnEpoch epoch;
    epoch.joins = 6;
    epoch.sybil_joins = 1;
    epoch.leaves = 5;
    proto::ProtocolConfig cfg;
    const auto schedule = adv::derive_adversarial_schedule(
        epoch,
        dynamics::expected_horizon_rounds(kN0, kD, cfg.schedule),
        util::mix_seed(seed, 3), adv::MidRunScheduleStrategy::kUniform, kD,
        cfg.schedule);
    dynamics::MidRunConfig mid_cfg;

    const auto snap = inc.snapshot();
    dynamics::MidRunComposed composed;
    composed.snapshot = &snap;
    util::Xoshiro256 inc_rng(util::mix_seed(seed, 4));
    util::Xoshiro256 ref_rng(util::mix_seed(seed, 4));
    auto inc_strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    auto ref_strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    const auto composed_out = dynamics::run_counting_midrun(
        inc_overlay, inc_byz, *inc_strategy, cfg, 77, schedule, mid_cfg,
        adv::ChurnAdversary::kNone, inc_rng, &composed);
    const auto standalone_out = dynamics::run_counting_midrun(
        ref_overlay, ref_byz, *ref_strategy, cfg, 77, schedule, mid_cfg,
        adv::ChurnAdversary::kNone, ref_rng);
    EXPECT_TRUE(composed_out == standalone_out) << "seed " << seed;
    EXPECT_EQ(inc_byz, ref_byz);
  }
}

TEST(ComposedMidRunProperty, ComposedOutcomeIndependentOfFloodThreads) {
  // The composed tier with the parallel kernel: a mid-run trial executed
  // on the injected incremental snapshot must produce the identical
  // MidRunOutcome at every flood thread count — warm-start row reuse,
  // mid-run splices, and the word-packed kernel compose without moving a
  // bit. Each execution rebuilds its world from the same seeds.
  constexpr NodeId kN0 = 256;
  constexpr std::uint32_t kD = 6;
  for (std::uint64_t seed = 5; seed <= 6; ++seed) {
    auto run_once = [seed](proto::FloodExec exec) {
      dynamics::MutableOverlay overlay(kN0, kD, 0, util::mix_seed(seed, 1));
      incremental::IncrementalEngine inc(overlay);
      util::Xoshiro256 place_rng(util::mix_seed(seed, 2));
      std::vector<bool> byz = graph::random_byzantine_mask(
          kN0, sim::derive_byz_count(kN0, 0.7), place_rng);
      dynamics::ChurnEpoch epoch;
      epoch.joins = 6;
      epoch.sybil_joins = 1;
      epoch.leaves = 5;
      proto::ProtocolConfig cfg;
      const auto schedule = adv::derive_adversarial_schedule(
          epoch, dynamics::expected_horizon_rounds(kN0, kD, cfg.schedule),
          util::mix_seed(seed, 3), adv::MidRunScheduleStrategy::kUniform, kD,
          cfg.schedule);
      dynamics::MidRunConfig mid_cfg;
      mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
      mid_cfg.flood = exec;
      const auto snap = inc.snapshot();
      dynamics::MidRunComposed composed;
      composed.snapshot = &snap;
      util::Xoshiro256 churn_rng(util::mix_seed(seed, 4));
      auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
      return dynamics::run_counting_midrun(overlay, byz, *strategy, cfg, 77,
                                           schedule, mid_cfg,
                                           adv::ChurnAdversary::kNone,
                                           churn_rng, &composed);
    };
    const auto serial = run_once({proto::FloodMode::kSerial, 0});
    for (const std::uint32_t t : {1u, 2u, 4u, 8u}) {
      const auto parallel = run_once({proto::FloodMode::kParallel, t});
      EXPECT_TRUE(serial == parallel)
          << "seed " << seed << " flood-threads=" << t;
    }
  }
}

}  // namespace
}  // namespace byz
