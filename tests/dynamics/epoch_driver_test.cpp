// The epoch driver: replay consistency with the trace, staleness
// bookkeeping, the churn adversaries, and bitwise determinism of whole
// churn runs under the shared trial scheduler for any worker count.
#include "dynamics/epoch_driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bench_core/scheduler.hpp"

namespace byz::dynamics {
namespace {

ChurnRunConfig small_config() {
  ChurnRunConfig cfg;
  cfg.trace.n0 = 128;
  cfg.trace.epochs = 4;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 64;
  cfg.trace.seed = 17;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.seed = 17;
  return cfg;
}

bool same_epoch(const EpochStats& a, const EpochStats& b) {
  return a.n_true == b.n_true && a.byz_alive == b.byz_alive &&
         a.joins == b.joins && a.leaves == b.leaves &&
         a.fresh.decided == b.fresh.decided &&
         a.fresh.in_band == b.fresh.in_band &&
         a.fresh.mean_ratio == b.fresh.mean_ratio &&
         a.stale_nodes == b.stale_nodes &&
         a.stale_in_band == b.stale_in_band && a.messages == b.messages;
}

TEST(EpochDriver, ReplayTracksTheTrace) {
  const auto cfg = small_config();
  const auto result = run_churn(cfg);
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  ASSERT_EQ(result.trace.epochs.size(), cfg.trace.epochs);
  for (std::uint32_t e = 0; e < cfg.trace.epochs; ++e) {
    const auto& stats = result.epochs[e];
    const auto& epoch = result.trace.epochs[e];
    EXPECT_EQ(stats.n_true, epoch.n_after);
    EXPECT_EQ(stats.joins, epoch.joins + epoch.sybil_joins);
    EXPECT_EQ(stats.leaves, epoch.leaves);
    EXPECT_GT(stats.fresh.honest, 0u);
    EXPECT_GT(stats.messages, 0u);
  }
  // Epoch 0 has no carried-over estimates; later epochs do (survivors of
  // a 128-node overlay with ~4 departures/epoch).
  EXPECT_EQ(result.epochs[0].stale_nodes, 0u);
  EXPECT_GT(result.epochs[1].stale_nodes, 0u);
}

TEST(EpochDriver, DeterministicAcrossSchedulerWorkerCounts) {
  const auto base = small_config();
  constexpr std::uint32_t kTrials = 4;

  std::vector<std::vector<EpochStats>> per_jobs;
  for (const unsigned jobs : {1u, 4u}) {
    const bench_core::TrialScheduler scheduler(jobs);
    const auto runs = scheduler.map(kTrials, [&](std::uint64_t t) {
      auto cfg = base;
      cfg.trace.seed = bench_core::TrialScheduler::trial_seed(base.seed, t);
      cfg.seed = cfg.trace.seed;
      return run_churn(cfg);
    });
    std::vector<EpochStats> flat;
    for (const auto& run : runs) {
      flat.insert(flat.end(), run.epochs.begin(), run.epochs.end());
    }
    per_jobs.push_back(std::move(flat));
  }
  ASSERT_EQ(per_jobs[0].size(), per_jobs[1].size());
  for (std::size_t i = 0; i < per_jobs[0].size(); ++i) {
    EXPECT_TRUE(same_epoch(per_jobs[0][i], per_jobs[1][i])) << "index " << i;
  }
}

TEST(EpochDriver, SybilBurstRaisesTheByzantineBudget) {
  auto cfg = small_config();
  cfg.trace.epochs = 5;
  cfg.trace.model = ChurnModel::kSybilJoin;
  cfg.trace.burst_epoch = 2;
  cfg.trace.burst_fraction = 0.25;
  cfg.churn_adversary = adv::ChurnAdversary::kSybilBurst;
  const auto result = run_churn(cfg);
  EXPECT_GT(result.epochs[2].byz_alive, result.epochs[1].byz_alive + 10);
}

TEST(EpochDriver, EclipseAndTargetedAdversariesRun) {
  for (const auto adversary : {adv::ChurnAdversary::kEclipse,
                               adv::ChurnAdversary::kTargetedDeparture}) {
    auto cfg = small_config();
    cfg.trace.model = adversary == adv::ChurnAdversary::kEclipse
                          ? ChurnModel::kSybilJoin
                          : ChurnModel::kBurst;
    cfg.trace.burst_epoch = 1;
    cfg.trace.burst_fraction = 0.2;
    cfg.churn_adversary = adversary;
    const auto result = run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    for (const auto& epoch : result.epochs) {
      EXPECT_GT(epoch.fresh.honest, 0u);
    }
  }
}

TEST(EpochDriver, RecoveryEpochsHelper) {
  ChurnRunResult result;
  const auto with_band = [](double frac) {
    EpochStats stats;
    stats.fresh.frac_in_band = frac;
    return stats;
  };
  result.epochs = {with_band(1.0), with_band(0.4), with_band(0.6),
                   with_band(0.95), with_band(1.0)};
  EXPECT_EQ(recovery_epochs(result, 1, 0.9), 2);
  EXPECT_EQ(recovery_epochs(result, 3, 0.9), 0);
  EXPECT_EQ(recovery_epochs(result, 1, 1.1), -1);
  EXPECT_EQ(recovery_epochs(result, 9, 0.5), -1);  // past the trace
}

TEST(EpochDriver, RecoveryAtTheFinalEpochRequiresTheThresholdToBeMet) {
  // Regression: a burst at the FINAL epoch must not read as recovered just
  // because the trace ran out of epochs — -1 unless the band is actually
  // re-entered, and 0 only when the final epoch itself clears it.
  ChurnRunResult result;
  const auto with_band = [](double frac) {
    EpochStats stats;
    stats.fresh.frac_in_band = frac;
    return stats;
  };
  result.epochs = {with_band(1.0), with_band(1.0), with_band(0.4)};
  EXPECT_EQ(recovery_epochs(result, 2, 0.9), -1);  // band never re-entered
  result.epochs.back().fresh.frac_in_band = 0.95;
  EXPECT_EQ(recovery_epochs(result, 2, 0.9), 0);  // genuinely met at burst
  // Empty trace: nothing can have recovered.
  ChurnRunResult empty;
  EXPECT_EQ(recovery_epochs(empty, 0, 0.9), -1);
}

TEST(EpochDriver, AdaptiveSchedulerSkipsBelowTheDriftBound) {
  auto cfg = small_config();
  cfg.trace.epochs = 8;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.adaptive = true;
  // ~4 joins + ~4 leaves per epoch on ~128 nodes is ~6% drift: a 10%
  // threshold re-estimates roughly every second epoch.
  cfg.incremental.drift_threshold = 0.10;
  const auto result = run_churn(cfg);

  std::uint32_t estimated = 0;
  EXPECT_TRUE(result.epochs.front().estimated);  // epoch 0 bootstraps
  double last_drift = 0.0;
  for (const auto& epoch : result.epochs) {
    if (epoch.estimated) {
      ++estimated;
      EXPECT_GT(epoch.messages, 0u);
    } else {
      // Skipped epochs run no protocol but keep judging stale estimates.
      EXPECT_EQ(epoch.messages, 0u);
      EXPECT_EQ(epoch.fresh.honest, 0u);
      EXPECT_GT(epoch.stale_nodes, 0u);
      EXPECT_LT(epoch.drift, cfg.incremental.drift_threshold);
      EXPECT_GT(epoch.drift, last_drift);  // drift accumulates while idle
    }
    last_drift = epoch.estimated ? 0.0 : epoch.drift;
  }
  EXPECT_LT(estimated, result.epochs.size());  // some epochs skipped
  EXPECT_GE(estimated, 2u);                    // but not all
}

TEST(EpochDriver, IncrementalTiersPreserveTheColdResults) {
  // The whole point of the incremental tier: same estimates, same accuracy,
  // same staleness — less work. Compare a plain run against the fully
  // instrumented incremental+warm run epoch by epoch.
  const auto base = small_config();
  auto inc = base;
  inc.incremental.incremental = true;
  inc.incremental.verify_snapshots = true;
  inc.incremental.warm_start = true;
  inc.incremental.verify_warm = true;

  const auto plain = run_churn(base);
  const auto warm = run_churn(inc);
  ASSERT_EQ(plain.epochs.size(), warm.epochs.size());
  for (std::size_t e = 0; e < plain.epochs.size(); ++e) {
    const auto& a = plain.epochs[e];
    const auto& b = warm.epochs[e];
    EXPECT_EQ(a.n_true, b.n_true);
    EXPECT_EQ(a.fresh.decided, b.fresh.decided);
    EXPECT_EQ(a.fresh.in_band, b.fresh.in_band);
    EXPECT_EQ(a.fresh.mean_ratio, b.fresh.mean_ratio);
    EXPECT_EQ(a.stale_nodes, b.stale_nodes);
    EXPECT_EQ(a.stale_in_band, b.stale_in_band);
    // The cold shadow reproduces the plain run's traffic exactly; the warm
    // run itself never exceeds it.
    EXPECT_EQ(a.messages, b.messages_cold);
    EXPECT_LE(b.messages, a.messages);
    EXPECT_GT(b.balls_reused + b.balls_recomputed, 0u);
  }
}

TEST(EpochDriver, AdaptiveCadenceStillEngagesTheWarmTier) {
  // Regression: adaptive estimation fires exactly when accumulated drift
  // crosses drift_threshold, so a warm fallback bound at or below the
  // threshold would silently disable warm starts on EVERY estimated
  // epoch. The driver raises the effective bound to 2x the threshold.
  auto cfg = small_config();
  cfg.trace.epochs = 8;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;
  cfg.incremental.adaptive = true;
  cfg.incremental.drift_threshold = 0.10;  // >= the warm max_drift default
  const auto result = run_churn(cfg);
  bool any_warm = false;
  for (const auto& epoch : result.epochs) {
    any_warm = any_warm || epoch.warm_used;
  }
  EXPECT_TRUE(any_warm);
}

TEST(EpochDriver, RunEngineWithWarmStartRequiresVerifyWarm) {
  auto cfg = small_config();
  cfg.run_engine = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = false;
  EXPECT_THROW((void)run_churn(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace byz::dynamics
