// Streaming and batch statistics used by every experiment: online
// mean/variance (Welford), percentiles, histograms, and simple linear
// regression (for the round-complexity scaling fits).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace byz::util {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, mergeable (for OpenMP reductions across per-thread copies).
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;       ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double stderr_mean() const noexcept;    ///< stddev / sqrt(n)
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (copies + sorts; fine at experiment scale).
/// `q` in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> sample);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used for color and estimate distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Renders an ASCII bar chart, one bucket per line.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares fit y = slope*x + intercept with R^2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Pearson chi-squared statistic for observed vs expected counts; the
/// distribution tests use this with conservative critical values.
[[nodiscard]] double chi_squared(std::span<const double> observed,
                                 std::span<const double> expected);

/// Bootstrap confidence interval of the mean (percentile method).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> sample,
                                         double confidence, int resamples,
                                         std::uint64_t seed);

}  // namespace byz::util
