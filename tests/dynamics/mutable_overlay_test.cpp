// Invariants of the delta-applied overlay: exact d-regularity,
// connectivity, and small-world structure must survive ANY sequence of
// joins, leaves, bursts, and rewires, and the generation-0 snapshot must
// reproduce the static Overlay::build sample bit for bit.
#include "dynamics/mutable_overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace byz::dynamics {
namespace {

using graph::NodeId;

/// Structural equality of two CSR graphs (same nodes, same sorted
/// adjacency, multiplicities included).
bool same_graph(const graph::Graph& a, const graph::Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_slots() != b.num_slots()) {
    return false;
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

void expect_invariants(const MutableOverlay& overlay) {
  const auto snap = overlay.snapshot();
  const auto& o = snap.overlay;
  EXPECT_EQ(o.num_nodes(), overlay.num_alive());
  EXPECT_TRUE(o.h().is_regular(overlay.d()))
      << "H must stay exactly d-regular";
  EXPECT_TRUE(graph::is_connected(o.h_simple()))
      << "the ring union must stay connected";
  EXPECT_EQ(o.k(), overlay.k());
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    for (const std::uint8_t dist : o.g_dists(v)) {
      EXPECT_GE(dist, 1u);
      EXPECT_LE(dist, o.k());
    }
  }
  // The dense mapping is a sorted bijection onto the alive set.
  ASSERT_EQ(snap.dense_to_stable.size(), overlay.num_alive());
  EXPECT_TRUE(std::is_sorted(snap.dense_to_stable.begin(),
                             snap.dense_to_stable.end()));
  for (const NodeId stable : snap.dense_to_stable) {
    EXPECT_TRUE(overlay.is_alive(stable));
    EXPECT_EQ(snap.dense_to_stable[snap.to_dense(stable)], stable);
  }
}

TEST(MutableOverlay, BootstrapSnapshotMatchesStaticBuild) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    graph::OverlayParams params;
    params.n = 200;
    params.d = 6;
    params.seed = seed;
    const auto expect = graph::Overlay::build(params);

    const MutableOverlay dyn(200, 6, 0, seed);
    const auto snap = dyn.snapshot();
    EXPECT_TRUE(same_graph(snap.overlay.h(), expect.h())) << "seed " << seed;
    EXPECT_TRUE(same_graph(snap.overlay.g(), expect.g())) << "seed " << seed;
    EXPECT_EQ(snap.overlay.k(), expect.k());
    for (NodeId v = 0; v < 200; ++v) {
      const auto da = snap.overlay.g_dists(v);
      const auto db = expect.g_dists(v);
      ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
    }
    // Snapshots are tagged with a nonzero generation; the static build is 0.
    EXPECT_EQ(expect.params().generation, 0u);
    EXPECT_NE(snap.overlay.params().generation, 0u);
  }
}

TEST(MutableOverlay, InvariantsSurviveChurn) {
  MutableOverlay overlay(64, 6, 0, 3);
  util::Xoshiro256 rng(99);
  expect_invariants(overlay);

  // Growth burst.
  for (int i = 0; i < 40; ++i) overlay.join(rng);
  EXPECT_EQ(overlay.num_alive(), 104u);
  expect_invariants(overlay);

  // Departure burst (half the network), targeting a mixed id range.
  for (int i = 0; i < 52; ++i) overlay.leave(overlay.random_alive(rng));
  EXPECT_EQ(overlay.num_alive(), 52u);
  expect_invariants(overlay);

  // Rewiring repair keeps membership but bumps the generation.
  const auto gen = overlay.generation();
  for (int i = 0; i < 10; ++i) overlay.rewire(overlay.random_alive(rng), rng);
  EXPECT_EQ(overlay.num_alive(), 52u);
  EXPECT_EQ(overlay.generation(), gen + 10);
  expect_invariants(overlay);

  // Interleaved trickle.
  for (int i = 0; i < 30; ++i) {
    if (rng.coin()) {
      overlay.join(rng);
    } else {
      overlay.leave(overlay.random_alive(rng));
    }
  }
  expect_invariants(overlay);
}

TEST(MutableOverlay, JoinAtWrapsTheAnchor) {
  MutableOverlay overlay(32, 6, 0, 5);
  const NodeId victim = 4;
  const std::vector<NodeId> anchors(overlay.num_cycles(), victim);
  const NodeId joiner = overlay.join_at(anchors);
  EXPECT_EQ(joiner, 32u);
  for (std::uint32_t c = 0; c < overlay.num_cycles(); ++c) {
    EXPECT_EQ(overlay.successor(c, victim), joiner);
    EXPECT_EQ(overlay.predecessor(c, joiner), victim);
  }
  const auto snap = overlay.snapshot();
  const NodeId dv = snap.to_dense(victim);
  const NodeId dj = snap.to_dense(joiner);
  EXPECT_TRUE(snap.overlay.h().has_edge(dv, dj));
  EXPECT_EQ(snap.overlay.h().degree(dj), overlay.d());
}

TEST(MutableOverlay, RejectsInvalidOperations) {
  EXPECT_THROW(MutableOverlay(2, 6, 0, 1), std::invalid_argument);
  EXPECT_THROW(MutableOverlay(16, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(MutableOverlay(16, 2, 0, 1), std::invalid_argument);

  MutableOverlay overlay(3, 4, 0, 1);
  EXPECT_THROW(overlay.leave(0), std::invalid_argument);  // floor of 3
  util::Xoshiro256 rng(1);
  const NodeId v = overlay.join(rng);
  overlay.leave(v);  // back to 3: allowed
  EXPECT_THROW(overlay.leave(v), std::invalid_argument);  // already dead
  EXPECT_THROW(overlay.join_at(std::vector<NodeId>{0}), std::invalid_argument);
  const std::vector<NodeId> dead_anchor(overlay.num_cycles(), v);
  EXPECT_THROW(overlay.join_at(dead_anchor), std::invalid_argument);
}

TEST(MutableOverlay, BuildTagDistinguishesDifferentHistories) {
  // Same (n0, d, seed), same op COUNT, different op content: leave(0) vs
  // leave(1), then one join each. The snapshots have identical (n, d, k,
  // seed) and equal generation counters, so a counter-based tag would
  // collide — the history fold must not.
  MutableOverlay a(64, 6, 0, 9);
  MutableOverlay b(64, 6, 0, 9);
  EXPECT_EQ(a.build_tag(), b.build_tag());  // identical so far
  util::Xoshiro256 rng_a(5);
  util::Xoshiro256 rng_b(5);
  a.leave(0);
  b.leave(1);
  a.join(rng_a);
  b.join(rng_b);
  EXPECT_EQ(a.generation(), b.generation());
  EXPECT_NE(a.build_tag(), b.build_tag());
  const auto snap_a = a.snapshot();
  const auto snap_b = b.snapshot();
  EXPECT_EQ(snap_a.overlay.params().n, snap_b.overlay.params().n);
  EXPECT_EQ(snap_a.overlay.params().seed, snap_b.overlay.params().seed);
  EXPECT_NE(snap_a.overlay.params().generation,
            snap_b.overlay.params().generation);
}

TEST(MutableOverlay, StableIdsAreNeverReused) {
  MutableOverlay overlay(8, 4, 0, 2);
  util::Xoshiro256 rng(5);
  const NodeId a = overlay.join(rng);
  overlay.leave(a);
  const NodeId b = overlay.join(rng);
  EXPECT_NE(a, b);
  EXPECT_EQ(b, a + 1);
  EXPECT_FALSE(overlay.is_alive(a));
  EXPECT_TRUE(overlay.is_alive(b));
}

}  // namespace
}  // namespace byz::dynamics
