#include "protocols/warm_start.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/refine.hpp"

namespace byz::proto {

using graph::NodeId;

WarmRun run_counting_warm(const graph::Overlay& overlay,
                          const std::vector<bool>& byz_mask,
                          adv::Strategy& strategy, const ProtocolConfig& cfg,
                          std::uint64_t color_seed,
                          std::span<const NodeId> dense_to_stable,
                          std::span<const std::uint8_t> dirty_stable,
                          double drift, const WarmConfig& warm_cfg,
                          WarmState& state) {
  const NodeId n = overlay.num_nodes();
  const std::uint32_t k = overlay.k();
  if (dense_to_stable.size() != n) {
    throw std::invalid_argument("run_counting_warm: stable map size mismatch");
  }
  if (byz_mask.size() != n) {
    throw std::invalid_argument("run_counting_warm: mask size mismatch");
  }

  WarmRun out;
  const auto is_dirty = [&](NodeId stable) {
    return stable < dirty_stable.size() && dirty_stable[stable] != 0;
  };

  // Cold-fallback decision: no state to seed from, a k-regime change, or
  // too much drift for the cached state to be worth carrying.
  const bool cold =
      !state.has_run || state.k != k || drift > warm_cfg.max_drift;
  if (!cold) {
    // Report the seeded decision window (observability; E21 tables it).
    for (NodeId v = 0; v < n; ++v) {
      if (byz_mask[v]) continue;
      const NodeId s = dense_to_stable[v];
      if (s >= state.estimate.size() || state.estimate[s] == 0) continue;
      ++out.estimates_seeded;
      if (out.seed_min == 0 || state.estimate[s] < out.seed_min) {
        out.seed_min = state.estimate[s];
      }
      out.seed_max = std::max(out.seed_max, state.estimate[s]);
    }
  }

  // The Verifier is built HERE on both paths so its per-node rows can be
  // cached into `state` afterwards. Cold: every row fresh. Warm: cached
  // rows for clean nodes (ball counts and usable chains are k-ball-local,
  // so a clean ball pins both), recomputed rows for dirty ones.
  std::vector<std::uint32_t> rows(static_cast<std::size_t>(n) * k);
  std::vector<std::uint8_t> chains(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId s = dense_to_stable[v];
    const bool reuse = !cold && !is_dirty(s) && s < state.row_valid.size() &&
                       state.row_valid[s] != 0;
    if (reuse) {
      std::copy_n(state.ball_counts.data() + static_cast<std::size_t>(s) * k,
                  k, rows.data() + static_cast<std::size_t>(v) * k);
      chains[v] = state.chain_len[s];
      ++out.rows_reused;
    } else {
      verifier_ball_row(overlay, v,
                        rows.data() + static_cast<std::size_t>(v) * k);
      chains[v] = verifier_chain_len(overlay, byz_mask, v,
                                     cfg.verification.chain_model);
      ++out.rows_recomputed;
    }
  }
  const Verifier verifier(overlay, byz_mask, cfg.verification, std::move(rows),
                          std::move(chains));

  out.warm_used = !cold;
  RunControls controls;
  controls.lazy_subphases = !cold;
  controls.verifier = &verifier;
  out.run = run_counting_with(overlay, byz_mask, strategy, cfg, color_seed,
                              controls);

  // Fold this run back into the stable-indexed state for the next epoch.
  NodeId bound = 0;
  for (const NodeId s : dense_to_stable) bound = std::max(bound, s);
  ++bound;
  if (state.estimate.size() < bound) {
    state.estimate.resize(bound, 0);
    state.refined.resize(bound, 0.0);
    state.chain_len.resize(bound, 0);
    state.row_valid.resize(bound, 0);
  }
  state.k = k;
  if (state.ball_counts.size() < static_cast<std::size_t>(bound) * k) {
    state.ball_counts.resize(static_cast<std::size_t>(bound) * k, 0);
  }
  const std::uint32_t d = overlay.params().d;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId s = dense_to_stable[v];
    const auto row = verifier.ball_row(v);
    std::copy(row.begin(), row.end(),
              state.ball_counts.data() + static_cast<std::size_t>(s) * k);
    state.chain_len[s] = static_cast<std::uint8_t>(verifier.usable_chain(v));
    state.row_valid[s] = 1;

    const std::uint32_t est = out.run.status[v] == NodeStatus::kDecided
                                  ? out.run.estimate[v]
                                  : 0;
    if (est == 0) {
      state.estimate[s] = 0;
      state.refined[s] = 0.0;
      continue;
    }
    // The refined readout is a pure function of the decided phase: re-run
    // the calibration only where the phase actually moved.
    if (state.estimate[s] == est) {
      ++out.refine_reused;
    } else {
      state.refined[s] = refined_log_estimate(est, d);
      ++out.refine_recomputed;
    }
    state.estimate[s] = est;
  }
  state.has_run = true;
  return out;
}

}  // namespace byz::proto
