// Divergence-forensics seam tests: compare_midrun_tiers in audit mode.
//
// The tentpole contract under test:
//   (1) a clean audited comparison reports identical outcomes AND identical
//       hierarchical digest trails, with no forensics emitted — and the
//       audit itself never moves the outcome (pure read-side);
//   (2) digest trails are identical whether the obs runtime switch is on
//       or off (recording is gated on digester attachment, not
//       obs::enabled(), so traced and untraced runs stay comparable);
//   (3) fault-injection localization: perturbing ONE tier's trail at a
//       known global round makes the byzobs/forensics/v1 report name
//       exactly that round (and its phase/subphase), while the protocol
//       outcomes stay identical — the report explains, it never disturbs;
//   (4) with an out_dir the report lands on disk and parses.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench_core/json.hpp"
#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "obs/digest.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

dynamics::MidRunTierComparison audited_compare(const obs::AuditConfig* audit,
                                               std::uint64_t seed = 11) {
  constexpr NodeId kN0 = 224;
  dynamics::MutableOverlay overlay(kN0, 6, 0, seed);
  util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
  const std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.6), place_rng);

  dynamics::ChurnEpoch epoch;
  epoch.joins = 8;
  epoch.sybil_joins = 2;
  epoch.leaves = 8;
  proto::ProtocolConfig cfg;
  const auto horizon = dynamics::expected_horizon_rounds(kN0, 6, cfg.schedule);
  const auto schedule = dynamics::derive_schedule(epoch, horizon, seed);

  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
  util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));
  return dynamics::compare_midrun_tiers(
      overlay, byz, adv::StrategyKind::kFakeColor, cfg, seed ^ 0xC, schedule,
      mid_cfg, adv::ChurnAdversary::kNone, churn_rng, audit);
}

TEST(ForensicsAudit, CleanComparisonHasMatchingTrailsAndNoReport) {
  obs::AuditConfig audit;
  audit.scenario = "forensics_test";
  audit.seed = 11;
  const auto cmp = audited_compare(&audit);
  EXPECT_TRUE(cmp.identical);
  EXPECT_TRUE(cmp.digests_identical);
  EXPECT_TRUE(cmp.forensics.empty());
  EXPECT_TRUE(cmp.forensics_path.empty());
  EXPECT_EQ(cmp.run_digest_fastpath, cmp.run_digest_engine);
#if BYZ_OBS_ENABLED
  EXPECT_NE(cmp.run_digest_fastpath, 0u);
#endif
  // The audit is pure read-side: the outcome matches an unaudited run.
  const auto plain = audited_compare(nullptr);
  EXPECT_TRUE(plain.fastpath == cmp.fastpath);
  EXPECT_TRUE(plain.engine == cmp.engine);
}

TEST(ForensicsAudit, TrailsIdenticalTracedAndUntraced) {
  obs::AuditConfig audit;
  audit.scenario = "forensics_test";
  audit.seed = 11;
  const auto untraced = audited_compare(&audit);
  obs::set_enabled(true);
  const auto traced = audited_compare(&audit);
  obs::set_enabled(false);
  EXPECT_EQ(traced.run_digest_fastpath, untraced.run_digest_fastpath);
  EXPECT_EQ(traced.run_digest_engine, untraced.run_digest_engine);
  EXPECT_TRUE(traced.fastpath == untraced.fastpath);
}

#if BYZ_OBS_ENABLED

TEST(ForensicsAudit, InjectedPerturbationLocalizesToTheExactRound) {
  constexpr std::uint64_t kInjectedRound = 5;
  obs::AuditConfig audit;
  audit.scenario = "forensics_test";
  audit.seed = 11;
  audit.flags = "--unit-test";
  audit.perturb_tier = 1;  // engine trail
  audit.perturb_round = kInjectedRound;
  audit.perturb_mask = 0xDEAD;
  const auto cmp = audited_compare(&audit);

  // The perturbation touches only the TRAIL: outcomes still match.
  EXPECT_TRUE(cmp.identical);
  EXPECT_FALSE(cmp.digests_identical);
  EXPECT_NE(cmp.run_digest_fastpath, cmp.run_digest_engine);
  ASSERT_FALSE(cmp.forensics.empty());

  const auto doc = bench_core::Json::parse(cmp.forensics);
  ASSERT_TRUE(doc.has_value()) << cmp.forensics;
  EXPECT_EQ(doc->find("schema")->as_string(), "byzobs/forensics/v1");
  EXPECT_EQ(doc->find("detail")->as_string(),
            "digest trails diverged (outcomes identical)");
  const bench_core::Json* div = doc->find("first_divergence");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->find("level")->as_string(), "round");
  EXPECT_EQ(div->find("round")->as_number(),
            static_cast<double>(kInjectedRound));
  // The named (phase, subphase) must be the injected round's position in
  // the hierarchy, as recorded by the clean tier's trail.
  const bench_core::Json* tiers = doc->find("tiers");
  ASSERT_NE(tiers, nullptr);
  ASSERT_EQ(tiers->elements().size(), 2u);
  const bench_core::Json* rounds =
      tiers->elements()[0].find("divergent_subphase_rounds");
  ASSERT_NE(rounds, nullptr);
  // The round evidence is scoped to the divergent (phase, subphase)
  // branch, so finding the injected round there confirms the named
  // phase/subphase too.
  bool named = false;
  for (const auto& r : rounds->elements()) {
    named = named || r.find("round")->as_number() ==
                         static_cast<double>(kInjectedRound);
  }
  EXPECT_TRUE(named) << "report's round evidence omits the injected round";
  EXPECT_GT(div->find("phase")->as_number(), 0.0);
  // Flight-recorder tails ride along as evidence.
  EXPECT_NE(tiers->elements()[0].find("flight_tail"), nullptr);
  EXPECT_NE(tiers->elements()[1].find("flight_tail"), nullptr);
}

TEST(ForensicsAudit, ReportIsWrittenToOutDir) {
  obs::AuditConfig audit;
  audit.scenario = "forensics_write";
  audit.seed = 13;
  audit.out_dir = ::testing::TempDir();
  audit.perturb_tier = 0;  // fastpath trail this time
  audit.perturb_round = 3;
  audit.perturb_mask = 0xF00D;
  const auto cmp = audited_compare(&audit, /*seed=*/13);
  ASSERT_FALSE(cmp.forensics_path.empty());
  std::ifstream in(cmp.forensics_path);
  ASSERT_TRUE(in.good()) << cmp.forensics_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = bench_core::Json::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("scenario")->as_string(), "forensics_write");
  EXPECT_EQ(doc->find("seed")->as_number(), 13.0);
}

#else  // !BYZ_OBS_ENABLED

TEST(ForensicsAudit, StubbedDigestersDegradeToOutcomeCheck) {
  obs::AuditConfig audit;
  audit.scenario = "forensics_test";
  audit.seed = 11;
  audit.perturb_tier = 1;  // stub: set_perturbation is a no-op
  audit.perturb_round = 5;
  audit.perturb_mask = 0xDEAD;
  const auto cmp = audited_compare(&audit);
  EXPECT_TRUE(cmp.identical);
  EXPECT_TRUE(cmp.digests_identical);
  EXPECT_TRUE(cmp.forensics.empty());
  EXPECT_EQ(cmp.run_digest_fastpath, 0u);
  EXPECT_EQ(cmp.run_digest_engine, 0u);
}

#endif  // BYZ_OBS_ENABLED

}  // namespace
}  // namespace byz
