#include "dynamics/midrun.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "protocols/schedule.hpp"
#include "protocols/verification.hpp"
#include "sim/engine.hpp"

namespace byz::dynamics {

using graph::NodeId;

namespace {

/// Seed-stream tag for schedule derivation (distinct from epoch_driver's).
constexpr std::uint64_t kScheduleStream = 0x31D0;

std::uint32_t count_kind(const ChurnSchedule& s, MidRunEventKind kind) {
  std::uint32_t c = 0;
  for (const auto& e : s.events) {
    if (e.kind == kind) ++c;
  }
  return c;
}

}  // namespace

std::uint32_t ChurnSchedule::joins() const noexcept {
  return count_kind(*this, MidRunEventKind::kJoin);
}
std::uint32_t ChurnSchedule::sybil_joins() const noexcept {
  return count_kind(*this, MidRunEventKind::kSybilJoin);
}
std::uint32_t ChurnSchedule::leaves() const noexcept {
  return count_kind(*this, MidRunEventKind::kLeave);
}

ChurnSchedule derive_schedule(const ChurnEpoch& epoch,
                              std::uint64_t horizon_rounds,
                              std::uint64_t seed) {
  if (horizon_rounds == 0) horizon_rounds = 1;
  ChurnSchedule out;
  util::Xoshiro256 rng(util::mix_seed(seed, kScheduleStream));
  const auto emit = [&](std::uint32_t count, MidRunEventKind kind) {
    for (std::uint32_t i = 0; i < count; ++i) {
      out.events.push_back({rng.below(horizon_rounds), kind});
    }
  };
  // Generation order joins -> sybil joins -> leaves; the stable sort keeps
  // that order within a round, matching the trace's bookkeeping order.
  emit(epoch.joins, MidRunEventKind::kJoin);
  emit(epoch.sybil_joins, MidRunEventKind::kSybilJoin);
  emit(epoch.leaves, MidRunEventKind::kLeave);
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const MidRunEvent& a, const MidRunEvent& b) {
                     return a.round < b.round;
                   });
  return out;
}

std::uint64_t expected_horizon_rounds(NodeId n, std::uint32_t d,
                                      const proto::ScheduleConfig& schedule) {
  const double logs = std::log2(static_cast<double>(n)) /
                      std::log2(static_cast<double>(d) - 1.0);
  const auto decide_phase =
      static_cast<std::uint32_t>(std::ceil(logs)) + 2;
  return proto::rounds_through_phase(decide_phase, d, schedule);
}

LiveOverlayFeed::LiveOverlayFeed(MutableOverlay& overlay,
                                 std::vector<bool>& stable_byz,
                                 ChurnSchedule schedule,
                                 const MidRunConfig& config,
                                 proto::VerificationConfig verification,
                                 adv::ChurnAdversary adversary,
                                 util::Xoshiro256& rng,
                                 const MidRunComposed* composed,
                                 obs::RunDigester* digester)
    : overlay_(&overlay),
      stable_byz_(&stable_byz),
      schedule_(std::move(schedule)),
      config_(config),
      verification_(verification),
      adversary_(adversary),
      rng_(&rng),
      composed_(composed),
      digester_(digester) {
  if (stable_byz.size() != overlay.id_bound()) {
    throw std::invalid_argument("LiveOverlayFeed: stable mask size mismatch");
  }
  // Run-start snapshot: the injected incremental one (bitwise identical to
  // the full rebuild by IncrementalEngine's contract) or our own rebuild.
  if (composed_ != nullptr && composed_->snapshot != nullptr) {
    snap_ = composed_->snapshot;
    if (snap_->overlay.num_nodes() != overlay.num_alive() ||
        snap_->dense_to_stable.size() != overlay.num_alive()) {
      throw std::invalid_argument(
          "LiveOverlayFeed: composed snapshot does not match the overlay's "
          "alive membership");
    }
  } else {
    snapshot_.emplace(overlay.snapshot());
    snap_ = &*snapshot_;
  }
  const auto& snap = *snap_;
  n0_ = snap.overlay.num_nodes();
  const std::uint32_t total_joins =
      schedule_.joins() + schedule_.sybil_joins();
  nb_ = n0_ + static_cast<NodeId>(total_joins);
  next_join_run_id_ = n0_;
  k_ = snap.overlay.k();

  run_to_stable_.assign(nb_, graph::kInvalidNode);
  stable_to_run_.assign(overlay.id_bound(), graph::kInvalidNode);
  for (NodeId v = 0; v < n0_; ++v) {
    run_to_stable_[v] = snap.dense_to_stable[v];
    stable_to_run_[snap.dense_to_stable[v]] = v;
  }

  // The run-id Byzantine mask is fixed up front: snapshot members inherit
  // their stable flag; joiner slots are Byzantine iff their scheduled
  // event is a sybil join (slots are assigned in schedule order).
  run_byz_.assign(nb_, false);
  for (NodeId v = 0; v < n0_; ++v) {
    run_byz_[v] = stable_byz[snap.dense_to_stable[v]];
  }
  NodeId slot = n0_;
  for (const auto& e : schedule_.events) {
    if (e.kind == MidRunEventKind::kLeave) continue;
    run_byz_[slot++] = (e.kind == MidRunEventKind::kSybilJoin);
  }

  alive_.assign(nb_, 0);
  std::fill(alive_.begin(), alive_.begin() + n0_, 1);
  departed_.assign(nb_, 0);

  adj_.resize(nb_);
  const auto& hs = snap.overlay.h_simple();
  for (NodeId v = 0; v < n0_; ++v) {
    const auto nbrs = hs.neighbors(v);
    adj_[v].assign(nbrs.begin(), nbrs.end());
  }

  // Run-start verifier state: exactly what the primary Verifier
  // constructor would compute on the snapshot (E24's parity rests on it).
  // With a warm cache attached, rows still valid for clean-ball stable ids
  // are carried over instead of recomputed — value-identical by the same
  // k-ball-locality argument the warm tier rests on (warm_start.hpp), so
  // the run itself is unchanged bit for bit.
  rows_.assign(static_cast<std::size_t>(nb_) * k_, 0);
  chains_.assign(nb_, 0);
  const std::vector<bool> dense_byz(run_byz_.begin(),
                                    run_byz_.begin() + n0_);
  proto::WarmState* const warm =
      composed_ != nullptr ? composed_->warm : nullptr;
  const bool reuse_rows = warm != nullptr && composed_->warm_rows &&
                          warm->has_run && warm->k == k_;
  for (NodeId v = 0; v < n0_; ++v) {
    const NodeId s = run_to_stable_[v];
    if (reuse_rows && s < warm->row_valid.size() && warm->row_valid[s] != 0) {
      std::copy_n(warm->ball_counts.data() + static_cast<std::size_t>(s) * k_,
                  k_, rows_.data() + static_cast<std::size_t>(v) * k_);
      chains_[v] = warm->chain_len[s];
      ++stats_.warm_rows_reused;
      continue;
    }
    proto::verifier_ball_row(snap.overlay, v,
                             rows_.data() + static_cast<std::size_t>(v) * k_);
    chains_[v] = proto::verifier_chain_len(snap.overlay, dense_byz, v,
                                           verification_.chain_model);
    if (warm != nullptr) ++stats_.warm_rows_recomputed;
  }
  // Fold the run-start rows back into the cache NOW, before any mid-run
  // splice mutates the topology: live rebuilds under kReadmitNextPhase
  // recompute rows_ against the run-id view, which must never leak into
  // the stable-id cache. (The run's estimates fold after the flush, by the
  // caller — fold_run_estimates needs the completed run.)
  if (warm != nullptr) {
    proto::fold_verifier_rows(
        *warm, k_, std::span<const NodeId>(run_to_stable_.data(), n0_),
        std::span<const std::uint32_t>(rows_.data(),
                                       static_cast<std::size_t>(n0_) * k_),
        std::span<const std::uint8_t>(chains_.data(), n0_));
  }
  verifier_.emplace(snap.overlay, run_byz_, verification_, rows_, chains_);
  if (digester_ != nullptr && warm != nullptr) {
    digester_->note(obs::FlightEventKind::kWarmRowReuse,
                    stats_.warm_rows_reused, stats_.warm_rows_recomputed);
  }
}

void LiveOverlayFeed::begin_round(const proto::RoundClock& clock,
                                  std::span<const graph::NodeId> frontier) {
  // Frontier targeting: remember the wavefront this round's departures
  // may strike, in stable-id space (the pool outlives the splices the
  // events below apply). Only the targeting strategy pays the copy.
  if (config_.schedule_strategy ==
      adv::MidRunScheduleStrategy::kFrontierLeaves) {
    frontier_stable_.clear();
    for (const NodeId r : frontier) {
      const NodeId s = run_to_stable_[r];
      if (s != graph::kInvalidNode) frontier_stable_.push_back(s);
    }
  }
  while (next_event_ < schedule_.events.size() &&
         schedule_.events[next_event_].round <= clock.round) {
    apply_event(schedule_.events[next_event_]);
    ++next_event_;
    ++stats_.events_applied;
  }
}

void LiveOverlayFeed::apply_event(const MidRunEvent& event) {
  switch (event.kind) {
    case MidRunEventKind::kJoin:
      apply_join(/*byzantine=*/false);
      return;
    case MidRunEventKind::kSybilJoin:
      apply_join(/*byzantine=*/true);
      return;
    case MidRunEventKind::kLeave:
      if (!apply_leave()) {
        deferred_.push_back(event);
        ++stats_.events_deferred;
        if (digester_ != nullptr) {
          digester_->note(obs::FlightEventKind::kLeave, 0, /*deferred=*/1);
        }
      }
      return;
  }
}

void LiveOverlayFeed::apply_join(bool byzantine) {
  const NodeId run_id = next_join_run_id_++;
  const auto anchors =
      adv::plan_join_anchors(*overlay_, *stable_byz_, adversary_, byzantine,
                             *rng_);
  // The splice replaces each (anchor, successor) ring edge; those are the
  // nodes whose H-neighborhoods change.
  std::vector<NodeId> touched;
  for (std::uint32_t c = 0; c < overlay_->num_cycles(); ++c) {
    touched.push_back(anchors[c]);
    touched.push_back(overlay_->successor(c, anchors[c]));
  }
  const NodeId stable = overlay_->join_at(anchors);
  stable_byz_->push_back(byzantine);
  if (run_byz_[run_id] != byzantine) {
    throw std::logic_error("LiveOverlayFeed: join slot/schedule mismatch");
  }
  stable_to_run_.resize(overlay_->id_bound(), graph::kInvalidNode);
  stable_to_run_[stable] = run_id;
  run_to_stable_[run_id] = stable;
  ++stats_.joins;
  // Membership evidence for forensics: fold the splice into the open round
  // digest (both tiers apply events inside the same begin_round) and leave
  // a flight event. Folds after close_run (the post-run flush) land in an
  // accumulator that is never read — identically in both tiers.
  if (digester_ != nullptr) {
    digester_->fold_round(obs::digest_member_term(run_id, 1));
    digester_->note(obs::FlightEventKind::kJoin, stable, run_id);
  }

  if (config_.policy == proto::MembershipPolicy::kTreatAsSilent) {
    // Invisible to the in-flight run: stays !alive, frozen adjacency.
    return;
  }
  alive_[run_id] = 1;
  pending_admit_.push_back(run_id);
  rebuild_adjacency(run_id);
  for (const NodeId s : touched) {
    const NodeId r = stable_to_run_[s];
    if (r != graph::kInvalidNode) rebuild_adjacency(r);
  }
  rows_dirty_ = true;
}

bool LiveOverlayFeed::apply_leave() {
  // Membership floor: the trace clamp guarantees the epoch's END state,
  // but a mid-run reordering can hit the floor transiently; such leaves
  // are deferred to the flush (after the epoch's joins).
  if (overlay_->num_alive() <= 4) return false;
  const bool target_frontier =
      config_.schedule_strategy ==
      adv::MidRunScheduleStrategy::kFrontierLeaves;
  const NodeId victim =
      target_frontier
          ? adv::pick_frontier_departure(*overlay_, *stable_byz_,
                                         frontier_stable_, *rng_)
          : adv::pick_departure(*overlay_, *stable_byz_, adversary_, *rng_);
  if (target_frontier &&
      std::find(frontier_stable_.begin(), frontier_stable_.end(), victim) !=
          frontier_stable_.end()) {
    ++stats_.frontier_leaves;
  }
  std::vector<NodeId> touched;
  for (std::uint32_t c = 0; c < overlay_->num_cycles(); ++c) {
    touched.push_back(overlay_->predecessor(c, victim));
    touched.push_back(overlay_->successor(c, victim));
  }
  overlay_->leave(victim);
  const NodeId run_id = stable_to_run_[victim];
  if (run_id == graph::kInvalidNode) {
    throw std::logic_error("LiveOverlayFeed: departure of unmapped node");
  }
  alive_[run_id] = 0;
  departed_[run_id] = 1;
  ++stats_.leaves;
  if (digester_ != nullptr) {
    digester_->fold_round(obs::digest_member_term(run_id, 2));
    digester_->note(obs::FlightEventKind::kLeave, run_id, 0);
  }
  // A joiner that departs before its admission boundary was never a
  // participant: drop it from the pending list so the admitted stats
  // count only nodes that actually became generators.
  std::erase(pending_admit_, run_id);

  if (config_.policy == proto::MembershipPolicy::kTreatAsSilent) {
    // Frozen view: neighbors keep listing the victim; the alive() gate in
    // the kernel turns it into pure silence.
    return true;
  }
  adj_[run_id].clear();
  for (const NodeId s : touched) {
    const NodeId r = stable_to_run_[s];
    if (r != graph::kInvalidNode) rebuild_adjacency(r);
  }
  rows_dirty_ = true;
  return true;
}

void LiveOverlayFeed::rebuild_adjacency(NodeId run_id) {
  const NodeId stable = run_to_stable_[run_id];
  auto& row = adj_[run_id];
  row.clear();
  if (stable == graph::kInvalidNode || !overlay_->is_alive(stable)) return;
  for (std::uint32_t c = 0; c < overlay_->num_cycles(); ++c) {
    for (const NodeId s :
         {overlay_->successor(c, stable), overlay_->predecessor(c, stable)}) {
      const NodeId r = stable_to_run_[s];
      if (r != graph::kInvalidNode && r != run_id) row.push_back(r);
    }
  }
  std::sort(row.begin(), row.end());
  row.erase(std::unique(row.begin(), row.end()), row.end());
}

void LiveOverlayFeed::recompute_row(NodeId run_id) {
  // Bounded BFS on the live run-id adjacency: cumulative |B_H(v, r)| for
  // r = 1..k, and the usable Byzantine chain under the configured model —
  // the live-topology equivalents of verifier_ball_row/verifier_chain_len.
  if (bfs_mark_.size() < nb_) bfs_mark_.assign(nb_, 0);
  bfs_queue_.clear();
  bfs_queue_.push_back(run_id);
  bfs_mark_[run_id] = 1;
  std::uint32_t cum = 1;
  std::uint32_t byz_within_k1 = 0;
  std::size_t head = 0;
  for (std::uint32_t depth = 1; depth <= k_; ++depth) {
    const std::size_t level_end = bfs_queue_.size();
    while (head < level_end) {
      const NodeId u = bfs_queue_[head++];
      for (const NodeId w : adj_[u]) {
        if (bfs_mark_[w] != 0 || alive_[w] == 0) continue;
        bfs_mark_[w] = 1;
        bfs_queue_.push_back(w);
        ++cum;
        if (depth <= k_ - 1 && run_byz_[w]) ++byz_within_k1;
      }
    }
    rows_[static_cast<std::size_t>(run_id) * k_ + (depth - 1)] = cum;
  }
  for (const NodeId u : bfs_queue_) bfs_mark_[u] = 0;

  std::uint8_t chain = 0;
  if (run_byz_[run_id]) {
    if (verification_.chain_model == proto::ChainModel::kRewired) {
      chain = static_cast<std::uint8_t>(
          std::min<std::uint32_t>(1 + byz_within_k1, 255));
    } else {
      // Longest simple Byzantine-only path ending here, capped at k+1 —
      // iterative DFS over the live adjacency.
      struct Frame {
        NodeId v;
        std::size_t next = 0;
      };
      std::vector<Frame> stack{{run_id}};
      std::vector<std::uint8_t> on_path(nb_, 0);
      on_path[run_id] = 1;
      std::uint32_t best = 1;
      const std::uint32_t cap = k_ + 1;
      while (!stack.empty() && best < cap) {
        Frame& f = stack.back();
        if (f.next >= adj_[f.v].size()) {
          on_path[f.v] = 0;
          stack.pop_back();
          continue;
        }
        const NodeId w = adj_[f.v][f.next++];
        if (alive_[w] == 0 || !run_byz_[w] || on_path[w] != 0) continue;
        on_path[w] = 1;
        stack.push_back({w});
        best = std::max(best, static_cast<std::uint32_t>(stack.size()));
      }
      chain = static_cast<std::uint8_t>(std::min<std::uint32_t>(best, 255));
    }
  }
  chains_[run_id] = chain;
}

void LiveOverlayFeed::rebuild_verifier() {
  for (NodeId v = 0; v < nb_; ++v) {
    if (alive_[v] == 0) continue;
    recompute_row(v);
    ++stats_.rows_recomputed;
  }
  verifier_.emplace(snap_->overlay, run_byz_, verification_, rows_,
                    chains_);
  ++stats_.verifier_refreshes;
}

const proto::Verifier* LiveOverlayFeed::begin_phase(
    std::uint32_t /*phase*/, std::vector<NodeId>& admitted) {
  if (config_.policy == proto::MembershipPolicy::kReadmitNextPhase) {
    admitted.insert(admitted.end(), pending_admit_.begin(),
                    pending_admit_.end());
    stats_.admitted += pending_admit_.size();
    pending_admit_.clear();
    if (rows_dirty_) {
      rebuild_verifier();
      rows_dirty_ = false;
    }
  }
  return &*verifier_;
}

void LiveOverlayFeed::flush_remaining() {
  // The run is over: no wavefront exists for post-run departures to
  // target, so flushed leaves fall back to the ordinary victim pools.
  frontier_stable_.clear();
  while (next_event_ < schedule_.events.size()) {
    apply_event(schedule_.events[next_event_]);
    ++next_event_;
    ++stats_.events_flushed;
  }
  // Floor-deferred leaves: every join has been applied by now, so the
  // trace's end-of-epoch clamp guarantees these go through.
  const std::size_t deferred = deferred_.size();
  deferred_.clear();
  for (std::size_t i = 0; i < deferred; ++i) {
    if (!apply_leave()) {
      throw std::logic_error(
          "LiveOverlayFeed: deferred leave still blocked after flush "
          "(trace clamp violated)");
    }
  }
}

namespace {

MidRunOutcome run_midrun_tier(MutableOverlay& overlay,
                              std::vector<bool>& stable_byz,
                              adv::Strategy& strategy,
                              const proto::ProtocolConfig& cfg,
                              std::uint64_t color_seed,
                              const ChurnSchedule& schedule,
                              const MidRunConfig& config,
                              adv::ChurnAdversary adversary,
                              util::Xoshiro256& rng, bool use_engine,
                              const MidRunComposed* composed,
                              obs::RunDigester* digester) {
  LiveOverlayFeed feed(overlay, stable_byz, schedule, config,
                       cfg.verification, adversary, rng, composed, digester);
  const std::uint32_t start_phase =
      composed != nullptr ? composed->start_phase : 1;
  if (digester != nullptr && start_phase > 1) {
    digester->note(obs::FlightEventKind::kEpsEntry, start_phase, 0);
  }
  MidRunOutcome out;
  if (use_engine) {
    if (config.backend != nullptr) {
      throw std::invalid_argument(
          "run_counting_midrun_engine: the message-level engine replays the "
          "Algorithm-2 stack only; MidRunConfig::backend must be null");
    }
    sim::Engine engine(feed.snapshot_overlay(), feed.run_byz(), strategy, cfg,
                       color_seed, &feed, start_phase, digester);
    out.run = engine.run();
  } else {
    proto::RunControls controls;
    controls.midrun = &feed;
    controls.start_phase = start_phase;
    controls.digester = digester;
    controls.flood = config.flood;
    if (config.backend != nullptr) {
      out.run = config.backend->run(feed.snapshot_overlay(), feed.run_byz(),
                                    strategy, color_seed, controls);
    } else {
      out.run = proto::run_counting_with(feed.snapshot_overlay(),
                                         feed.run_byz(), strategy, cfg,
                                         color_seed, controls);
    }
  }
  feed.flush_remaining();
  // Reconcile statuses with the FLUSHED membership: events past the run's
  // termination still count for the epoch, so nodes that left during the
  // flush are kDeparted (their estimate is moot) and joiners spliced in by
  // the flush stay kUndecided members — exactly what the between-runs path
  // would report for a node that never saw this run.
  for (NodeId v = 0; v < feed.node_bound(); ++v) {
    if (!feed.departed(v)) continue;
    if (out.run.status[v] != proto::NodeStatus::kByzantine) {
      out.run.status[v] = proto::NodeStatus::kDeparted;
      out.run.estimate[v] = 0;
    }
  }
  out.run_to_stable = feed.run_to_stable();
  out.run_byz = feed.run_byz();
  out.stats = feed.stats();
  return out;
}

}  // namespace

MidRunOutcome run_counting_midrun(MutableOverlay& overlay,
                                  std::vector<bool>& stable_byz,
                                  adv::Strategy& strategy,
                                  const proto::ProtocolConfig& cfg,
                                  std::uint64_t color_seed,
                                  const ChurnSchedule& schedule,
                                  const MidRunConfig& config,
                                  adv::ChurnAdversary adversary,
                                  util::Xoshiro256& rng,
                                  const MidRunComposed* composed,
                                  obs::RunDigester* digester) {
  return run_midrun_tier(overlay, stable_byz, strategy, cfg, color_seed,
                         schedule, config, adversary, rng,
                         /*use_engine=*/false, composed, digester);
}

MidRunOutcome run_counting_midrun_engine(MutableOverlay& overlay,
                                         std::vector<bool>& stable_byz,
                                         adv::Strategy& strategy,
                                         const proto::ProtocolConfig& cfg,
                                         std::uint64_t color_seed,
                                         const ChurnSchedule& schedule,
                                         const MidRunConfig& config,
                                         adv::ChurnAdversary adversary,
                                         util::Xoshiro256& rng,
                                         const MidRunComposed* composed,
                                         obs::RunDigester* digester) {
  return run_midrun_tier(overlay, stable_byz, strategy, cfg, color_seed,
                         schedule, config, adversary, rng,
                         /*use_engine=*/true, composed, digester);
}

MidRunTierComparison compare_midrun_tiers(const MutableOverlay& overlay,
                                          const std::vector<bool>& stable_byz,
                                          adv::StrategyKind strategy,
                                          const proto::ProtocolConfig& cfg,
                                          std::uint64_t color_seed,
                                          const ChurnSchedule& schedule,
                                          const MidRunConfig& config,
                                          adv::ChurnAdversary adversary,
                                          const util::Xoshiro256& rng,
                                          const obs::AuditConfig* audit) {
  MidRunTierComparison cmp;
  obs::FlightRecorder fast_recorder;
  obs::FlightRecorder engine_recorder;
  obs::RunDigester fast_digester;
  obs::RunDigester engine_digester;
  if (audit != nullptr) {
    fast_digester.attach_recorder(&fast_recorder);
    engine_digester.attach_recorder(&engine_recorder);
    if (audit->perturb_tier == 0) {
      fast_digester.set_perturbation(audit->perturb_round,
                                     audit->perturb_mask);
    } else if (audit->perturb_tier == 1) {
      engine_digester.set_perturbation(audit->perturb_round,
                                       audit->perturb_mask);
    }
  }
  {
    MutableOverlay fast_overlay = overlay;
    fast_overlay.set_observer(nullptr);
    std::vector<bool> fast_byz = stable_byz;
    util::Xoshiro256 fast_rng = rng;
    auto fast_strategy = adv::make_strategy(strategy);
    cmp.fastpath = run_counting_midrun(
        fast_overlay, fast_byz, *fast_strategy, cfg, color_seed, schedule,
        config, adversary, fast_rng, nullptr,
        audit != nullptr ? &fast_digester : nullptr);
  }
  {
    MutableOverlay engine_overlay = overlay;
    engine_overlay.set_observer(nullptr);
    std::vector<bool> engine_byz = stable_byz;
    util::Xoshiro256 engine_rng = rng;
    auto engine_strategy = adv::make_strategy(strategy);
    cmp.engine = run_counting_midrun_engine(
        engine_overlay, engine_byz, *engine_strategy, cfg, color_seed,
        schedule, config, adversary, engine_rng, nullptr,
        audit != nullptr ? &engine_digester : nullptr);
  }
  cmp.identical = cmp.fastpath == cmp.engine;
  if (audit != nullptr) {
    const obs::DigestTrail& fast_trail = fast_digester.trail();
    const obs::DigestTrail& engine_trail = engine_digester.trail();
    const obs::DigestDivergence div =
        obs::first_divergence(fast_trail, engine_trail);
    cmp.run_digest_fastpath = fast_trail.run_digest;
    cmp.run_digest_engine = engine_trail.run_digest;
    cmp.digests_identical = !div.diverged();
    if (!cmp.identical || div.diverged()) {
      obs::ForensicsInfo info;
      info.scenario = audit->scenario;
      info.seed = audit->seed;
      info.flags = audit->flags;
      info.detail = cmp.identical
                        ? "digest trails diverged (outcomes identical)"
                        : "mid-run tier outcomes diverged";
      cmp.forensics = obs::forensics_json(info, fast_trail, engine_trail,
                                          &fast_recorder, &engine_recorder);
      if (!audit->out_dir.empty()) {
        const std::string path =
            audit->out_dir + "/forensics_" +
            (audit->scenario.empty() ? std::string("midrun")
                                     : audit->scenario) +
            "_" + std::to_string(audit->seed) + ".json";
        if (obs::write_forensics_file(path, cmp.forensics)) {
          cmp.forensics_path = path;
        }
      }
    }
  }
  return cmp;
}

}  // namespace byz::dynamics
