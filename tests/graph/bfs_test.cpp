#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

/// Path graph 0-1-2-...-(n-1).
Graph path_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges, true);
}

/// Cycle graph.
Graph cycle_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges, true);
}

TEST(Bfs, PathDistances) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, MaxDepthTruncates) {
  const Graph g = path_graph(10);
  const auto dist = bfs_distances(g, 0, 3);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, DisconnectedUnreachable) {
  const Graph g = Graph::from_edges(4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}}, true);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, BadSourceThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)bfs_distances(g, 7), std::out_of_range);
}

TEST(BfsBall, ContainsExactlyTheBall) {
  const Graph g = cycle_graph(10);
  BfsScratch scratch;
  std::vector<BallEntry> ball;
  bfs_ball(g, 0, 2, scratch, ball);
  // Ball of radius 2 on a 10-cycle: {0,1,9,2,8}.
  ASSERT_EQ(ball.size(), 5u);
  EXPECT_EQ(ball[0].node, 0u);
  EXPECT_EQ(ball[0].dist, 0u);
  std::uint32_t at_two = 0;
  for (const auto& e : ball) {
    if (e.dist == 2) ++at_two;
  }
  EXPECT_EQ(at_two, 2u);
}

TEST(BfsBall, ScratchReusableAcrossCalls) {
  const Graph g = cycle_graph(12);
  BfsScratch scratch;
  std::vector<BallEntry> ball;
  bfs_ball(g, 0, 1, scratch, ball);
  EXPECT_EQ(ball.size(), 3u);
  bfs_ball(g, 6, 1, scratch, ball);
  EXPECT_EQ(ball.size(), 3u);
  EXPECT_EQ(ball[0].node, 6u);
}

TEST(BfsBall, RadiusZeroIsSelf) {
  const Graph g = cycle_graph(5);
  BfsScratch scratch;
  std::vector<BallEntry> ball;
  bfs_ball(g, 2, 0, scratch, ball);
  ASSERT_EQ(ball.size(), 1u);
  EXPECT_EQ(ball[0].node, 2u);
}

TEST(BfsBall, StopsWhenBallSaturates) {
  const Graph g = cycle_graph(6);
  BfsScratch scratch;
  std::vector<BallEntry> ball;
  bfs_ball(g, 0, 100, scratch, ball);  // radius >> diameter
  EXPECT_EQ(ball.size(), 6u);
}

TEST(MultiSource, NearestSourceWins) {
  const Graph g = path_graph(10);
  const std::vector<NodeId> sources{0, 9};
  const auto dist = multi_source_distances(g, sources);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[9], 0u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 4u);
}

TEST(MultiSource, EmptySourcesAllUnreachable) {
  const Graph g = path_graph(4);
  const auto dist = multi_source_distances(g, {});
  for (const auto dv : dist) EXPECT_EQ(dv, kUnreachable);
}

TEST(MultiSource, DepthCap) {
  const Graph g = path_graph(10);
  const std::vector<NodeId> sources{0};
  const auto dist = multi_source_distances(g, sources, 2);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Eccentricity, PathEnds) {
  const Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(FarthestNode, PathGraph) {
  const Graph g = path_graph(7);
  const Farthest f = farthest_node(g, 0);
  EXPECT_EQ(f.node, 6u);
  EXPECT_EQ(f.dist, 6u);
}

TEST(FarthestNode, TieBreaksToSmallestId) {
  const Graph g = cycle_graph(6);
  const Farthest f = farthest_node(g, 0);
  EXPECT_EQ(f.dist, 3u);
  EXPECT_EQ(f.node, 3u);
}

TEST(Bfs, AgreesWithBallOnRandomRegular) {
  util::Xoshiro256 rng(21);
  const Graph h = simplify(build_hamiltonian_graph(200, 6, rng));
  const auto dist = bfs_distances(h, 17);
  BfsScratch scratch;
  std::vector<BallEntry> ball;
  bfs_ball(h, 17, 3, scratch, ball);
  std::uint32_t within3 = 0;
  for (const auto dv : dist) {
    if (dv <= 3) ++within3;
  }
  EXPECT_EQ(ball.size(), within3);
  for (const auto& e : ball) EXPECT_EQ(dist[e.node], e.dist);
}

}  // namespace
}  // namespace byz::graph
