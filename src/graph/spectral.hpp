// Spectral machinery for the expansion experiments (E2, E10).
//
// For a connected d-regular graph the adjacency spectrum is
// d = λ1 > λ2 >= ... >= λn >= -d, and edge expansion obeys the Cheeger-type
// bounds (d - λ2)/2 <= h(G) <= sqrt(2 d (d - λ2)). Friedman's theorem says
// random regular graphs achieve λ2 ≈ 2√(d-1) (near-Ramanujan), which is
// what Lemma 19 of the paper relies on. For non-regular graphs (the Core
// after crashes) we work with the normalized adjacency.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::graph {

struct SpectralResult {
  double mu2 = 0.0;       ///< 2nd eigenvalue of the normalized adjacency
  double lambda2 = 0.0;   ///< mu2 * d for regular graphs (else mu2 * avg deg)
  int iterations = 0;     ///< power-iteration steps used
  std::vector<double> vector2;  ///< the (approximate) 2nd eigenvector
};

/// Approximates the second eigenvalue of the normalized adjacency
/// N = D^{-1/2} A D^{-1/2} by shifted power iteration (on N + I, which is
/// PSD-shifted so the top deflated eigenvalue is 1 + mu2) with deflation
/// against the known top eigenvector D^{1/2}·1. Multigraph slots count with
/// multiplicity, matching the degree.
[[nodiscard]] SpectralResult second_eigenvalue(const Graph& g, int max_iters,
                                               double tolerance,
                                               std::uint64_t seed);

/// Cheeger-style bounds on the edge expansion h(G) = min_{|S|<=n/2} |∂S|/|S|
/// of a d-regular graph, derived from lambda2.
struct ExpansionBounds {
  double lower = 0.0;  ///< (d - lambda2) / 2
  double upper = 0.0;  ///< sqrt(2 d (d - lambda2))
};
[[nodiscard]] ExpansionBounds cheeger_bounds(double d, double lambda2);

/// Sweep cut over the given embedding vector: sorts nodes by component and
/// returns the best (smallest) |∂S|/|S| over all prefixes with |S| <= n/2.
/// This upper-bounds h(G) constructively.
[[nodiscard]] double sweep_cut_expansion(const Graph& g,
                                         const std::vector<double>& embedding);

/// Edge expansion of an explicit cut S (indicator mask), |∂S| / min(|S|,|S̄|).
[[nodiscard]] double cut_expansion(const Graph& g,
                                   const std::vector<bool>& in_set);

}  // namespace byz::graph
