// E17 — continuous estimation under steady churn: a Poisson join/leave
// stream reshapes the overlay every epoch; the epoch driver re-runs
// Algorithm 2 on each snapshot. Fresh estimates should stay in the
// Theorem-1 band at every epoch (the invariants hold on every snapshot by
// the cycle-splice construction), while STALE estimates — nodes that skip
// re-estimation — drift with n(t): the gap between the two columns is the
// operational argument for running the protocol continuously.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e17(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);

  util::Table table("E17: accuracy under steady churn, d=6 (" +
                    std::to_string(t) + " trials, 10 epochs)");
  table.columns({"n0", "churn/epoch", "mean n(t)", "fresh in-band",
                 "stale in-band", "mean est/log2n", "msgs/epoch"});
  std::vector<double> fresh_band;
  std::vector<double> stale_band;
  for (const auto n0 : sizes) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = n0;
    cfg.trace.epochs = 10;
    // ~1.5% of the network churns per epoch, balanced in expectation.
    cfg.trace.arrival_rate = n0 / 64.0;
    cfg.trace.departure_rate = n0 / 64.0;
    cfg.trace.model = dynamics::ChurnModel::kSteady;
    cfg.trace.min_n = n0 / 2;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.strategy = adv::StrategyKind::kFakeColor;

    const std::uint64_t base_seed = 0xE17 + n0;
    const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
      auto trial_cfg = cfg;
      trial_cfg.trace.seed =
          bench_core::TrialScheduler::trial_seed(base_seed, i);
      trial_cfg.seed = trial_cfg.trace.seed;
      return dynamics::run_churn(trial_cfg);
    });

    util::OnlineStats n_t, fresh, stale, ratio, msgs;
    for (const auto& run : runs) {
      for (const auto& ep : run.epochs) {
        n_t.add(static_cast<double>(ep.n_true));
        fresh.add(ep.fresh.frac_in_band);
        ratio.add(ep.fresh.mean_ratio);
        msgs.add(static_cast<double>(ep.messages));
        fresh_band.push_back(ep.fresh.frac_in_band);
        if (ep.stale_nodes > 0) {
          stale.add(ep.stale_frac_in_band);
          stale_band.push_back(ep.stale_frac_in_band);
        }
      }
    }
    table.row()
        .cell(std::uint64_t{n0})
        .cell(util::format_double(cfg.trace.arrival_rate, 0) + "+/-")
        .cell(n_t.mean(), 0)
        .cell(fresh.mean(), 4)
        .cell(stale.mean(), 4)
        .cell(ratio.mean(), 3)
        .cell(msgs.mean(), 0);
  }
  table.note("Steady Poisson churn (joins ~ leaves). Fresh = this epoch's "
             "run vs n(t); stale = previous epochs' estimates vs n(t). The "
             "cycle-splice joins keep every snapshot an exact H(n,d) union "
             "of Hamiltonian cycles, so Theorem 1 keeps holding epoch after "
             "epoch.");
  ctx.emit(table);
  ctx.record_accuracy("fresh_in_band", fresh_band);
  ctx.record_accuracy("stale_in_band", stale_band);
}

}  // namespace

BYZBENCH_REGISTER(e17) {
  ScenarioSpec spec;
  spec.id = "e17";
  spec.title = "Continuous estimation accuracy under steady churn";
  spec.claim = "Dynamic overlays: fresh estimates stay in the Theorem-1 band "
               "on every epoch snapshot; stale estimates drift with n(t)";
  spec.grid = {{"model", {"steady"}}, {"epochs", {"10"}}, pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"messages", "accuracy.fresh_in_band",
                  "accuracy.stale_in_band"};
  spec.run = run_e17;
  return spec;
}
