#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace byz::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, InterpolatesEvenSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, BadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersAllBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillHighR2) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, RejectsTinyInput) {
  EXPECT_THROW(linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ChiSquared, ZeroForPerfectMatch) {
  const std::vector<double> o{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_squared(o, o), 0.0);
}

TEST(ChiSquared, KnownValue) {
  const std::vector<double> o{12.0, 8.0};
  const std::vector<double> e{10.0, 10.0};
  EXPECT_DOUBLE_EQ(chi_squared(o, e), 0.4 + 0.4);
}

TEST(BootstrapCI, CoversTrueMean) {
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back((i % 10) - 4.5);
  const Interval ci = bootstrap_mean_ci(sample, 0.95, 500, 42);
  EXPECT_LE(ci.lo, 0.0);
  EXPECT_GE(ci.hi, 0.0);
  EXPECT_LT(ci.hi - ci.lo, 1.5);
}

TEST(BootstrapCI, Deterministic) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  const Interval a = bootstrap_mean_ci(sample, 0.9, 200, 7);
  const Interval b = bootstrap_mean_ci(sample, 0.9, 200, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace byz::util
