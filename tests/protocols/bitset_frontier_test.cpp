// The word-packed frontier representation (util::Bitset) must agree with
// the plain vector representation bit for bit: same membership, same
// popcount, same ascending iteration order. The parallel flood kernel
// leans on all three (membership for the touched set, popcount for the
// frontier histogram, ascending iteration for the canonical wavefront),
// so the boundary cases — sizes straddling a 64-bit word — get explicit
// coverage here.
#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace byz::util {
namespace {

std::vector<std::size_t> collect(const Bitset& bits) {
  std::vector<std::size_t> out;
  bits.for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

TEST(BitsetFrontier, WordBoundarySizes) {
  for (const std::size_t n : {std::size_t{63}, std::size_t{64},
                              std::size_t{65}}) {
    Bitset bits;
    bits.assign(n);
    EXPECT_EQ(bits.size(), n);
    EXPECT_EQ(bits.num_words(), (n + 63) / 64) << "n=" << n;
    EXPECT_FALSE(bits.any());

    // The last valid bit is settable and does not disturb its neighbors.
    bits.set(n - 1);
    EXPECT_TRUE(bits.test(n - 1));
    EXPECT_EQ(bits.count(), 1u);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_FALSE(bits.test(i)) << "n=" << n << " i=" << i;
    }
    const auto set = collect(bits);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], n - 1);

    bits.reset(n - 1);
    EXPECT_FALSE(bits.any());
  }
}

TEST(BitsetFrontier, EmptyFrontier) {
  Bitset bits;
  bits.assign(130);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
  EXPECT_TRUE(collect(bits).empty());

  // clear() on an already-empty set is a no-op.
  bits.clear();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(BitsetFrontier, FullFrontier) {
  for (const std::size_t n : {std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{200}}) {
    Bitset bits;
    bits.assign(n);
    for (std::size_t i = 0; i < n; ++i) bits.set(i);
    EXPECT_EQ(bits.count(), n);
    EXPECT_TRUE(bits.any());

    // Iteration visits every member exactly once, ascending.
    const auto set = collect(bits);
    ASSERT_EQ(set.size(), n) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(set[i], i);

    bits.clear();
    EXPECT_EQ(bits.count(), 0u);
    EXPECT_FALSE(bits.any());
  }
}

TEST(BitsetFrontier, PopcountAndIterationMatchVectorRepresentation) {
  // Random membership at an awkward size: the bitset must agree with a
  // std::vector<bool> reference on membership, popcount, and the sorted
  // member list — the exact properties the parallel kernel substitutes
  // for the serial kernel's frontier/touched vectors.
  Xoshiro256 rng(0xB17);
  for (const std::size_t n : {std::size_t{65}, std::size_t{257},
                              std::size_t{1000}}) {
    Bitset bits;
    bits.assign(n);
    std::vector<bool> ref(n, false);
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if ((rng() & 3) == 0) {
        bits.set(i);
        ref[i] = true;
        members.push_back(i);
      }
    }
    std::size_t ref_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits.test(i), ref[i]) << "n=" << n << " i=" << i;
      if (ref[i]) ++ref_count;
    }
    EXPECT_EQ(bits.count(), ref_count);
    EXPECT_EQ(collect(bits), members);
  }
}

TEST(BitsetFrontier, AtomicSetMatchesPlainSet) {
  // set_atomic is the parallel kernel's touched-set insert; single-threaded
  // it must be indistinguishable from set().
  Bitset plain;
  Bitset atomic;
  plain.assign(129);
  atomic.assign(129);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{100}, std::size_t{128}}) {
    plain.set(i);
    atomic.set_atomic(i);
  }
  EXPECT_EQ(plain.count(), atomic.count());
  EXPECT_EQ(collect(plain), collect(atomic));

  // Repeated atomic sets are idempotent.
  atomic.set_atomic(64);
  EXPECT_EQ(atomic.count(), 5u);
}

TEST(BitsetFrontier, ReassignResizesAndClears) {
  Bitset bits;
  bits.assign(64);
  bits.set(63);
  bits.assign(65);  // grow across a word boundary
  EXPECT_EQ(bits.size(), 65u);
  EXPECT_EQ(bits.num_words(), 2u);
  EXPECT_EQ(bits.count(), 0u);  // assign() clears
  bits.set(64);
  bits.assign(63);  // shrink back below the boundary
  EXPECT_EQ(bits.num_words(), 1u);
  EXPECT_EQ(bits.count(), 0u);
}

}  // namespace
}  // namespace byz::util
