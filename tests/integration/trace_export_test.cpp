// End-to-end observability contract: tracing a real protocol run yields a
// parseable Chrome trace containing phase, subphase, round, and trial
// spans — and the run's outputs are bitwise identical with tracing on or
// off (the pure read-side invariant of src/obs/obs.hpp, the same contract
// CI pins at the BENCH-manifest level).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "adversary/strategies.hpp"
#include "bench_core/json.hpp"
#include "bench_core/scheduler.hpp"
#include "graph/categories.hpp"
#include "graph/small_world.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/fastpath.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace byz {
namespace {

#if BYZ_OBS_ENABLED
proto::RunResult traced_run(bool trace) {
  obs::set_enabled(trace);
  graph::OverlayParams params;
  params.n = 256;
  params.d = 6;
  params.seed = 7;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 placement(params.seed ^ 0xB12);
  const auto byz = graph::random_byzantine_mask(
      params.n, sim::derive_byz_count(params.n, 0.5), placement);
  const auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  proto::ProtocolConfig cfg;
  auto result = proto::run_counting(overlay, byz, *strategy, cfg, 99);
  obs::set_enabled(false);
  return result;
}

TEST(TraceExportIntegration, ProtocolRunEmitsPhaseSubphaseAndRoundSpans) {
  obs::reset_trace();
  obs::reset_metrics();
  (void)traced_run(true);

  const auto doc =
      bench_core::Json::parse(obs::chrome_trace_json(obs::trace_snapshot()));
  ASSERT_TRUE(doc.has_value());
  std::set<std::string> names;
  for (const auto& e : doc->find("traceEvents")->elements()) {
    names.insert(e.find("name")->as_string());
  }
  EXPECT_TRUE(names.contains("count.run"));
  EXPECT_TRUE(names.contains("count.phase"));
  EXPECT_TRUE(names.contains("count.subphase"));
  EXPECT_TRUE(names.contains("flood.subphase"));
  EXPECT_TRUE(names.contains("flood.round"));

  // The metrics registry saw the same run.
  const auto snap = obs::metrics_snapshot();
  bool rounds_counted = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "flood.rounds") rounds_counted = value > 0;
  }
  EXPECT_TRUE(rounds_counted);
  obs::reset_trace();
  obs::reset_metrics();
}

TEST(TraceExportIntegration, ScheduledTrialsEmitTrialSpans) {
  obs::reset_trace();
  obs::set_enabled(true);
  const bench_core::TrialScheduler scheduler(2);
  std::atomic<int> ran{0};
  scheduler.for_each(4, [&](std::uint64_t) { ++ran; });
  obs::set_enabled(false);
  EXPECT_EQ(ran.load(), 4);

  const auto snap = obs::trace_snapshot();
  int trial_spans = 0;
  for (const auto& e : snap.events) {
    if (e.name == "bench.trial") ++trial_spans;
  }
  EXPECT_EQ(trial_spans, 4);
  obs::reset_trace();
}

TEST(TraceExportIntegration, TracingDoesNotPerturbTheRun) {
  obs::reset_trace();
  obs::reset_metrics();
  const auto plain = traced_run(false);
  const auto traced = traced_run(true);
  EXPECT_EQ(plain.status, traced.status);
  EXPECT_EQ(plain.estimate, traced.estimate);
  EXPECT_EQ(plain.phases_executed, traced.phases_executed);
  EXPECT_EQ(plain.flood_rounds, traced.flood_rounds);
  EXPECT_EQ(plain.instr, traced.instr);
  obs::reset_trace();
  obs::reset_metrics();
}

#endif  // BYZ_OBS_ENABLED

}  // namespace
}  // namespace byz
