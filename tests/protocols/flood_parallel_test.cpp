// The parallel flood kernel's contract: bitwise-identical to the serial
// reference oracle at EVERY thread count — same per-node state, same
// instrumentation counters, same hierarchical digest trail. The serial
// kernel is the specification; these tests are the property suite that
// keeps the parallel kernel honest across randomized overlays, Byzantine
// sets, injections, crashes, and word-boundary sizes. Full-run parity
// (run_counting_with under RunControls::flood) rides on RunResult's
// defaulted operator==, which compares every instrumentation counter.
#include "protocols/flooding.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "adversary/strategies.hpp"
#include "graph/categories.hpp"
#include "obs/digest.hpp"
#include "protocols/fastpath.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8};

Overlay sample(NodeId n, std::uint32_t d, std::uint64_t seed) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

/// One subphase execution under a given kernel, with a digester attached
/// so the trail comparison exercises the parallel round-digest fold.
struct SubphaseRun {
  FloodWorkspace ws;
  sim::Instrumentation instr;
  obs::RunDigester digester;

  SubphaseRun(const Overlay& overlay, const std::vector<bool>& byz,
              const std::vector<bool>& crashed, const Verifier& verifier,
              std::span<const Color> gen, std::span<const Injection> inj,
              FloodParams params) {
    params.digest = &digester;
    digester.begin_phase(1);
    digester.begin_subphase(1);
    run_flood_subphase(overlay, byz, crashed, verifier, params, gen, inj, ws,
                       instr);
    digester.close_subphase();
    digester.close_phase();
    digester.close_run();
  }
};

void expect_bitwise_equal(const SubphaseRun& serial, const SubphaseRun& par,
                          std::uint32_t threads) {
  EXPECT_EQ(serial.ws.known, par.ws.known) << "threads=" << threads;
  EXPECT_EQ(serial.ws.fresh, par.ws.fresh) << "threads=" << threads;
  EXPECT_EQ(serial.ws.best_before, par.ws.best_before)
      << "threads=" << threads;
  EXPECT_EQ(serial.ws.last_step, par.ws.last_step) << "threads=" << threads;
  EXPECT_EQ(serial.instr, par.instr) << "threads=" << threads;
  const auto div =
      obs::first_divergence(serial.digester.trail(), par.digester.trail());
  EXPECT_FALSE(div.diverged())
      << "threads=" << threads << " level=" << obs::to_string(div.level)
      << " phase=" << div.phase << " subphase=" << div.subphase
      << " round=" << div.round;
  EXPECT_EQ(serial.digester.trail().run_digest,
            par.digester.trail().run_digest)
      << "threads=" << threads;
}

TEST(FloodParallel, RandomizedSubphasesBitwiseEqualAcrossThreadCounts) {
  // Randomized overlays / Byzantine sets / colors / injections: the serial
  // oracle and the parallel kernel must agree bit for bit at 1/2/4/8
  // threads, including the commutatively folded round digests.
  struct Shape {
    NodeId n;
    std::uint32_t d;
    std::uint64_t seed;
    std::uint32_t steps;
  };
  const Shape shapes[] = {
      {256, 6, 11, 3}, {301, 8, 22, 4}, {512, 6, 33, 3}};
  for (const auto& shape : shapes) {
    const Overlay overlay = sample(shape.n, shape.d, shape.seed);
    util::Xoshiro256 rng(shape.seed ^ 0xF100D);
    const auto byz =
        graph::random_byzantine_mask(shape.n, shape.n / 32, rng);
    std::vector<bool> crashed(shape.n, false);
    const Verifier verifier(overlay, byz, {});

    std::vector<Color> gen(shape.n);
    for (NodeId v = 0; v < shape.n; ++v) {
      gen[v] = byz[v] ? 0 : util::geometric_color(rng);
    }
    // Injections from Byzantine nodes across the step range: step-1
    // free floods, mid-subphase chain checks, and late fabrications that
    // must be caught — the accept() paths whose counters the parallel
    // kernel folds serially.
    std::vector<Injection> inj;
    for (NodeId v = 0; v < shape.n && inj.size() < 8; ++v) {
      if (!byz[v]) continue;
      const auto step =
          static_cast<std::uint32_t>(1 + (rng() % shape.steps));
      inj.push_back({v, step, static_cast<Color>(50 + (rng() % 100))});
    }

    FloodParams params;
    params.steps = shape.steps;
    params.exec = {FloodMode::kSerial, 0};
    const SubphaseRun serial(overlay, byz, crashed, verifier, gen, inj,
                             params);
    for (const std::uint32_t t : kThreadCounts) {
      params.exec = {FloodMode::kParallel, t};
      const SubphaseRun par(overlay, byz, crashed, verifier, gen, inj,
                            params);
      expect_bitwise_equal(serial, par, t);
    }
  }
}

TEST(FloodParallel, WordBoundarySizesMatchSerial) {
  // n = 63/64/65: the frontier straddles (or exactly fills) one 64-bit
  // word, exercising the packed representation's tail handling.
  for (const NodeId n : {NodeId{63}, NodeId{64}, NodeId{65}}) {
    const Overlay overlay = sample(n, 4, 900 + n);
    util::Xoshiro256 rng(n);
    const std::vector<bool> byz(n, false);
    std::vector<bool> crashed(n, false);
    crashed[n - 1] = true;  // the last id: the tail bit must stay clear
    const Verifier verifier(overlay, byz, {});
    std::vector<Color> gen(n);
    for (auto& c : gen) c = util::geometric_color(rng);

    FloodParams params;
    params.steps = 3;
    params.exec = {FloodMode::kSerial, 0};
    const SubphaseRun serial(overlay, byz, crashed, verifier, gen, {},
                             params);
    for (const std::uint32_t t : kThreadCounts) {
      params.exec = {FloodMode::kParallel, t};
      const SubphaseRun par(overlay, byz, crashed, verifier, gen, {}, params);
      expect_bitwise_equal(serial, par, t);
    }
  }
}

TEST(FloodParallel, CrashesAndSuppressedByzantinesMatchSerial) {
  // The non-default kernel branches: crashed nodes silent, Byzantine
  // forwarding disabled, and a focused region restricting the flood.
  const NodeId n = 256;
  const Overlay overlay = sample(n, 6, 44);
  util::Xoshiro256 rng(44);
  const auto byz = graph::random_byzantine_mask(n, n / 16, rng);
  std::vector<bool> crashed(n, false);
  for (NodeId v = 0; v < n; v += 7) crashed[v] = true;
  const Verifier verifier(overlay, byz, {});
  std::vector<Color> gen(n);
  for (NodeId v = 0; v < n; ++v) {
    gen[v] = byz[v] ? 0 : util::geometric_color(rng);
  }
  std::vector<std::uint8_t> region(n, 0);
  for (NodeId v = 0; v < n / 2; ++v) region[v] = 1;

  FloodParams params;
  params.steps = 4;
  params.byz_forward = false;
  params.region = region;
  params.exec = {FloodMode::kSerial, 0};
  const SubphaseRun serial(overlay, byz, crashed, verifier, gen, {}, params);
  for (const std::uint32_t t : kThreadCounts) {
    params.exec = {FloodMode::kParallel, t};
    const SubphaseRun par(overlay, byz, crashed, verifier, gen, {}, params);
    expect_bitwise_equal(serial, par, t);
  }
}

TEST(FloodParallel, VerifierTableIdenticalAtEveryThreadCount) {
  // The batched row precompute is a pure per-row function; the table must
  // not depend on how it was partitioned.
  const NodeId n = 256;
  const Overlay overlay = sample(n, 6, 55);
  util::Xoshiro256 rng(55);
  const auto byz = graph::random_byzantine_mask(n, n / 16, rng);
  const Verifier reference(overlay, byz, {}, 1);
  for (const std::uint32_t t : kThreadCounts) {
    const Verifier batched(overlay, byz, {}, t);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(reference.ball_row(v).size(), batched.ball_row(v).size());
      for (std::size_t r = 0; r < reference.ball_row(v).size(); ++r) {
        ASSERT_EQ(reference.ball_row(v)[r], batched.ball_row(v)[r])
            << "threads=" << t << " v=" << v << " r=" << r;
      }
      ASSERT_EQ(reference.usable_chain(v), batched.usable_chain(v))
          << "threads=" << t << " v=" << v;
    }
  }
}

TEST(FloodParallel, FullRunsBitwiseEqualAcrossThreadCounts) {
  // Whole-protocol parity through RunControls::flood: statuses, estimates,
  // phase/subphase/round counts, every instrumentation counter, and the
  // full digest trail. This is the relation E30's `identical` guard and
  // the TSan CI job re-assert at scale.
  const NodeId n = 512;
  const Overlay overlay = sample(n, 6, 77);
  util::Xoshiro256 rng(77);
  const auto byz = graph::random_byzantine_mask(n, n / 64, rng);
  const ProtocolConfig cfg;
  const std::uint64_t color_seed = 404;

  auto serial_strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  obs::RunDigester serial_digest;
  RunControls serial_controls;
  serial_controls.flood = {FloodMode::kSerial, 0};
  serial_controls.digester = &serial_digest;
  const RunResult serial = run_counting_with(overlay, byz, *serial_strategy,
                                             cfg, color_seed,
                                             serial_controls);

  for (const std::uint32_t t : kThreadCounts) {
    auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
    obs::RunDigester digest;
    RunControls controls;
    controls.flood = {FloodMode::kParallel, t};
    controls.digester = &digest;
    const RunResult par =
        run_counting_with(overlay, byz, *strategy, cfg, color_seed, controls);
    EXPECT_EQ(serial, par) << "threads=" << t;
    const auto div =
        obs::first_divergence(serial_digest.trail(), digest.trail());
    EXPECT_FALSE(div.diverged())
        << "threads=" << t << " level=" << obs::to_string(div.level)
        << " phase=" << div.phase << " subphase=" << div.subphase
        << " round=" << div.round;
  }
}

TEST(FloodParallel, ProcessDefaultRoundTrips) {
  // kDefault resolves against the process default; setting and resetting
  // the default must round-trip without disturbing explicit modes.
  const FloodExec ambient = resolve_flood_exec({});
  set_default_flood_exec({FloodMode::kParallel, 3});
  EXPECT_EQ(resolve_flood_exec({}),
            (FloodExec{FloodMode::kParallel, 3}));
  // Explicit modes are never rewritten by the default.
  EXPECT_EQ(resolve_flood_exec({FloodMode::kSerial, 5}),
            (FloodExec{FloodMode::kSerial, 5}));
  set_default_flood_exec({FloodMode::kSerial, 0});
  EXPECT_EQ(resolve_flood_exec({}).mode, FloodMode::kSerial);
  // A kDefault store clears the override back to the environment default.
  set_default_flood_exec({});
  EXPECT_EQ(resolve_flood_exec({}), ambient);
}

TEST(FloodParallel, ProcessDefaultSelectsTheKernel) {
  // A run whose controls leave FloodExec at kDefault must follow the
  // process default — this is the seam byzbench --flood-threads and the
  // TSan job's BYZ_FLOOD_THREADS use.
  const NodeId n = 256;
  const Overlay overlay = sample(n, 6, 88);
  util::Xoshiro256 rng(88);
  const auto byz = graph::random_byzantine_mask(n, n / 64, rng);
  const ProtocolConfig cfg;

  auto s1 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  RunControls serial_controls;
  serial_controls.flood = {FloodMode::kSerial, 0};
  const RunResult serial =
      run_counting_with(overlay, byz, *s1, cfg, 9, serial_controls);

  set_default_flood_exec({FloodMode::kParallel, 4});
  auto s2 = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const RunResult defaulted = run_counting(overlay, byz, *s2, cfg, 9);
  set_default_flood_exec({});

  EXPECT_EQ(serial, defaulted);
}

}  // namespace
}  // namespace byz::proto
