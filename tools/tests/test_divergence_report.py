"""Unit tests for tools/divergence_report.py.

The renderer's contract: a well-formed byzobs/forensics/v1 document
renders (exit 0, divergent or not — the report IS the product), the
digest walk marks exactly the first mismatch, and schema drift — wrong
schema tag, missing tiers, unreadable JSON — exits nonzero so CI never
quietly renders garbage next to a real oracle failure.

Stdlib only; run with `python3 -m unittest discover tools/tests`.
"""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

import divergence_report


def tier(name, phases, **extra):
    doc = {"name": name, "run_digest": extra.pop("run_digest", "deadbeef"),
           "phases_total": len(phases), "subphases_total": 0,
           "rounds_total": 0,
           "phases": [{"phase": p, "digest": d} for p, d in phases]}
    doc.update(extra)
    return doc


def valid_doc():
    return {
        "schema": "byzobs/forensics/v1",
        "scenario": "midrun-tier-cmp",
        "seed": 3141,
        "flags": "--jobs=4",
        "detail": "tier medians differ: 10.5 vs 11.0",
        "first_divergence": {"level": "phase", "phase": 2},
        "tiers": [
            tier("incremental", [(1, "aaaa"), (2, "bbbb"), (3, "cccc")],
                 flight_tail=[{"phase": 2, "subphase": 1, "round": 7,
                               "kind": "color_flip", "a": 3, "b": 5}],
                 flight_total=120),
            tier("cold", [(1, "aaaa"), (2, "eeee"), (3, "ffff")]),
        ],
        "repro": "byzbench --filter e26 --seed 3141",
    }


def write_doc(doc):
    fh = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False,
                                     encoding="utf-8")
    json.dump(doc, fh)
    fh.close()
    return fh.name


class LoadTest(unittest.TestCase):
    def tearDown(self):
        if getattr(self, "path", None) and os.path.exists(self.path):
            os.unlink(self.path)

    def load(self, doc):
        self.path = write_doc(doc)
        return divergence_report.load(self.path)

    def test_valid_document_loads(self):
        doc = self.load(valid_doc())
        self.assertEqual(doc["schema"], "byzobs/forensics/v1")

    def test_wrong_schema_tag_raises(self):
        doc = valid_doc()
        doc["schema"] = "byzobs/forensics/v2"
        with self.assertRaisesRegex(divergence_report.ReportError,
                                    "not a byzobs/forensics/v1"):
            self.load(doc)

    def test_missing_schema_raises(self):
        doc = valid_doc()
        del doc["schema"]
        with self.assertRaises(divergence_report.ReportError):
            self.load(doc)

    def test_wrong_tier_count_raises(self):
        doc = valid_doc()
        doc["tiers"] = doc["tiers"][:1]
        with self.assertRaisesRegex(divergence_report.ReportError,
                                    "expected exactly 2 tiers"):
            self.load(doc)

    def test_unreadable_file_raises(self):
        with self.assertRaises(divergence_report.ReportError):
            divergence_report.load("/nonexistent/forensics.json")

    def test_malformed_json_raises(self):
        self.path = write_doc({})
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("{ truncated")
        with self.assertRaises(divergence_report.ReportError):
            divergence_report.load(self.path)


class RenderTest(unittest.TestCase):
    def tearDown(self):
        if getattr(self, "path", None) and os.path.exists(self.path):
            os.unlink(self.path)

    def run_main(self, doc, *flags):
        self.path = write_doc(doc)
        out, err = io.StringIO(), io.StringIO()
        old = sys.stdout, sys.stderr
        sys.stdout, sys.stderr = out, err
        try:
            code = divergence_report.main(
                ["divergence_report.py", self.path, *flags])
        finally:
            sys.stdout, sys.stderr = old
        return code, out.getvalue(), err.getvalue()

    def test_divergent_report_renders_and_exits_zero(self):
        code, out, err = self.run_main(valid_doc())
        self.assertEqual(code, 0)
        self.assertEqual(err, "")
        self.assertIn("first divergence at level=phase, phase=2", out)
        self.assertIn("byzbench --filter e26 --seed 3141", out)

    def test_digest_walk_marks_first_mismatch_only(self):
        _, out, _ = self.run_main(valid_doc())
        self.assertEqual(out.count("<-- FIRST DIVERGENCE"), 1)
        self.assertIn("(also differs)", out)
        first = out.index("phase 2")
        also = out.index("phase 3")
        self.assertLess(first, also)
        self.assertIn("!=", out.splitlines()[
            next(i for i, l in enumerate(out.splitlines())
                 if "FIRST DIVERGENCE" in l)])

    def test_missing_entry_rendered_as_missing(self):
        doc = valid_doc()
        doc["tiers"][1]["phases"] = doc["tiers"][1]["phases"][:2]
        _, out, _ = self.run_main(doc)
        self.assertIn("(missing)", out)

    def test_flight_tail_rendered_with_limit(self):
        doc = valid_doc()
        doc["tiers"][0]["flight_tail"] = [
            {"phase": 1, "subphase": 0, "round": r, "kind": "tok",
             "a": r, "b": r} for r in range(20)]
        doc["tiers"][0]["flight_total"] = 500
        _, out, _ = self.run_main(doc, "--tail", "5")
        self.assertIn("last 5 of 500 events", out)
        self.assertIn("r19", out)
        self.assertNotIn("r14", out)

    def test_agreeing_trails_report_outcome_level_divergence(self):
        doc = valid_doc()
        doc["first_divergence"] = {"level": "none"}
        doc["tiers"][1]["phases"] = doc["tiers"][0]["phases"]
        _, out, _ = self.run_main(doc)
        self.assertIn("trails agree at every level", out)
        self.assertNotIn("FIRST DIVERGENCE", out)

    def test_json_mode_reemits_documents(self):
        code, out, _ = self.run_main(valid_doc(), "--json")
        self.assertEqual(code, 0)
        docs = json.loads(out)
        self.assertEqual(len(docs), 1)
        self.assertEqual(docs[0]["seed"], 3141)

    def test_malformed_input_exits_nonzero(self):
        code, _, err = self.run_main({"schema": "wrong"})
        self.assertEqual(code, 1)
        self.assertIn("ERROR", err)

    def test_one_bad_report_fails_the_batch(self):
        good = write_doc(valid_doc())
        bad = write_doc({"schema": "nope"})
        try:
            err = io.StringIO()
            old = sys.stdout, sys.stderr
            sys.stdout, sys.stderr = io.StringIO(), err
            try:
                code = divergence_report.main(
                    ["divergence_report.py", good, bad])
            finally:
                sys.stdout, sys.stderr = old
            self.assertEqual(code, 1)
            self.assertIn("ERROR", err.getvalue())
        finally:
            os.unlink(good)
            os.unlink(bad)


if __name__ == "__main__":
    unittest.main()
