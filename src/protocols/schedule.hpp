// Phase/subphase schedule (§3.1 + Algorithm pseudocode lines 4-9).
//
// The paper states the subphase count α_i in two non-identical forms (the
// §3.1/Appendix-B formula that the proof of Lemma 26 actually uses, and the
// guarded form in the pseudocode). Both are implemented; kAppendix is the
// default because Lemma 26's derivation
//   (1 / (d (d-1)^{i-2}))^{α_i} <= ε / 2^{i+1}
// requires it. See DESIGN.md §3.5.
#pragma once

#include <cstdint>

namespace byz::proto {

enum class SchedulePolicy : std::uint8_t {
  kAppendix,    ///< α_i = ceil((log(1/ε)+i+1-log d)/((i-2) log(d-1))), i >= 3
  kPseudocode,  ///< Algorithm 1 lines 4-8 as printed
};

struct ScheduleConfig {
  double epsilon = 0.1;          ///< the paper's error parameter ε ∈ (0,1)
  SchedulePolicy policy = SchedulePolicy::kAppendix;
  bool subphases_times_i = true; ///< pseudocode loops j=1..i·α_i; prose says α_i
  std::uint32_t max_alpha = 64;  ///< guard against degenerate parameters
};

/// α_i for phase i (>= 1); both policies fall back to the pseudocode's
/// else-branch 1 + (i+1)/log(1/ε) when the primary formula is undefined
/// (i ∈ {1,2} divides by zero in the appendix form).
[[nodiscard]] std::uint32_t alpha_i(std::uint32_t i, std::uint32_t d,
                                    const ScheduleConfig& cfg);

/// Number of subphases executed in phase i (α_i or i·α_i).
[[nodiscard]] std::uint32_t subphases_in_phase(std::uint32_t i, std::uint32_t d,
                                               const ScheduleConfig& cfg);

/// Flooding rounds in phase i = subphases_in_phase(i) * i.
[[nodiscard]] std::uint64_t rounds_in_phase(std::uint32_t i, std::uint32_t d,
                                            const ScheduleConfig& cfg);

/// Cumulative flooding rounds over phases 1..i.
[[nodiscard]] std::uint64_t rounds_through_phase(std::uint32_t i, std::uint32_t d,
                                                 const ScheduleConfig& cfg);

/// Global (cross-phase) index of subphase j (1-based) of phase i (1-based);
/// indexes the coin table in protocols/color.hpp.
[[nodiscard]] std::uint32_t global_subphase_index(std::uint32_t i, std::uint32_t j,
                                                  std::uint32_t d,
                                                  const ScheduleConfig& cfg);

/// The analysis' approximation-factor endpoints (§3.4.2): a = δ/(10k log(d-1))
/// and b = 4/log(1+γ/d); the theorem guarantees estimates in
/// [a log n, b log n]. Exposed for E11.
[[nodiscard]] double factor_a(double delta, std::uint32_t k, std::uint32_t d);
[[nodiscard]] double factor_b(double gamma, std::uint32_t d);

}  // namespace byz::proto
