// E25 — ε-warm phase skipping: speedup vs realized divergence. The exact
// warm tier (E21) proved whole-phase skipping can never be decision-exact;
// the ε-warm tier skips anyway and pays for it out of the paper's own ε·n
// outlier budget. Entry phases come from the budget-bounded quantile of
// the seeded estimate distribution (warm_start.hpp), the cold shadow runs
// every epoch (verify_warm), and run_churn THROWS if any epoch's realized
// divergence exceeds floor(eps_budget · honest) — so, like E21, every row
// of this table is an asserted invariant, not an observation. What the
// table adds is the exchange rate: subphases and messages saved per unit
// of budget actually spent.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e25(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 8;
  const double budgets[] = {0.05, 0.10, 0.20};

  util::Table table("E25: eps-warm phase skip, savings vs divergence, d=6 (" +
                    std::to_string(t) + " trials, " +
                    std::to_string(kEpochs) +
                    " epochs, budget asserted per epoch)");
  table.columns({"n0", "eps", "eps epochs", "mean entry", "subph saved",
                 "msg saved", "divergent/budget", "budget spent",
                 "fresh in-band"});
  std::vector<double> spent_fracs;
  std::vector<double> fresh_band;
  for (const auto n0 : sizes) {
    for (const double budget : budgets) {
      dynamics::ChurnRunConfig cfg;
      cfg.trace.n0 = n0;
      cfg.trace.epochs = kEpochs;
      cfg.trace.arrival_rate = n0 / 256.0;
      cfg.trace.departure_rate = n0 / 256.0;
      cfg.trace.min_n = n0 / 2;
      cfg.d = 6;
      cfg.delta = 0.7;
      cfg.strategy = adv::StrategyKind::kFakeColor;
      cfg.incremental.incremental = true;
      cfg.incremental.warm_start = true;
      cfg.incremental.verify_warm = true;  // cold shadow + budget assertion
      cfg.incremental.eps_warm = true;
      cfg.incremental.eps_budget = budget;
      cfg.incremental.eps_margin = 0;  // the quantile rule carries the risk
      cfg.incremental.warm.max_drift = 0.5;

      const std::uint64_t base_seed =
          0xE25 + n0 + static_cast<std::uint64_t>(budget * 100);
      const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
        auto trial_cfg = cfg;
        trial_cfg.trace.seed =
            bench_core::TrialScheduler::trial_seed(base_seed, i);
        trial_cfg.seed = trial_cfg.trace.seed;
        return dynamics::run_churn(trial_cfg);  // throws past the budget
      });

      std::uint64_t eps_epochs = 0, total_epochs = 0;
      std::uint64_t sp_run = 0, sp_sched = 0, sp_skipped = 0;
      std::uint64_t msgs = 0, msgs_cold = 0;
      std::uint64_t divergent = 0, budget_nodes = 0;
      util::OnlineStats entry, fresh;
      for (const auto& run : runs) {
        for (const auto& ep : run.epochs) {
          ++total_epochs;
          msgs += ep.messages;
          msgs_cold += ep.messages_cold;
          sp_run += ep.subphases_executed;
          sp_sched += ep.subphases_scheduled + ep.eps_skipped_subphases;
          fresh.add(ep.fresh.frac_in_band);
          fresh_band.push_back(ep.fresh.frac_in_band);
          if (!ep.eps_used) continue;
          ++eps_epochs;
          entry.add(static_cast<double>(ep.eps_entry_phase));
          sp_skipped += ep.eps_skipped_subphases;
          divergent += ep.eps_divergent;
          budget_nodes += ep.eps_budget_nodes;
        }
      }
      const double sp_saved =
          sp_sched ? 1.0 - static_cast<double>(sp_run) /
                               static_cast<double>(sp_sched)
                   : 0.0;
      const double msg_saved =
          msgs_cold ? 1.0 - static_cast<double>(msgs) /
                                static_cast<double>(msgs_cold)
                    : 0.0;
      const double spent =
          budget_nodes ? static_cast<double>(divergent) /
                             static_cast<double>(budget_nodes)
                       : 0.0;
      spent_fracs.push_back(spent);
      table.row()
          .cell(std::uint64_t{n0})
          .cell(budget, 2)
          .cell(std::to_string(eps_epochs) + "/" +
                std::to_string(total_epochs))
          .cell(entry.count() ? util::format_double(entry.mean(), 2)
                              : std::string("-"))
          .cell(util::format_double(100.0 * sp_saved, 1) + "%")
          .cell(util::format_double(100.0 * msg_saved, 1) + "%")
          .cell(std::to_string(divergent) + "/" + std::to_string(budget_nodes))
          .cell(util::format_double(100.0 * spent, 1) + "%")
          .cell(fresh.mean(), 4);

      Json j = Json::object();
      j["eps_epochs"] = eps_epochs;
      j["epochs"] = total_epochs;
      j["subphase_savings"] = sp_saved;
      j["msg_savings"] = msg_saved;
      j["divergent"] = divergent;
      j["budget_nodes"] = budget_nodes;
      j["budget_spent_frac"] = spent;
      ctx.metric("eps_n" + std::to_string(n0) + "_b" +
                     std::to_string(static_cast<int>(budget * 100)),
                 std::move(j));
    }
  }
  table.note("verify_warm shadow-runs the cold protocol every epoch; "
             "run_churn throws if realized divergence ever exceeds "
             "floor(eps * honest), so this table existing proves the "
             "accounting invariant. The quantile entry rule pre-spends at "
             "most half the budget; 'budget spent' shows how much the "
             "realized divergence actually consumed. Skipped early phases "
             "are where a cold run floods every node, hence the subphase "
             "and message savings beyond the exact lazy tier's (E21).");
  ctx.emit(table);
  ctx.record_accuracy("budget_spent_frac", spent_fracs);
  ctx.record_accuracy("fresh_in_band", fresh_band);
}

}  // namespace

BYZBENCH_REGISTER(e25) {
  ScenarioSpec spec;
  spec.id = "e25";
  spec.title = "eps-warm: phase-skip savings vs the ε·n divergence budget";
  spec.claim = "Skipping warm runs' early phases buys subphase/message "
               "savings beyond the exact tier while realized divergent "
               "decisions stay within the paper's ε·n outlier budget "
               "(asserted every epoch)";
  spec.grid = {{"eps", {"0.05", "0.10", "0.20"}},
               {"epochs", {"8"}},
               pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"eps_n<k>_b<eps>.budget_spent_frac",
                  "eps_n<k>_b<eps>.subphase_savings",
                  "accuracy.fresh_in_band"};
  spec.run = run_e25;
  return spec;
}
