#include "protocols/flooding.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace byz::proto {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

Overlay sample(NodeId n = 256, std::uint32_t d = 6, std::uint64_t seed = 111) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

struct Fixture {
  Overlay overlay = sample();
  std::vector<bool> byz = std::vector<bool>(overlay.num_nodes(), false);
  std::vector<bool> crashed = std::vector<bool>(overlay.num_nodes(), false);
  Verifier verifier{overlay, byz, {}};
  FloodWorkspace ws;
  sim::Instrumentation instr;
};

TEST(Flooding, KnownMaxEqualsBallMax) {
  // After i steps of max-flooding, each node's running max must equal the
  // max generated color over its i-ball (the analysis' c^max_{B(v,i)}).
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n);
  util::Xoshiro256 rng(1);
  for (auto& c : gen) c = util::geometric_color(rng);

  FloodParams params;
  params.steps = 3;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = graph::bfs_distances(f.overlay.h_simple(), v, 3);
    Color want = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (dist[w] <= 3) want = std::max(want, gen[w]);
    }
    EXPECT_EQ(f.ws.known[v], want) << "v=" << v;
  }
}

TEST(Flooding, LastStepIsBoundaryContribution) {
  // Give exactly one node a standout color; every node at distance exactly
  // `steps` sees it in the last step; closer nodes see it earlier.
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n, 1);
  gen[0] = 100;
  FloodParams params;
  params.steps = 2;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  const auto dist = graph::bfs_distances(f.overlay.h_simple(), 0);
  for (NodeId v = 1; v < n; ++v) {
    if (dist[v] == 2) {
      EXPECT_EQ(f.ws.last_step[v], 100u);
      EXPECT_LT(f.ws.best_before[v], 100u);
    } else if (dist[v] == 1) {
      EXPECT_EQ(f.ws.best_before[v], 100u);
    }
  }
}

TEST(Flooding, CrashedNodesSilent) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n, 1);
  gen[0] = 50;
  // Crash the entire 1-ball around node 0 except node 0 itself: the color
  // cannot escape.
  for (const NodeId w : f.overlay.h_simple().neighbors(0)) f.crashed[w] = true;
  FloodParams params;
  params.steps = 3;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  const auto dist = graph::bfs_distances(f.overlay.h_simple(), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v != 0 && !f.crashed[v] && dist[v] >= 2) {
      EXPECT_LT(f.ws.known[v], 50u) << "v=" << v;
    }
  }
}

TEST(Flooding, SuppressingByzantineBlocksForwarding) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  // Make node 0's entire H-neighborhood Byzantine and non-forwarding.
  for (const NodeId w : f.overlay.h_simple().neighbors(0)) f.byz[w] = true;
  f.verifier = Verifier(f.overlay, f.byz, {});
  std::vector<Color> gen(n, 1);
  gen[0] = 77;
  FloodParams params;
  params.steps = 4;
  params.byz_forward = false;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  const auto dist = graph::bfs_distances(f.overlay.h_simple(), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!f.byz[v] && v != 0 && dist[v] >= 2) {
      EXPECT_LT(f.ws.known[v], 77u);
    }
  }
}

TEST(Flooding, InjectionAtStepOneFloodsFreely) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  f.byz[5] = true;
  f.verifier = Verifier(f.overlay, f.byz, {});
  std::vector<Color> gen(n, 1);
  const std::vector<Injection> inj{{5, 1, 500}};
  FloodParams params;
  params.steps = 4;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, inj,
                     f.ws, f.instr);
  const auto dist = graph::bfs_distances(f.overlay.h_simple(), 5);
  for (NodeId v = 0; v < n; ++v) {
    if (!f.byz[v] && dist[v] >= 1 && dist[v] <= 4) {
      EXPECT_EQ(f.ws.known[v], 500u) << "v=" << v << " dist=" << dist[v];
    }
  }
  EXPECT_GT(f.instr.injections_accepted, 0u);
}

TEST(Flooding, LateInjectionWithoutChainGoesNowhere) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  f.byz[5] = true;
  f.verifier = Verifier(f.overlay, f.byz, {});
  std::vector<Color> gen(n, 1);
  const std::vector<Injection> inj{{5, 4, 500}};  // step 4 > k-1
  FloodParams params;
  params.steps = 4;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, inj,
                     f.ws, f.instr);
  for (NodeId v = 0; v < n; ++v) {
    if (!f.byz[v]) EXPECT_LT(f.ws.known[v], 500u);
  }
  EXPECT_GT(f.instr.injections_caught, 0u);
  EXPECT_EQ(f.instr.injections_accepted, 0u);
}

TEST(Flooding, TokenAccountingMatchesDegrees) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n, 0);
  gen[0] = 9;  // single generator
  FloodParams params;
  params.steps = 1;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  EXPECT_EQ(f.instr.token_messages, f.overlay.h_simple().degree(0));
  EXPECT_EQ(f.instr.flood_rounds, 1u);
}

TEST(Flooding, ForwardOnceNoRebroadcastOfOldValues) {
  // With a single generator, total token messages over i steps are bounded
  // by sum over the frontier (each node broadcasts at most once).
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n, 0);
  gen[0] = 9;
  FloodParams params;
  params.steps = 5;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  // Each node broadcasts at most once => messages <= sum of degrees = 2m.
  EXPECT_LE(f.instr.token_messages, f.overlay.h_simple().num_slots());
}

TEST(Flooding, WorkspaceReusableAcrossSubphases) {
  Fixture f;
  const NodeId n = f.overlay.num_nodes();
  std::vector<Color> gen(n, 2);
  FloodParams params;
  params.steps = 2;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  const auto known_first = f.ws.known;
  run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier, params, gen, {},
                     f.ws, f.instr);
  EXPECT_EQ(f.ws.known, known_first);  // identical inputs, identical outputs
}

TEST(Flooding, SizeMismatchThrows) {
  Fixture f;
  std::vector<Color> gen(3, 1);  // wrong size
  FloodParams params;
  EXPECT_THROW(run_flood_subphase(f.overlay, f.byz, f.crashed, f.verifier,
                                  params, gen, {}, f.ws, f.instr),
               std::invalid_argument);
}

}  // namespace
}  // namespace byz::proto
