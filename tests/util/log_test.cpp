#include "util/log.hpp"

#include <gtest/gtest.h>

namespace byz::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kWarn));
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kTrace));
}

TEST(Log, MacroCompilesAndFiltersCheaply) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // The streamed expression must not be evaluated when filtered.
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  BYZ_DEBUG << "value: " << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kDebug);
  BYZ_DEBUG << "value: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitBelowThresholdIsDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Nothing to assert on stderr contents portably; exercise the paths.
  log_line(LogLevel::kInfo, "dropped");
  log_line(LogLevel::kError, "kept");
  SUCCEED();
}

}  // namespace
}  // namespace byz::util
