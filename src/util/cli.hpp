// Minimal command-line parser for the bench/example binaries:
// `--name=value` or `--name value`, typed getters with defaults, automatic
// --help generation. No external dependencies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace byz::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares an option (for --help) and registers its default.
  void add_flag(std::string name, std::string help);
  void add_option(std::string name, std::string help, std::string default_value);

  /// Parses argv. Returns false (after printing help) when --help is given.
  /// Throws std::invalid_argument on unknown options or missing values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(std::string_view name) const;
  [[nodiscard]] std::string str(std::string_view name) const;
  [[nodiscard]] std::int64_t integer(std::string_view name) const;
  [[nodiscard]] double real(std::string_view name) const;
  /// Parses comma-separated integers, e.g. --sizes=1024,2048,4096.
  [[nodiscard]] std::vector<std::int64_t> int_list(std::string_view name) const;

  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };
  [[nodiscard]] const Option* find(std::string_view name) const;
  Option* find(std::string_view name);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace byz::util
