#include "bench_core/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace byz::bench_core {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  if (spec.id.empty()) throw std::invalid_argument("scenario id is empty");
  if (!spec.run) {
    throw std::invalid_argument("scenario '" + spec.id + "' has no run function");
  }
  if (find(spec.id) != nullptr) {
    throw std::invalid_argument("duplicate scenario id '" + spec.id + "'");
  }
  scenarios_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(std::string_view id) const {
  for (const auto& s : scenarios_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> Registry::all() const {
  std::vector<const ScenarioSpec*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) { return a->id < b->id; });
  return out;
}

std::vector<const ScenarioSpec*> Registry::match(std::string_view filter) const {
  if (filter.empty()) return all();

  // Terms separated by ',' or '|'; '*' is tolerated as a glob-style
  // wildcard and stripped (terms already match as substrings), so shell
  // habits like --filter 'e17*|e18*' do the expected thing.
  std::vector<std::string> terms;
  std::size_t start = 0;
  while (start <= filter.size()) {
    const std::size_t sep = filter.find_first_of(",|", start);
    const std::string_view term = filter.substr(
        start, sep == std::string_view::npos ? std::string_view::npos
                                             : sep - start);
    std::string cleaned = lower(term);
    std::erase(cleaned, '*');
    if (!cleaned.empty()) terms.push_back(std::move(cleaned));
    if (sep == std::string_view::npos) break;
    start = sep + 1;
  }
  if (terms.empty()) return all();

  std::vector<const ScenarioSpec*> out;
  for (const auto* s : all()) {
    const std::string id = lower(s->id);
    const std::string title = lower(s->title);
    const bool hit = std::any_of(
        terms.begin(), terms.end(), [&](const std::string& t) {
          return id.find(t) != std::string::npos ||
                 title.find(t) != std::string::npos;
        });
    if (hit) out.push_back(s);
  }
  return out;
}

ScenarioRegistration::ScenarioRegistration(ScenarioSpec spec) {
  Registry::instance().add(std::move(spec));
}

}  // namespace byz::bench_core
