#include "graph/tree_like.hpp"

#include <omp.h>

#include <cmath>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace byz::graph {

std::uint64_t tree_ball_size(std::uint32_t d, std::uint32_t r) {
  if (d < 3) throw std::invalid_argument("tree_ball_size: need d >= 3");
  // 1 + d + d(d-1) + ... + d(d-1)^(r-1)
  std::uint64_t size = 1;
  std::uint64_t level = d;
  for (std::uint32_t i = 0; i < r; ++i) {
    size += level;
    level *= (d - 1);
  }
  return size;
}

double paper_ltl_radius(std::uint64_t n, std::uint32_t d) {
  return std::log2(static_cast<double>(n)) / (10.0 * std::log2(d));
}

namespace {

/// A node is LTL at radius r iff its BFS ball over the multigraph has full
/// tree size AND no parallel edges occur inside the ball. Parallel edges
/// also shrink the dedup'd ball, so checking the dedup'd ball size against
/// the tree size is sufficient — but we traverse the multigraph directly
/// and count distinct visits, which is the same thing.
bool node_is_tree_like(const Graph& h_multi, NodeId w, std::uint32_t radius,
                       std::uint64_t want, BfsScratch& scratch,
                       std::vector<BallEntry>& ball) {
  bfs_ball(h_multi, w, radius, scratch, ball);
  if (ball.size() != want) return false;
  // Ball size matches the tree; any extra edge inside the ball would have
  // caused a repeat visit and a smaller ball, EXCEPT edges between two
  // last-level nodes or parallel edges re-hitting a visited node — those
  // also produce repeats during expansion, which bfs_ball skips without
  // shrinking the ball. Verify explicitly: total multigraph edge endpoints
  // inside the ball must equal the tree's (nodes - 1) * 2 plus the edges
  // leaving the last level.
  std::uint64_t internal_endpoints = 0;
  scratch.new_epoch();
  for (const auto& e : ball) scratch.mark(e.node);
  for (const auto& e : ball) {
    if (e.dist == radius) continue;  // only interior expansions counted
    for (const NodeId nb : h_multi.neighbors(e.node)) {
      if (scratch.visited(nb)) ++internal_endpoints;
    }
  }
  // In a perfect tree every interior node has all d slots pointing at ball
  // members (parent + children), except the root contributes d and each
  // interior level likewise; the expected count is:
  //   sum over interior nodes of (#neighbors inside ball)
  // For the tree: root d; each interior non-root node 1 (parent) + (d-1)
  // children = d. So expected = (#interior nodes) * d.
  std::uint64_t interior = 0;
  for (const auto& e : ball) {
    if (e.dist < radius) ++interior;
  }
  return internal_endpoints == interior * static_cast<std::uint64_t>(
                                              h_multi.degree(w));
}

}  // namespace

TreeLikeResult classify_tree_like(const Graph& h_multi, std::uint32_t d,
                                  std::uint32_t radius) {
  const NodeId n = h_multi.num_nodes();
  TreeLikeResult result;
  result.radius = radius;
  result.is_tree_like.assign(n, false);
  const std::uint64_t want = tree_ball_size(d, radius);
  std::uint64_t count = 0;
#pragma omp parallel reduction(+ : count)
  {
    BfsScratch scratch;
    std::vector<BallEntry> ball;
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      const bool ltl = node_is_tree_like(h_multi, static_cast<NodeId>(v),
                                         radius, want, scratch, ball);
      result.is_tree_like[static_cast<std::size_t>(v)] = ltl;
      if (ltl) ++count;
    }
  }
  result.count = count;
  return result;
}

}  // namespace byz::graph
