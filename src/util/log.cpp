#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace byz::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;
// Sink hook (guarded by g_mutex).
LogSink g_sink = nullptr;
void* g_sink_user = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink, void* user) noexcept {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = sink;
  g_sink_user = user;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink != nullptr) {
    g_sink(level, message, g_sink_user);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace byz::util
