// E29 — audit-overhead + parity guard for the divergence-forensics layer.
// An E24-style mid-run workload runs through compare_midrun_tiers twice
// per trial: once plain, once with an obs::AuditConfig attached (both
// tiers digesting every round, flight recorders armed). The guard asserts
// the audit is pure read-side — the audited outcomes are bitwise identical
// to the plain ones, the two tiers' digest trails match entry for entry,
// and repeating the audited run reproduces the identical run digest — and
// that the wall-clock overhead of auditing stays within budget.
//
// Like E20 this scenario measures wall-time, so trials run SERIALLY and
// the manifest is excluded from the CI --jobs determinism cmp; the
// overhead ratio feeds tools/perf_trajectory.py instead.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

/// Wall-clock budget: an audited oracle comparison may cost at most this
/// multiple of the plain comparison. Digesting is one XOR per message plus
/// one mix per round/phase close, so 3x is generous headroom for small n
/// where the fixed cost dominates.
constexpr double kOverheadBudget = 3.0;

struct Cell {
  double plain_ms = 0.0;
  double audited_ms = 0.0;
  std::uint64_t compared = 0;
  std::uint64_t identical = 0;  ///< outcomes match plain AND trails match
  bool digests_deterministic = true;
};

Cell run_cell(graph::NodeId n0, adv::StrategyKind strategy, std::uint32_t t,
              std::uint64_t base_seed) {
  Cell cell;
  for (std::uint32_t i = 0; i < t; ++i) {
    const auto seed = bench_core::TrialScheduler::trial_seed(base_seed, i);
    dynamics::MutableOverlay overlay(n0, 6, 0, seed);
    util::Xoshiro256 place_rng(util::mix_seed(seed, 0x0B12));
    const std::vector<bool> byz = graph::random_byzantine_mask(
        n0, sim::derive_byz_count(n0, 0.7), place_rng);

    proto::ProtocolConfig cfg;
    dynamics::ChurnEpoch epoch;
    epoch.joins = static_cast<std::uint32_t>(n0 / 32);
    epoch.sybil_joins = static_cast<std::uint32_t>(n0 / 64);
    epoch.leaves = static_cast<std::uint32_t>(n0 / 32);
    const auto horizon = dynamics::expected_horizon_rounds(n0, 6, cfg.schedule);
    const auto schedule = dynamics::derive_schedule(epoch, horizon, seed);

    dynamics::MidRunConfig mid_cfg;
    mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
    util::Xoshiro256 churn_rng(util::mix_seed(seed, 0xC002));

    util::Timer t_plain;
    const auto plain = dynamics::compare_midrun_tiers(
        overlay, byz, strategy, cfg, seed, schedule, mid_cfg,
        adv::ChurnAdversary::kNone, churn_rng);
    cell.plain_ms += t_plain.milliseconds();

    obs::AuditConfig audit;
    audit.scenario = "e29";
    audit.seed = seed;
    audit.flags = "--audit";
    util::Timer t_audit;
    const auto audited = dynamics::compare_midrun_tiers(
        overlay, byz, strategy, cfg, seed, schedule, mid_cfg,
        adv::ChurnAdversary::kNone, churn_rng, &audit);
    cell.audited_ms += t_audit.milliseconds();

    const auto again = dynamics::compare_midrun_tiers(
        overlay, byz, strategy, cfg, seed, schedule, mid_cfg,
        adv::ChurnAdversary::kNone, churn_rng, &audit);
    cell.digests_deterministic =
        cell.digests_deterministic &&
        again.run_digest_fastpath == audited.run_digest_fastpath &&
        again.run_digest_engine == audited.run_digest_engine;

    ++cell.compared;
    const bool ok = audited.identical && audited.digests_identical &&
                    audited.fastpath == plain.fastpath &&
                    audited.engine == plain.engine;
    if (ok) ++cell.identical;
  }
  return cell;
}

void run_e29(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(9, ctx.max_exp(10));
  const auto t = ctx.trials(3);
  const adv::StrategyKind strategies[] = {adv::StrategyKind::kHonest,
                                          adv::StrategyKind::kFakeColor};

  util::Table table("E29: divergence-audit overhead and parity (" +
                    std::to_string(t) + " serial trials per cell, d=6)");
  table.columns({"n0", "strategy", "plain ms", "audited ms", "overhead",
                 "parity"});
  double total_plain = 0.0, total_audited = 0.0;
  std::uint64_t compared = 0, identical = 0;
  bool deterministic = true;
  for (const auto n0 : sizes) {
    for (const auto strategy : strategies) {
      const auto cell = run_cell(n0, strategy, t, 0xE29 + n0);
      total_plain += cell.plain_ms;
      total_audited += cell.audited_ms;
      compared += cell.compared;
      identical += cell.identical;
      deterministic = deterministic && cell.digests_deterministic;
      const double overhead =
          cell.plain_ms > 0.0 ? cell.audited_ms / cell.plain_ms : 0.0;
      table.row()
          .cell(std::uint64_t{n0})
          .cell(adv::to_string(strategy))
          .cell(cell.plain_ms, 2)
          .cell(cell.audited_ms, 2)
          .cell(util::format_double(overhead, 2) + "x")
          .cell(cell.identical == cell.compared ? "yes" : "NO");
    }
  }
  const double overhead_ratio =
      total_plain > 0.0 ? total_audited / total_plain : 0.0;
  table.note("Each trial runs the E26 oracle comparison plain and audited "
             "(both tiers digesting, flight recorders armed) and checks the "
             "audited outcomes bitwise against the plain ones, the two "
             "tiers' digest trails entry for entry, and repeat-run digest "
             "determinism. Audit overhead " +
             util::format_double(overhead_ratio, 2) + "x (budget " +
             util::format_double(kOverheadBudget, 1) +
             "x); CI tracks it via tools/perf_trajectory.py and separately "
             "diffs BENCH manifests of audited vs plain byzbench runs.");
  ctx.emit(table);

  Json guard = Json::object();
  guard["identical"] = (identical == compared);
  guard["compared"] = compared;
  guard["deterministic"] = deterministic;
  guard["overhead_ratio"] = overhead_ratio;
  guard["within_budget"] = (overhead_ratio <= kOverheadBudget);
  ctx.metric("guard", std::move(guard));
}

}  // namespace

BYZBENCH_REGISTER(e29) {
  ScenarioSpec spec;
  spec.id = "e29";
  spec.title = "Divergence-audit overhead and digest parity";
  spec.claim = "Auditing the tier oracle — hierarchical digests on every "
               "round plus flight recording — changes no outcome bit, "
               "matches trails across tiers, and costs <= 3x wall-clock on "
               "the comparison it instruments";
  spec.grid = {{"strategy", {"honest", "fake-color"}},
               {"audit", {"off", "on"}},
               pow2_axis(9, 10)};
  spec.base_trials = 3;
  spec.metrics = {"guard.identical", "guard.overhead_ratio",
                  "guard.within_budget"};
  spec.run = run_e29;
  return spec;
}
