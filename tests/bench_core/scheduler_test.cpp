#include "bench_core/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.hpp"
#include "sim/runner.hpp"

namespace byz::bench_core {
namespace {

TEST(TrialScheduler, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 7u}) {
    const TrialScheduler sched(jobs);
    std::vector<std::atomic<int>> hits(100);
    sched.for_each(hits.size(), [&](std::uint64_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TrialScheduler, ZeroJobsMeansHardware) {
  const TrialScheduler sched(0);
  EXPECT_GE(sched.jobs(), 1u);
}

TEST(TrialScheduler, EmptyCountIsNoop) {
  const TrialScheduler sched(4);
  bool ran = false;
  sched.for_each(0, [&](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TrialScheduler, MapOrdersResultsByIndex) {
  const TrialScheduler sched(4);
  const auto out = sched.map(64, [](std::uint64_t i) { return i * i; });
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialScheduler, PropagatesExceptions) {
  const TrialScheduler sched(3);
  EXPECT_THROW(
      sched.for_each(32,
                     [](std::uint64_t i) {
                       if (i == 11) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

TEST(TrialScheduler, TrialSeedMatchesSimRunner) {
  // The scheduler's seed split must stay in lockstep with sim::run_trials
  // so sweeps migrated onto it reproduce the OpenMP path bit-for-bit.
  EXPECT_EQ(TrialScheduler::trial_seed(123, 0), util::mix_seed(123, 1));
  EXPECT_EQ(TrialScheduler::trial_seed(123, 7), util::mix_seed(123, 8));
}

TEST(TrialScheduler, DeterministicAcrossJobCounts) {
  // Same seeds => bitwise identical per-trial results at 1 and N workers.
  sim::TrialConfig cfg;
  cfg.overlay.n = 512;
  cfg.overlay.d = 6;
  cfg.delta = 0.7;
  cfg.strategy = adv::StrategyKind::kFakeColor;
  cfg.seed = 42;
  const std::uint32_t trials = 8;

  const auto sweep1 = analysis::sweep_trials(cfg, trials, TrialScheduler(1));
  const auto sweep8 = analysis::sweep_trials(cfg, trials, TrialScheduler(8));

  ASSERT_EQ(sweep1.results.size(), sweep8.results.size());
  for (std::size_t t = 0; t < trials; ++t) {
    const auto& a = sweep1.results[t];
    const auto& b = sweep8.results[t];
    EXPECT_EQ(a.run.estimate, b.run.estimate) << "trial " << t;
    EXPECT_EQ(a.run.flood_rounds, b.run.flood_rounds) << "trial " << t;
    EXPECT_EQ(a.run.instr.total_messages(), b.run.instr.total_messages())
        << "trial " << t;
    EXPECT_EQ(a.accuracy.frac_in_band, b.accuracy.frac_in_band) << "trial " << t;
  }
  EXPECT_EQ(sweep1.aggregate.frac_in_band.mean(),
            sweep8.aggregate.frac_in_band.mean());
}

TEST(TrialScheduler, SweepMatchesOpenMpRunner) {
  // sweep_trials (scheduler) and sim::run_trials (OpenMP) share the seed
  // derivation, so their per-trial outputs must agree exactly.
  sim::TrialConfig cfg;
  cfg.overlay.n = 256;
  cfg.overlay.d = 6;
  cfg.delta = 0.7;
  cfg.seed = 7;
  const std::uint32_t trials = 4;

  const auto sweep = analysis::sweep_trials(cfg, trials, TrialScheduler(2));
  const auto legacy = sim::run_trials(cfg, trials);
  ASSERT_EQ(sweep.results.size(), legacy.size());
  for (std::size_t t = 0; t < trials; ++t) {
    EXPECT_EQ(sweep.results[t].run.estimate, legacy[t].run.estimate);
    EXPECT_EQ(sweep.results[t].byz_count, legacy[t].byz_count);
  }
}

}  // namespace
}  // namespace byz::bench_core
