#include "analysis/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace byz::analysis {

std::vector<std::uint32_t> pow2_sizes(std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t e = lo; e <= hi; ++e) sizes.push_back(1u << e);
  return sizes;
}

double env_scale() {
  const char* s = std::getenv("BYZCOUNT_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

std::uint32_t env_max_exp(std::uint32_t fallback) {
  const char* s = std::getenv("BYZCOUNT_MAX_EXP");
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v >= 4 ? static_cast<std::uint32_t>(v) : fallback;
}

void AccuracyAggregate::add(const proto::Accuracy& acc) {
  const double honest = acc.honest > 0 ? static_cast<double>(acc.honest) : 1.0;
  frac_in_band.add(acc.frac_in_band);
  if (acc.decided > 0) {
    mean_ratio.add(acc.mean_ratio);
    min_ratio.add(acc.min_ratio);
    max_ratio.add(acc.max_ratio);
  }
  crashed_frac.add(static_cast<double>(acc.crashed) / honest);
  undecided_frac.add(static_cast<double>(acc.undecided) / honest);
  decided_frac.add(static_cast<double>(acc.decided) / honest);
}

TrialSweep sweep_trials(const sim::TrialConfig& cfg, std::uint32_t trials,
                        const bench_core::TrialScheduler& scheduler) {
  TrialSweep sweep;
  sweep.results = scheduler.map(trials, [&](std::uint64_t t) {
    sim::TrialConfig trial_cfg = cfg;
    trial_cfg.seed = bench_core::TrialScheduler::trial_seed(cfg.seed, t);
    return sim::run_trial(trial_cfg);
  });
  // Aggregation happens in trial order so the sweep is reproducible
  // bit-for-bit regardless of which worker ran which trial.
  for (const auto& r : sweep.results) {
    sweep.aggregate.add(r.accuracy);
    sweep.frac_in_band.push_back(r.accuracy.frac_in_band);
    if (r.accuracy.decided > 0) sweep.mean_ratio.push_back(r.accuracy.mean_ratio);
  }
  return sweep;
}

}  // namespace byz::analysis
