// E6 — Round complexity (Theorem 1: O(log^3 n)). Measures total flooding
// rounds of Algorithm 1/2 runs against c*log^3 n and fits the exponent of
// rounds = c * (log n)^p by regression on log-log'd data.
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e06(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(16));

  struct Row {
    std::uint64_t clean_rounds = 0;
    std::uint64_t attacked_rounds = 0;
    std::uint32_t theory = 0;
    sim::Instrumentation instr;
  };
  const auto rows = ctx.scheduler().map(sizes.size(), [&](std::uint64_t i) {
    const auto n = sizes[i];
    const auto overlay = ctx.overlay(n, 8, 0xE6 + n);
    const auto clean = proto::run_basic_counting(*overlay, 0xC6);
    const auto byz = place_byz(n, 0.5, 0xE6 + n);
    const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    const auto attacked = proto::run_counting(*overlay, byz, *strat, cfg, 0xC6);
    Row row;
    row.clean_rounds = clean.flood_rounds;
    row.attacked_rounds = attacked.flood_rounds;
    row.theory = proto::rounds_through_phase(
        static_cast<std::uint32_t>(lg(n)), 8, cfg.schedule);
    row.instr = attacked.instr;
    return row;
  });

  util::Table table("E6: protocol rounds vs log^3 n (d=8, fake-color attack)");
  table.columns({"n", "log2 n", "rounds clean", "rounds attacked",
                 "rounds/log2^3 n", "theory bound"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto n = sizes[i];
    const double l = lg(n);
    table.row()
        .cell(std::uint64_t{n})
        .cell(l, 1)
        .cell(rows[i].clean_rounds)
        .cell(rows[i].attacked_rounds)
        .cell(static_cast<double>(rows[i].clean_rounds) / (l * l * l), 4)
        .cell(rows[i].theory);
    xs.push_back(std::log(l));
    ys.push_back(std::log(static_cast<double>(rows[i].clean_rounds)));
    ctx.count_messages(rows[i].instr);
  }
  const auto fit = util::linear_fit(xs, ys);
  table.note("Fitted rounds ~ (log n)^p with p = " +
             util::format_double(fit.slope, 2) +
             " (R^2 = " + util::format_double(fit.r_squared, 3) +
             "); Theorem 1 predicts p <= 3. In practice termination at the "
             "diameter keeps the measured exponent well below the bound.");
  ctx.emit(table);
  ctx.metric("round_exponent", Json(fit.slope));
  ctx.metric("round_fit_r2", Json(fit.r_squared));
}

}  // namespace

BYZBENCH_REGISTER(e06) {
  ScenarioSpec spec;
  spec.id = "e06";
  spec.title = "round complexity vs log^3 n";
  spec.claim = "Theorem 1: O(log^3 n) rounds; measured exponent well below 3";
  spec.grid = {pow2_axis(10, 16)};
  spec.base_trials = 1;
  spec.metrics = {"round_exponent", "round_fit_r2", "messages"};
  spec.run = run_e06;
  return spec;
}
