// Dirty-ball maintenance for evolving overlays.
//
// A node's k-ball (the BFS ball that materializes its G-adjacency) can only
// change across a splice if some path of length <= k from it traverses an
// edge the splice added or removed. Walking such a witness path from the
// node to the FIRST changed edge yields a prefix made of unchanged edges —
// a prefix that exists both before and after the op — ending at a touched
// endpoint at distance <= k-1 (the changed edge itself occupies one hop).
// Hence one multi-source BFS of depth k-1 from the touched endpoints, run
// in the post-op ring structure, marks a superset of every node whose ball
// changed. (A departed node is unreachable without crossing one of its own
// removed edges, so its live ring neighbors — which are all touched —
// stand in for it.)
//
// DirtyBallTracker subscribes to MutableOverlay splices and accumulates
// that superset as a stable-id bitmap: the per-op cost is O(|B_H(touched,
// k)|) = O(d^2 (d-1)^(k-1)), independent of n, which is what lets
// IncrementalEngine::snapshot() recompute only the churn-affected balls.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamics/mutable_overlay.hpp"

namespace byz::incremental {

using dynamics::MutableOverlay;
using graph::NodeId;

class DirtyBallTracker final : public MutableOverlay::SpliceObserver {
 public:
  /// Attaches to `overlay` (replacing any previous observer) and starts
  /// with every bootstrap node clean — callers that have never snapshotted
  /// treat the tracker's state as "everything dirty" themselves.
  explicit DirtyBallTracker(MutableOverlay& overlay);
  ~DirtyBallTracker() override;

  DirtyBallTracker(const DirtyBallTracker&) = delete;
  DirtyBallTracker& operator=(const DirtyBallTracker&) = delete;

  void on_splice(std::span<const NodeId> touched) override;

  /// True iff `stable`'s ball may differ from the last drained state.
  [[nodiscard]] bool is_dirty(NodeId stable) const noexcept {
    return stable < dirty_.size() && dirty_[stable] != 0;
  }
  /// Stable-id bitmap (may be shorter than the overlay's id_bound(); ids
  /// past the end are clean).
  [[nodiscard]] const std::vector<std::uint8_t>& dirty_mask() const noexcept {
    return dirty_;
  }
  [[nodiscard]] std::uint64_t dirty_count() const noexcept {
    return dirty_count_;
  }
  /// Splice ops observed since the last clear().
  [[nodiscard]] std::uint64_t splices_seen() const noexcept {
    return splices_;
  }

  /// Marks every currently-alive node dirty (full-rebuild semantics).
  void mark_all_dirty();

  /// Drains the dirty set after a snapshot consumed it.
  void clear();

 private:
  void mark(NodeId stable);

  MutableOverlay* overlay_;
  std::uint32_t k_;
  std::vector<std::uint8_t> dirty_;  ///< by stable id
  std::uint64_t dirty_count_ = 0;
  std::uint64_t splices_ = 0;
  // Stamp-based BFS scratch (avoids O(id_bound) clears per splice).
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
};

}  // namespace byz::incremental
