// E20 — incremental vs full snapshot maintenance: the epoch-to-epoch
// sublinear hot path. MutableOverlay::snapshot() re-runs one bounded BFS
// per node every epoch; IncrementalEngine recomputes only the balls within
// the dirty radius (k-1) of a splice endpoint and reuses the rest, then
// assembles the CSR arrays directly. Every timed pair is also compared
// bitwise (overlays_identical), so the speedup column is a claim about an
// EQUAL result, not an approximation. The guard metric feeds the CI perf
// step: incremental must beat the full rebuild at the lowest churn rate.
#include "bench_common.hpp"
#include "incremental/engine.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Cell {
  double full_ms = 0.0;
  double incr_ms = 0.0;
  std::uint64_t recomputed = 0;
  std::uint64_t reused = 0;
  bool identical = true;
};

/// One trial: replay `epochs` of churn at `rate` ops/node/epoch, timing
/// the full rebuild and the incremental snapshot on the SAME overlay
/// state. Trials run serially: this scenario measures wall-time.
Cell run_trial(graph::NodeId n0, double rate, std::uint32_t epochs,
               std::uint64_t seed) {
  Cell cell;
  dynamics::MutableOverlay overlay(n0, 6, 0, seed);
  incremental::IncrementalEngine engine(overlay);
  util::Xoshiro256 rng(util::mix_seed(seed, 0xE20));
  (void)engine.snapshot();  // bootstrap (full rebuild on both paths)
  const auto base = engine.stats();  // exclude the bootstrap from accounting
  for (std::uint32_t e = 0; e < epochs; ++e) {
    const auto ops = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(rate * overlay.num_alive()));
    for (std::uint32_t i = 0; i < ops; ++i) {
      switch (rng.below(3)) {
        case 0:
          overlay.join(rng);
          break;
        case 1:
          if (overlay.num_alive() > n0 / 2) {
            overlay.leave(overlay.random_alive(rng));
            break;
          }
          [[fallthrough]];
        default:
          overlay.rewire(overlay.random_alive(rng), rng);
          break;
      }
    }
    util::Timer t_full;
    const auto full = overlay.snapshot();
    cell.full_ms += t_full.milliseconds();
    util::Timer t_incr;
    const auto incr = engine.snapshot();
    cell.incr_ms += t_incr.milliseconds();
    cell.identical = cell.identical &&
                     incremental::overlays_identical(full.overlay,
                                                     incr.overlay);
  }
  cell.recomputed = engine.stats().balls_recomputed - base.balls_recomputed;
  cell.reused = engine.stats().balls_reused - base.balls_reused;
  return cell;
}

void run_e20(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));
  const auto trials = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 6;
  const std::vector<double> rates = {0.001, 0.01, 0.05};

  util::Table table("E20: incremental vs full snapshot rebuild, d=6 (" +
                    std::to_string(trials) + " trials, " +
                    std::to_string(kEpochs) + " epochs each)");
  table.columns({"n0", "churn/epoch", "full ms/ep", "incr ms/ep", "speedup",
                 "balls redone", "identical"});

  double guard_speedup = 0.0;
  for (const auto n0 : sizes) {
    for (const double rate : rates) {
      Cell sum;
      for (std::uint32_t t = 0; t < trials; ++t) {
        const auto cell = run_trial(
            n0, rate, kEpochs,
            bench_core::TrialScheduler::trial_seed(0xE20 + n0, t));
        sum.full_ms += cell.full_ms;
        sum.incr_ms += cell.incr_ms;
        sum.recomputed += cell.recomputed;
        sum.reused += cell.reused;
        sum.identical = sum.identical && cell.identical;
      }
      const double epochs_total = static_cast<double>(trials) * kEpochs;
      const double speedup =
          sum.incr_ms > 0.0 ? sum.full_ms / sum.incr_ms : 0.0;
      const double dirty_frac =
          static_cast<double>(sum.recomputed) /
          static_cast<double>(sum.recomputed + sum.reused);
      table.row()
          .cell(std::uint64_t{n0})
          .cell(util::format_double(100.0 * rate, 1) + "%")
          .cell(sum.full_ms / epochs_total, 2)
          .cell(sum.incr_ms / epochs_total, 2)
          .cell(util::format_double(speedup, 1) + "x")
          .cell(util::format_double(100.0 * dirty_frac, 1) + "%")
          .cell(sum.identical ? "yes" : "NO");

      Json j = Json::object();
      j["full_ms"] = sum.full_ms;
      j["incr_ms"] = sum.incr_ms;
      j["speedup"] = speedup;
      j["dirty_frac"] = dirty_frac;
      j["identical"] = sum.identical;
      ctx.metric("snapshot_n" + std::to_string(n0) + "_c" +
                     std::to_string(static_cast<int>(rate * 1000)) + "bp",
                 std::move(j));
      // Guard cell: lowest churn rate at the largest size in this run.
      if (rate == rates.front() && n0 == sizes.back()) {
        guard_speedup = speedup;
        Json g = Json::object();
        g["n"] = std::uint64_t{n0};
        g["churn_bp"] = static_cast<int>(rate * 1000);
        g["speedup"] = speedup;
        g["identical"] = sum.identical;
        ctx.metric("guard", std::move(g));
      }
    }
  }
  table.note("Same mutation state, both snapshot paths timed back to back; "
             "'identical' asserts bitwise equality of the two overlays on "
             "every epoch. The dirty radius is k-1 around each splice "
             "endpoint, so the recomputed fraction — and with it the "
             "incremental cost — scales with the churn rate, not with n. "
             "Guard: incremental beat full " +
             util::format_double(guard_speedup, 1) +
             "x at the lowest churn rate.");
  ctx.emit(table);
}

}  // namespace

BYZBENCH_REGISTER(e20) {
  ScenarioSpec spec;
  spec.id = "e20";
  spec.title = "Incremental snapshot maintenance vs full rebuild";
  spec.claim = "Dirty-ball maintenance: epoch snapshots cost O(churned "
               "state), not O(n) — >=5x over full rebuild at 0.1% churn, "
               "bitwise identical output";
  spec.grid = {{"churn_rate", {"0.001", "0.01", "0.05"}},
               {"epochs", {"6"}},
               pow2_axis(10, 14)};
  spec.base_trials = 3;
  spec.metrics = {"snapshot_n<k>_c<bp>.speedup", "guard.speedup"};
  spec.run = run_e20;
  return spec;
}
