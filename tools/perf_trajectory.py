#!/usr/bin/env python3
"""Record one perf-trajectory point from bench guard manifests.

Usage: perf_trajectory.py --out FILE BENCH_xxx.json [BENCH_yyy.json ...]

Reads the `metrics.guard` object of each given byzbench manifest and
writes a single JSON document holding every guard keyed by scenario id,
stamped with the commit/run identity CI exposes (GITHUB_SHA, GITHUB_RUN_ID,
GITHUB_REF_NAME — absent keys are simply omitted, so the script also runs
locally). CI uploads the file as a per-run artifact: the sequence of
artifacts over the run history IS the perf trajectory — E20's snapshot
speedup and E28's composed-tier numbers per landed commit — so a perf
regression is read off the artifacts instead of rediscovered by hand.

Exits nonzero when a manifest is missing or carries no guard metric, so a
scenario silently dropping its guard breaks the CI step that calls this.
"""

import argparse
import json
import os
import sys


def load_guard(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    scenario = doc.get("experiment") or os.path.basename(path)
    guard = doc.get("metrics", {}).get("guard")
    if guard is None:
        raise KeyError(f"{path}: manifest has no metrics.guard object")
    if not guard:
        raise KeyError(f"{path}: metrics.guard is empty — the scenario "
                       "recorded no guard numbers")
    return scenario, guard


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="output path for the trajectory point")
    parser.add_argument("manifests", nargs="+",
                        help="byzbench BENCH_*.json manifests with guards")
    args = parser.parse_args(argv[1:])

    point = {}
    for env_key, out_key in (("GITHUB_SHA", "commit"),
                             ("GITHUB_RUN_ID", "run_id"),
                             ("GITHUB_REF_NAME", "ref")):
        value = os.environ.get(env_key)
        if value:
            point[out_key] = value

    # Check EVERY manifest before failing so one CI run reports the full
    # list of offenders instead of one per attempt.
    guards = {}
    errors = []
    for path in args.manifests:
        try:
            scenario, guard = load_guard(path)
        except (OSError, ValueError, KeyError) as err:
            errors.append(str(err))
            continue
        guards[scenario] = guard
    if errors:
        for err in errors:
            print(f"ERROR: {err}", file=sys.stderr)
        print(f"ERROR: {len(errors)} of {len(args.manifests)} manifest(s) "
              "unusable; no trajectory point written", file=sys.stderr)
        return 1
    point["guards"] = guards

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"ok: {len(guards)} guard(s) recorded to {args.out}: "
          + ", ".join(sorted(guards)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
