// Incremental snapshot engine: the epoch-to-epoch sublinear hot path.
//
// MutableOverlay::snapshot() rebuilds every BFS k-ball from scratch, so an
// epoch over a network where 0.1% of the nodes churned costs the same as a
// cold run. IncrementalEngine keeps the k-balls of the PREVIOUS snapshot in
// stable-id space, listens to splices through a DirtyBallTracker, and per
// snapshot
//   * re-runs the bounded BFS only for dirty nodes (those within distance k
//     of any splice endpoint — a superset of every changed ball),
//   * translates all balls stable→dense and assembles the G/H CSR arrays
//     directly (Graph::from_csr + Overlay::build_with_balls), skipping the
//     per-node BFS, the per-ball sort, and the vector-of-vectors staging of
//     the full rebuild.
// The result is bitwise identical to MutableOverlay::snapshot() — the
// config's verify_against_full debug mode asserts exactly that on every
// call, and the property suite replays hundreds of seeded op interleavings
// against the full rebuild.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "incremental/dirty_ball.hpp"

namespace byz::incremental {

struct IncrementalStats {
  std::uint64_t snapshots = 0;
  std::uint64_t full_rebuilds = 0;  ///< first snapshot or incremental off
  std::uint64_t balls_recomputed = 0;
  std::uint64_t balls_reused = 0;
  std::uint64_t verified = 0;  ///< debug cross-checks that passed
  // Per-call view of the last snapshot() (the cumulative counters above
  // aggregate across epochs).
  std::uint64_t last_recomputed = 0;
  std::uint64_t last_reused = 0;
};

class IncrementalEngine {
 public:
  struct Config {
    /// Reuse clean balls (false = full rebuild through the same assembly
    /// path, with the tracker still reporting what actually changed — the
    /// warm-start tier wants dirty masks even without incremental
    /// snapshots).
    bool incremental = true;
    /// Debug mode: every snapshot() also runs the full rebuild and throws
    /// std::logic_error unless the two overlays are bitwise identical.
    bool verify_against_full = false;
  };

  explicit IncrementalEngine(MutableOverlay& overlay)
      : IncrementalEngine(overlay, Config{}) {}
  IncrementalEngine(MutableOverlay& overlay, Config config);

  /// The incremental equivalent of MutableOverlay::snapshot(); drains the
  /// tracker. Bitwise identical to the full rebuild by contract.
  [[nodiscard]] MutableOverlay::Snapshot snapshot();

  [[nodiscard]] const IncrementalStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const DirtyBallTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Stable-id mask of the balls the LAST snapshot() recomputed (everything
  /// alive on the first snapshot). Ids at/past the mask's end are clean.
  [[nodiscard]] const std::vector<std::uint8_t>& last_dirty() const noexcept {
    return last_dirty_;
  }

 private:
  void recompute_ball(NodeId stable, graph::BfsScratch& scratch,
                      std::vector<graph::BallEntry>& tmp);

  MutableOverlay* overlay_;
  Config config_;
  DirtyBallTracker tracker_;
  std::vector<std::vector<graph::BallEntry>> balls_;  ///< by stable id
  std::vector<std::uint8_t> last_dirty_;
  bool has_snapshot_ = false;
  IncrementalStats stats_;
};

/// Deep structural equality of two overlays: params, H, its simple view,
/// G, and the per-slot distance annotations. The equivalence oracle for the
/// incremental-vs-full contract (debug mode, property tests, E20).
[[nodiscard]] bool overlays_identical(const graph::Overlay& a,
                                      const graph::Overlay& b);

}  // namespace byz::incremental
