// E21 — warm-vs-cold parity: on every epoch snapshot the warm-started
// protocol (cached verifier rows refreshed only for dirty-ball nodes, lazy
// subphase evaluation) must produce EXACTLY the cold run's decisions —
// run_churn's verify_warm mode shadow-runs the cold tier and throws on the
// first divergence, so every row of this table is an asserted identity.
// What the warm tier buys is accounting: the message column pair shows the
// flood traffic the lazy tier avoids, and the verifier-row column the
// fraction of per-node verification state carried across epochs instead of
// recomputed.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e21(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 8;

  util::Table table("E21: warm-start parity and savings, d=6 (" +
                    std::to_string(t) + " trials, " + std::to_string(kEpochs) +
                    " epochs, decisions asserted identical)");
  table.columns({"n0", "warm epochs", "msgs warm", "msgs cold", "msg saved",
                 "subph saved", "rows reused", "fresh in-band"});
  std::vector<double> fresh_band;
  std::vector<double> savings;
  for (const auto n0 : sizes) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = n0;
    cfg.trace.epochs = kEpochs;
    cfg.trace.arrival_rate = n0 / 128.0;
    cfg.trace.departure_rate = n0 / 128.0;
    cfg.trace.min_n = n0 / 2;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.strategy = adv::StrategyKind::kFakeColor;
    cfg.incremental.incremental = true;
    cfg.incremental.warm_start = true;
    cfg.incremental.verify_warm = true;  // cold shadow + assertion

    const std::uint64_t base_seed = 0xE21 + n0;
    const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
      auto trial_cfg = cfg;
      trial_cfg.trace.seed =
          bench_core::TrialScheduler::trial_seed(base_seed, i);
      trial_cfg.seed = trial_cfg.trace.seed;
      return dynamics::run_churn(trial_cfg);
    });

    std::uint64_t warm_epochs = 0, total_epochs = 0;
    std::uint64_t msgs = 0, msgs_cold = 0;
    std::uint64_t sp_run = 0, sp_sched = 0;
    std::uint64_t rows_reused = 0, rows_total = 0;
    util::OnlineStats fresh;
    for (const auto& run : runs) {
      for (const auto& ep : run.epochs) {
        ++total_epochs;
        if (ep.warm_used) ++warm_epochs;
        msgs += ep.messages;
        msgs_cold += ep.messages_cold;
        sp_run += ep.subphases_executed;
        sp_sched += ep.subphases_scheduled;
        rows_reused += ep.verify_rows_reused;
        rows_total += ep.verify_rows_reused + ep.verify_rows_recomputed;
        fresh.add(ep.fresh.frac_in_band);
        fresh_band.push_back(ep.fresh.frac_in_band);
      }
    }
    const double msg_saved =
        msgs_cold ? 1.0 - static_cast<double>(msgs) /
                              static_cast<double>(msgs_cold)
                  : 0.0;
    const double sp_saved =
        sp_sched ? 1.0 - static_cast<double>(sp_run) /
                             static_cast<double>(sp_sched)
                 : 0.0;
    const double rows_frac =
        rows_total ? static_cast<double>(rows_reused) /
                         static_cast<double>(rows_total)
                   : 0.0;
    savings.push_back(msg_saved);
    table.row()
        .cell(std::uint64_t{n0})
        .cell(std::to_string(warm_epochs) + "/" + std::to_string(total_epochs))
        .cell(static_cast<double>(msgs), 0)
        .cell(static_cast<double>(msgs_cold), 0)
        .cell(util::format_double(100.0 * msg_saved, 1) + "%")
        .cell(util::format_double(100.0 * sp_saved, 1) + "%")
        .cell(util::format_double(100.0 * rows_frac, 1) + "%")
        .cell(fresh.mean(), 4);

    Json j = Json::object();
    j["warm_epochs"] = warm_epochs;
    j["total_epochs"] = total_epochs;
    j["msg_savings"] = msg_saved;
    j["subphase_savings"] = sp_saved;
    j["rows_reused_frac"] = rows_frac;
    ctx.metric("warm_n" + std::to_string(n0), std::move(j));
  }
  table.note("verify_warm shadow-runs the cold protocol on every snapshot "
             "and run_churn throws on any status/estimate mismatch — this "
             "table existing means warm == cold decision-for-decision. The "
             "termination predicate needs global flood evidence every "
             "epoch, so exact message savings are structurally modest; the "
             "durable reuse is the verifier state (rows reused column) and "
             "the snapshot tier (E20).");
  ctx.emit(table);
  ctx.record_accuracy("fresh_in_band", fresh_band);
  ctx.record_accuracy("msg_savings", savings);
}

}  // namespace

BYZBENCH_REGISTER(e21) {
  ScenarioSpec spec;
  spec.id = "e21";
  spec.title = "Warm-started protocol: decision parity with the cold tier";
  spec.claim = "Warm starts (cached verifier rows + lazy subphases) are "
               "decision-identical to cold runs on every churn snapshot; "
               "savings show up in flood traffic and reused state";
  spec.grid = {{"model", {"steady"}}, {"epochs", {"8"}}, pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"warm_n<k>.msg_savings", "warm_n<k>.rows_reused_frac",
                  "accuracy.fresh_in_band"};
  spec.run = run_e21;
  return spec;
}
