// Shared experiment plumbing for the bench binaries: standard size sweeps,
// trial-level accuracy aggregation, and environment-controlled scaling so
// the same binaries serve both quick CI runs and full reproductions.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_core/scheduler.hpp"
#include "protocols/estimate.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"

namespace byz::analysis {

/// Power-of-two sweep 2^lo .. 2^hi inclusive.
[[nodiscard]] std::vector<std::uint32_t> pow2_sizes(std::uint32_t lo,
                                                    std::uint32_t hi);

/// Scale factor from the BYZCOUNT_SCALE environment variable (default 1.0);
/// benches multiply their trial counts by it. BYZCOUNT_MAX_EXP (if set)
/// caps sweep sizes at 2^value.
[[nodiscard]] double env_scale();
[[nodiscard]] std::uint32_t env_max_exp(std::uint32_t fallback);

/// Accuracy statistics aggregated over trials.
struct AccuracyAggregate {
  util::OnlineStats frac_in_band;  ///< fraction of honest nodes in band
  util::OnlineStats mean_ratio;    ///< mean est/log2(n) over decided nodes
  util::OnlineStats min_ratio;
  util::OnlineStats max_ratio;
  util::OnlineStats crashed_frac;
  util::OnlineStats undecided_frac;
  util::OnlineStats decided_frac;

  void add(const proto::Accuracy& acc);
};

/// A Monte-Carlo sweep's raw and aggregated outcomes: the aggregate plus
/// per-trial series (trial order = seed order, independent of --jobs).
struct TrialSweep {
  AccuracyAggregate aggregate;
  std::vector<sim::TrialResult> results;   ///< ordered by trial index
  std::vector<double> frac_in_band;        ///< per trial
  std::vector<double> mean_ratio;          ///< per trial (decided > 0 only)
};

/// Runs `trials` independent repetitions of `cfg` through the shared
/// bench_core scheduler, deriving per-trial seeds exactly like
/// sim::run_trials (mix_seed(cfg.seed, t + 1)) — results are bitwise
/// identical for every worker count.
[[nodiscard]] TrialSweep sweep_trials(const sim::TrialConfig& cfg,
                                      std::uint32_t trials,
                                      const bench_core::TrialScheduler& scheduler);

}  // namespace byz::analysis
