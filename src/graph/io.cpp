#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace byz::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# nodes " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint32_t self_slots = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (w == v) {
        ++self_slots;  // a self-loop occupies two slots of v's list
      } else if (v < w) {
        out << v << ' ' << w << '\n';
      }
    }
    for (std::uint32_t i = 0; i < self_slots / 2; ++i) {
      out << v << ' ' << v << '\n';
    }
  }
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  NodeId n = 0;
  bool have_header = false;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash;
      std::string word;
      std::uint64_t count = 0;
      if (header >> hash >> word >> count && word == "nodes") {
        n = static_cast<NodeId>(count);
        have_header = true;
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0;
    std::uint64_t w = 0;
    if (!(row >> u >> w)) {
      throw std::runtime_error("read_edge_list: malformed line " +
                               std::to_string(line_no) + ": " + line);
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(w));
  }
  if (!have_header) {
    throw std::runtime_error("read_edge_list: missing '# nodes <n>' header");
  }
  return Graph::from_edges(n, edges, /*dedup=*/false);
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("save_edge_list: write failure");
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

void write_dot(std::ostream& out, const Graph& g,
               const std::vector<bool>& highlight) {
  out << "graph byzcount {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    if (v < highlight.size() && highlight[v]) {
      out << " [style=filled, fillcolor=red]";
    }
    out << ";\n";
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.neighbors(v)) {
      if (v <= w) out << "  n" << v << " -- n" << w << ";\n";
    }
  }
  out << "}\n";
}

}  // namespace byz::graph
