// Shared plumbing for the experiment binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "byzcount.hpp"

namespace byz::bench {

/// Builds an overlay for (n, d) with a deterministic per-experiment seed.
inline graph::Overlay make_overlay(graph::NodeId n, std::uint32_t d,
                                   std::uint64_t seed) {
  graph::OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return graph::Overlay::build(p);
}

/// Byzantine placement for a trial.
inline std::vector<bool> place_byz(graph::NodeId n, double delta,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix_seed(seed, 0x0B12));
  return graph::random_byzantine_mask(n, sim::derive_byz_count(n, delta), rng);
}

/// log2 helper.
inline double lg(double x) { return std::log2(x); }

/// Trial count after env scaling (BYZCOUNT_SCALE).
inline std::uint32_t trials(std::uint32_t base) {
  const double scaled = base * analysis::env_scale();
  return scaled < 1.0 ? 1u : static_cast<std::uint32_t>(scaled);
}

}  // namespace byz::bench
