// Delta-applied small-world overlay for evolving (churning) networks.
//
// The static H(n, d) model is the union of d/2 independent Hamiltonian
// cycles (graph/hamiltonian.*). MutableOverlay keeps those cycles EXPLICIT
// — one successor/predecessor ring per cycle over stable node ids — which
// is exactly the Law & Siu construction for dynamic P2P overlays: a join
// splices the new node into each ring at an independent position and a
// leave splices it out, so every operation costs O(d) pointer updates and
// the invariants the paper's lemmas rest on hold BY CONSTRUCTION after any
// operation sequence:
//   * H stays an exactly d-regular multigraph (each ring contributes 2);
//   * H stays connected (each ring is a Hamiltonian cycle on the alive set);
//   * random splices keep each ring a uniformly random cycle, so snapshots
//     stay within the H(n, d) distribution family (expansion w.h.p.).
//
// Stable ids are never reused; `snapshot()` compacts the alive set to the
// dense [0, n) ids the immutable graph::Overlay world expects and stamps
// the result with the mutation generation (OverlayParams::generation), so
// epoch snapshots can never alias a cached static overlay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/small_world.hpp"
#include "util/rng.hpp"

namespace byz::dynamics {

using graph::NodeId;

class MutableOverlay {
 public:
  /// Observes topology splices (the hook incremental::DirtyBallTracker
  /// attaches to). The observer sees each join/leave/rewire AFTER the rings
  /// are updated, with the stable ids whose incident H-edges the operation
  /// changed: the joined/departed/rewired node itself, every splice anchor,
  /// and each anchor's former ring successor (duplicates possible). All
  /// reported ids are alive in the post-op overlay except a departed node.
  class SpliceObserver {
   public:
    virtual ~SpliceObserver() = default;
    virtual void on_splice(std::span<const NodeId> touched) = 0;
  };

  /// Attaches (or, with nullptr, detaches) the single observer slot.
  void set_observer(SpliceObserver* observer) noexcept {
    observer_ = observer;
  }
  [[nodiscard]] SpliceObserver* observer() const noexcept { return observer_; }

  /// Bootstraps with `n0` nodes (stable ids 0..n0-1) by running the exact
  /// Fisher-Yates cycle sampling of build_hamiltonian_graph on `seed`: the
  /// generation-0 snapshot is edge-identical to Overlay::build({n0, d, k,
  /// seed}). Requirements: n0 >= 3, d even >= 4; k = 0 means paper k.
  MutableOverlay(NodeId n0, std::uint32_t d, std::uint32_t k,
                 std::uint64_t seed);

  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t num_cycles() const noexcept { return d_ / 2; }
  [[nodiscard]] NodeId num_alive() const noexcept { return alive_count_; }
  /// Stable ids live in [0, id_bound()); dead ids are never reused.
  [[nodiscard]] NodeId id_bound() const noexcept {
    return static_cast<NodeId>(alive_.size());
  }
  [[nodiscard]] bool is_alive(NodeId v) const noexcept {
    return v < alive_.size() && alive_[v] != 0;
  }
  /// Bumped by every join/leave/rewire (the op COUNT).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  /// The seed the generation-0 topology was sampled from (snapshot params
  /// record it as provenance).
  [[nodiscard]] std::uint64_t bootstrap_seed() const noexcept { return seed_; }

  /// Topology build tag stamped into snapshot params: a SplitMix64 fold of
  /// the bootstrap seed and the full operation log (op kind, node, anchors),
  /// so two overlays reach the same tag only by replaying the identical
  /// history — an op COUNTER would collide across e.g. leave(0) vs leave(1).
  /// Always nonzero (0 is reserved for static Overlay::build samples).
  [[nodiscard]] std::uint64_t build_tag() const noexcept {
    return history_tag_ == 0 ? 1 : history_tag_;
  }

  /// Joins a new node by splicing it into each ring after an independent
  /// uniformly random alive anchor. Returns the new stable id.
  NodeId join(util::Xoshiro256& rng);

  /// Joins with caller-chosen anchors (one alive node per ring; the joiner
  /// becomes the anchor's ring successor). This is the adversarial join
  /// surface: eclipse placement passes the victim as every anchor.
  NodeId join_at(std::span<const NodeId> anchors);

  /// Splices `v` out of every ring. Throws if v is not alive or the
  /// overlay would shrink below 3 nodes (a ring needs >= 2 others).
  void leave(NodeId v);

  /// Repair/rewiring primitive: re-splices `v` at fresh random positions
  /// (equivalent to leave + join but keeps the stable id). Refreshing
  /// splice randomness is how a deployment heals locality that accumulated
  /// from correlated departures.
  void rewire(NodeId v, util::Xoshiro256& rng);

  /// Ring successor / predecessor of alive node v in cycle c.
  [[nodiscard]] NodeId successor(std::uint32_t cycle, NodeId v) const {
    return succ_[cycle][v];
  }
  [[nodiscard]] NodeId predecessor(std::uint32_t cycle, NodeId v) const {
    return pred_[cycle][v];
  }

  /// Uniformly random alive node (deterministic given the op history).
  [[nodiscard]] NodeId random_alive(util::Xoshiro256& rng) const {
    return alive_list_[rng.below(alive_count_)];
  }

  /// Sorted stable ids of the alive set.
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// An immutable overlay over the alive set, with stable ids compacted to
  /// dense [0, n) in increasing stable-id order.
  struct Snapshot {
    graph::Overlay overlay;
    std::vector<NodeId> dense_to_stable;  ///< size overlay.num_nodes()
    /// Dense id of a stable id (binary search); kInvalidNode if not alive.
    [[nodiscard]] NodeId to_dense(NodeId stable) const;
  };

  /// Extracts the snapshot: O(n·d) edge assembly plus the usual k-ball
  /// materialization. params.generation = build_tag() (never 0, so a
  /// snapshot key is always distinct from the static sample's, and distinct
  /// histories get distinct keys).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  void splice_in(NodeId v, std::span<const NodeId> anchors);
  void fold(std::uint64_t value) noexcept {
    history_tag_ = util::mix_seed(history_tag_, value);
  }
  void notify(std::span<const NodeId> touched) {
    if (observer_ != nullptr) observer_->on_splice(touched);
  }

  SpliceObserver* observer_ = nullptr;
  std::uint32_t d_;
  std::uint32_t k_;
  std::uint64_t seed_;
  std::uint64_t generation_ = 0;
  std::uint64_t history_tag_ = 0;
  NodeId alive_count_ = 0;
  std::vector<std::uint8_t> alive_;        ///< by stable id
  std::vector<NodeId> alive_list_;         ///< unordered alive ids
  std::vector<NodeId> pos_in_list_;        ///< stable id -> alive_list_ index
  std::vector<std::vector<NodeId>> succ_;  ///< [cycle][stable id]
  std::vector<std::vector<NodeId>> pred_;  ///< [cycle][stable id]
};

}  // namespace byz::dynamics
