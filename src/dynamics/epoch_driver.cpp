#include "dynamics/epoch_driver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "analysis/backend_compare.hpp"
#include "graph/categories.hpp"
#include "incremental/engine.hpp"
#include "obs/digest.hpp"
#include "obs/trace.hpp"
#include "protocols/estimator.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace byz::dynamics {

namespace {

using graph::NodeId;

/// Seed-stream tags (arbitrary distinct constants).
constexpr std::uint64_t kOverlayStream = 0x0B00;
constexpr std::uint64_t kPlacementStream = 0x0B12;
constexpr std::uint64_t kChurnStream = 0xC002;
constexpr std::uint64_t kColorStream = 0xE000;
constexpr std::uint64_t kMidRunStream = 0x31D1;
constexpr std::uint64_t kShadowStream = 0x5AAD;

bool same_outcome(const proto::RunResult& a, const proto::RunResult& b) {
  if (a.status != b.status || a.estimate != b.estimate) return false;
  if (a.phases_executed != b.phases_executed) return false;
  if (a.flood_rounds != b.flood_rounds) return false;
  const auto& ia = a.instr;
  const auto& ib = b.instr;
  return ia.setup_messages == ib.setup_messages &&
         ia.token_messages == ib.token_messages &&
         ia.verify_messages == ib.verify_messages &&
         ia.injections_attempted == ib.injections_attempted &&
         ia.injections_accepted == ib.injections_accepted &&
         ia.injections_caught == ib.injections_caught &&
         ia.crashes == ib.crashes;
}

/// Renders (and, with an audit_dir, writes) a byzobs/forensics/v1 report
/// for one oracle seam of one epoch. Returns the written path ("" when
/// render-only or the write failed).
std::string emit_forensics(const ChurnRunConfig& cfg, std::uint32_t epoch,
                           const std::string& seam, const std::string& detail,
                           const char* tier_a, const char* tier_b,
                           const obs::RunDigester& a, const obs::RunDigester& b,
                           const obs::FlightRecorder* rec_a,
                           const obs::FlightRecorder* rec_b) {
  obs::ForensicsInfo info;
  info.scenario = "run_churn/" + seam;
  info.seed = cfg.seed;
  info.flags = "d=" + std::to_string(cfg.d) +
               " strategy=" + std::string(adv::to_string(cfg.strategy)) +
               (cfg.mid_run.enabled ? " mid-run" : "") +
               (cfg.incremental.warm_start ? " warm" : "") +
               (cfg.incremental.eps_warm ? " eps-warm" : "") +
               " epoch=" + std::to_string(epoch);
  info.detail = detail;
  info.tier_a = tier_a;
  info.tier_b = tier_b;
  const std::string doc =
      obs::forensics_json(info, a.trail(), b.trail(), rec_a, rec_b);
  if (cfg.audit_dir.empty()) return {};
  const std::string path = cfg.audit_dir + "/forensics_churn_" + seam +
                           "_epoch" + std::to_string(epoch) + "_" +
                           std::to_string(cfg.seed) + ".json";
  return obs::write_forensics_file(path, doc) ? path : std::string{};
}

}  // namespace

ChurnRunResult run_churn(const ChurnRunConfig& cfg) {
  const IncrementalConfig& inc_cfg = cfg.incremental;
  if (!cfg.mid_run.enabled && cfg.run_engine && inc_cfg.warm_start &&
      !inc_cfg.verify_warm) {
    throw std::invalid_argument(
        "run_churn: run_engine with warm_start requires verify_warm (the "
        "message-level Engine is compared against the cold tier; under "
        "mid_run the Engine replays the warm run itself, so the "
        "requirement lifts)");
  }
  if (inc_cfg.eps_warm && !inc_cfg.warm_start) {
    throw std::invalid_argument(
        "run_churn: eps_warm is a mode of the warm tier (enable warm_start)");
  }
  if (cfg.mid_run.enabled && inc_cfg.eps_warm && inc_cfg.verify_warm &&
      cfg.mid_run.schedule == adv::MidRunScheduleStrategy::kFrontierLeaves) {
    throw std::invalid_argument(
        "run_churn: eps_warm + verify_warm under kFrontierLeaves is "
        "unsupported — frontier-directed victims depend on the observed "
        "wavefront, which an ε-entry run shifts, so the cold shadow floods "
        "a different overlay evolution and its divergence count would be "
        "meaningless");
  }

  // Cross-backend shadow oracle: resolve both estimators up front so an
  // unknown name fails before any epoch runs (make_estimator's message
  // lists the registered names).
  std::unique_ptr<proto::Estimator> shadow_est;
  std::unique_ptr<proto::Estimator> primary_est;
  if (!cfg.shadow_backend.empty()) {
    shadow_est = proto::make_estimator(cfg.shadow_backend, cfg.protocol);
    primary_est = proto::make_estimator("algo2", cfg.protocol);
  }
  // The shadow comparison runs both backends cold on the epoch's
  // post-churn snapshot — dedicated seed stream, fresh strategies, no rng
  // or warm-state side effects — and records the oracle verdicts.
  const auto run_shadow = [&](EpochStats& stats, std::uint32_t e,
                              const graph::Overlay& snapshot,
                              const std::vector<bool>& dense_byz) {
    if (!shadow_est) return;
    const auto cmp = analysis::compare_backends(
        snapshot, dense_byz, cfg.strategy,
        util::mix_seed(cfg.seed, kShadowStream + e), *primary_est,
        *shadow_est, cfg.flood);
    stats.shadow_ran = true;
    stats.shadow_median_ratio = cmp.b.median_ratio;
    stats.shadow_ratio = cmp.ratio;
    stats.shadow_in_band = cmp.b.in_band;
    stats.shadow_agree = cmp.agree;
  };

  ChurnRunResult out;
  out.trace = generate_trace(cfg.trace);

  MutableOverlay overlay(cfg.trace.n0, cfg.d, cfg.k,
                         util::mix_seed(cfg.seed, kOverlayStream));
  // The incremental engine owns dirty-ball tracking; it is also attached
  // (with reuse off) when only the warm tier is on, because warm restarts
  // need the per-epoch dirty masks. Under mid-run churn the feed's splices
  // go through the same observer, so the masks stay exact there too.
  std::optional<incremental::IncrementalEngine> inc;
  if (inc_cfg.incremental || inc_cfg.warm_start || inc_cfg.verify_snapshots) {
    incremental::IncrementalEngine::Config engine_cfg;
    engine_cfg.incremental = inc_cfg.incremental;
    engine_cfg.verify_against_full = inc_cfg.verify_snapshots;
    inc.emplace(overlay, engine_cfg);
  }

  // Initial Byzantine placement on the bootstrap ids (the paper's uniform
  // model); the mask is indexed by STABLE id and grows with joins.
  util::Xoshiro256 place_rng(util::mix_seed(cfg.seed, kPlacementStream));
  std::vector<bool> byz = graph::random_byzantine_mask(
      cfg.trace.n0, sim::derive_byz_count(cfg.trace.n0, cfg.delta), place_rng);

  util::Xoshiro256 churn_rng(util::mix_seed(cfg.seed, kChurnStream));
  // Last decided estimate per stable id (0 = none yet); feeds staleness.
  std::vector<std::uint32_t> last_estimate(overlay.id_bound(), 0);
  proto::WarmState warm_state;
  double acc_drift = 0.0;
  double n_last_estimated = cfg.trace.n0;

  // Between-runs event replay: joins first (honest, then sybil), then
  // departures — the bookkeeping order generate_trace assumed when it
  // clamped the counts. The snapshot path uses it every epoch; mid-run
  // mode uses it for adaptively SKIPPED epochs (no run happens, so there
  // is nothing for the events to strike mid-flight).
  const auto replay_between_runs = [&](const ChurnEpoch& epoch) {
    for (std::uint32_t i = 0; i < epoch.joins; ++i) {
      const auto anchors = adv::plan_join_anchors(
          overlay, byz, cfg.churn_adversary, /*joiner_byzantine=*/false,
          churn_rng);
      overlay.join_at(anchors);
      byz.push_back(false);
    }
    for (std::uint32_t i = 0; i < epoch.sybil_joins; ++i) {
      const auto anchors = adv::plan_join_anchors(
          overlay, byz, cfg.churn_adversary, /*joiner_byzantine=*/true,
          churn_rng);
      overlay.join_at(anchors);
      byz.push_back(true);
    }
    for (std::uint32_t i = 0; i < epoch.leaves; ++i) {
      overlay.leave(adv::pick_departure(overlay, byz, cfg.churn_adversary,
                                        churn_rng));
    }
    if (overlay.num_alive() != epoch.n_after) {
      throw std::logic_error("run_churn: replay diverged from trace n_after");
    }
    // Joiners have no previous estimate: grow the stable-id table BEFORE
    // the staleness scan reads it.
    last_estimate.resize(overlay.id_bound(), 0);
  };

  out.epochs.reserve(out.trace.epochs.size());
  for (std::uint32_t e = 0; e < out.trace.epochs.size(); ++e) {
    const ChurnEpoch& epoch = out.trace.epochs[e];

    // Observability: one span per epoch (pure read-side; stamped with the
    // drift/estimate/policy decision right before its stats are pushed).
    obs::Span epoch_span("epoch");
    epoch_span.arg("epoch", e)
        .arg("joins", epoch.joins + epoch.sybil_joins)
        .arg("leaves", epoch.leaves);
    const auto stamp_epoch_span = [&](const EpochStats& stats) {
      epoch_span.arg("policy", cfg.mid_run.enabled ? "mid-run" : "snapshot")
          .arg("estimated", stats.estimated ? 1 : 0)
          .arg("drift", stats.drift)
          .arg("estimate_mean_ratio", stats.fresh.mean_ratio)
          .arg("warm", stats.warm_used ? 1 : 0)
          .arg("eps_entry", stats.eps_entry_phase)
          .arg("balls_recomputed", stats.balls_recomputed);
    };

    // Membership/staleness bookkeeping shared by every path: judge the
    // estimates honest survivors still carry from previous epochs against
    // the CURRENT truth (before this epoch's run replaces them). Returns
    // the post-churn membership count.
    const auto fill_membership_stats = [&](EpochStats& stats) {
      const auto alive = overlay.alive_nodes();
      const auto n = static_cast<NodeId>(alive.size());
      stats.n_true = n;
      stats.joins = epoch.joins + epoch.sybil_joins;
      stats.leaves = epoch.leaves;
      stats.drift = acc_drift;
      for (const NodeId s : alive) {
        if (byz[s]) ++stats.byz_alive;
      }
      const double log_n = std::log2(static_cast<double>(n));
      for (const NodeId s : alive) {
        if (byz[s]) continue;
        const std::uint32_t est = last_estimate[s];
        if (est == 0) continue;
        ++stats.stale_nodes;
        const double ratio = static_cast<double>(est) / log_n;
        if (ratio >= cfg.band_lo && ratio <= cfg.band_hi) {
          ++stats.stale_in_band;
        }
      }
      stats.stale_frac_in_band =
          stats.stale_nodes == 0
              ? 0.0
              : static_cast<double>(stats.stale_in_band) /
                    static_cast<double>(stats.stale_nodes);
      return n;
    };

    if (cfg.mid_run.enabled) {
      // Mid-protocol churn: the epoch's events are spread over the run's
      // expected flood rounds and applied WHILE it floods; whatever the
      // run never reaches is flushed afterwards, so the epoch ends in the
      // same overlay state as the between-runs path.
      const NodeId n_before = overlay.num_alive();
      acc_drift +=
          static_cast<double>(epoch.joins + epoch.sybil_joins + epoch.leaves) /
          n_last_estimated;

      // Drift-adaptive cadence composes with mid-run churn: a skipped
      // epoch runs no protocol, so its events apply between runs (the
      // splices still notify the dirty-ball tracker, so the NEXT
      // estimating epoch's snapshot accounts for them).
      const bool estimated = !inc_cfg.adaptive || e == 0 ||
                             acc_drift >= inc_cfg.drift_threshold;
      if (!estimated) {
        replay_between_runs(epoch);
        EpochStats stats;
        fill_membership_stats(stats);
        stats.estimated = false;
        stamp_epoch_span(stats);
        out.epochs.push_back(stats);
        continue;
      }

      const std::uint64_t horizon = expected_horizon_rounds(
          n_before, cfg.d, cfg.protocol.schedule);
      const ChurnSchedule schedule = adv::derive_adversarial_schedule(
          epoch, horizon, util::mix_seed(cfg.seed, kMidRunStream + e),
          cfg.mid_run.schedule, cfg.d, cfg.protocol.schedule);
      const std::uint64_t color_seed =
          util::mix_seed(cfg.seed, kColorStream + e);
      auto strategy = adv::make_strategy(cfg.strategy);
      MidRunConfig mid_cfg;
      mid_cfg.policy = cfg.mid_run.policy;
      mid_cfg.schedule_strategy = cfg.mid_run.schedule;
      mid_cfg.flood = cfg.flood;

      // Divergence audit: every tier executed this epoch records a digest
      // trail and a flight tail; the oracle checks below compare them and
      // emit forensics on divergence. Null digesters otherwise (one branch
      // per hook, trails untouched).
      obs::FlightRecorder fast_rec, engine_rec, cold_rec;
      obs::RunDigester fast_dig, engine_dig, cold_dig;
      if (cfg.audit) {
        fast_dig.attach_recorder(&fast_rec);
        engine_dig.attach_recorder(&engine_rec);
        cold_dig.attach_recorder(&cold_rec);
      }

      // Composed tier: the run starts from the incremental snapshot
      // (bitwise identical to a cold rebuild by IncrementalEngine's
      // contract — verify_snapshots asserts it), reuses warm verifier
      // rows for clean-ball members, and may enter at the ε-warm phase.
      std::optional<MutableOverlay::Snapshot> snap;
      if (inc) snap.emplace(inc->snapshot());
      MidRunComposed composed;
      composed.snapshot = snap ? &*snap : nullptr;
      proto::WarmConfig warm_cfg = inc_cfg.warm;
      proto::EpsEntryPlan eps_plan;
      if (inc_cfg.warm_start) {
        // Same fallback ladder as the snapshot path: under adaptive
        // scheduling every estimation runs at drift >= drift_threshold by
        // construction, so the warm bound must sit above it.
        if (inc_cfg.adaptive) {
          warm_cfg.max_drift =
              std::max(warm_cfg.max_drift, 2.0 * inc_cfg.drift_threshold);
        }
        warm_cfg.eps_phase_skip = inc_cfg.eps_warm;
        warm_cfg.eps_budget = inc_cfg.eps_budget;
        warm_cfg.eps_margin = inc_cfg.eps_margin;
        const bool cold = !warm_state.has_run ||
                          warm_state.k != snap->overlay.k() ||
                          acc_drift > warm_cfg.max_drift;
        // Rows dirtied by the previous epochs' splices (mid-run, flushed,
        // or between-runs) are dropped up front; the feed trusts
        // row_valid alone.
        proto::invalidate_dirty_rows(warm_state, inc->last_dirty());
        composed.warm = &warm_state;
        composed.warm_rows = !cold;
        if (inc_cfg.eps_warm) {
          std::vector<bool> dense_byz(n_before, false);
          for (NodeId i = 0; i < n_before; ++i) {
            if (byz[snap->dense_to_stable[i]]) dense_byz[i] = true;
          }
          eps_plan = proto::choose_eps_entry(
              warm_state, snap->dense_to_stable, dense_byz,
              proto::resolve_max_phase(snap->overlay, cfg.protocol), cfg.d,
              cfg.protocol.schedule, warm_cfg, /*allow_skip=*/!cold);
          composed.start_phase = eps_plan.entry_phase;
        }
      }

      // Engine oracle: replay the identical schedule from a copy of the
      // pre-run state through the message-level engine and demand a
      // bitwise-identical outcome (the E26 contract, per epoch). The
      // engine tier folds into its OWN WarmState copy so both tiers see
      // identical caches and leave identical stats.
      std::optional<MidRunOutcome> engine_outcome;
      std::optional<proto::WarmState> engine_warm;
      if (cfg.run_engine) {
        MutableOverlay engine_overlay = overlay;
        engine_overlay.set_observer(nullptr);
        std::vector<bool> engine_byz = byz;
        util::Xoshiro256 engine_rng = churn_rng;
        auto engine_strategy = adv::make_strategy(cfg.strategy);
        MidRunComposed engine_composed = composed;
        if (composed.warm != nullptr) {
          engine_warm = warm_state;
          engine_composed.warm = &*engine_warm;
        }
        engine_outcome = run_counting_midrun_engine(
            engine_overlay, engine_byz, *engine_strategy, cfg.protocol,
            color_seed, schedule, mid_cfg, cfg.churn_adversary, engine_rng,
            &engine_composed, cfg.audit ? &engine_dig : nullptr);
      }

      // verify_warm: shadow the composed run with a COLD mid-run replay on
      // copies — same snapshot, no row reuse, entry at phase 1. Exact-warm
      // epochs must match it decision-for-decision (row reuse is
      // value-identical and moves nothing); ε-warm epochs may diverge
      // within the ε·n budget.
      std::optional<MidRunOutcome> cold_outcome;
      if (inc_cfg.warm_start && inc_cfg.verify_warm) {
        MutableOverlay cold_overlay = overlay;
        cold_overlay.set_observer(nullptr);
        std::vector<bool> cold_byz = byz;
        util::Xoshiro256 cold_rng = churn_rng;
        auto cold_strategy = adv::make_strategy(cfg.strategy);
        MidRunComposed cold_composed;
        cold_composed.snapshot = composed.snapshot;
        cold_outcome = run_counting_midrun(
            cold_overlay, cold_byz, *cold_strategy, cfg.protocol, color_seed,
            schedule, mid_cfg, cfg.churn_adversary, cold_rng, &cold_composed,
            cfg.audit ? &cold_dig : nullptr);
      }

      auto outcome = run_counting_midrun(
          overlay, byz, *strategy, cfg.protocol, color_seed, schedule, mid_cfg,
          cfg.churn_adversary, churn_rng, &composed,
          cfg.audit ? &fast_dig : nullptr);
      if (overlay.num_alive() != epoch.n_after) {
        throw std::logic_error(
            "run_churn: mid-run replay diverged from trace n_after");
      }
      last_estimate.resize(overlay.id_bound(), 0);

      EpochStats stats;
      const NodeId n = fill_membership_stats(stats);
      if (cfg.audit) stats.run_digest = fast_dig.trail().run_digest;

      stats.fresh =
          proto::summarize_accuracy(outcome.run, n, cfg.band_lo, cfg.band_hi);
      if (shadow_est) {
        // Post-churn state: the run flushed every event, so a fresh full
        // snapshot is the same membership the between-runs path ends in.
        const auto shadow_snap = overlay.snapshot();
        std::vector<bool> shadow_byz(n, false);
        for (NodeId i = 0; i < n; ++i) {
          if (byz[shadow_snap.dense_to_stable[i]]) shadow_byz[i] = true;
        }
        run_shadow(stats, e, shadow_snap.overlay, shadow_byz);
      }
      stats.messages = outcome.run.instr.total_messages();
      stats.subphases_scheduled = outcome.run.subphases_scheduled;
      stats.subphases_executed = outcome.run.subphases_executed;
      if (snap) {
        stats.balls_recomputed = inc->stats().last_recomputed;
        stats.balls_reused = inc->stats().last_reused;
      } else {
        stats.balls_recomputed = n_before;  // full snapshot at run start
      }
      stats.warm_used = composed.warm_rows;
      stats.eps_used = eps_plan.eps_used;
      stats.eps_entry_phase = eps_plan.entry_phase;
      stats.eps_budget_nodes = eps_plan.budget_nodes;
      stats.eps_skipped_subphases = eps_plan.skipped_subphases;
      stats.midrun_events_applied = outcome.stats.events_applied;
      stats.midrun_events_flushed = outcome.stats.events_flushed;
      stats.midrun_admitted = outcome.stats.admitted;
      stats.midrun_verifier_refreshes = outcome.stats.verifier_refreshes;
      stats.midrun_frontier_leaves = outcome.stats.frontier_leaves;
      stats.verify_rows_reused = outcome.stats.warm_rows_reused;
      stats.verify_rows_recomputed =
          outcome.stats.rows_recomputed + outcome.stats.warm_rows_recomputed;
      if (engine_outcome) {
        stats.engine_match = *engine_outcome == outcome;
        if (cfg.audit) {
          // The two tiers execute the identical schedule, so their trails
          // must match entry for entry — a trail-only divergence is a bug
          // the outcome comparison was not sharp enough to see.
          const auto div =
              obs::first_divergence(fast_dig.trail(), engine_dig.trail());
          if (!stats.engine_match || div.diverged()) {
            stats.forensics_path = emit_forensics(
                cfg, e, "engine_oracle",
                stats.engine_match
                    ? "digest trails diverged (outcomes identical)"
                    : "mid-run engine outcome diverged from fastpath",
                "fastpath", "engine", fast_dig, engine_dig, &fast_rec,
                &engine_rec);
          }
        }
      }
      if (cold_outcome) {
        stats.messages_cold = cold_outcome->run.instr.total_messages();
        if (!eps_plan.eps_used) {
          // Exact tier: the equivalence contract is bitwise.
          if (cold_outcome->run.status != outcome.run.status ||
              cold_outcome->run.estimate != outcome.run.estimate) {
            // Warm and cold trails legitimately differ in shape (lazy
            // subphases, warm-row notes), so the trails are EVIDENCE here
            // — the headline stays the decision mismatch.
            const std::string report = cfg.audit
                ? emit_forensics(cfg, e, "verify_warm",
                                 "warm mid-run decisions diverged from the "
                                 "cold replay",
                                 "warm", "cold-shadow", fast_dig, cold_dig,
                                 &fast_rec, &cold_rec)
                : std::string{};
            throw std::logic_error(
                "run_churn: warm mid-run decisions diverged from the cold "
                "replay at epoch " + std::to_string(e) +
                (report.empty() ? "" : " (forensics: " + report + ")"));
          }
        } else {
          // ε-warm tier: divergence is allowed but must stay within the
          // paper's outlier budget — the accounting invariant.
          std::uint64_t divergent = 0;
          for (std::size_t i = 0; i < outcome.run.status.size(); ++i) {
            if (cold_outcome->run.status[i] != outcome.run.status[i] ||
                cold_outcome->run.estimate[i] != outcome.run.estimate[i]) {
              ++divergent;
            }
          }
          stats.eps_divergent = divergent;
          if (divergent > eps_plan.budget_nodes) {
            const std::string report = cfg.audit
                ? emit_forensics(cfg, e, "verify_warm",
                                 "eps-warm mid-run divergence exceeded the "
                                 "ε·n budget",
                                 "eps-warm", "cold-shadow", fast_dig,
                                 cold_dig, &fast_rec, &cold_rec)
                : std::string{};
            throw std::logic_error(
                "run_churn: eps-warm mid-run divergence " +
                std::to_string(divergent) + " exceeds the ε·n budget " +
                std::to_string(eps_plan.budget_nodes) + " at epoch " +
                std::to_string(e) +
                (report.empty() ? "" : " (forensics: " + report + ")"));
          }
        }
      }

      for (std::size_t i = 0; i < outcome.run.status.size(); ++i) {
        if (outcome.run.status[i] == proto::NodeStatus::kDecided) {
          last_estimate[outcome.run_to_stable[i]] = outcome.run.estimate[i];
        }
      }
      // Seed the next epoch's warm entry from this run's decisions (every
      // run id maps to a stable id once the flush resolved the joiners).
      if (inc_cfg.warm_start) {
        proto::fold_run_estimates(warm_state, outcome.run,
                                  outcome.run_to_stable, cfg.d);
      }
      acc_drift = 0.0;
      n_last_estimated = static_cast<double>(n);
      stamp_epoch_span(stats);
      out.epochs.push_back(stats);
      continue;
    }

    replay_between_runs(epoch);

    acc_drift +=
        static_cast<double>(epoch.joins + epoch.sybil_joins + epoch.leaves) /
        n_last_estimated;

    EpochStats stats;
    const NodeId n = fill_membership_stats(stats);

    // Drift-adaptive scheduling: estimation runs when the accumulated
    // drift crosses the bound (epoch 0 always bootstraps the estimates).
    stats.estimated = !inc_cfg.adaptive || e == 0 ||
                      acc_drift >= inc_cfg.drift_threshold;
    if (!stats.estimated) {
      stamp_epoch_span(stats);
      out.epochs.push_back(stats);
      continue;
    }

    // Snapshot (incremental or full rebuild) and re-estimate.
    const auto snap = inc ? inc->snapshot() : overlay.snapshot();
    if (inc) {
      stats.balls_recomputed = inc->stats().last_recomputed;
      stats.balls_reused = inc->stats().last_reused;
    } else {
      stats.balls_recomputed = n;
    }
    std::vector<bool> dense_byz(n, false);
    for (NodeId i = 0; i < n; ++i) {
      if (byz[snap.dense_to_stable[i]]) dense_byz[i] = true;
    }
    const std::uint64_t color_seed =
        util::mix_seed(cfg.seed, kColorStream + e);
    auto strategy = adv::make_strategy(cfg.strategy);

    // Divergence audit (snapshot path): the epoch's run, the verify_warm
    // cold shadow, and the engine oracle each record a trail.
    obs::FlightRecorder run_rec, cold_rec, engine_rec;
    obs::RunDigester run_dig, cold_dig, engine_dig;
    if (cfg.audit) {
      run_dig.attach_recorder(&run_rec);
      cold_dig.attach_recorder(&cold_rec);
      engine_dig.attach_recorder(&engine_rec);
    }

    proto::RunResult run;
    proto::RunResult cold;
    bool have_cold = false;
    if (inc_cfg.warm_start) {
      // Under adaptive scheduling every estimation runs at drift >=
      // drift_threshold by construction — that is the scheduler's cadence,
      // not an anomaly, so the warm fallback bound must sit above it or
      // the warm tier would be structurally dead. Twice the threshold
      // leaves room for the one-epoch overshoot past the trigger.
      proto::WarmConfig warm_cfg = inc_cfg.warm;
      if (inc_cfg.adaptive) {
        warm_cfg.max_drift =
            std::max(warm_cfg.max_drift, 2.0 * inc_cfg.drift_threshold);
      }
      warm_cfg.eps_phase_skip = inc_cfg.eps_warm;
      warm_cfg.eps_budget = inc_cfg.eps_budget;
      warm_cfg.eps_margin = inc_cfg.eps_margin;
      warm_cfg.flood = cfg.flood;
      auto warm = proto::run_counting_warm(
          snap.overlay, dense_byz, *strategy, cfg.protocol, color_seed,
          snap.dense_to_stable, inc->last_dirty(), acc_drift, warm_cfg,
          warm_state, cfg.audit ? &run_dig : nullptr);
      run = std::move(warm.run);
      stats.warm_used = warm.warm_used;
      stats.verify_rows_reused = warm.rows_reused;
      stats.verify_rows_recomputed = warm.rows_recomputed;
      stats.eps_used = warm.eps_used;
      stats.eps_entry_phase = warm.eps_entry_phase;
      stats.eps_budget_nodes = warm.eps_budget_nodes;
      stats.eps_skipped_subphases = warm.eps_skipped_subphases;
      if (inc_cfg.verify_warm) {
        auto cold_strategy = adv::make_strategy(cfg.strategy);
        proto::RunControls cold_rc;
        cold_rc.digester = cfg.audit ? &cold_dig : nullptr;
        cold_rc.flood = cfg.flood;
        cold = proto::run_counting_with(snap.overlay, dense_byz,
                                        *cold_strategy, cfg.protocol,
                                        color_seed, cold_rc);
        have_cold = true;
        stats.messages_cold = cold.instr.total_messages();
        if (!warm.eps_used) {
          // Exact tier: the equivalence contract is bitwise. Warm and cold
          // trails legitimately differ in shape (lazy subphases), so the
          // forensics here are evidence attached to the decision mismatch.
          if (cold.status != run.status || cold.estimate != run.estimate) {
            const std::string report = cfg.audit
                ? emit_forensics(cfg, e, "verify_warm",
                                 "warm-started decisions diverged from the "
                                 "cold run",
                                 "warm", "cold-shadow", run_dig, cold_dig,
                                 &run_rec, &cold_rec)
                : std::string{};
            throw std::logic_error(
                "run_churn: warm-started decisions diverged from the cold "
                "run at epoch " + std::to_string(e) +
                (report.empty() ? "" : " (forensics: " + report + ")"));
          }
        } else {
          // ε-warm tier: divergence is allowed but must stay within the
          // paper's outlier budget — the accounting invariant.
          std::uint64_t divergent = 0;
          for (NodeId i = 0; i < n; ++i) {
            if (cold.status[i] != run.status[i] ||
                cold.estimate[i] != run.estimate[i]) {
              ++divergent;
            }
          }
          stats.eps_divergent = divergent;
          if (divergent > warm.eps_budget_nodes) {
            const std::string report = cfg.audit
                ? emit_forensics(cfg, e, "verify_warm",
                                 "eps-warm divergence exceeded the ε·n "
                                 "budget",
                                 "eps-warm", "cold-shadow", run_dig, cold_dig,
                                 &run_rec, &cold_rec)
                : std::string{};
            throw std::logic_error(
                "run_churn: eps-warm divergence " + std::to_string(divergent) +
                " exceeds the ε·n budget " +
                std::to_string(warm.eps_budget_nodes) + " at epoch " +
                std::to_string(e) +
                (report.empty() ? "" : " (forensics: " + report + ")"));
          }
        }
      }
    } else {
      proto::RunControls run_rc;
      run_rc.digester = cfg.audit ? &run_dig : nullptr;
      run_rc.flood = cfg.flood;
      run = proto::run_counting_with(snap.overlay, dense_byz, *strategy,
                                     cfg.protocol, color_seed, run_rc);
    }

    if (cfg.audit) stats.run_digest = run_dig.trail().run_digest;
    stats.fresh = proto::summarize_accuracy(run, n, cfg.band_lo, cfg.band_hi);
    run_shadow(stats, e, snap.overlay, dense_byz);
    stats.messages = run.instr.total_messages();
    stats.subphases_scheduled = run.subphases_scheduled;
    stats.subphases_executed = run.subphases_executed;

    if (cfg.run_engine) {
      auto strategy2 = adv::make_strategy(cfg.strategy);
      sim::Engine engine(snap.overlay, dense_byz, *strategy2, cfg.protocol,
                         color_seed, nullptr, 1,
                         cfg.audit ? &engine_dig : nullptr);
      // Warm runs skip flood traffic by design; the Engine's full-fidelity
      // accounting is compared against the cold tier (verify_warm is
      // enforced above whenever warm_start is on).
      stats.engine_match = same_outcome(have_cold ? cold : run, engine.run());
      if (cfg.audit) {
        // The engine and its comparison partner (the cold run, or the
        // epoch's plain run when no warm tier is on) execute identical
        // schedules, so their trails must match entry for entry.
        const obs::RunDigester& ref = have_cold ? cold_dig : run_dig;
        const obs::FlightRecorder& ref_rec = have_cold ? cold_rec : run_rec;
        const auto div =
            obs::first_divergence(ref.trail(), engine_dig.trail());
        if (!stats.engine_match || div.diverged()) {
          stats.forensics_path = emit_forensics(
              cfg, e, "engine_oracle",
              stats.engine_match
                  ? "digest trails diverged (outcomes identical)"
                  : "engine outcome diverged from the fastpath",
              have_cold ? "cold-shadow" : "fastpath", "engine", ref,
              engine_dig, &ref_rec, &engine_rec);
        }
      }
    }

    for (NodeId i = 0; i < n; ++i) {
      if (run.status[i] == proto::NodeStatus::kDecided) {
        last_estimate[snap.dense_to_stable[i]] = run.estimate[i];
      }
    }
    acc_drift = 0.0;
    n_last_estimated = static_cast<double>(n);
    stamp_epoch_span(stats);
    out.epochs.push_back(stats);
  }
  return out;
}

std::int32_t recovery_epochs(const ChurnRunResult& result,
                             std::uint32_t burst_epoch, double threshold) {
  // -1 unless the threshold is actually MET by an epoch of the trace: a
  // burst at (or past) the final epoch whose fresh in-band fraction never
  // re-enters the band is "never recovered", not trivially recovered.
  for (std::uint32_t e = burst_epoch; e < result.epochs.size(); ++e) {
    if (result.epochs[e].fresh.frac_in_band >= threshold) {
      return static_cast<std::int32_t>(e - burst_epoch);
    }
  }
  return -1;
}

}  // namespace byz::dynamics
