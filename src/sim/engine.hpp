// Message-level reference implementation of the counting protocols.
//
// Unlike the array fast path (protocols/fastpath.*), this engine represents
// every token as a message object moving between per-node inboxes, and each
// honest node runs its own local state machine over its inbox — the way one
// would implement the protocol on a real network. Byzantine sends are
// composed from the Strategy exactly as in the fast path, and the Verifier,
// ClaimSet/crash rule, coin table, and schedule are shared, so the two
// tiers must produce IDENTICAL per-node decisions on the same seed; the
// equivalence suite asserts that, plus equality of the message accounting.
//
// Round/delivery semantics (one flood step of phase i):
//   1. SENDS — every node whose running maximum improved in the previous
//      step (at step 1: every color generator) broadcasts that maximum to
//      its H-neighbors; each token lands in the receiver's inbox. This is
//      the forward-once rule: a value is relayed at most once per node,
//      the step after it was learned.
//   2. DELIVERY — each node drains its inbox. Honest receivers filter
//      every token through the Verifier (sender state is still pre-close,
//      so the legit-fresh check is exact); Byzantine receivers absorb
//      without verification. Crashed and non-present nodes drop their
//      inbox unread.
//   3. CLOSE — receive maxima fold into the k_t bookkeeping
//      (best_before/last_step) and, on improvement, arm the node to send
//      next step. Messages sent and received within one step never
//      influence that same step's sends — the engine is synchronous.
//
// MID-RUN CHURN (proto::MidRunHooks, the same interface the fast path
// consumes): when hooks are attached the engine runs the mid-run
// membership state machine instead of a frozen snapshot —
//   * the id space is node_bound(): snapshot members occupy [0, n),
//     scheduled joiners [n, node_bound()), inert until their entry round;
//   * before each step's sends the engine computes the canonical wavefront
//     and calls begin_round(), which applies that round's join/leave
//     events; sends/receives are then gated on alive(), so departed nodes
//     fall silent from their departure round and joiners hear from entry;
//   * at each phase boundary begin_phase() applies the MembershipPolicy:
//     it hands back the Verifier the phase must use and the joiners that
//     become generating participants (kReadmitNextPhase) or neither
//     (kTreatAsSilent);
//   * after each phase, nodes the hooks report departed() leave the
//     active set with status kDeparted before the decide sweep runs.
// Every transition mirrors protocols/fastpath.cpp step for step, so
// engine-vs-fastpath equivalence holds BITWISE at nonzero mid-run churn —
// the E26 oracle — not just on the static path.
//
// Intended for n up to a few thousand (tests, E7 message accounting,
// the E26 mid-run oracle). An Engine instance drives one run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/midrun.hpp"
#include "protocols/verification.hpp"

namespace byz::sim {

class Engine {
 public:
  /// `overlay` is the (run-start) snapshot; under mid-run churn `midrun`
  /// supplies the live topology and `byz_mask` must cover the full
  /// node_bound() id space (snapshot members + scheduled joiners), exactly
  /// as for proto::run_counting_with. Null hooks = the static reference
  /// path, unchanged. `start_phase` mirrors RunControls::start_phase (the
  /// ε-warm entry): the phase loop begins there and the global round clock
  /// is pre-advanced past the skipped prefix, keeping the churn schedule's
  /// event→round mapping bitwise aligned with the fast path. `digester`
  /// attaches divergence-forensics digesting (obs/digest.hpp) at the same
  /// semantic points as RunControls::digester on the fast path, so the two
  /// tiers' digest trails are comparable entry for entry.
  Engine(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
         adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
         std::uint64_t color_seed, proto::MidRunHooks* midrun = nullptr,
         std::uint32_t start_phase = 1,
         obs::RunDigester* digester = nullptr);

  /// Executes setup + phases until all honest nodes decided/crashed or the
  /// phase cap is reached.
  [[nodiscard]] proto::RunResult run();

  /// Per-round message volume trace (index = flooding round), for E7.
  [[nodiscard]] const std::vector<std::uint64_t>& round_messages() const {
    return round_messages_;
  }

 private:
  struct Token {
    graph::NodeId from;
    proto::Color color;
  };

  /// Local state of one honest node's protocol instance.
  struct NodeMachine {
    bool crashed = false;
    // Per-subphase registers.
    proto::Color own = 0;
    proto::Color known = 0;
    std::uint32_t fresh_step = 0;
    proto::Color best_before = 0;
    proto::Color last_step = 0;
    bool fired_this_phase = false;

    void begin_subphase(proto::Color own_color) noexcept {
      own = own_color;
      known = own_color;
      fresh_step = 0;
      best_before = 0;
      last_step = 0;
    }
  };

  void run_subphase(std::uint32_t phase, std::uint32_t j, std::uint32_t s);
  [[nodiscard]] bool present(graph::NodeId v) const {
    return midrun_ == nullptr || midrun_->alive(v);
  }

  const graph::Overlay& overlay_;
  const std::vector<bool>& byz_;
  adv::Strategy& strategy_;
  proto::ProtocolConfig cfg_;
  std::uint64_t color_seed_;
  proto::MidRunHooks* midrun_;
  std::uint32_t start_phase_;
  obs::RunDigester* digester_;
  graph::NodeId nb_;  ///< run id space: overlay n, or midrun node_bound()
  World world_;
  /// Static path: built once in the constructor. Mid-run path: handed out
  /// by begin_phase() each phase (refreshed under kReadmitNextPhase).
  std::optional<proto::Verifier> owned_verifier_;
  const proto::Verifier* verifier_ = nullptr;

  std::vector<NodeMachine> nodes_;
  std::vector<std::vector<Token>> inbox_;
  /// Honest, uncrashed, undecided, not departed, admitted — the nodes that
  /// still generate colors; identical bookkeeping to the fast path's
  /// `active` vector.
  std::vector<std::uint8_t> active_;
  /// Mid-run only: has this id been admitted as a generating participant?
  /// Snapshot members start at 1; joiners flip at a phase boundary.
  std::vector<std::uint8_t> participates_;
  std::uint64_t active_count_ = 0;
  std::uint64_t global_round_ = 0;  ///< drives the churn schedule clock
  std::vector<graph::NodeId> frontier_scratch_;
  proto::RunResult result_;
  std::vector<std::uint64_t> round_messages_;
};

}  // namespace byz::sim
