// E4 — The §1.2 motivation, quantified: every classical estimator is exact
// (or near-exact) on a clean network and is destroyed by a single Byzantine
// node; Byzantine suppression also blinds the leader-flood approach when
// the leader itself is Byzantine.
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e04(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(13));
  const auto& sched = ctx.scheduler();

  {
    struct Row {
      std::uint64_t clean = 0, hit1 = 0, hitm = 0;
      std::uint32_t rounds = 0;
    };
    const auto rows = sched.map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      util::Xoshiro256 rng(0xE4 + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[n / 2] = true;
      const auto byz = place_byz(n, 0.5, 0xE4 + n);
      const auto clean =
          base::run_geometric_support(h, none, base::FloodAttack::kNone, 64, 1);
      const auto hit1 =
          base::run_geometric_support(h, one, base::FloodAttack::kInflate, 64, 1);
      const auto hitm =
          base::run_geometric_support(h, byz, base::FloodAttack::kInflate, 64, 1);
      return Row{clean.estimate[0], hit1.estimate[0], hitm.estimate[0],
                 clean.rounds};
    });
    util::Table table("E4a: geometric max-flood estimate of log2 n (d=8)");
    table.columns({"n", "log2 n", "clean est", "1 byz inflate", "sqrt(n) byz",
                   "rounds"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(lg(sizes[i]), 1)
          .cell(rows[i].clean)
          .cell(rows[i].hit1)
          .cell(rows[i].hitm)
          .cell(rows[i].rounds);
    }
    table.note("One inflating Byzantine node suffices: every honest node "
               "adopts the fake maximum (2^30).");
    ctx.emit(table);
  }
  {
    struct Row {
      double clean = 0.0, hit = 0.0;
    };
    const auto rows = sched.map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      util::Xoshiro256 rng(0xE4B + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[1] = true;
      const auto clean = base::run_exponential_support(
          h, none, base::FloodAttack::kNone, 64, 64, 2);
      const auto hit = base::run_exponential_support(
          h, one, base::FloodAttack::kInflate, 64, 64, 2);
      return Row{clean.estimate[0], hit.estimate[0]};
    });
    util::Table table("E4b: exponential support estimation n-hat (s=64)");
    table.columns({"n", "clean n-hat", "1 byz inflate", "clean err %"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double n = static_cast<double>(sizes[i]);
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(rows[i].clean, 0)
          .cell(rows[i].hit, 0)
          .cell(100.0 * std::abs(rows[i].clean - n) / n, 1);
    }
    ctx.emit(table);
  }
  {
    struct Row {
      std::uint64_t clean = 0, inflate = 0, zero = 0;
      std::uint32_t rounds = 0;
    };
    const auto rows = sched.map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      util::Xoshiro256 rng(0xE4C + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[n / 3] = true;
      const auto clean =
          base::run_spanning_tree_count(h, none, 0, base::TreeAttack::kNone);
      const auto inflate =
          base::run_spanning_tree_count(h, one, 0, base::TreeAttack::kInflate);
      const auto zero =
          base::run_spanning_tree_count(h, one, 0, base::TreeAttack::kZero);
      return Row{clean.root_count, inflate.root_count, zero.root_count,
                 clean.rounds};
    });
    util::Table table("E4c: spanning-tree converge-cast count");
    table.columns({"n", "clean", "1 byz inflate", "1 byz zero", "rounds"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(rows[i].clean)
          .cell(rows[i].inflate)
          .cell(rows[i].zero)
          .cell(rows[i].rounds);
    }
    ctx.emit(table);
  }
  {
    struct Row {
      double clean = 0.0, hit = 0.0;
    };
    const auto rows = sched.map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      const std::vector<bool> none(n, false);
      const auto byz = place_byz(n, 0.5, 0xE4D + n);
      const auto m = static_cast<std::uint32_t>(
          8.0 * std::sqrt(static_cast<double>(n)));
      const auto clean = base::run_birthday(n, none, m, 3);
      const auto hit = base::run_birthday(n, byz, m, 3);
      return Row{clean.estimate, hit.estimate};
    });
    util::Table table("E4d: birthday-paradox estimator (m = 8 sqrt(n))");
    table.columns({"n", "clean n-hat", "n^0.5 byz n-hat"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(rows[i].clean, 0)
          .cell(rows[i].hit, 0);
    }
    ctx.emit(table);
  }
  {
    struct Row {
      std::uint32_t ecc = 0;
      bool never_starts = false;
      std::uint64_t reached = 0;
    };
    const auto rows = sched.map(sizes.size(), [&](std::uint64_t i) {
      const auto n = sizes[i];
      util::Xoshiro256 rng(0xE4E + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> leader_byz(n, false);
      leader_byz[0] = true;
      std::vector<bool> belt(n, false);
      for (int b = 0; b < 32; ++b) belt[rng.below(n)] = true;
      const auto honest = base::run_flood_diameter(h, none, 0, false, 64);
      const auto byzled = base::run_flood_diameter(h, leader_byz, 0, false, 64);
      const auto sup = base::run_flood_diameter(h, belt, 1, true, 64);
      Row row;
      for (const auto f : honest.first_seen) {
        if (f != graph::kUnreachable) row.ecc = std::max(row.ecc, f);
      }
      row.never_starts = byzled.rounds == 0;
      for (const auto f : sup.first_seen) {
        if (f != graph::kUnreachable) ++row.reached;
      }
      return row;
    });
    util::Table table("E4e: leader flood-diameter (needs a leader — the catch)");
    table.columns({"n", "honest leader ecc", "byz leader", "reached (32 byz "
                   "suppressors)"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.row()
          .cell(std::uint64_t{sizes[i]})
          .cell(rows[i].ecc)
          .cell(rows[i].never_starts ? "never starts" : "?")
          .cell(rows[i].reached);
    }
    table.note("Estimating log n via a leader's flood works — but electing "
               "the leader without knowing n is the very problem (§1.2).");
    ctx.emit(table);
  }
}

}  // namespace

BYZBENCH_REGISTER(e04) {
  ScenarioSpec spec;
  spec.id = "e04";
  spec.title = "classical baselines destroyed by one Byzantine node";
  spec.claim = "S1.2: max-flood, support, tree-count, birthday, leader-flood "
               "all fail under a single fault";
  spec.grid = {{"baseline", {"max-flood", "exp-support", "tree", "birthday",
                             "leader-flood"}},
               pow2_axis(10, 13)};
  spec.base_trials = 1;
  spec.metrics = {};
  spec.run = run_e04;
  return spec;
}
