// Metrics registry: named counters, gauges, and fixed-bucket log2
// histograms with lock-free per-thread shards merged at scrape time.
//
// Handles intern their name once (a mutex-guarded lookup, normally hidden
// behind a function-local static at the call site); recording then touches
// only the calling thread's shard with relaxed atomics — no contention, so
// the work-stealing trial scheduler can record from every worker. A shard
// is folded into a retained accumulator when its thread exits, and
// metrics_snapshot() merges retained + live shards into one view.
//
// Histogram buckets are log2: bucket 0 holds value 0 and bucket b >= 1
// holds values in [2^(b-1), 2^b - 1] (the last bucket absorbs the tail).
//
// Like every obs/ facility this is pure read-side (see obs.hpp) and inert
// until obs::set_enabled(true).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace byz::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

/// log2 bucket index of a sample: 0 -> 0, v -> bit_width(v) capped at
/// kHistogramBuckets - 1.
[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t value) noexcept {
  const auto b = static_cast<std::size_t>(std::bit_width(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

#if BYZ_OBS_ENABLED
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  std::uint32_t id_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name);
  void set(double value) const noexcept;

 private:
  std::uint32_t id_;
};

class Histogram {
 public:
  explicit Histogram(std::string_view name);
  void observe(std::uint64_t value) const noexcept;

 private:
  std::uint32_t id_;
};
#else
class Counter {
 public:
  explicit Counter(std::string_view) noexcept {}
  void add(std::uint64_t = 1) const noexcept {}
};

class Gauge {
 public:
  explicit Gauge(std::string_view) noexcept {}
  void set(double) const noexcept {}
};

class Histogram {
 public:
  explicit Histogram(std::string_view) noexcept {}
  void observe(std::uint64_t) const noexcept {}
};
#endif

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Point-in-time merge of every shard. Registration order, so output is
/// stable across scrapes of the same process.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Merges retained + live thread shards. Safe to call concurrently with
/// recording threads (their in-flight increments may or may not land).
[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Counter and histogram deltas `after - before` (gauges keep `after`'s
/// value). Both snapshots must come from the same process; names present
/// only in `after` are kept as-is.
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after);

/// Quantile estimate from the log2 buckets: walks the cumulative counts to
/// the bucket holding rank q*count and interpolates linearly inside its
/// [2^(b-1), 2^b - 1] value range. Exact for bucket 0 (zeros); elsewhere
/// the error is bounded by the bucket width. 0 when the histogram is empty.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& h, double q);

/// byzobs/metrics/v1 JSON document for a snapshot. Histograms carry p50 /
/// p95 / p99 estimates (histogram_quantile) alongside the raw buckets.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snap);

/// Writes metrics_json(metrics_snapshot()) to `path`. False on I/O error.
bool write_metrics_file(const std::string& path);

/// Zeroes every counter/gauge/histogram (names stay registered). Tests.
void reset_metrics();

}  // namespace byz::obs
