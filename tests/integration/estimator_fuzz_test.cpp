// Randomized cross-backend fuzz: ~200 (n, d, Byzantine placement,
// adversary, seed) instances through analysis::compare_backends — the
// algo2 <-> brc agreement oracle — asserting on EVERY instance that each
// backend honors its own declared bound and the pair agrees within the
// combined band. Two algorithms sharing no decision logic cannot drift
// together, so a systematic failure here localizes a real bug in one of
// them (or in the shared flood/obs machinery, which E30's bitwise oracle
// then pins down). A second suite pins determinism: the whole fuzz corpus
// is bitwise reproducible across scheduler --jobs values and across
// serial/parallel flood kernels — the same guarantees CI's cross---jobs
// manifest cmp enforces for the registered scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/backend_compare.hpp"
#include "adversary/strategies.hpp"
#include "bench_core/scheduler.hpp"
#include "graph/categories.hpp"
#include "graph/small_world.hpp"
#include "protocols/estimator.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace byz {
namespace {

struct FuzzInstance {
  graph::NodeId n = 0;
  std::uint32_t d = 0;
  double delta = 0.0;
  adv::StrategyKind strategy = adv::StrategyKind::kHonest;
  std::uint64_t seed = 0;
};

/// Derives instance i of the corpus from a SplitMix64 stream — pure
/// function of (corpus_seed, i), so every suite below sees the identical
/// corpus regardless of execution order or thread count.
FuzzInstance derive_instance(std::uint64_t corpus_seed, std::uint64_t i) {
  util::SplitMix64 stream(util::mix_seed(corpus_seed, i));
  FuzzInstance inst;
  inst.n = static_cast<graph::NodeId>(128 + stream.next() % 257);  // [128,384]
  const std::uint32_t degrees[] = {4, 6, 8};
  inst.d = degrees[stream.next() % 3];
  inst.delta = 0.4 + 0.1 * static_cast<double>(stream.next() % 4);  // .4-.7
  const adv::StrategyKind kinds[] = {adv::StrategyKind::kHonest,
                                     adv::StrategyKind::kFakeColor,
                                     adv::StrategyKind::kSuppress};
  inst.strategy = kinds[stream.next() % 3];
  inst.seed = stream.next();
  return inst;
}

analysis::BackendComparison run_instance(const FuzzInstance& inst,
                                         const proto::Estimator& algo2,
                                         const proto::Estimator& brc,
                                         proto::FloodExec flood = {}) {
  graph::OverlayParams params;
  params.n = inst.n;
  params.d = inst.d;
  params.seed = inst.seed;
  const auto overlay = graph::Overlay::build(params);
  util::Xoshiro256 place_rng(util::mix_seed(inst.seed, 0x0B12));
  const auto byz = graph::random_byzantine_mask(
      inst.n, sim::derive_byz_count(inst.n, inst.delta), place_rng);
  return analysis::compare_backends(overlay, byz, inst.strategy, inst.seed,
                                    algo2, brc, flood);
}

std::string describe(const FuzzInstance& inst) {
  return "n=" + std::to_string(inst.n) + " d=" + std::to_string(inst.d) +
         " delta=" + std::to_string(inst.delta) +
         " strategy=" + adv::to_string(inst.strategy) +
         " seed=" + std::to_string(inst.seed);
}

constexpr std::uint64_t kCorpusSeed = 0xF0220;
constexpr std::uint64_t kInstances = 200;

TEST(EstimatorFuzz, AgreementInvariantHoldsOnRandomInstances) {
  // Two invariants are ZERO-tolerance on every instance: the pairwise
  // combined-band agreement (the deployable, ground-truth-free oracle) and
  // BRC's own declared bound (calibrated with 2x margin down to n=128).
  // algo2's own band is asserted STATISTICALLY instead: its declared
  // eps=0.15 is the paper's asymptotic claim, and this corpus deliberately
  // fuzzes far below it (n in [128, 384] with up to ~13% Byzantine density,
  // where fake-color attacks leave 20-40% of honest nodes undecided on
  // some instances). The measured miss rate is ~7.5%; the 15% ceiling
  // still catches any systematic regression. E32 guards the own-bound
  // check at zero violations in the calibrated regime (n >= 1024).
  const auto algo2 = proto::make_estimator("algo2");
  const auto brc = proto::make_estimator("brc");
  std::uint64_t algo2_band_misses = 0;
  for (std::uint64_t i = 0; i < kInstances; ++i) {
    const auto inst = derive_instance(kCorpusSeed, i);
    const auto cmp = run_instance(inst, *algo2, *brc);
    EXPECT_TRUE(cmp.agree)
        << "combined-band agreement violated on instance " << i << " ("
        << describe(inst) << "): ratio=" << cmp.ratio << " band=["
        << cmp.combined_lo << ", " << cmp.combined_hi << "]";
    EXPECT_TRUE(cmp.b.in_band)
        << "brc broke its own declared bound on instance " << i << " ("
        << describe(inst) << "): frac_in_band=" << cmp.b.accuracy.frac_in_band
        << " median_ratio=" << cmp.b.median_ratio;
    if (!cmp.a.in_band) ++algo2_band_misses;
  }
  EXPECT_LE(algo2_band_misses, kInstances * 15 / 100)
      << "algo2 own-band miss rate regressed far beyond the small-n "
         "baseline (~7.5%)";
}

TEST(EstimatorFuzz, CorpusBitwiseDeterministicAcrossJobs) {
  // The corpus replayed through the shared TrialScheduler at 1 and 4
  // workers: every comparison must be bitwise identical — same medians,
  // ratios, rounds, message counts — because nothing in compare_backends
  // may depend on scheduling (fresh strategies, per-instance seeds).
  const auto algo2 = proto::make_estimator("algo2");
  const auto brc = proto::make_estimator("brc");
  constexpr std::uint64_t kSubset = 48;  // full corpus x2 would be slow
  const auto run_all = [&](unsigned jobs) {
    const bench_core::TrialScheduler scheduler(jobs);
    return scheduler.map(kSubset, [&](std::uint64_t i) {
      return run_instance(derive_instance(kCorpusSeed, i), *algo2, *brc);
    });
  };
  const auto one = run_all(1);
  const auto four = run_all(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].a.median_estimate, four[i].a.median_estimate) << i;
    EXPECT_EQ(one[i].b.median_estimate, four[i].b.median_estimate) << i;
    EXPECT_EQ(one[i].ratio, four[i].ratio) << i;
    EXPECT_EQ(one[i].a.rounds, four[i].a.rounds) << i;
    EXPECT_EQ(one[i].b.rounds, four[i].b.rounds) << i;
    EXPECT_EQ(one[i].a.messages, four[i].a.messages) << i;
    EXPECT_EQ(one[i].b.messages, four[i].b.messages) << i;
    EXPECT_EQ(one[i].agree, four[i].agree) << i;
    EXPECT_EQ(one[i].a.in_band, four[i].a.in_band) << i;
    EXPECT_EQ(one[i].b.in_band, four[i].b.in_band) << i;
  }
}

TEST(EstimatorFuzz, CorpusBitwiseDeterministicAcrossFloodThreads) {
  // Serial reference kernel vs word-packed parallel kernel at 2 and 4
  // threads: the flood kernel's determinism-by-construction contract must
  // carry through BOTH backends end to end.
  const auto algo2 = proto::make_estimator("algo2");
  const auto brc = proto::make_estimator("brc");
  constexpr std::uint64_t kSubset = 24;
  for (std::uint64_t i = 0; i < kSubset; ++i) {
    const auto inst = derive_instance(kCorpusSeed, i);
    const auto serial = run_instance(inst, *algo2, *brc);
    for (const std::uint32_t threads : {2u, 4u}) {
      const auto parallel =
          run_instance(inst, *algo2, *brc,
                       {proto::FloodMode::kParallel, threads});
      EXPECT_EQ(serial.a.median_estimate, parallel.a.median_estimate)
          << describe(inst) << " threads=" << threads;
      EXPECT_EQ(serial.b.median_estimate, parallel.b.median_estimate)
          << describe(inst) << " threads=" << threads;
      EXPECT_EQ(serial.a.rounds, parallel.a.rounds) << describe(inst);
      EXPECT_EQ(serial.b.rounds, parallel.b.rounds) << describe(inst);
      EXPECT_EQ(serial.a.messages, parallel.a.messages) << describe(inst);
      EXPECT_EQ(serial.b.messages, parallel.b.messages) << describe(inst);
      EXPECT_EQ(serial.ratio, parallel.ratio) << describe(inst);
    }
  }
}

}  // namespace
}  // namespace byz
