#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace byz::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/byz_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row({"1", "2"});
    w.write_row({"3", "4"});
    EXPECT_EQ(w.rows_written(), 2u);
    w.close();
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, QuotesSpecials) {
  {
    CsvWriter w(path_, {"x"});
    w.write_row({"a,b"});
    w.write_row({"say \"hi\""});
    w.close();
  }
  EXPECT_EQ(slurp(path_), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, WidthMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace byz::util
