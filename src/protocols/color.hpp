// Color machinery (§3.1): a node's color is the index of the first head in
// a fair-coin sequence, i.e. Pr[c = r] = 2^-r. The protocol compares the
// maximum color seen against the per-phase threshold
//   thr(i) = l_i - log2(l_i),  l_i = log2 d + (i-1) log2(d-1)
// (Algorithm 1 line 16 / Algorithm 2 line 18 — the two lines are the same
// quantity written differently; see DESIGN.md §3.5).
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace byz::proto {

using Color = std::uint32_t;

/// Draws one geometric color (>= 1).
[[nodiscard]] inline Color draw_color(util::Xoshiro256& rng) noexcept {
  return util::geometric_color(rng);
}

/// l_r = log2 d + r·log2(d-1): log of the tree-ball boundary size used by
/// the analysis (Lemma 6, up to the constant terms spelled out there).
[[nodiscard]] double ell(std::uint32_t d, std::uint32_t r);

/// The continuation threshold of phase i: a node only treats the phase as
/// "still growing" if the round-i maximum exceeds thr(i).
[[nodiscard]] double continue_threshold(std::uint32_t i, std::uint32_t d);

/// Deterministic per-(seed, node, subphase) color: random access into the
/// protocol's coin table. The full-information adversary reads future
/// subphases through the same function, which is exactly the model's
/// "Byzantine nodes know future random choices".
[[nodiscard]] Color color_at(std::uint64_t color_seed, std::uint32_t node,
                             std::uint32_t global_subphase) noexcept;

/// Probability helpers matching Observation 4 (used by tests).
[[nodiscard]] double prob_color_eq(std::uint32_t r);        ///< Pr[c = r]
[[nodiscard]] double prob_color_ge(std::uint32_t r);        ///< Pr[c >= r]
[[nodiscard]] double prob_max_color_le(std::uint32_t r, double n);  ///< Obs 5.3

}  // namespace byz::proto
