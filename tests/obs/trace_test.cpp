#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "bench_core/json.hpp"

namespace byz::obs {
namespace {

/// Flips the runtime switch on for one test and restores "off" (the
/// process default) afterwards, with the span buffers cleared both sides.
class ObsGuard {
 public:
  ObsGuard() {
    reset_trace();
    set_enabled(true);
  }
  ~ObsGuard() {
    set_enabled(false);
    reset_trace();
  }
};

const bench_core::Json* find_event(const bench_core::Json& doc,
                                   const std::string& name) {
  for (const auto& e : doc.find("traceEvents")->elements()) {
    if (e.find("name")->as_string() == name) return &e;
  }
  return nullptr;
}

TEST(TraceExport, EmptySnapshotIsValidJson) {
  reset_trace();
  const auto doc = bench_core::Json::parse(chrome_trace_json(trace_snapshot()));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("otherData")->find("schema")->as_string(),
            "byzobs/trace/v1");
  // The process_name metadata record is always present.
  ASSERT_NE(find_event(*doc, "process_name"), nullptr);
}

#if BYZ_OBS_ENABLED

TEST(TraceExport, DisabledSpanRecordsNothing) {
  reset_trace();
  ASSERT_FALSE(enabled());  // runtime default is off
  {
    Span span("test.disabled");
    span.arg("k", 1);
  }
  EXPECT_TRUE(trace_snapshot().events.empty());
}

TEST(TraceExport, SpanRecordsNameDurationAndArgs) {
  ObsGuard guard;
  {
    Span span("test.span");
    span.arg("int", 42)
        .arg("negative", std::int64_t{-7})
        .arg("ratio", 0.5)
        .arg("label", "x \"quoted\"");
  }
  const auto snap = trace_snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].name, "test.span");
  EXPECT_EQ(snap.dropped, 0u);

  const auto doc = bench_core::Json::parse(chrome_trace_json(snap));
  ASSERT_TRUE(doc.has_value());
  const auto* event = find_event(*doc, "test.span");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->find("ph")->as_string(), "X");
  EXPECT_TRUE(event->contains("ts"));
  EXPECT_TRUE(event->contains("dur"));
  const auto* args = event->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->find("int")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(args->find("negative")->as_number(), -7.0);
  EXPECT_DOUBLE_EQ(args->find("ratio")->as_number(), 0.5);
  EXPECT_EQ(args->find("label")->as_string(), "x \"quoted\"");
}

TEST(TraceExport, NestedSpansShareTheThreadAndSortByStart) {
  ObsGuard guard;
  {
    Span outer("test.outer");
    Span inner("test.inner");
  }
  const auto snap = trace_snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  // Events are (ts, tid)-sorted; the outer span started first.
  EXPECT_EQ(snap.events[0].tid, snap.events[1].tid);
  EXPECT_LE(snap.events[0].ts_us, snap.events[1].ts_us);
}

TEST(TraceExport, WorkerThreadSpansSurviveJoinAndCarryTheirName) {
  ObsGuard guard;
  std::thread worker([] {
    set_trace_thread_name("worker-test");
    Span span("test.worker_span");
  });
  worker.join();
  const auto snap = trace_snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  const auto tid = snap.events[0].tid;
  bool named = false;
  for (const auto& [t, name] : snap.threads) {
    if (t == tid && name == "worker-test") named = true;
  }
  EXPECT_TRUE(named);

  const auto doc = bench_core::Json::parse(chrome_trace_json(snap));
  ASSERT_TRUE(doc.has_value());
  bool meta_named = false;
  for (const auto& e : doc->find("traceEvents")->elements()) {
    if (e.find("name")->as_string() == "thread_name" &&
        e.find("args")->find("name")->as_string() == "worker-test") {
      meta_named = true;
    }
  }
  EXPECT_TRUE(meta_named);
}

TEST(TraceExport, ResetDiscardsBufferedEvents) {
  ObsGuard guard;
  { Span span("test.discarded"); }
  reset_trace();
  EXPECT_TRUE(trace_snapshot().events.empty());
}

#endif  // BYZ_OBS_ENABLED

}  // namespace
}  // namespace byz::obs
