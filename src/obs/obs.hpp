// Observability master switch shared by the metrics registry and the span
// tracer (src/obs/metrics.hpp, src/obs/trace.hpp).
//
// Two gates, both defaulting to "off the hot path":
//   * compile time — building with -DBYZ_OBS_ENABLED=0 (CMake option
//     BYZCOUNT_OBS=OFF) turns every Counter/Gauge/Histogram/Span into an
//     empty inline stub, so instrumented call sites cost nothing;
//   * run time — with the default build, recording still starts disabled:
//     every record call is one relaxed atomic load until set_enabled(true)
//     (byzbench --trace-out/--metrics-out, size_service --trace-out).
//
// Hard invariant: everything in obs/ is PURE READ-SIDE. It never draws
// from an RNG, never touches sim::Instrumentation, and never feeds a
// value back into protocol or scheduling decisions — so BENCH manifests
// are bitwise identical with observability on and off (CI-guarded).
#pragma once

#include <string>
#include <string_view>

#ifndef BYZ_OBS_ENABLED
#define BYZ_OBS_ENABLED 1
#endif

namespace byz::obs {

/// Runtime master switch. Off by default; when off, every metric/span
/// record call returns after a single relaxed load.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {

/// Appends `text` JSON-escaped (quotes, backslashes, control chars).
void append_json_escaped(std::string& out, std::string_view text);

/// Appends a double as JSON (shortest round-trip; nan/inf become 0).
void append_json_double(std::string& out, double value);

}  // namespace detail
}  // namespace byz::obs
