// Extension of the engine↔fastpath equivalence suite to the dynamic world:
// on EVERY epoch snapshot of a churn trace, the message-level Engine and
// the array fast path must produce identical per-node decisions and
// identical message accounting (run_churn compares status, estimates,
// phase/round counts, and the instrumentation counters when run_engine is
// set). This pins down that churn only changes WHICH overlay the protocol
// runs on, never how the two tiers execute it.
#include <gtest/gtest.h>

#include "dynamics/epoch_driver.hpp"

namespace byz {
namespace {

struct Case {
  dynamics::ChurnModel model;
  adv::StrategyKind strategy;
  adv::ChurnAdversary adversary;
  std::uint64_t seed;
};

class ChurnEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ChurnEquivalenceTest, EngineMatchesFastPathOnEverySnapshot) {
  const Case c = GetParam();
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 160;
  cfg.trace.epochs = 3;
  cfg.trace.arrival_rate = 6.0;
  cfg.trace.departure_rate = 6.0;
  cfg.trace.model = c.model;
  cfg.trace.burst_epoch = 1;
  cfg.trace.burst_fraction = 0.2;
  cfg.trace.min_n = 64;
  cfg.trace.seed = c.seed;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.strategy = c.strategy;
  cfg.churn_adversary = c.adversary;
  cfg.seed = c.seed;
  cfg.run_engine = true;

  const auto result = dynamics::run_churn(cfg);
  ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
  for (std::uint32_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_TRUE(result.epochs[e].engine_match)
        << "engine/fastpath divergence at epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChurnModels, ChurnEquivalenceTest,
    ::testing::Values(
        Case{dynamics::ChurnModel::kSteady, adv::StrategyKind::kHonest,
             adv::ChurnAdversary::kNone, 1},
        Case{dynamics::ChurnModel::kSteady, adv::StrategyKind::kFakeColor,
             adv::ChurnAdversary::kNone, 2},
        Case{dynamics::ChurnModel::kBurst, adv::StrategyKind::kAdaptive,
             adv::ChurnAdversary::kTargetedDeparture, 3},
        Case{dynamics::ChurnModel::kSybilJoin, adv::StrategyKind::kFakeColor,
             adv::ChurnAdversary::kSybilBurst, 4},
        Case{dynamics::ChurnModel::kSybilJoin,
             adv::StrategyKind::kCrashMaximizer, adv::ChurnAdversary::kEclipse,
             5}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = std::string(dynamics::to_string(c.model)) + "_" +
                         adv::to_string(c.strategy) + "_" +
                         adv::to_string(c.adversary) + "_s" +
                         std::to_string(c.seed);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace byz
