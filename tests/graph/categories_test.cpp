#include "graph/categories.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace byz::graph {
namespace {

Overlay sample(NodeId n = 512, std::uint32_t d = 8, std::uint64_t seed = 31) {
  OverlayParams p;
  p.n = n;
  p.d = d;
  p.seed = seed;
  return Overlay::build(p);
}

TEST(PaperRadiusA, MatchesFormula) {
  // a = δ / (10 k log2(d-1)), radius = a log2 n.
  const double r = paper_radius_a(1 << 20, 8, 3, 0.5);
  EXPECT_NEAR(r, 0.5 / (10 * 3 * std::log2(7.0)) * 20.0, 1e-12);
}

TEST(RandomByzMask, ExactCount) {
  util::Xoshiro256 rng(3);
  const auto mask = random_byzantine_mask(1000, 37, rng);
  std::uint32_t count = 0;
  for (const bool b : mask) count += b ? 1 : 0;
  EXPECT_EQ(count, 37u);
}

TEST(RandomByzMask, ZeroAndAll) {
  util::Xoshiro256 rng(4);
  const auto none = random_byzantine_mask(50, 0, rng);
  for (const bool b : none) EXPECT_FALSE(b);
  const auto all = random_byzantine_mask(50, 50, rng);
  for (const bool b : all) EXPECT_TRUE(b);
}

TEST(RandomByzMask, CountAboveNThrows) {
  util::Xoshiro256 rng(5);
  EXPECT_THROW((void)random_byzantine_mask(10, 11, rng), std::invalid_argument);
}

TEST(RandomByzMask, ApproximatelyUniform) {
  // Node 0 should be Byzantine in about count/n of the trials.
  int hits = 0;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    util::Xoshiro256 rng(t);
    const auto mask = random_byzantine_mask(100, 20, rng);
    hits += mask[0] ? 1 : 0;
  }
  EXPECT_NEAR(hits, 400, 80);
}

TEST(Categories, PartitionInvariants) {
  const Overlay o = sample();
  util::Xoshiro256 rng(7);
  const auto byz = random_byzantine_mask(o.num_nodes(), 16, rng);
  const auto cat = classify_categories(o, byz, /*ltl_radius=*/1,
                                       /*category_radius=*/1);
  const std::uint64_t n = o.num_nodes();
  EXPECT_EQ(cat.byz + cat.honest, n);
  EXPECT_EQ(cat.ltl + cat.nlt, n);
  EXPECT_EQ(cat.safe + cat.unsafe_, n);
  EXPECT_EQ(cat.bus + cat.byz_safe, n);
  EXPECT_EQ(cat.byz, 16u);
  // Bad = Byz ∪ NLT.
  EXPECT_GE(cat.bad, cat.byz);
  EXPECT_GE(cat.bad, cat.nlt);
  EXPECT_LE(cat.bad, cat.byz + cat.nlt);
}

TEST(Categories, ByzSafeImpliesNoBadNearby) {
  const Overlay o = sample(256, 6, 33);
  util::Xoshiro256 rng(9);
  const auto byz = random_byzantine_mask(o.num_nodes(), 8, rng);
  const std::uint32_t radius = 1;
  const auto cat = classify_categories(o, byz, 1, radius);
  // Spot-check definition: a byz-safe node has no bad node within G-radius.
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (!cat.is_byz_safe[v]) continue;
    EXPECT_FALSE(byz[v] || !cat.is_ltl[v]);
    for (const NodeId w : o.g().neighbors(v)) {
      EXPECT_FALSE(byz[w] || !cat.is_ltl[w])
          << "byz-safe node " << v << " has bad G-neighbor " << w;
    }
  }
}

TEST(Categories, NoByzantineMeansBadEqualsNlt) {
  const Overlay o = sample(256, 8, 35);
  const std::vector<bool> byz(o.num_nodes(), false);
  const auto cat = classify_categories(o, byz, 1, 1);
  EXPECT_EQ(cat.byz, 0u);
  EXPECT_EQ(cat.bad, cat.nlt);
  EXPECT_EQ(cat.bus, cat.unsafe_);
}

TEST(Categories, SafeSupersetOfByzSafe) {
  // Bad ⊇ NLT, so dist(v,Bad) <= dist(v,NLT): Byz-safe ⊆ Safe.
  const Overlay o = sample(512, 8, 37);
  util::Xoshiro256 rng(11);
  const auto byz = random_byzantine_mask(o.num_nodes(), 32, rng);
  const auto cat = classify_categories(o, byz, 1, 1);
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    if (cat.is_byz_safe[v]) EXPECT_TRUE(cat.is_safe[v]);
  }
  EXPECT_LE(cat.byz_safe, cat.safe);
}

TEST(ByzChain, NoByzantineIsZero) {
  const Overlay o = sample(128, 6, 39);
  const std::vector<bool> byz(o.num_nodes(), false);
  EXPECT_EQ(longest_byzantine_chain(o.h_simple(), byz, 10), 0u);
}

TEST(ByzChain, SingleNodeIsOne) {
  const Overlay o = sample(128, 6, 41);
  std::vector<bool> byz(o.num_nodes(), false);
  byz[5] = true;
  EXPECT_EQ(longest_byzantine_chain(o.h_simple(), byz, 10), 1u);
}

TEST(ByzChain, AdjacentPairIsTwo) {
  const Overlay o = sample(128, 6, 43);
  std::vector<bool> byz(o.num_nodes(), false);
  byz[0] = true;
  byz[o.h_simple().neighbors(0)[0]] = true;
  EXPECT_EQ(longest_byzantine_chain(o.h_simple(), byz, 10), 2u);
}

TEST(ByzChain, CapRespected) {
  const Overlay o = sample(64, 6, 45);
  const std::vector<bool> byz(o.num_nodes(), true);  // everyone Byzantine
  EXPECT_EQ(longest_byzantine_chain(o.h_simple(), byz, 5), 5u);
}

TEST(ByzChain, Observation6HoldsAtScale) {
  // n = 4096, δ = 0.6, d = 8, k = 3: kδ = 1.8 > 1, so chains of length >= 3
  // should essentially never occur.
  const Overlay o = sample(4096, 8, 47);
  const auto b = static_cast<NodeId>(std::pow(4096.0, 0.4));
  int violations = 0;
  for (std::uint64_t t = 0; t < 10; ++t) {
    util::Xoshiro256 rng(t + 100);
    const auto byz = random_byzantine_mask(o.num_nodes(), b, rng);
    if (longest_byzantine_chain(o.h_simple(), byz, 10) >= o.k()) ++violations;
  }
  EXPECT_LE(violations, 1);
}

}  // namespace
}  // namespace byz::graph
