#include "protocols/flooding.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace byz::proto {

using graph::NodeId;

void FloodWorkspace::ensure(NodeId n) {
  known.assign(n, 0);
  fresh.assign(n, 0);
  best_before.assign(n, 0);
  last_step.assign(n, 0);
  recv.assign(n, 0);
  frontier.clear();
  next_frontier.clear();
  touched.clear();
  live_frontier.clear();
}

void run_flood_subphase(const graph::Overlay& overlay,
                        const std::vector<bool>& byz_mask,
                        const std::vector<bool>& crashed,
                        const Verifier& verifier, const FloodParams& params,
                        std::span<const Color> gen_color,
                        std::span<const Injection> injections,
                        FloodWorkspace& ws, sim::Instrumentation& instr) {
  const MidRunHooks* live = params.live;
  const NodeId n = live ? live->node_bound() : overlay.num_nodes();
  if (gen_color.size() != n || byz_mask.size() != n || crashed.size() != n) {
    throw std::invalid_argument("run_flood_subphase: size mismatch");
  }
  if (!params.region.empty() && params.region.size() != n) {
    throw std::invalid_argument("run_flood_subphase: region size mismatch");
  }
  if (live != nullptr && !params.region.empty()) {
    throw std::invalid_argument(
        "run_flood_subphase: live topology is incompatible with focused "
        "(region) floods");
  }
  ws.ensure(n);
  const auto& h = overlay.h_simple();
  const auto in_region = [&](NodeId v) {
    return params.region.empty() || params.region[v] != 0;
  };
  const auto present = [&](NodeId v) {
    return live == nullptr || live->alive(v);
  };

  // Step 1 senders: every generating node broadcasts its own color.
  // (Mid-run joiners have gen_color 0 until a phase boundary admits them,
  // so they can never enter the frontier before being alive.)
  for (NodeId v = 0; v < n; ++v) {
    if (!in_region(v)) continue;
    ws.known[v] = gen_color[v];
    if (gen_color[v] > 0 && !crashed[v]) ws.frontier.push_back(v);
  }

  // Observability (pure read-side; inert unless obs::set_enabled). The
  // subphase span carries the flood geometry; each round span carries the
  // frontier it sent from and the token volume the sends produced.
  static const obs::Counter obs_rounds("flood.rounds");
  static const obs::Counter obs_tokens("flood.tokens");
  static const obs::Histogram obs_frontier("flood.frontier");
  obs::Span subphase_span("flood.subphase");
  subphase_span.arg("steps", params.steps)
      .arg("focused", params.region.empty() ? 0 : 1);
  const std::uint64_t subphase_tokens_before = instr.token_messages;

  // Injections grouped by step (inputs are few; linear scan per step).
  for (std::uint32_t t = 1; t <= params.steps; ++t) {
    obs::Span round_span("flood.round");
    round_span.arg("step", t).arg("frontier", ws.frontier.size());
    obs_frontier.observe(ws.frontier.size());
    const std::uint64_t round_tokens_before = instr.token_messages;
    // Mid-run churn: apply the events scheduled for this round BEFORE its
    // sends, so a node departing at round r never sends at r and a joiner
    // entering at r can receive at r. The hooks also get the canonical
    // wavefront — the sorted set of protocol-conformant senders as of the
    // previous round's membership — so an adaptive churn adversary can
    // target the flood frontier; the message-level engine derives the
    // identical set, keeping the two tiers bitwise equivalent.
    if (live != nullptr) {
      ws.live_frontier.clear();
      if (live->wants_frontier()) {
        for (const NodeId u : ws.frontier) {
          if (crashed[u]) continue;
          if (byz_mask[u] && !params.byz_forward) continue;
          if (!live->alive(u)) continue;
          ws.live_frontier.push_back(u);
        }
        std::sort(ws.live_frontier.begin(), ws.live_frontier.end());
      }
      RoundClock clock = params.clock;
      clock.step = t;
      clock.round = params.clock.round + (t - 1);
      params.live->begin_round(clock, ws.live_frontier);
    }
    ws.touched.clear();
    auto deliver = [&](NodeId receiver, NodeId sender, Color c, bool verify) {
      if (!in_region(receiver)) return;
      if (crashed[receiver] || !present(receiver)) return;
      if (byz_mask[receiver]) {
        // Byzantine receivers absorb knowledge without verification; their
        // counterfactual-honest state is tracked for legit-fresh checks.
        if (ws.recv[receiver] < c) {
          if (ws.recv[receiver] == 0) ws.touched.push_back(receiver);
          ws.recv[receiver] = c;
        }
        return;
      }
      if (verify) {
        // legit_fresh for the sender: the value an honest node in its
        // position would forward this step.
        const Color legit =
            (t == 1) ? gen_color[sender]
                     : ((ws.fresh[sender] == t - 1) ? ws.known[sender] : 0);
        if (!verifier.accept(sender, c, t, legit, byz_mask[sender], instr)) {
          return;
        }
      }
      if (ws.recv[receiver] < c) {
        if (ws.recv[receiver] == 0) ws.touched.push_back(receiver);
        ws.recv[receiver] = c;
      } else if (ws.recv[receiver] == 0) {
        // c could be 0 only from a degenerate injection; ignore.
      }
    };

    // Protocol-conformant sends from the frontier. A frontier member that
    // departed since it was enqueued is silently dropped — its messages
    // die with it.
    for (const NodeId u : ws.frontier) {
      if (byz_mask[u] && !params.byz_forward) continue;
      if (!present(u)) continue;
      const auto nbrs = live ? live->neighbors(u) : h.neighbors(u);
      instr.count_token(nbrs.size());
      instr.max_node_round_sends =
          std::max<std::uint64_t>(instr.max_node_round_sends, nbrs.size());
      const Color c = ws.known[u];
      if (params.digest != nullptr) {
        params.digest->fold_round(obs::digest_sender_term(u, c));
      }
      for (const NodeId v : nbrs) deliver(v, u, c, /*verify=*/true);
    }
    // Byzantine injections scheduled for this step.
    for (const auto& inj : injections) {
      if (inj.step != t || crashed[inj.from]) continue;
      if (!in_region(inj.from) || !present(inj.from)) continue;
      const auto nbrs =
          live ? live->neighbors(inj.from) : h.neighbors(inj.from);
      instr.count_token(nbrs.size());
      instr.max_node_round_sends =
          std::max<std::uint64_t>(instr.max_node_round_sends, nbrs.size());
      for (const NodeId v : nbrs) deliver(v, inj.from, inj.value, /*verify=*/true);
    }

    // Close the step: fold receive maxima into k_t bookkeeping and build
    // the next frontier from improvements.
    ws.next_frontier.clear();
    for (const NodeId v : ws.touched) {
      const Color r = ws.recv[v];
      ws.recv[v] = 0;
      // The commutative XOR fold makes the digest independent of touched-
      // list order; the engine folds the same (receiver, max) set walking
      // node ids ascending.
      if (params.digest != nullptr) {
        params.digest->fold_round(obs::digest_receiver_term(v, r));
      }
      if (t < params.steps) {
        ws.best_before[v] = std::max(ws.best_before[v], r);
      } else {
        ws.last_step[v] = r;
      }
      if (r > ws.known[v]) {
        ws.known[v] = r;
        ws.fresh[v] = t;
        if (!crashed[v]) ws.next_frontier.push_back(v);
      }
    }
    ws.frontier.swap(ws.next_frontier);
    if (params.digest != nullptr) {
      params.digest->close_round(instr.token_messages - round_tokens_before);
    }
    round_span.arg("tokens", instr.token_messages - round_tokens_before);
  }
  instr.flood_rounds += params.steps;
  obs_rounds.add(params.steps);
  obs_tokens.add(instr.token_messages - subphase_tokens_before);
  subphase_span.arg("tokens", instr.token_messages - subphase_tokens_before);
}

}  // namespace byz::proto
