// The per-round mid-run churn workload: WHAT strikes and WHEN (which flood
// round), decoupled from WHO (the victim / splice anchors — replay-time
// decisions of the churn adversary, adversary/churn.hpp) and from HOW the
// rounds were chosen (uniform vs adversarial timing —
// adversary/midrun_schedule.hpp derives both from the same ChurnEpoch
// budget). Split out of dynamics/midrun.hpp so the adversary layer can
// shape schedules without depending on the replay machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace byz::dynamics {

enum class MidRunEventKind : std::uint8_t { kJoin, kSybilJoin, kLeave };

/// One scheduled membership change, keyed on the 0-based global flood
/// round it strikes (proto::RoundClock::round). WHICH node departs and
/// WHERE a joiner splices stay replay-time decisions of the churn
/// adversary, exactly as in the between-runs path.
struct MidRunEvent {
  std::uint64_t round = 0;
  MidRunEventKind kind = MidRunEventKind::kJoin;

  bool operator==(const MidRunEvent&) const = default;
};

/// A per-round churn workload for one protocol run, sorted by round
/// (ties keep joins before sybil joins before leaves, matching the trace
/// bookkeeping order that clamped the counts).
struct ChurnSchedule {
  std::vector<MidRunEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::uint32_t joins() const noexcept;
  [[nodiscard]] std::uint32_t sybil_joins() const noexcept;
  [[nodiscard]] std::uint32_t leaves() const noexcept;
};

}  // namespace byz::dynamics
