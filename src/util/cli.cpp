#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace byz::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "Show this help message");
}

void ArgParser::add_flag(std::string name, std::string help) {
  options_.push_back(Option{std::move(name), std::move(help), "false", true, false});
}

void ArgParser::add_option(std::string name, std::string help,
                           std::string default_value) {
  options_.push_back(
      Option{std::move(name), std::move(help), std::move(default_value), false, false});
}

const ArgParser::Option* ArgParser::find(std::string_view name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

ArgParser::Option* ArgParser::find(std::string_view name) {
  for (auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " +
                                  std::string(arg));
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      throw std::invalid_argument("unknown option --" + name + "\n" + help());
    }
    if (opt->is_flag) {
      opt->value = value.value_or("true");
    } else if (value) {
      opt->value = *value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + name);
      }
      opt->value = argv[++i];
    }
    opt->seen = true;
  }
  if (flag("help")) {
    std::fputs(help().c_str(), stdout);
    return false;
  }
  return true;
}

bool ArgParser::flag(std::string_view name) const {
  const Option* opt = find(name);
  if (opt == nullptr) throw std::invalid_argument("undeclared flag: " + std::string(name));
  return opt->value == "true" || opt->value == "1" || opt->value == "yes";
}

std::string ArgParser::str(std::string_view name) const {
  const Option* opt = find(name);
  if (opt == nullptr) {
    throw std::invalid_argument("undeclared option: " + std::string(name));
  }
  return opt->value;
}

std::int64_t ArgParser::integer(std::string_view name) const {
  const std::string v = str(name);
  // stoll throws its own terse invalid_argument/out_of_range on garbage;
  // rethrow everything with the option name attached.
  try {
    std::size_t pos = 0;
    const std::int64_t result = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return result;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + std::string(name) +
                                " expects an integer, got: " + v);
  }
}

double ArgParser::real(std::string_view name) const {
  const std::string v = str(name);
  try {
    std::size_t pos = 0;
    const double result = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return result;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + std::string(name) +
                                " expects a real number, got: " + v);
  }
}

std::vector<std::int64_t> ArgParser::int_list(std::string_view name) const {
  const std::string v = str(name);
  std::vector<std::int64_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      std::size_t pos = 0;
      const std::int64_t value = std::stoll(item, &pos);
      if (pos != item.size()) throw std::invalid_argument("trailing characters");
      out.push_back(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + std::string(name) +
                                  " expects comma-separated integers, got: " +
                                  v);
    }
  }
  return out;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nOptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << "=<value>";
    os << "\n      " << o.help;
    if (!o.is_flag) os << " (default: " << o.value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace byz::util
