// Leader-flooding diameter estimation (§1.2: "Assuming that there exists a
// leader ... a large fraction of nodes can estimate the diameter by
// recording the time when they see the first token"). The estimate of
// log n follows from diameter ≈ log n / log(d-1) on the expander. The
// paper's point: choosing the leader IS the hard problem under Byzantine
// faults; a Byzantine leader (or Byzantine suppression belt) breaks it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace byz::base {

struct FloodDiameterResult {
  std::vector<std::uint32_t> first_seen;  ///< round of first receipt
                                          ///< (kUnreachable if never)
  std::uint64_t messages = 0;
  std::uint32_t rounds = 0;
};

/// Floods a beacon from `leader` over H for up to `max_rounds`; Byzantine
/// nodes optionally refuse to forward (`suppress`), and a Byzantine leader
/// simply never starts (all nodes end with kUnreachable).
[[nodiscard]] FloodDiameterResult run_flood_diameter(
    const graph::Graph& h, const std::vector<bool>& byz_mask,
    graph::NodeId leader, bool suppress, std::uint32_t max_rounds);

}  // namespace byz::base
