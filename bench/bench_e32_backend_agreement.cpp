// E32 — the cross-ALGORITHM agreement oracle, swept and CI-guarded at
// ZERO violations: Algorithm 2 and Byzantine-Resilient Counting share no
// decision logic (a threshold race's stopping phase vs a committed-color
// median), so running both on the identical instance — same overlay, same
// Byzantine placement, same coin seed — and asserting (a) each inside its
// own declared EstimatorBound and (b) the pair's median ratio inside
// combined_agreement_bound is a correctness check no same-algorithm tier
// parity can fake: a bug in shared machinery shifts both tiers of one
// algorithm identically, but it will not shift two algorithms
// identically. analysis::compare_backends is the oracle; run_churn's
// shadow backend applies the same check per epoch in production — this
// scenario is its offline, grid-swept form. CI reads guard.violations and
// fails the build on any nonzero value, and the manifest participates in
// the --jobs determinism cmp (compare_backends is scheduler-independent:
// fresh strategies per backend, one derived seed per instance).
#include <limits>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e32(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(12));
  const auto t = ctx.trials(4);
  const std::uint32_t degrees[] = {4, 6, 8};
  const adv::StrategyKind strategies[] = {adv::StrategyKind::kHonest,
                                          adv::StrategyKind::kFakeColor,
                                          adv::StrategyKind::kSuppress};
  const auto algo2 = proto::make_estimator("algo2");
  const auto brc = proto::make_estimator("brc");

  util::Table table("E32: algo2 <-> brc agreement sweep, delta=0.7 (" +
                    std::to_string(t) + " instances per cell)");
  table.columns({"n", "d", "strategy", "ratio min", "ratio max",
                 "combined band", "agree", "own-band", "violations"});
  std::uint64_t instances = 0;
  std::uint64_t violations = 0;
  double ratio_min_all = std::numeric_limits<double>::infinity();
  double ratio_max_all = 0.0;
  for (const auto n : sizes) {
    for (const auto d : degrees) {
      for (const auto strategy : strategies) {
        const std::uint64_t base_seed =
            0xE32 + n * 64 + d * 8 + static_cast<std::uint64_t>(strategy);
        const auto comparisons = ctx.scheduler().map(t, [&](std::uint64_t i) {
          const auto seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          const auto overlay = ctx.overlay(n, d, seed);
          const auto byz = place_byz(n, 0.7, seed);
          return analysis::compare_backends(*overlay, byz, strategy, seed,
                                            *algo2, *brc);
        });
        double rmin = std::numeric_limits<double>::infinity();
        double rmax = 0.0;
        double clo = 0.0, chi = 0.0;
        std::uint64_t agree = 0, own = 0, cell_violations = 0;
        for (const auto& cmp : comparisons) {
          rmin = std::min(rmin, cmp.ratio);
          rmax = std::max(rmax, cmp.ratio);
          clo = cmp.combined_lo;
          chi = cmp.combined_hi;
          if (cmp.agree) ++agree;
          if (cmp.a.in_band && cmp.b.in_band) ++own;
          if (!cmp.ok()) ++cell_violations;
          ++instances;
        }
        violations += cell_violations;
        ratio_min_all = std::min(ratio_min_all, rmin);
        ratio_max_all = std::max(ratio_max_all, rmax);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{d})
            .cell(adv::to_string(strategy))
            .cell(rmin, 3)
            .cell(rmax, 3)
            .cell("[" + util::format_double(clo, 3) + ", " +
                  util::format_double(chi, 3) + "]")
            .cell(std::to_string(agree) + "/" + std::to_string(t))
            .cell(std::to_string(own) + "/" + std::to_string(t))
            .cell(cell_violations);
      }
    }
  }
  table.note("Each instance holds topology, Byzantine placement, and coin "
             "seed fixed while the ALGORITHM varies; 'ratio' is "
             "median_algo2 / median_brc over decided nodes and must land in "
             "the combined band [algo2.lo/brc.hi, algo2.hi/brc.lo] implied "
             "by the two declared contracts. A violation means an instance "
             "failed agreement OR either backend's own bound — CI pins "
             "guard.violations to zero, so any future change that shifts "
             "one backend's estimates out from under its published band "
             "breaks the build, not just a dashboard.");
  ctx.emit(table);

  Json guard = Json::object();
  guard["instances"] = instances;
  guard["violations"] = violations;
  guard["ratio_min"] = ratio_min_all;
  guard["ratio_max"] = ratio_max_all;
  ctx.metric("guard", std::move(guard));
}

}  // namespace

BYZBENCH_REGISTER(e32) {
  ScenarioSpec spec;
  spec.id = "e32";
  spec.title = "Cross-backend agreement oracle sweep (algo2 <-> brc)";
  spec.claim = "Two independent counting algorithms on identical instances "
               "each honor their own declared accuracy bound and agree "
               "within the combined band at every (n, d, adversary) cell — "
               "zero violations, CI-guarded";
  spec.grid = {{"d", {"4", "6", "8"}},
               {"strategy", {"honest", "fake-color", "suppress"}},
               pow2_axis(10, 12)};
  spec.base_trials = 4;
  spec.metrics = {"guard.instances", "guard.violations", "guard.ratio_min",
                  "guard.ratio_max"};
  spec.run = run_e32;
  return spec;
}
