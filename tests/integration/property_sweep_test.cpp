// Parameterized property sweeps over (n, d, seed): structural invariants of
// the overlay and outcome invariants of the protocol that must hold for
// every sampled world, not just hand-picked ones.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/categories.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "protocols/fastpath.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;
using graph::Overlay;
using graph::OverlayParams;

struct World {
  NodeId n;
  std::uint32_t d;
  std::uint64_t seed;
};

class OverlayProperties : public ::testing::TestWithParam<World> {
 protected:
  Overlay build() const {
    const World w = GetParam();
    OverlayParams p;
    p.n = w.n;
    p.d = w.d;
    p.seed = w.seed;
    return Overlay::build(p);
  }
};

TEST_P(OverlayProperties, HIsExactlyDRegularMultigraph) {
  const Overlay o = build();
  EXPECT_TRUE(o.h().is_regular(GetParam().d));
}

TEST_P(OverlayProperties, HConnected) {
  const Overlay o = build();
  EXPECT_TRUE(graph::is_connected(o.h_simple()));
}

TEST_P(OverlayProperties, GSymmetric) {
  const Overlay o = build();
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    for (const NodeId w : o.g().neighbors(v)) {
      EXPECT_TRUE(o.g().has_edge(w, v));
    }
  }
}

TEST_P(OverlayProperties, GDistancesBoundedByK) {
  const Overlay o = build();
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    for (const auto dist : o.g_dists(v)) {
      EXPECT_GE(dist, 1u);
      EXPECT_LE(dist, o.k());
    }
  }
}

TEST_P(OverlayProperties, HSubsetOfG) {
  const Overlay o = build();
  for (NodeId v = 0; v < o.num_nodes(); ++v) {
    for (const NodeId w : o.h_simple().neighbors(v)) {
      EXPECT_TRUE(o.g().has_edge(v, w));
    }
  }
}

TEST_P(OverlayProperties, SmallWorldClusteringGain) {
  const Overlay o = build();
  const double ch = graph::average_clustering(o.h_simple(), 128, 1);
  const double cg = graph::average_clustering(o.g(), 128, 1);
  EXPECT_GT(cg, ch);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, OverlayProperties,
    ::testing::Values(World{128, 4, 1}, World{256, 6, 2}, World{512, 8, 3},
                      World{1024, 6, 4}, World{300, 8, 5}, World{777, 6, 6},
                      World{2048, 8, 7}, World{129, 4, 8}),
    [](const ::testing::TestParamInfo<World>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.d) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------

class ProtocolProperties : public ::testing::TestWithParam<World> {};

TEST_P(ProtocolProperties, CleanRunDecidesEverywhereInBand) {
  const World w = GetParam();
  OverlayParams p;
  p.n = w.n;
  p.d = w.d;
  p.seed = w.seed;
  const Overlay o = Overlay::build(p);
  const auto r = proto::run_basic_counting(o, w.seed ^ 0x5EED);
  const auto acc = proto::summarize_accuracy(r, w.n);
  EXPECT_EQ(acc.decided, acc.honest);
  EXPECT_GT(acc.frac_in_band, 0.9);
  // Every estimate positive and below the auto phase cap.
  for (const auto e : r.estimate) {
    EXPECT_GE(e, 1u);
    EXPECT_LE(e, proto::resolve_max_phase(o, proto::ProtocolConfig{}));
  }
}

TEST_P(ProtocolProperties, ByzantineRunInvariants) {
  const World w = GetParam();
  sim::TrialConfig cfg;
  cfg.overlay.n = w.n;
  cfg.overlay.d = w.d;
  cfg.delta = 0.5;
  cfg.strategy = adv::StrategyKind::kAdaptive;
  cfg.seed = w.seed;
  const auto r = sim::run_trial(cfg);
  const auto& run = r.run;
  const NodeId n = w.n;
  // Status partition is total and consistent with estimates.
  std::uint64_t byz = 0;
  for (NodeId v = 0; v < n; ++v) {
    switch (run.status[v]) {
      case proto::NodeStatus::kByzantine:
        ++byz;
        break;
      case proto::NodeStatus::kDecided:
        EXPECT_GE(run.estimate[v], 1u);
        break;
      case proto::NodeStatus::kCrashed:
      case proto::NodeStatus::kUndecided:
        EXPECT_EQ(run.estimate[v], 0u);
        break;
      case proto::NodeStatus::kDeparted:
        ADD_FAILURE() << "static runs cannot produce kDeparted";
        break;
    }
  }
  EXPECT_EQ(byz, r.byz_count);
  // Accounting sanity (setup traffic always flows; token traffic only if
  // anyone survived the crash rule — at d=8 the G-ball is large enough
  // that crash attacks can wipe small networks, which is legitimate).
  EXPECT_GT(run.instr.total_messages(), 0u);
  EXPECT_EQ(run.flood_rounds, run.instr.flood_rounds);
  EXPECT_LE(run.instr.injections_accepted + run.instr.injections_caught,
            run.instr.injections_attempted +
                run.instr.injections_accepted);  // caught+accepted <= attempts
}

TEST_P(ProtocolProperties, WrongDeciderFractionBelowEpsilonBand) {
  // Lemma 11 flavor: in the clean run with ε = 0.1, the fraction of honest
  // nodes deciding "too early" (below half the typical estimate) is tiny.
  const World w = GetParam();
  OverlayParams p;
  p.n = w.n;
  p.d = w.d;
  p.seed = w.seed * 31;
  const Overlay o = Overlay::build(p);
  proto::ScheduleConfig sched;
  sched.epsilon = 0.1;
  const auto r = proto::run_basic_counting(o, w.seed ^ 0xABCD, sched);
  std::vector<std::uint32_t> est;
  for (const auto e : r.estimate) est.push_back(e);
  std::sort(est.begin(), est.end());
  const std::uint32_t typical = est[est.size() / 2];
  std::uint64_t early = 0;
  for (const auto e : est) {
    if (e * 2 < typical) ++early;
  }
  EXPECT_LT(static_cast<double>(early), 0.1 * static_cast<double>(w.n));
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, ProtocolProperties,
    ::testing::Values(World{256, 6, 11}, World{512, 8, 12}, World{1024, 8, 13},
                      World{2048, 6, 14}, World{400, 8, 15},
                      World{1500, 6, 16}),
    [](const ::testing::TestParamInfo<World>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.d) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace byz
