#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/color.hpp"
#include "protocols/neighborhood.hpp"
#include "protocols/schedule.hpp"
#include "sim/world.hpp"

namespace byz::sim {

using graph::NodeId;
using proto::Color;

Engine::Engine(const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
               adv::Strategy& strategy, const proto::ProtocolConfig& cfg,
               std::uint64_t color_seed)
    : overlay_(overlay),
      byz_(byz_mask),
      strategy_(strategy),
      cfg_(cfg),
      color_seed_(color_seed),
      world_(World::make(overlay, byz_mask, color_seed)),
      verifier_(overlay, byz_mask, cfg.verification) {
  if (byz_mask.size() != overlay.num_nodes()) {
    throw std::invalid_argument("Engine: mask size mismatch");
  }
  nodes_.resize(overlay.num_nodes());
  inbox_.resize(overlay.num_nodes());
}

proto::RunResult Engine::run() {
  const NodeId n = overlay_.num_nodes();
  const std::uint32_t d = overlay_.params().d;
  result_ = proto::RunResult{};
  result_.status.assign(n, proto::NodeStatus::kUndecided);
  result_.estimate.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (byz_[v]) result_.status[v] = proto::NodeStatus::kByzantine;
  }

  // --- Setup (Algorithm 2 lines 1-2): claims, conflicts, crashes. ---
  proto::ClaimSet claims(overlay_);
  strategy_.setup_lies(world_, claims);
  if (cfg_.crash_rule) {
    // Reference path: run the full pairwise conflict detection per node
    // (the fast path uses the byz-pair shortcut; agreement is a test).
    for (NodeId u = 0; u < n; ++u) {
      const auto len = claims.claimed(u).size();
      for (std::uint32_t e = 0; e < overlay_.g().degree(u); ++e) {
        result_.instr.count_setup_list(len);
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (byz_[v]) continue;
      if (proto::detects_conflict(claims, v)) {
        nodes_[v].crashed = true;
        result_.status[v] = proto::NodeStatus::kCrashed;
        ++result_.instr.crashes;
      }
    }
  }

  const std::uint32_t max_phase = proto::resolve_max_phase(overlay_, cfg_);
  std::uint64_t active = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!byz_[v] && !nodes_[v].crashed) ++active;
  }

  std::uint32_t phase = 0;
  while (phase < max_phase && active > 0) {
    ++phase;
    for (auto& m : nodes_) m.fired_this_phase = false;
    const std::uint32_t subphases =
        proto::subphases_in_phase(phase, d, cfg_.schedule);
    for (std::uint32_t j = 1; j <= subphases; ++j) {
      run_subphase(phase, j,
                   proto::global_subphase_index(phase, j, d, cfg_.schedule));
    }
    for (NodeId v = 0; v < n; ++v) {
      auto& m = nodes_[v];
      if (byz_[v] || m.crashed || m.decided) continue;
      if (!m.fired_this_phase) {
        m.decided = true;
        m.estimate = phase;
        result_.status[v] = proto::NodeStatus::kDecided;
        result_.estimate[v] = phase;
        --active;
      }
    }
  }
  result_.phases_executed = phase;
  result_.flood_rounds = result_.instr.flood_rounds;
  return result_;
}

void Engine::run_subphase(std::uint32_t phase, std::uint32_t j,
                          std::uint32_t s) {
  const NodeId n = overlay_.num_nodes();
  const auto& h = overlay_.h_simple();
  const bool byz_gen = strategy_.generates_honestly();
  const bool byz_fwd = strategy_.forwards_floods();
  const double threshold = proto::continue_threshold(phase, overlay_.params().d);

  // Draw colors: honest active nodes generate; Byzantine machines track the
  // counterfactual honest draw when the strategy mimics the protocol.
  for (NodeId v = 0; v < n; ++v) {
    auto& m = nodes_[v];
    Color own = 0;
    const bool generates =
        byz_[v] ? byz_gen : (!m.crashed && !m.decided);
    if (generates) own = proto::color_at(color_seed_, v, s);
    m.begin_subphase(own);
  }

  std::vector<proto::Injection> injections;
  strategy_.plan_subphase(world_, {phase, j, s}, injections);

  std::vector<Color> recv(n, 0);
  for (std::uint32_t t = 1; t <= phase; ++t) {
    std::uint64_t sent_this_round = 0;

    // 1. Sends, based on state at the start of the step (forward-once).
    for (NodeId u = 0; u < n; ++u) {
      const auto& m = nodes_[u];
      if (m.crashed) continue;
      if (byz_[u] && !byz_fwd) continue;
      const bool sends = (t == 1) ? (m.own > 0) : (m.fresh_step == t - 1);
      if (!sends) continue;
      const auto nbrs = h.neighbors(u);
      result_.instr.count_token(nbrs.size());
      result_.instr.max_node_round_sends = std::max<std::uint64_t>(
          result_.instr.max_node_round_sends, nbrs.size());
      sent_this_round += nbrs.size();
      for (const NodeId v : nbrs) inbox_[v].push_back({u, m.known});
    }
    for (const auto& inj : injections) {
      if (inj.step != t || nodes_[inj.from].crashed) continue;
      const auto nbrs = h.neighbors(inj.from);
      result_.instr.count_token(nbrs.size());
      result_.instr.max_node_round_sends = std::max<std::uint64_t>(
          result_.instr.max_node_round_sends, nbrs.size());
      sent_this_round += nbrs.size();
      for (const NodeId v : nbrs) inbox_[v].push_back({inj.from, inj.value});
    }

    // 2. Delivery: each node drains its inbox; honest nodes verify every
    // token (sender state is still pre-close, so legit_fresh is exact).
    for (NodeId v = 0; v < n; ++v) {
      if (inbox_[v].empty()) continue;
      auto& m = nodes_[v];
      if (m.crashed) {
        inbox_[v].clear();
        continue;
      }
      for (const Token& tok : inbox_[v]) {
        if (!byz_[v]) {
          const auto& sm = nodes_[tok.from];
          const Color legit =
              (t == 1) ? sm.own : ((sm.fresh_step == t - 1) ? sm.known : 0);
          if (!verifier_.accept(tok.from, tok.color, t, legit, byz_[tok.from],
                                result_.instr)) {
            continue;
          }
        }
        recv[v] = std::max(recv[v], tok.color);
      }
      inbox_[v].clear();
    }

    // 3. Close the step.
    for (NodeId v = 0; v < n; ++v) {
      if (recv[v] == 0) continue;
      auto& m = nodes_[v];
      if (t < phase) {
        m.best_before = std::max(m.best_before, recv[v]);
      } else {
        m.last_step = recv[v];
      }
      if (recv[v] > m.known) {
        m.known = recv[v];
        m.fresh_step = t;
      }
      recv[v] = 0;
    }
    round_messages_.push_back(sent_this_round);
  }
  result_.instr.flood_rounds += phase;

  // Line 18: evaluate the continuation predicate.
  for (NodeId v = 0; v < n; ++v) {
    auto& m = nodes_[v];
    if (byz_[v] || m.crashed || m.decided || m.fired_this_phase) continue;
    if (m.last_step > m.best_before &&
        static_cast<double>(m.last_step) > threshold) {
      m.fired_this_phase = true;
    }
  }
}

}  // namespace byz::sim
