// The pluggable protocol-backend interface: every counting algorithm in
// the tree (Algorithm 1/2 from the source paper, Byzantine-Resilient
// Counting from arXiv 2204.11951) is an Estimator — one entry point across
// the cold/warm/mid-run tiers plus a DECLARED accuracy contract. The
// declared bound is what makes cross-backend comparison an oracle: two
// independent algorithms must each land within their own published band,
// and their pair ratio must land within the combined band
// (combined_agreement_bound) — a far stronger check than any
// same-algorithm tier parity, because the backends share no decision
// logic. analysis::compare_backends runs it; E31/E32 and the run_churn
// shadow wire it into CI.
//
// Backends register by name in a process-wide factory
// (register_estimator / make_estimator); "algo1", "algo2", and "brc" are
// built in. CLI layers (`byzbench --backend`, `size_service --backend /
// --shadow-backend`) resolve user input through the same registry, so an
// unknown name fails with the known-name list everywhere.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/strategies.hpp"
#include "graph/small_world.hpp"
#include "protocols/fastpath.hpp"
#include "protocols/run_common.hpp"

namespace byz::proto {

/// A backend's declared accuracy contract on an overlay: all but an
/// `eps` fraction of honest members decide an estimate whose ratio
/// est / log2(n) lies in [lo, hi]. The band is the backend's PAPER claim
/// (constants included), not a tuned test tolerance — compare_backends
/// asserts against it, so tightening it strengthens the oracle and
/// loosening it must be justified in the backend's docs.
struct EstimatorBound {
  double lo = 0.0;
  double hi = 0.0;
  double eps = 0.0;

  bool operator==(const EstimatorBound&) const = default;
};

/// The pairwise agreement band for two backends' median decided estimates:
/// if A and B each honor their own bound on the same instance, then
/// median_A / median_B lies in [A.lo / B.hi, A.hi / B.lo]. This check
/// needs no ground-truth n — it is the deployable form of the oracle.
struct AgreementBound {
  double lo = 0.0;
  double hi = 0.0;
};

[[nodiscard]] AgreementBound combined_agreement_bound(const EstimatorBound& a,
                                                      const EstimatorBound& b);

/// Execution tiers a backend may support (the compatibility matrix in
/// docs/ARCHITECTURE.md). Callers must check supports() before threading
/// the corresponding RunControls knob / driver mode; backends throw
/// std::invalid_argument on knobs they cannot honor.
enum class EstimatorTier : std::uint8_t {
  kColdRun,        ///< plain static run (every backend)
  kLazySubphases,  ///< RunControls::lazy_subphases (decision-exact skip)
  kWarmStart,      ///< proto::run_counting_warm row/estimate reuse
  kEpsWarm,        ///< RunControls::start_phase > 1 (ε·n budget tier)
  kMidRunChurn,    ///< RunControls::midrun (LiveOverlayFeed hooks)
  kEngineOracle,   ///< message-level sim::Engine parity replay
};

class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Registry name ("algo2", "brc", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// The declared accuracy contract on this overlay (may depend on n, d).
  [[nodiscard]] virtual EstimatorBound bound(
      const graph::Overlay& overlay) const = 0;

  /// Tier-compatibility matrix row.
  [[nodiscard]] virtual bool supports(EstimatorTier tier) const = 0;

  /// One counting run. `byz_mask` spans the run's id space (node_bound
  /// under mid-run churn); `controls` selects the tier — a backend throws
  /// std::invalid_argument on a knob it does not support rather than
  /// silently ignoring it.
  [[nodiscard]] virtual RunResult run(const graph::Overlay& overlay,
                                      const std::vector<bool>& byz_mask,
                                      adv::Strategy& strategy,
                                      std::uint64_t color_seed,
                                      const RunControls& controls) const = 0;

  [[nodiscard]] RunResult run(const graph::Overlay& overlay,
                              const std::vector<bool>& byz_mask,
                              adv::Strategy& strategy,
                              std::uint64_t color_seed) const {
    return run(overlay, byz_mask, strategy, color_seed, RunControls{});
  }
};

using EstimatorFactory =
    std::function<std::unique_ptr<Estimator>(const ProtocolConfig&)>;

/// Registers a backend factory under `name` (replaces an existing entry —
/// tests use this to shadow a built-in). Thread-safe.
void register_estimator(const std::string& name, EstimatorFactory factory);

/// Instantiates a registered backend. The ProtocolConfig carries the knobs
/// a backend understands (schedule, verification, max_phase — each backend
/// documents its mapping); throws std::invalid_argument on an unknown
/// name, listing the registered names in the message (the CLI layers
/// surface it verbatim).
[[nodiscard]] std::unique_ptr<Estimator> make_estimator(
    std::string_view name, const ProtocolConfig& cfg = {});

/// Registered backend names, sorted.
[[nodiscard]] std::vector<std::string> estimator_names();

[[nodiscard]] bool estimator_registered(std::string_view name);

}  // namespace byz::proto
