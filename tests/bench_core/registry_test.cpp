#include "bench_core/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench_core/context.hpp"
#include "bench_core/orchestrator.hpp"
#include "util/table.hpp"

namespace byz::bench_core {
namespace {

ScenarioSpec make_spec(std::string id, std::string title) {
  ScenarioSpec spec;
  spec.id = std::move(id);
  spec.title = std::move(title);
  spec.run = [](RunContext&) {};
  return spec;
}

TEST(Registry, AddAndFind) {
  Registry registry;
  registry.add(make_spec("e01", "categories"));
  registry.add(make_spec("e02", "expansion"));
  ASSERT_NE(registry.find("e01"), nullptr);
  EXPECT_EQ(registry.find("e01")->title, "categories");
  EXPECT_EQ(registry.find("e99"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, RejectsDuplicatesAndInvalidSpecs) {
  Registry registry;
  registry.add(make_spec("e01", "categories"));
  EXPECT_THROW(registry.add(make_spec("e01", "again")), std::invalid_argument);
  EXPECT_THROW(registry.add(make_spec("", "anonymous")), std::invalid_argument);
  ScenarioSpec no_run;
  no_run.id = "e50";
  EXPECT_THROW(registry.add(std::move(no_run)), std::invalid_argument);
}

TEST(Registry, AllIsSortedById) {
  Registry registry;
  registry.add(make_spec("e10", "ten"));
  registry.add(make_spec("e02", "two"));
  registry.add(make_spec("e07", "seven"));
  const auto all = registry.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->id, "e02");
  EXPECT_EQ(all[1]->id, "e07");
  EXPECT_EQ(all[2]->id, "e10");
}

TEST(Registry, MatchFiltersByIdAndTitle) {
  Registry registry;
  registry.add(make_spec("e07", "message accounting"));
  registry.add(make_spec("e08", "accuracy under attack"));
  registry.add(make_spec("e14", "kernel timings"));

  EXPECT_EQ(registry.match("").size(), 3u);           // empty = all
  ASSERT_EQ(registry.match("e07").size(), 1u);
  EXPECT_EQ(registry.match("e07")[0]->id, "e07");
  ASSERT_EQ(registry.match("ACCURACY").size(), 1u);   // case-insensitive title
  EXPECT_EQ(registry.match("ACCURACY")[0]->id, "e08");
  EXPECT_EQ(registry.match("e07,e14").size(), 2u);    // comma = union
  EXPECT_EQ(registry.match("nomatch").size(), 0u);
  EXPECT_EQ(registry.match(",,").size(), 3u);         // degenerate = all
}

TEST(Registry, MatchAcceptsPipeSeparatorsAndGlobStars) {
  Registry registry;
  registry.add(make_spec("e17", "steady churn"));
  registry.add(make_spec("e18", "burst recovery"));
  registry.add(make_spec("e19", "sybil joins"));

  // The CI smoke invocation style: shell-glob habits must keep working.
  const auto hits = registry.match("e17*|e18*|e19*");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0]->id, "e17");
  EXPECT_EQ(hits[2]->id, "e19");
  EXPECT_EQ(registry.match("e17|e19").size(), 2u);
  EXPECT_EQ(registry.match("*churn*").size(), 1u);   // stars stripped
  EXPECT_EQ(registry.match("||,|").size(), 3u);      // degenerate = all
}

TEST(Registry, GlobalInstanceIsSingleton) {
  EXPECT_EQ(&Registry::instance(), &Registry::instance());
}

TEST(Orchestrator, ListRendersEveryScenario) {
  Registry registry;
  auto spec = make_spec("e01", "categories");
  spec.grid = {{"delta", {"0.5", "0.7"}}};
  spec.metrics = {"safe_frac"};
  registry.add(std::move(spec));
  const auto listing = list_scenarios(registry);
  EXPECT_NE(listing.find("e01"), std::string::npos);
  EXPECT_NE(listing.find("categories"), std::string::npos);
  EXPECT_NE(listing.find("delta(2)"), std::string::npos);
  EXPECT_NE(listing.find("safe_frac"), std::string::npos);
}

/// A tiny deterministic scenario exercising tables + metrics + trials.
ScenarioSpec synthetic_scenario() {
  ScenarioSpec spec;
  spec.id = "esynth";
  spec.title = "synthetic orchestrator probe";
  spec.base_trials = 4;
  spec.run = [](RunContext& ctx) {
    sim::TrialConfig cfg;
    cfg.overlay.n = 256;
    cfg.overlay.d = 6;
    cfg.delta = 0.7;
    cfg.seed = 11;
    const auto results = ctx.run_trials(cfg, ctx.trials(4));
    util::Table table("synthetic");
    table.columns({"trial", "rounds"});
    std::vector<double> ratios;
    for (std::size_t t = 0; t < results.size(); ++t) {
      table.row()
          .cell(std::uint64_t{t})
          .cell(results[t].run.flood_rounds);
      ratios.push_back(results[t].accuracy.mean_ratio);
    }
    ctx.emit(table);
    ctx.record_accuracy("ratio", ratios);
  };
  return spec;
}

std::string run_synthetic_raw(unsigned jobs, const std::string& dir) {
  Registry registry;
  registry.add(synthetic_scenario());
  RunOptions opts;
  opts.jobs = jobs;
  opts.json_out = dir;
  opts.quiet = true;
  const auto outcomes = run_scenarios(registry, opts);
  EXPECT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  std::ifstream in(dir + "/BENCH_esynth.json");
  EXPECT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Json run_synthetic(unsigned jobs, const std::string& dir) {
  auto parsed = Json::parse(run_synthetic_raw(jobs, dir));
  EXPECT_TRUE(parsed.has_value());
  return parsed.value_or(Json());
}

TEST(Orchestrator, WritesSchemaValidJsonManifest) {
  const std::string dir = ::testing::TempDir();
  const auto doc = run_synthetic(2, dir);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "byzbench/v1");
  EXPECT_EQ(doc.find("experiment")->as_string(), "esynth");
  EXPECT_TRUE(doc.find("ok")->as_bool());
  ASSERT_NE(doc.find("tables"), nullptr);
  ASSERT_EQ(doc.find("tables")->size(), 1u);
  const auto& table = doc.find("tables")->at(0);
  EXPECT_EQ(table.find("title")->as_string(), "synthetic");
  EXPECT_EQ(table.find("columns")->size(), 2u);
  EXPECT_EQ(table.find("rows")->size(), 4u);
  // run_trials auto-records message totals; record_accuracy adds quantiles.
  const auto* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("messages"), nullptr);
  EXPECT_GT(metrics->find("messages")->find("total_messages")->as_number(), 0.0);
  const auto* ratio = metrics->find("accuracy")->find("ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->find("count")->as_number(), 4.0);
  // Volatile facts (jobs, wall-time, cache stats) live in the RUNMETA
  // sidecar, never in the BENCH manifest.
  EXPECT_EQ(doc.find("wall_seconds"), nullptr);
  EXPECT_EQ(doc.find("jobs"), nullptr);
  EXPECT_EQ(doc.find("overlay_cache"), nullptr);
  std::ifstream meta_in(dir + "/RUNMETA_esynth.json");
  ASSERT_TRUE(meta_in.good());
  std::stringstream meta_buf;
  meta_buf << meta_in.rdbuf();
  const auto meta = Json::parse(meta_buf.str()).value_or(Json());
  ASSERT_TRUE(meta.is_object());
  EXPECT_EQ(meta.find("schema")->as_string(), "byzbench/meta/v1");
  EXPECT_EQ(meta.find("jobs")->as_number(), 2.0);
  EXPECT_GE(meta.find("wall_seconds")->as_number(), 0.0);
  ASSERT_NE(meta.find("overlay_cache"), nullptr);
}

TEST(Orchestrator, ManifestsBitwiseIdenticalAcrossJobCounts) {
  // The whole BENCH manifest — byte for byte — must match between a serial
  // and a parallel run of the same scenario + seeds.
  const auto raw1 = run_synthetic_raw(1, ::testing::TempDir());
  const auto raw8 = run_synthetic_raw(8, ::testing::TempDir());
  EXPECT_EQ(raw1, raw8);
}

TEST(Orchestrator, ReportsScenarioFailure) {
  Registry registry;
  auto spec = make_spec("eboom", "always throws");
  spec.run = [](RunContext&) { throw std::runtime_error("kaput"); };
  registry.add(std::move(spec));
  RunOptions opts;
  opts.quiet = true;
  const auto outcomes = run_scenarios(registry, opts);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].error, "kaput");
  const auto summary = summarize_outcomes(outcomes);
  EXPECT_NE(summary.find("FAILED: kaput"), std::string::npos);
}

}  // namespace
}  // namespace byz::bench_core
