#include "bench_core/overlay_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dynamics/mutable_overlay.hpp"

namespace byz::bench_core {
namespace {

TEST(OverlayCache, MissThenHitReturnsSameInstance) {
  OverlayCache cache;
  const auto a = cache.get(256, 6, 42);
  const auto b = cache.get(256, 6, 42);
  EXPECT_EQ(a.get(), b.get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(OverlayCache, DistinctKeysBuildDistinctOverlays) {
  OverlayCache cache;
  const auto a = cache.get(256, 6, 1);
  const auto b = cache.get(256, 6, 2);   // different seed
  const auto c = cache.get(256, 8, 1);   // different degree
  const auto d = cache.get(512, 6, 1);   // different size
  const std::set<const graph::Overlay*> distinct{a.get(), b.get(), c.get(),
                                                 d.get()};
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(OverlayCache, BuiltOverlayMatchesDirectBuild) {
  OverlayCache cache;
  const auto cached = cache.get(256, 6, 42);
  graph::OverlayParams params;
  params.n = 256;
  params.d = 6;
  params.seed = 42;
  const auto direct = graph::Overlay::build(params);
  EXPECT_EQ(cached->num_nodes(), direct.num_nodes());
  EXPECT_EQ(cached->g().num_edges(), direct.g().num_edges());
  EXPECT_EQ(cached->k(), direct.k());
}

TEST(OverlayCache, ConcurrentSameKeyBuildsOnce) {
  OverlayCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const graph::Overlay>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&cache, &seen, t] { seen[t] = cache.get(512, 6, 7); });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0].get(), seen[t].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(OverlayCache, EvictsLeastRecentlyUsedPastByteBound) {
  // Tiny budget: after the first overlay lands, inserting a second must
  // evict the older one (LRU), but a live shared_ptr stays valid.
  OverlayCache cache(/*max_bytes=*/1);
  const auto a = cache.get(256, 6, 1);
  const auto b = cache.get(256, 6, 2);
  const auto stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(a->num_nodes(), 256u);  // still usable after eviction
  // The evicted key re-builds (miss), not a stale hit.
  const auto a2 = cache.get(256, 6, 1);
  EXPECT_EQ(a2->num_nodes(), 256u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(OverlayCache, SnapshotGenerationNeverAliasesTheStaticKey) {
  // The collision scenario the generation tag exists for: a dynamic epoch
  // snapshot carries the same (n, d, seed) as the static sample it evolved
  // from, but MUST occupy a distinct cache entry.
  OverlayCache cache;
  constexpr graph::NodeId kN = 96;
  const std::uint64_t seed = 42;

  dynamics::MutableOverlay dyn(kN, 6, 0, seed);
  util::Xoshiro256 rng(7);
  // One join + one leave: back to n = 96 with the SAME (n, d, seed) as the
  // static build but a different edge set.
  const auto joined = dyn.join(rng);
  dyn.leave(joined - 1);
  auto snap = dyn.snapshot();
  ASSERT_EQ(snap.overlay.num_nodes(), kN);
  ASSERT_NE(snap.overlay.params().generation, 0u);

  const auto published = cache.put(std::make_shared<const graph::Overlay>(
      std::move(snap.overlay)));
  const auto static_overlay = cache.get(kN, 6, seed);
  EXPECT_NE(published.get(), static_overlay.get());
  EXPECT_EQ(cache.stats().entries, 2u);

  // Publishing the same snapshot key again: the resident entry wins.
  const auto again = cache.put(published);
  EXPECT_EQ(again.get(), published.get());
  EXPECT_EQ(cache.stats().entries, 2u);

  // get() refuses to fabricate a snapshot from a generation-tagged key,
  // and put() refuses to poison a static key with a hand-built overlay.
  EXPECT_THROW((void)cache.get(published->params()), std::invalid_argument);
  graph::OverlayParams static_params;
  static_params.n = kN;
  static_params.d = 6;
  static_params.seed = seed;
  EXPECT_THROW((void)cache.put(std::make_shared<const graph::Overlay>(
                   graph::Overlay::build(static_params))),
               std::invalid_argument);
}

TEST(OverlayCache, EvictsOldGenerationsOfTheSameOverlayBeforeStaticEntries) {
  // Generation-aware capacity policy: epoch snapshots of one evolving
  // overlay supersede each other, so when a new snapshot lands at
  // capacity, the oldest resident generation of the SAME (d, k, seed)
  // family goes first — even when an unrelated static entry is older in
  // plain LRU terms.
  const std::uint64_t seed = 42;
  dynamics::MutableOverlay dyn(96, 6, 0, seed);
  util::Xoshiro256 rng(7);
  auto snapshot_ptr = [&] {
    return std::make_shared<const graph::Overlay>(
        std::move(dyn.snapshot().overlay));
  };
  const auto gen1 = snapshot_ptr();
  dyn.join(rng);
  const auto gen2 = snapshot_ptr();
  dyn.join(rng);
  const auto gen3 = snapshot_ptr();

  graph::OverlayParams static_params;
  static_params.n = 128;
  static_params.d = 6;
  static_params.seed = 7;
  const auto static_bytes =
      graph::Overlay::build(static_params).memory_bytes();

  // Budget that holds the static entry plus two snapshots, but not three:
  // publishing gen3 must evict exactly one entry.
  OverlayCache cache(static_bytes + gen1->memory_bytes() +
                     gen2->memory_bytes() + gen3->memory_bytes() - 1);
  const auto static_overlay = cache.get(static_params);  // LRU-oldest
  (void)cache.put(gen1);
  (void)cache.put(gen2);
  (void)cache.put(gen3);

  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  // The unrelated static entry survived despite being least recently used:
  // a re-get is a pure hit, not a rebuild.
  const auto misses_before = stats.misses;
  const auto again = cache.get(static_params);
  EXPECT_EQ(again.get(), static_overlay.get());
  EXPECT_EQ(cache.stats().misses, misses_before);
  // The victim was the oldest same-family generation: re-publishing gen1
  // inserts it anew (entry count grows) while gen2 was still resident.
  (void)cache.put(gen1);
  EXPECT_GE(cache.stats().entries, 3u);
  EXPECT_GE(cache.stats().evictions, 2u);  // re-insert re-evicts in-family
}

TEST(OverlayCache, ClearDropsEntries) {
  OverlayCache cache;
  (void)cache.get(256, 6, 1);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  (void)cache.get(256, 6, 1);
  EXPECT_EQ(cache.stats().misses, 2u);
}

}  // namespace
}  // namespace byz::bench_core
