#include "sim/runner.hpp"

#include <omp.h>

#include <cmath>

#include "graph/categories.hpp"
#include "util/rng.hpp"

namespace byz::sim {

graph::NodeId derive_byz_count(graph::NodeId n, double delta) {
  const double b = std::pow(static_cast<double>(n), 1.0 - delta);
  return static_cast<graph::NodeId>(std::min<double>(std::floor(b),
                                                     static_cast<double>(n) / 4.0));
}

TrialResult run_trial(const TrialConfig& cfg) {
  graph::OverlayParams params = cfg.overlay;
  params.seed = util::mix_seed(cfg.seed, 0x0EE1);
  const auto overlay = graph::Overlay::build(params);

  const graph::NodeId n = overlay.num_nodes();
  const graph::NodeId b = cfg.byz_count >= 0
                              ? static_cast<graph::NodeId>(cfg.byz_count)
                              : derive_byz_count(n, cfg.delta);
  util::Xoshiro256 placement_rng(util::mix_seed(cfg.seed, 0x0B12));
  const auto byz = graph::random_byzantine_mask(n, b, placement_rng);

  const auto strategy = adv::make_strategy(cfg.strategy);
  TrialResult result;
  result.byz_count = b;
  result.run = proto::run_counting(overlay, byz, *strategy, cfg.protocol,
                                   util::mix_seed(cfg.seed, 0x0C01));
  result.accuracy = proto::summarize_accuracy(result.run, n);
  return result;
}

std::vector<TrialResult> run_trials(const TrialConfig& cfg,
                                    std::uint32_t trials) {
  std::vector<TrialResult> results(trials);
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(trials); ++t) {
    TrialConfig trial_cfg = cfg;
    trial_cfg.seed = util::mix_seed(cfg.seed, static_cast<std::uint64_t>(t) + 1);
    results[static_cast<std::size_t>(t)] = run_trial(trial_cfg);
  }
  return results;
}

}  // namespace byz::sim
