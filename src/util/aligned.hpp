// Cache-line-aligned vector storage. The CSR hot loops (flood kernel,
// verifier row recomputation) stream the adjacency arrays; aligning the
// allocations to 64-byte lines keeps the rows from straddling an extra
// line per access and gives the vectorizer an honest alignment story.
// The allocator is stateless, so aligned_vector moves/swaps exactly like
// std::vector — the incremental snapshot engine hands its assembled CSR
// arrays to Graph::from_csr without a copy.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace byz::util {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;
  // The non-type Align parameter defeats allocator_traits' default rebind
  // (it only rewrites type-only template argument lists), so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage (drop-in for the CSR arrays).
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace byz::util
