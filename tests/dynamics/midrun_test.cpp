// Unit coverage of the mid-run churn building blocks: schedule derivation,
// LiveOverlayFeed bookkeeping (run-id space, mask growth, stats, flush),
// and run_churn's mid-run mode (trace invariants, config validation, the
// ε-warm budget accounting).
#include <gtest/gtest.h>

#include <algorithm>

#include "dynamics/epoch_driver.hpp"
#include "dynamics/midrun.hpp"
#include "graph/categories.hpp"
#include "sim/runner.hpp"

namespace byz {
namespace {

using graph::NodeId;

TEST(ChurnScheduleTest, DerivationIsDeterministicSortedAndComplete) {
  dynamics::ChurnEpoch epoch;
  epoch.joins = 9;
  epoch.sybil_joins = 3;
  epoch.leaves = 7;
  const auto a = dynamics::derive_schedule(epoch, 120, 42);
  const auto b = dynamics::derive_schedule(epoch, 120, 42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.joins(), epoch.joins);
  EXPECT_EQ(a.sybil_joins(), epoch.sybil_joins);
  EXPECT_EQ(a.leaves(), epoch.leaves);
  EXPECT_TRUE(std::is_sorted(
      a.events.begin(), a.events.end(),
      [](const auto& x, const auto& y) { return x.round < y.round; }));
  for (const auto& e : a.events) EXPECT_LT(e.round, 120u);
  const auto c = dynamics::derive_schedule(epoch, 120, 43);
  EXPECT_NE(a.events, c.events) << "different seeds must move the events";
}

TEST(ChurnScheduleTest, HorizonGrowsWithNetworkSize) {
  proto::ScheduleConfig sched;
  const auto small = dynamics::expected_horizon_rounds(256, 6, sched);
  const auto large = dynamics::expected_horizon_rounds(4096, 6, sched);
  EXPECT_GT(small, 0u);
  EXPECT_GT(large, small);
}

TEST(LiveOverlayFeedTest, GrowsStableMaskAndEndsAtTraceMembership) {
  constexpr NodeId kN0 = 192;
  dynamics::MutableOverlay overlay(kN0, 6, 0, 5);
  util::Xoshiro256 place_rng(17);
  std::vector<bool> byz = graph::random_byzantine_mask(
      kN0, sim::derive_byz_count(kN0, 0.6), place_rng);

  dynamics::ChurnEpoch epoch;
  epoch.joins = 10;
  epoch.sybil_joins = 2;
  epoch.leaves = 8;
  proto::ProtocolConfig cfg;
  const auto schedule = dynamics::derive_schedule(
      epoch, dynamics::expected_horizon_rounds(kN0, 6, cfg.schedule), 9);

  dynamics::MidRunConfig mid_cfg;
  mid_cfg.policy = proto::MembershipPolicy::kReadmitNextPhase;
  util::Xoshiro256 churn_rng(23);
  auto strategy = adv::make_strategy(adv::StrategyKind::kFakeColor);
  const auto out = dynamics::run_counting_midrun(
      overlay, byz, *strategy, cfg, 77, schedule, mid_cfg,
      adv::ChurnAdversary::kNone, churn_rng);

  // Every scheduled event lands, mid-run or flushed.
  EXPECT_EQ(out.stats.events_applied + out.stats.events_flushed,
            schedule.events.size());
  EXPECT_EQ(out.stats.joins, 12u);
  EXPECT_EQ(out.stats.leaves, 8u);
  EXPECT_EQ(overlay.num_alive(), kN0 + 12 - 8);
  EXPECT_EQ(byz.size(), overlay.id_bound());
  // Run-id space: snapshot members + every scheduled joiner, all mapped
  // to stable ids after the flush.
  ASSERT_EQ(out.run.status.size(), kN0 + 12u);
  ASSERT_EQ(out.run_to_stable.size(), kN0 + 12u);
  for (const NodeId s : out.run_to_stable) {
    EXPECT_NE(s, graph::kInvalidNode);
  }
  // Sybil joiner slots carry the Byzantine flag through to the stable mask.
  std::uint32_t sybils = 0;
  for (NodeId v = kN0; v < out.run_byz.size(); ++v) {
    if (out.run_byz[v]) {
      ++sybils;
      EXPECT_TRUE(byz[out.run_to_stable[v]]);
    }
  }
  EXPECT_EQ(sybils, 2u);
  // Departed members are marked and carry no estimate.
  std::uint32_t departed = 0;
  for (std::size_t v = 0; v < out.run.status.size(); ++v) {
    if (out.run.status[v] == proto::NodeStatus::kDeparted) {
      ++departed;
      EXPECT_EQ(out.run.estimate[v], 0u);
      EXPECT_FALSE(overlay.is_alive(out.run_to_stable[v]));
    }
  }
  EXPECT_GT(departed, 0u);
}

TEST(MidRunChurnModeTest, ReplaysTraceAndReportsMidRunStats) {
  for (const auto policy : {proto::MembershipPolicy::kTreatAsSilent,
                            proto::MembershipPolicy::kReadmitNextPhase}) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = 192;
    cfg.trace.epochs = 4;
    cfg.trace.arrival_rate = 8.0;
    cfg.trace.departure_rate = 8.0;
    cfg.trace.min_n = 96;
    cfg.trace.seed = 3;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.seed = 3;
    cfg.mid_run.enabled = true;
    cfg.mid_run.policy = policy;

    const auto result = dynamics::run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    std::uint64_t events = 0;
    for (std::uint32_t e = 0; e < result.epochs.size(); ++e) {
      const auto& ep = result.epochs[e];
      EXPECT_EQ(ep.n_true, result.trace.epochs[e].n_after);
      EXPECT_TRUE(ep.estimated);
      EXPECT_GT(ep.messages, 0u);
      events += ep.midrun_events_applied + ep.midrun_events_flushed;
      if (policy == proto::MembershipPolicy::kTreatAsSilent) {
        EXPECT_EQ(ep.midrun_admitted, 0u);
      }
    }
    EXPECT_GT(events, 0u);
  }
}

TEST(MidRunChurnModeTest, RejectsIncompatibleTiers) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 64;
  cfg.trace.epochs = 1;
  cfg.mid_run.enabled = true;
  cfg.incremental.incremental = true;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
  cfg.incremental.incremental = false;
  cfg.incremental.warm_start = true;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
  cfg.incremental.warm_start = false;
  cfg.incremental.adaptive = true;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
}

TEST(MidRunChurnModeTest, EngineOracleMatchesFastpathPerEpoch) {
  // run_engine is no longer excluded from mid-run mode: it replays every
  // epoch's schedule through the message-level engine and records bitwise
  // agreement — the E26 contract, surfaced per epoch.
  for (const auto schedule :
       {adv::MidRunScheduleStrategy::kUniform,
        adv::MidRunScheduleStrategy::kFrontierLeaves}) {
    dynamics::ChurnRunConfig cfg;
    cfg.trace.n0 = 160;
    cfg.trace.epochs = 3;
    cfg.trace.arrival_rate = 6.0;
    cfg.trace.departure_rate = 6.0;
    cfg.trace.min_n = 96;
    cfg.trace.seed = 11;
    cfg.d = 6;
    cfg.delta = 0.7;
    cfg.seed = 11;
    cfg.run_engine = true;
    cfg.mid_run.enabled = true;
    cfg.mid_run.schedule = schedule;

    const auto result = dynamics::run_churn(cfg);
    ASSERT_EQ(result.epochs.size(), cfg.trace.epochs);
    for (const auto& ep : result.epochs) {
      EXPECT_TRUE(ep.engine_match)
          << "engine diverged from fastpath under mid-run churn ("
          << adv::to_string(schedule) << ")";
    }
  }
}

TEST(EpsWarmTest, RequiresWarmStart) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 64;
  cfg.trace.epochs = 1;
  cfg.incremental.eps_warm = true;
  EXPECT_THROW((void)dynamics::run_churn(cfg), std::invalid_argument);
}

TEST(EpsWarmTest, BudgetAccountingHoldsAcrossEpochs) {
  dynamics::ChurnRunConfig cfg;
  cfg.trace.n0 = 1024;
  cfg.trace.epochs = 5;
  cfg.trace.arrival_rate = 4.0;
  cfg.trace.departure_rate = 4.0;
  cfg.trace.min_n = 512;
  cfg.trace.seed = 13;
  cfg.d = 6;
  cfg.delta = 0.7;
  cfg.seed = 13;
  cfg.incremental.incremental = true;
  cfg.incremental.warm_start = true;
  cfg.incremental.verify_warm = true;  // counts divergences, enforces budget
  cfg.incremental.eps_warm = true;
  cfg.incremental.eps_budget = 0.10;
  cfg.incremental.eps_margin = 0;  // n=1024's decided-phase tail is shallow
  cfg.incremental.warm.max_drift = 0.5;

  // run_churn throws if any epoch's divergence exceeds floor(ε·honest).
  const auto result = dynamics::run_churn(cfg);
  bool any_eps = false;
  for (const auto& ep : result.epochs) {
    if (!ep.eps_used) {
      EXPECT_EQ(ep.eps_divergent, 0u);
      continue;
    }
    any_eps = true;
    EXPECT_GT(ep.eps_entry_phase, 1u);
    EXPECT_GT(ep.eps_skipped_subphases, 0u);
    EXPECT_GT(ep.eps_budget_nodes, 0u);
    EXPECT_LE(ep.eps_divergent, ep.eps_budget_nodes);
    // The decided phases must respect the entry clamp.
  }
  EXPECT_TRUE(any_eps) << "ε-warm phase skip never engaged";
}

}  // namespace
}  // namespace byz
