#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/hamiltonian.hpp"
#include "graph/small_world.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

Graph complete_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges, true);
}

Graph cycle_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges, true);
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(average_clustering(complete_graph(8), 0, 1), 1.0);
}

TEST(Clustering, CycleIsZero) {
  EXPECT_DOUBLE_EQ(average_clustering(cycle_graph(10), 0, 1), 0.0);
}

TEST(Clustering, TriangleWithPendantKnownValue) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 2}, {2, 0}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges, true);
  // c(0) = 1/3 (one edge among 3 neighbor-pairs), c(1)=c(2)=1, c(3)=0.
  EXPECT_NEAR(average_clustering(g, 0, 1), (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0,
              1e-12);
}

TEST(Clustering, RandomRegularIsLow) {
  util::Xoshiro256 rng(3);
  const Graph h = simplify(build_hamiltonian_graph(2048, 8, rng));
  EXPECT_LT(average_clustering(h, 0, 1), 0.02);
}

TEST(Clustering, SmallWorldGIsHigh) {
  // The whole point of L: G's clustering must dwarf H's (§2.1).
  OverlayParams p;
  p.n = 2048;
  p.d = 8;
  p.seed = 5;
  const Overlay o = Overlay::build(p);
  const double ch = average_clustering(o.h_simple(), 0, 1);
  const double cg = average_clustering(o.g(), 256, 7);
  EXPECT_GT(cg, 10.0 * ch);
  EXPECT_GT(cg, 0.15);
}

TEST(Clustering, SampledCloseToExact) {
  util::Xoshiro256 rng(9);
  const Graph h = simplify(build_hamiltonian_graph(1024, 6, rng));
  const double exact = average_clustering(h, 0, 1);
  const double sampled = average_clustering(h, 512, 99);
  EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(Diameter, CycleExact) {
  const DiameterResult r = diameter(cycle_graph(10));
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, 5u);
}

TEST(Diameter, CompleteGraphIsOne) {
  const DiameterResult r = diameter(complete_graph(6));
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, 1u);
}

TEST(Diameter, DoubleSweepLowerBoundsExact) {
  const Graph g = cycle_graph(600);
  const DiameterResult approx = diameter(g, /*exact_threshold=*/32, 4, 7);
  EXPECT_FALSE(approx.exact);
  EXPECT_LE(approx.value, 300u);
  EXPECT_GE(approx.value, 250u);  // double sweep is near-tight on a cycle
}

TEST(Diameter, RandomRegularLogarithmic) {
  util::Xoshiro256 rng(11);
  const Graph h = simplify(build_hamiltonian_graph(1024, 8, rng));
  const DiameterResult r = diameter(h);
  EXPECT_TRUE(r.exact);
  // log_7(1024) ≈ 3.6; diameter of the random regular graph is typically
  // within +2 of that.
  EXPECT_GE(r.value, 3u);
  EXPECT_LE(r.value, 7u);
}

TEST(AveragePathLength, CycleKnownValue) {
  // Mean distance on an even n-cycle = n^2/4 / (n-1).
  const Graph g = cycle_graph(8);
  const double apl = average_path_length(g, 8, 1);
  EXPECT_NEAR(apl, 16.0 / 7.0, 1e-9);
}

TEST(AveragePathLength, SmallerOnDenserGraph) {
  util::Xoshiro256 rng(13);
  const Graph sparse = simplify(build_hamiltonian_graph(512, 4, rng));
  const Graph dense = simplify(build_hamiltonian_graph(512, 12, rng));
  EXPECT_LT(average_path_length(dense, 16, 3),
            average_path_length(sparse, 16, 3));
}

}  // namespace
}  // namespace byz::graph
