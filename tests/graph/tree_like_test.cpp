#include "graph/tree_like.hpp"

#include <gtest/gtest.h>

#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace byz::graph {
namespace {

TEST(TreeBallSize, ClosedForm) {
  EXPECT_EQ(tree_ball_size(3, 0), 1u);
  EXPECT_EQ(tree_ball_size(3, 1), 4u);
  EXPECT_EQ(tree_ball_size(3, 2), 10u);   // 1 + 3 + 6
  EXPECT_EQ(tree_ball_size(8, 1), 9u);
  EXPECT_EQ(tree_ball_size(8, 2), 65u);   // 1 + 8 + 56
  EXPECT_EQ(tree_ball_size(8, 3), 457u);  // + 392
}

TEST(TreeBallSize, RejectsSmallDegree) {
  EXPECT_THROW((void)tree_ball_size(2, 1), std::invalid_argument);
}

TEST(PaperLtlRadius, SubUnityAtPracticalSizes) {
  // The asymptotic radius log n / (10 log d) is < 1 for every practical n
  // (DESIGN.md §3.4) — pin that down so experiments document it honestly.
  EXPECT_LT(paper_ltl_radius(1 << 16, 8), 1.0);
  EXPECT_LT(paper_ltl_radius(1 << 20, 8), 1.0);
  EXPECT_GT(paper_ltl_radius(1ULL << 40, 8), 1.0);
}

TEST(TreeLike, PerfectTreeNodeDetected) {
  // Build an explicit 3-regular tree of depth 3 and close it up with a
  // matching on the leaves so the graph is 3-regular: the root must be LTL
  // at radius 2.
  // Depth-3 binary-ish tree: root 0 with 3 children; interior nodes have 2
  // children each.
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = 1;
  std::vector<NodeId> level{0};
  std::vector<NodeId> leaves;
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<NodeId> next_level;
    for (const NodeId u : level) {
      const int kids = (depth == 0) ? 3 : 2;
      for (int c = 0; c < kids; ++c) {
        edges.emplace_back(u, next);
        next_level.push_back(next);
        ++next;
      }
    }
    level = next_level;
  }
  leaves = level;  // 12 leaves, each with degree 1 so far
  // Pair up leaves from different subtrees to reach degree 3 (2 extra each).
  const NodeId n = next;
  for (std::size_t i = 0; i < leaves.size() / 2; ++i) {
    const NodeId a = leaves[i];
    const NodeId b = leaves[i + leaves.size() / 2];
    edges.emplace_back(a, b);
    edges.emplace_back(a, leaves[(i + 1) % (leaves.size() / 2)]);
    edges.emplace_back(b, leaves[leaves.size() / 2 +
                                 (i + 1) % (leaves.size() / 2)]);
  }
  const Graph g = Graph::from_edges(n, edges, false);
  const auto result = classify_tree_like(g, 3, 2);
  EXPECT_TRUE(result.is_tree_like[0]);
}

TEST(TreeLike, CycleNodeNotTreeLikeAtLargeRadius) {
  // On C_n (d=2 is below the d>=3 guard) use a 4-regular circulant where
  // radius-2 balls always collide: nodes are never tree-like at radius 2.
  const NodeId n = 32;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n);
    edges.emplace_back(v, (v + 2) % n);
  }
  const Graph g = Graph::from_edges(n, edges, false);
  const auto result = classify_tree_like(g, 4, 2);
  EXPECT_EQ(result.count, 0u);
}

TEST(TreeLike, Lemma1MostNodesTreeLikeRadius1) {
  // Lemma 1/21: n - O(n^0.8) nodes are LTL. At radius 1 the only
  // obstructions are multi-edges and triangles through the node.
  util::Xoshiro256 rng(17);
  const NodeId n = 4096;
  const Graph h = build_hamiltonian_graph(n, 8, rng);
  const auto result = classify_tree_like(h, 8, 1);
  EXPECT_GT(result.count, n - 200u);
  EXPECT_EQ(result.radius, 1u);
}

TEST(TreeLike, Radius2StillDominant) {
  util::Xoshiro256 rng(19);
  const NodeId n = 8192;
  const Graph h = build_hamiltonian_graph(n, 8, rng);
  const auto r2 = classify_tree_like(h, 8, 2);
  EXPECT_GT(r2.count, n * 3 / 4);
  // Monotonicity: LTL at radius 2 implies LTL at radius 1.
  const auto r1 = classify_tree_like(h, 8, 1);
  for (NodeId v = 0; v < n; ++v) {
    if (r2.is_tree_like[v]) EXPECT_TRUE(r1.is_tree_like[v]);
  }
}

TEST(TreeLike, CountMatchesMask) {
  util::Xoshiro256 rng(23);
  const Graph h = build_hamiltonian_graph(512, 6, rng);
  const auto result = classify_tree_like(h, 6, 1);
  std::uint64_t manual = 0;
  for (const bool b : result.is_tree_like) manual += b ? 1 : 0;
  EXPECT_EQ(manual, result.count);
}

TEST(TreeLike, MultiEdgeBreaksTreeLikeness) {
  // Tiny n with large d guarantees parallel edges; affected nodes must not
  // be tree-like at radius 1.
  util::Xoshiro256 rng(29);
  const Graph h = build_hamiltonian_graph(6, 6, rng);
  const auto result = classify_tree_like(h, 6, 1);
  // With n=6 and d=6 every radius-1 ball covers most of the graph and tree
  // size 7 > 6 is impossible.
  EXPECT_EQ(result.count, 0u);
}

}  // namespace
}  // namespace byz::graph
