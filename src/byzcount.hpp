// byzcount — Byzantine-tolerant network size estimation in small-world
// overlays. Umbrella header: pulls in the full public API.
//
// Reproduction of Chatterjee, Pandurangan & Robinson, "Network Size
// Estimation in Small-World Networks under Byzantine Faults".
//
// Quick tour (see examples/quickstart.cpp):
//   graph::Overlay::build({.n, .d, .seed})  — sample the H(n,d) ∪ L overlay
//   graph::random_byzantine_mask            — place Byzantine nodes
//   adv::make_strategy                      — choose an attack
//   proto::run_counting                     — run Algorithm 2 (fast path)
//   sim::Engine                             — message-level reference run
//   proto::summarize_accuracy               — Theorem-1 style verdict
#pragma once

#include "adversary/churn.hpp"           // IWYU pragma: export
#include "adversary/midrun_schedule.hpp" // IWYU pragma: export
#include "adversary/placement.hpp"       // IWYU pragma: export
#include "adversary/strategies.hpp"      // IWYU pragma: export
#include "analysis/backend_compare.hpp"  // IWYU pragma: export
#include "analysis/experiment.hpp"       // IWYU pragma: export
#include "analysis/report.hpp"           // IWYU pragma: export
#include "baselines/birthday.hpp"        // IWYU pragma: export
#include "baselines/flood_diameter.hpp"  // IWYU pragma: export
#include "baselines/spanning_tree.hpp"   // IWYU pragma: export
#include "baselines/support_estimation.hpp"  // IWYU pragma: export
#include "bench_core/context.hpp"        // IWYU pragma: export
#include "bench_core/json.hpp"           // IWYU pragma: export
#include "bench_core/orchestrator.hpp"   // IWYU pragma: export
#include "bench_core/overlay_cache.hpp"  // IWYU pragma: export
#include "bench_core/registry.hpp"       // IWYU pragma: export
#include "bench_core/scheduler.hpp"      // IWYU pragma: export
#include "dynamics/churn_trace.hpp"      // IWYU pragma: export
#include "dynamics/epoch_driver.hpp"     // IWYU pragma: export
#include "dynamics/midrun.hpp"           // IWYU pragma: export
#include "dynamics/mutable_overlay.hpp"  // IWYU pragma: export
#include "graph/bfs.hpp"                 // IWYU pragma: export
#include "graph/categories.hpp"          // IWYU pragma: export
#include "graph/connectivity.hpp"        // IWYU pragma: export
#include "graph/graph.hpp"               // IWYU pragma: export
#include "graph/hamiltonian.hpp"         // IWYU pragma: export
#include "graph/io.hpp"                  // IWYU pragma: export
#include "graph/metrics.hpp"             // IWYU pragma: export
#include "graph/small_world.hpp"         // IWYU pragma: export
#include "graph/spectral.hpp"            // IWYU pragma: export
#include "graph/tree_like.hpp"           // IWYU pragma: export
#include "incremental/dirty_ball.hpp"    // IWYU pragma: export
#include "incremental/engine.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"               // IWYU pragma: export
#include "obs/obs.hpp"                   // IWYU pragma: export
#include "obs/trace.hpp"                 // IWYU pragma: export
#include "protocols/brc/brc.hpp"         // IWYU pragma: export
#include "protocols/color.hpp"           // IWYU pragma: export
#include "protocols/estimate.hpp"        // IWYU pragma: export
#include "protocols/estimator.hpp"       // IWYU pragma: export
#include "protocols/fastpath.hpp"        // IWYU pragma: export
#include "protocols/flooding.hpp"        // IWYU pragma: export
#include "protocols/midrun.hpp"          // IWYU pragma: export
#include "protocols/neighborhood.hpp"    // IWYU pragma: export
#include "protocols/refine.hpp"          // IWYU pragma: export
#include "protocols/run_common.hpp"      // IWYU pragma: export
#include "protocols/schedule.hpp"        // IWYU pragma: export
#include "protocols/verification.hpp"    // IWYU pragma: export
#include "protocols/warm_start.hpp"      // IWYU pragma: export
#include "sim/engine.hpp"                // IWYU pragma: export
#include "sim/runner.hpp"                // IWYU pragma: export
#include "sim/world.hpp"                 // IWYU pragma: export
#include "util/bitops.hpp"               // IWYU pragma: export
#include "util/cli.hpp"                  // IWYU pragma: export
#include "util/csv.hpp"                  // IWYU pragma: export
#include "util/log.hpp"                  // IWYU pragma: export
#include "util/rng.hpp"                  // IWYU pragma: export
#include "util/stats.hpp"                // IWYU pragma: export
#include "util/table.hpp"                // IWYU pragma: export
#include "util/timer.hpp"                // IWYU pragma: export
