#include "adversary/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/categories.hpp"

namespace byz::adv {

using graph::NodeId;

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::kRandom: return "random";
    case Placement::kClustered: return "clustered";
    case Placement::kChain: return "chain";
    case Placement::kSpread: return "spread";
  }
  return "unknown";
}

std::vector<Placement> all_placements() {
  return {Placement::kRandom, Placement::kClustered, Placement::kChain,
          Placement::kSpread};
}

namespace {

std::vector<bool> clustered(const graph::Overlay& overlay, NodeId count,
                            util::Xoshiro256& rng) {
  // BFS from a random seed until `count` nodes are absorbed.
  const NodeId n = overlay.num_nodes();
  std::vector<bool> mask(n, false);
  const auto seed = static_cast<NodeId>(rng.below(n));
  std::vector<NodeId> frontier{seed};
  mask[seed] = true;
  NodeId placed = 1;
  std::vector<NodeId> next;
  while (placed < count && !frontier.empty()) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId w : overlay.h_simple().neighbors(u)) {
        if (!mask[w] && placed < count) {
          mask[w] = true;
          ++placed;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return mask;
}

std::vector<bool> chain(const graph::Overlay& overlay, NodeId count,
                        util::Xoshiro256& rng) {
  // Greedy self-avoiding walk along H; restarts from an unvisited random
  // node when stuck, so the budget is always spent.
  const NodeId n = overlay.num_nodes();
  std::vector<bool> mask(n, false);
  NodeId placed = 0;
  NodeId current = static_cast<NodeId>(rng.below(n));
  mask[current] = true;
  ++placed;
  while (placed < count) {
    NodeId next_node = graph::kInvalidNode;
    const auto nbrs = overlay.h_simple().neighbors(current);
    // Random unvisited neighbor.
    const auto offset = rng.below(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId cand = nbrs[(i + offset) % nbrs.size()];
      if (!mask[cand]) {
        next_node = cand;
        break;
      }
    }
    if (next_node == graph::kInvalidNode) {
      // Dead end: restart the walk elsewhere.
      do {
        next_node = static_cast<NodeId>(rng.below(n));
      } while (mask[next_node]);
    }
    mask[next_node] = true;
    ++placed;
    current = next_node;
  }
  return mask;
}

std::vector<bool> spread(const graph::Overlay& overlay, NodeId count,
                         util::Xoshiro256& rng) {
  // Greedy k-center-style: repeatedly take the node farthest from the
  // current Byzantine set (multi-source BFS per step; fine at bench scale).
  const NodeId n = overlay.num_nodes();
  std::vector<bool> mask(n, false);
  std::vector<NodeId> chosen{static_cast<NodeId>(rng.below(n))};
  mask[chosen[0]] = true;
  while (chosen.size() < count) {
    const auto dist = graph::multi_source_distances(overlay.h_simple(), chosen);
    NodeId best = graph::kInvalidNode;
    std::uint32_t best_dist = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!mask[v] && dist[v] != graph::kUnreachable && dist[v] >= best_dist) {
        best = v;
        best_dist = dist[v];
      }
    }
    if (best == graph::kInvalidNode) break;
    mask[best] = true;
    chosen.push_back(best);
  }
  return mask;
}

}  // namespace

std::vector<bool> place_byzantine(const graph::Overlay& overlay, NodeId count,
                                  Placement placement, util::Xoshiro256& rng) {
  const NodeId n = overlay.num_nodes();
  if (count > n) throw std::invalid_argument("place_byzantine: count > n");
  if (count == 0) return std::vector<bool>(n, false);
  switch (placement) {
    case Placement::kRandom:
      return graph::random_byzantine_mask(n, count, rng);
    case Placement::kClustered:
      return clustered(overlay, count, rng);
    case Placement::kChain:
      return chain(overlay, count, rng);
    case Placement::kSpread:
      return spread(overlay, count, rng);
  }
  throw std::invalid_argument("place_byzantine: unknown placement");
}

}  // namespace byz::adv
