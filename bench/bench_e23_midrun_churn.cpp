// E23 — accuracy vs MID-RUN churn rate: how much does estimation accuracy
// degrade when nodes join and leave WHILE Algorithm 2 floods, rather than
// between runs? The paper proves Theorem 1 on a static graph but budgets
// an ε·n outlier fraction; the follow-up Byzantine-resilient counting work
// (PAPERS.md) targets exactly this regime. The scenario sweeps the
// per-epoch event rate applied mid-run under both membership policies:
// treat-as-silent (run-start view, churn = silence) and readmit-next-phase
// (live neighbor resolution + phase-boundary admissions), reporting the
// fresh in-band fraction, estimate ratios, and the mid-run event
// bookkeeping. Rate 0 rides the same code path and doubles as a smoke
// anchor for E24's bitwise-parity claim.
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e23(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(11));
  const auto t = ctx.trials(3);
  constexpr std::uint32_t kEpochs = 6;
  const double rates[] = {0.0, 1.0, 2.0, 4.0};  // x n0/128 events per epoch
  const proto::MembershipPolicy policies[] = {
      proto::MembershipPolicy::kTreatAsSilent,
      proto::MembershipPolicy::kReadmitNextPhase};

  util::Table table("E23: accuracy vs mid-run churn rate, d=6 (" +
                    std::to_string(t) + " trials, " + std::to_string(kEpochs) +
                    " epochs, events strike DURING the flood)");
  table.columns({"n0", "policy", "events/epoch", "applied mid-run",
                 "admitted", "fresh in-band", "mean est/log2n", "undecided"});
  std::vector<double> band_all;
  for (const auto n0 : sizes) {
    for (const auto policy : policies) {
      for (const double rate : rates) {
        dynamics::ChurnRunConfig cfg;
        cfg.trace.n0 = n0;
        cfg.trace.epochs = kEpochs;
        cfg.trace.arrival_rate = rate * (n0 / 128.0);
        cfg.trace.departure_rate = rate * (n0 / 128.0);
        cfg.trace.min_n = n0 / 2;
        cfg.d = 6;
        cfg.delta = 0.7;
        cfg.strategy = adv::StrategyKind::kFakeColor;
        cfg.mid_run.enabled = true;
        cfg.mid_run.policy = policy;

        const std::uint64_t base_seed = 0xE23 + n0 +
                                        static_cast<std::uint64_t>(rate * 8);
        const auto runs = ctx.scheduler().map(t, [&](std::uint64_t i) {
          auto trial_cfg = cfg;
          trial_cfg.trace.seed =
              bench_core::TrialScheduler::trial_seed(base_seed, i);
          trial_cfg.seed = trial_cfg.trace.seed;
          return dynamics::run_churn(trial_cfg);
        });

        util::OnlineStats fresh, ratio, undecided;
        std::uint64_t events = 0, applied = 0, admitted = 0;
        for (const auto& run : runs) {
          for (const auto& ep : run.epochs) {
            fresh.add(ep.fresh.frac_in_band);
            ratio.add(ep.fresh.mean_ratio);
            undecided.add(
                ep.fresh.honest
                    ? static_cast<double>(ep.fresh.undecided) /
                          static_cast<double>(ep.fresh.honest)
                    : 0.0);
            applied += ep.midrun_events_applied;
            events += ep.midrun_events_applied + ep.midrun_events_flushed;
            admitted += ep.midrun_admitted;
            band_all.push_back(ep.fresh.frac_in_band);
          }
        }
        table.row()
            .cell(std::uint64_t{n0})
            .cell(proto::to_string(policy))
            .cell(2.0 * rate * (n0 / 128.0), 1)
            .cell(events ? util::format_double(
                               100.0 * static_cast<double>(applied) /
                                   static_cast<double>(events),
                               1) + "%"
                         : std::string("-"))
            .cell(std::uint64_t{admitted})
            .cell(fresh.mean(), 4)
            .cell(ratio.mean(), 3)
            .cell(util::format_double(100.0 * undecided.mean(), 1) + "%");

        Json j = Json::object();
        j["fresh_in_band"] = fresh.mean();
        j["mean_ratio"] = ratio.mean();
        j["events_applied_mid_run"] = applied;
        j["admitted"] = admitted;
        j["undecided_frac"] = undecided.mean();
        const bool silent =
            policy == proto::MembershipPolicy::kTreatAsSilent;
        ctx.metric("midrun_n" + std::to_string(n0) + "_" +
                       std::string(silent ? "silent" : "readmit") + "_r" +
                       std::to_string(static_cast<int>(rate * 10)),
                   std::move(j));
      }
    }
  }
  table.note("Events are spread over the run's expected flood rounds "
             "(dynamics::derive_schedule); 'applied mid-run' is the share "
             "the run actually reached before terminating (the rest flush "
             "after). treat-as-silent keeps the run-start view — joiners "
             "wait for the next epoch, so its undecided column tracks the "
             "arrival rate; readmit-next-phase admits joiners at phase "
             "boundaries under a live-rebuilt Verifier. In-band fractions "
             "degrade gracefully with the mid-run rate — the Theorem-1 "
             "band holds for the surviving members well past realistic "
             "churn.");
  ctx.emit(table);
  ctx.record_accuracy("fresh_in_band", band_all);
}

}  // namespace

BYZBENCH_REGISTER(e23) {
  ScenarioSpec spec;
  spec.id = "e23";
  spec.title = "Mid-run churn: accuracy vs churn rate under both policies";
  spec.claim = "Estimation survives nodes joining/leaving DURING a run: "
               "in-band accuracy degrades gracefully with the mid-run "
               "event rate under both membership policies";
  spec.grid = {{"policy", {"treat-as-silent", "readmit-next-phase"}},
               {"rate", {"0", "1x", "2x", "4x"}},
               pow2_axis(10, 11)};
  spec.base_trials = 3;
  spec.metrics = {"midrun_n<k>_<policy>_r<r>.fresh_in_band",
                  "accuracy.fresh_in_band"};
  spec.run = run_e23;
  return spec;
}
