// Graph import/export: whitespace edge lists (round-trippable) and
// Graphviz DOT (for visualizing small overlays). Lets downstream users
// feed their own overlay topologies into the protocols, per the paper's
// remark that any graph with high expansion + clustering should work.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace byz::graph {

/// Writes one "u v" line per undirected edge (parallel edges repeated),
/// preceded by a "# nodes <n>" header so isolated nodes survive.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the write_edge_list format. Throws std::runtime_error on
/// malformed input (bad header, non-numeric tokens, ids out of range).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Convenience file wrappers.
void save_edge_list(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& path);

/// Graphviz rendering (undirected). `highlight` (optional, may be empty)
/// marks nodes (e.g. Byzantine) with a distinct style.
void write_dot(std::ostream& out, const Graph& g,
               const std::vector<bool>& highlight = {});

}  // namespace byz::graph
