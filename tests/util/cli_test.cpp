#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace byz::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_option("n", "size", "1024");
  p.add_option("rate", "a real", "0.5");
  p.add_option("name", "a string", "default");
  p.add_option("sizes", "csv ints", "1,2,3");
  p.add_flag("verbose", "chatty");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.integer("n"), 1024);
  EXPECT_DOUBLE_EQ(p.real("rate"), 0.5);
  EXPECT_EQ(p.str("name"), "default");
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(ArgParser, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=2048", "--rate=0.25", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.integer("n"), 2048);
  EXPECT_DOUBLE_EQ(p.real("rate"), 0.25);
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--name", "hello"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.str("name"), "hello");
}

TEST(ArgParser, IntListParses) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--sizes=10,20,30"};
  ASSERT_TRUE(p.parse(2, argv));
  const auto v = p.int_list("sizes");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[2], 30);
}

TEST(ArgParser, UnknownOptionThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--name"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, PositionalThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW((void)p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, BadIntegerThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=12abc"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_THROW((void)p.integer("n"), std::invalid_argument);
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpTextListsOptions) {
  auto p = make_parser();
  const std::string h = p.help();
  EXPECT_NE(h.find("--n"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("default: 1024"), std::string::npos);
}

}  // namespace
}  // namespace byz::util
