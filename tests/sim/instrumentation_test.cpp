#include "sim/instrumentation.hpp"

#include <gtest/gtest.h>

namespace byz::sim {
namespace {

Instrumentation sample_a() {
  Instrumentation a;
  a.setup_messages = 3;
  a.setup_bytes = 40;
  a.token_messages = 100;
  a.token_bytes = 1200;
  a.verify_messages = 8;
  a.verify_bytes = 128;
  a.flood_rounds = 12;
  a.injections_attempted = 5;
  a.injections_accepted = 2;
  a.injections_caught = 3;
  a.max_node_round_sends = 9;
  a.crashes = 1;
  return a;
}

Instrumentation sample_b() {
  Instrumentation b;
  b.setup_messages = 7;
  b.setup_bytes = 60;
  b.token_messages = 50;
  b.token_bytes = 600;
  b.verify_messages = 4;
  b.verify_bytes = 64;
  b.flood_rounds = 6;
  b.injections_attempted = 1;
  b.injections_accepted = 0;
  b.injections_caught = 1;
  b.max_node_round_sends = 4;
  b.crashes = 2;
  return b;
}

TEST(Instrumentation, MergeIsAdditiveOnEveryCounter) {
  Instrumentation merged = sample_a();
  merged.merge(sample_b());
  const Instrumentation a = sample_a();
  const Instrumentation b = sample_b();
  EXPECT_EQ(merged.setup_messages, a.setup_messages + b.setup_messages);
  EXPECT_EQ(merged.setup_bytes, a.setup_bytes + b.setup_bytes);
  EXPECT_EQ(merged.token_messages, a.token_messages + b.token_messages);
  EXPECT_EQ(merged.token_bytes, a.token_bytes + b.token_bytes);
  EXPECT_EQ(merged.verify_messages, a.verify_messages + b.verify_messages);
  EXPECT_EQ(merged.verify_bytes, a.verify_bytes + b.verify_bytes);
  EXPECT_EQ(merged.flood_rounds, a.flood_rounds + b.flood_rounds);
  EXPECT_EQ(merged.injections_attempted,
            a.injections_attempted + b.injections_attempted);
  EXPECT_EQ(merged.injections_accepted,
            a.injections_accepted + b.injections_accepted);
  EXPECT_EQ(merged.injections_caught,
            a.injections_caught + b.injections_caught);
  EXPECT_EQ(merged.crashes, a.crashes + b.crashes);
}

TEST(Instrumentation, MergeTakesMaxOfPeakFanOut) {
  // max_node_round_sends is a peak, not a volume: merging trials keeps
  // the larger of the two, in either merge order.
  Instrumentation merged = sample_a();
  merged.merge(sample_b());
  EXPECT_EQ(merged.max_node_round_sends, 9u);
  Instrumentation reversed = sample_b();
  reversed.merge(sample_a());
  EXPECT_EQ(reversed.max_node_round_sends, 9u);
}

TEST(Instrumentation, ByteModelConstants) {
  // §2.1 small-sized messages: token = 4B color + 8B header; ids are 4B;
  // a verification query/response carries 2 ids + color.
  EXPECT_EQ(Instrumentation::kTokenBytes, 12u);
  EXPECT_EQ(Instrumentation::kIdBytes, 4u);
  EXPECT_EQ(Instrumentation::kVerifyBytes, 16u);
}

TEST(Instrumentation, CountTokenAppliesByteModel) {
  Instrumentation instr;
  instr.count_token();
  EXPECT_EQ(instr.token_messages, 1u);
  EXPECT_EQ(instr.token_bytes, Instrumentation::kTokenBytes);
  instr.count_token(10);
  EXPECT_EQ(instr.token_messages, 11u);
  EXPECT_EQ(instr.token_bytes, 11 * Instrumentation::kTokenBytes);
}

TEST(Instrumentation, CountSetupListIsHeaderPlusIds) {
  Instrumentation instr;
  instr.count_setup_list(5);
  EXPECT_EQ(instr.setup_messages, 1u);
  EXPECT_EQ(instr.setup_bytes, 8 + 5 * Instrumentation::kIdBytes);
  instr.count_setup_list(0);
  EXPECT_EQ(instr.setup_messages, 2u);
  EXPECT_EQ(instr.setup_bytes, 8 + 5 * Instrumentation::kIdBytes + 8);
}

TEST(Instrumentation, CountVerificationCountsBothDirections) {
  Instrumentation instr;
  instr.count_verification(3);
  EXPECT_EQ(instr.verify_messages, 6u);
  EXPECT_EQ(instr.verify_bytes, 6 * Instrumentation::kVerifyBytes);
}

TEST(Instrumentation, TotalsSumTheThreeTrafficClasses) {
  const Instrumentation a = sample_a();
  EXPECT_EQ(a.total_messages(),
            a.setup_messages + a.token_messages + a.verify_messages);
  EXPECT_EQ(a.total_bytes(), a.setup_bytes + a.token_bytes + a.verify_bytes);
}

TEST(Instrumentation, EqualityIsCounterForCounter) {
  EXPECT_EQ(sample_a(), sample_a());
  Instrumentation tweaked = sample_a();
  tweaked.token_bytes += 1;
  EXPECT_NE(sample_a(), tweaked);
}

}  // namespace
}  // namespace byz::sim
