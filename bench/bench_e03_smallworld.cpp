// E3 — Small-world structure of G = H ∪ L (§2.1): adding the k-hop lattice
// edges raises the clustering coefficient by orders of magnitude while the
// diameter stays logarithmic (the expander part is untouched).
#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

struct Row {
  graph::NodeId n = 0;
  double ch = 0.0;
  double cg = 0.0;
  std::uint32_t diam = 0;
  bool diam_exact = true;
  double apl = 0.0;
  double avg_deg_g = 0.0;
};

void run_e03(RunContext& ctx) {
  const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));

  const auto rows = ctx.scheduler().map(sizes.size(), [&](std::uint64_t i) {
    const auto n = sizes[i];
    const auto overlay = ctx.overlay(n, 8, 0xE3 + n);
    Row row;
    row.n = n;
    row.ch = graph::average_clustering(overlay->h_simple(),
                                       n > 8192 ? 2048 : 0, 0xE3);
    row.cg = graph::average_clustering(overlay->g(), 512, 0xE3);
    const auto diam = graph::diameter(overlay->h_simple(), 4096, 8, 0xE3);
    row.diam = diam.value;
    row.diam_exact = diam.exact;
    row.apl = graph::average_path_length(overlay->h_simple(), 8, 0xE3);
    row.avg_deg_g = 2.0 * static_cast<double>(overlay->g().num_edges()) / n;
    return row;
  });

  util::Table table("E3: small-world structure of G = H ∪ L (d=8, k=3)");
  table.columns({"n", "CC(H)", "CC(G)", "gain", "diam(H)", "log2n/log2(d-1)",
                 "APL(H)", "deg(G) avg"});
  std::vector<double> gains;
  for (const auto& row : rows) {
    table.row()
        .cell(std::uint64_t{row.n})
        .cell(row.ch, 5)
        .cell(row.cg, 4)
        .cell(row.cg / (row.ch > 0 ? row.ch : 1e-9), 1)
        .cell(std::string(std::to_string(row.diam)) +
              (row.diam_exact ? "" : "+"))
        .cell(lg(row.n) / lg(7.0), 2)
        .cell(row.apl, 2)
        .cell(row.avg_deg_g, 1);
    gains.push_back(row.cg / (row.ch > 0 ? row.ch : 1e-9));
  }
  table.note("Watts-Strogatz small-world signature: clustering gain of 10-100x "
             "over the random regular graph at unchanged O(log n) diameter. "
             "'+' marks double-sweep lower bounds (n > 4096).");
  ctx.emit(table);
  ctx.metric("clustering_gain", bench_core::quantiles_json(gains));
}

}  // namespace

BYZBENCH_REGISTER(e03) {
  ScenarioSpec spec;
  spec.id = "e03";
  spec.title = "small-world structure of G = H u L";
  spec.claim = "S2.1: L-edges raise clustering 10-100x at O(log n) diameter";
  spec.grid = {pow2_axis(10, 14)};
  spec.base_trials = 1;
  spec.metrics = {"clustering_gain"};
  spec.run = run_e03;
  return spec;
}
