// Backend-neutral outcome summaries. summarize_accuracy judges any
// backend's RunResult against the true n (the band is the caller's — each
// Estimator declares its own); median_decided_estimate is the scale-free
// aggregate the cross-backend agreement checks compare, deployable without
// ground truth.
#include "protocols/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace byz::proto {

Accuracy summarize_accuracy(const RunResult& result, std::uint64_t true_n,
                            double lo, double hi) {
  Accuracy acc;
  const double log_n = std::log2(static_cast<double>(true_n));
  double sum_ratio = 0.0;
  acc.min_ratio = std::numeric_limits<double>::infinity();
  acc.max_ratio = 0.0;
  for (std::size_t v = 0; v < result.status.size(); ++v) {
    switch (result.status[v]) {
      case NodeStatus::kByzantine: continue;
      case NodeStatus::kDeparted: continue;
      case NodeStatus::kCrashed:
        ++acc.honest;
        ++acc.crashed;
        continue;
      case NodeStatus::kUndecided:
        ++acc.honest;
        ++acc.undecided;
        continue;
      case NodeStatus::kDecided: {
        ++acc.honest;
        ++acc.decided;
        const double ratio = static_cast<double>(result.estimate[v]) / log_n;
        sum_ratio += ratio;
        acc.min_ratio = std::min(acc.min_ratio, ratio);
        acc.max_ratio = std::max(acc.max_ratio, ratio);
        if (ratio >= lo && ratio <= hi) ++acc.in_band;
        continue;
      }
    }
  }
  if (acc.decided > 0) {
    acc.mean_ratio = sum_ratio / static_cast<double>(acc.decided);
  } else {
    acc.min_ratio = 0.0;
  }
  acc.frac_in_band =
      acc.honest ? static_cast<double>(acc.in_band) / static_cast<double>(acc.honest) : 0.0;
  acc.frac_good =
      acc.decided ? static_cast<double>(acc.in_band) / static_cast<double>(acc.decided) : 0.0;
  return acc;
}

double median_decided_estimate(const RunResult& result) {
  std::vector<std::uint32_t> decided;
  decided.reserve(result.status.size());
  for (std::size_t v = 0; v < result.status.size(); ++v) {
    if (result.status[v] == NodeStatus::kDecided) {
      decided.push_back(result.estimate[v]);
    }
  }
  if (decided.empty()) return 0.0;
  const std::size_t mid = decided.size() / 2;
  std::nth_element(decided.begin(), decided.begin() + mid, decided.end());
  if (decided.size() % 2 == 1) return static_cast<double>(decided[mid]);
  const auto hi = decided[mid];
  const auto lo = *std::max_element(decided.begin(), decided.begin() + mid);
  return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
}

}  // namespace byz::proto
