// E4 — The §1.2 motivation, quantified: every classical estimator is exact
// (or near-exact) on a clean network and is destroyed by a single Byzantine
// node; Byzantine suppression also blinds the leader-flood approach when
// the leader itself is Byzantine.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(13);
  {
    util::Table table("E4a: geometric max-flood estimate of log2 n (d=8)");
    table.columns({"n", "log2 n", "clean est", "1 byz inflate", "sqrt(n) byz",
                   "rounds"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      util::Xoshiro256 rng(0xE4 + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[n / 2] = true;
      const auto byz = place_byz(n, 0.5, 0xE4 + n);
      const auto clean =
          base::run_geometric_support(h, none, base::FloodAttack::kNone, 64, 1);
      const auto hit1 =
          base::run_geometric_support(h, one, base::FloodAttack::kInflate, 64, 1);
      const auto hitm =
          base::run_geometric_support(h, byz, base::FloodAttack::kInflate, 64, 1);
      table.row()
          .cell(std::uint64_t{n})
          .cell(lg(n), 1)
          .cell(std::uint64_t{clean.estimate[0]})
          .cell(std::uint64_t{hit1.estimate[0]})
          .cell(std::uint64_t{hitm.estimate[0]})
          .cell(clean.rounds);
    }
    table.note("One inflating Byzantine node suffices: every honest node "
               "adopts the fake maximum (2^30).");
    analysis::emit(table);
  }
  {
    util::Table table("E4b: exponential support estimation n-hat (s=64)");
    table.columns({"n", "clean n-hat", "1 byz inflate", "clean err %"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      util::Xoshiro256 rng(0xE4B + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[1] = true;
      const auto clean = base::run_exponential_support(
          h, none, base::FloodAttack::kNone, 64, 64, 2);
      const auto hit = base::run_exponential_support(
          h, one, base::FloodAttack::kInflate, 64, 64, 2);
      table.row()
          .cell(std::uint64_t{n})
          .cell(clean.estimate[0], 0)
          .cell(hit.estimate[0], 0)
          .cell(100.0 * std::abs(clean.estimate[0] - n) / n, 1);
    }
    analysis::emit(table);
  }
  {
    util::Table table("E4c: spanning-tree converge-cast count");
    table.columns({"n", "clean", "1 byz inflate", "1 byz zero", "rounds"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      util::Xoshiro256 rng(0xE4C + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> one(n, false);
      one[n / 3] = true;
      const auto clean =
          base::run_spanning_tree_count(h, none, 0, base::TreeAttack::kNone);
      const auto inflate =
          base::run_spanning_tree_count(h, one, 0, base::TreeAttack::kInflate);
      const auto zero =
          base::run_spanning_tree_count(h, one, 0, base::TreeAttack::kZero);
      table.row()
          .cell(std::uint64_t{n})
          .cell(clean.root_count)
          .cell(inflate.root_count)
          .cell(zero.root_count)
          .cell(clean.rounds);
    }
    analysis::emit(table);
  }
  {
    util::Table table("E4d: birthday-paradox estimator (m = 8 sqrt(n))");
    table.columns({"n", "clean n-hat", "n^0.5 byz n-hat"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      const std::vector<bool> none(n, false);
      const auto byz = place_byz(n, 0.5, 0xE4D + n);
      const auto m = static_cast<std::uint32_t>(
          8.0 * std::sqrt(static_cast<double>(n)));
      const auto clean = base::run_birthday(n, none, m, 3);
      const auto hit = base::run_birthday(n, byz, m, 3);
      table.row()
          .cell(std::uint64_t{n})
          .cell(clean.estimate, 0)
          .cell(hit.estimate, 0);
    }
    analysis::emit(table);
  }
  {
    util::Table table("E4e: leader flood-diameter (needs a leader — the catch)");
    table.columns({"n", "honest leader ecc", "byz leader", "reached (32 byz "
                   "suppressors)"});
    for (const auto n : analysis::pow2_sizes(10, max_exp)) {
      util::Xoshiro256 rng(0xE4E + n);
      const auto h = graph::simplify(graph::build_hamiltonian_graph(n, 8, rng));
      const std::vector<bool> none(n, false);
      std::vector<bool> leader_byz(n, false);
      leader_byz[0] = true;
      std::vector<bool> belt(n, false);
      for (int i = 0; i < 32; ++i) belt[rng.below(n)] = true;
      const auto honest = base::run_flood_diameter(h, none, 0, false, 64);
      const auto byzled = base::run_flood_diameter(h, leader_byz, 0, false, 64);
      const auto sup = base::run_flood_diameter(h, belt, 1, true, 64);
      std::uint32_t ecc = 0;
      for (const auto f : honest.first_seen) {
        if (f != graph::kUnreachable) ecc = std::max(ecc, f);
      }
      std::uint64_t reached = 0;
      for (const auto f : sup.first_seen) {
        if (f != graph::kUnreachable) ++reached;
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(ecc)
          .cell(byzled.rounds == 0 ? "never starts" : "?")
          .cell(reached);
    }
    table.note("Estimating log n via a leader's flood works — but electing "
               "the leader without knowing n is the very problem (§1.2).");
    analysis::emit(table);
  }
  return 0;
}
