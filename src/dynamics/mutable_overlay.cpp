#include "dynamics/mutable_overlay.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace byz::dynamics {

MutableOverlay::MutableOverlay(NodeId n0, std::uint32_t d, std::uint32_t k,
                               std::uint64_t seed)
    : d_(d),
      k_(k == 0 ? graph::paper_k(d) : k),
      seed_(seed),
      history_tag_(util::mix_seed(seed, 0xD15C)) {
  if (n0 < 3) throw std::invalid_argument("MutableOverlay: need n0 >= 3");
  if (d < 4 || d % 2 != 0) {
    throw std::invalid_argument("MutableOverlay: need even d >= 4");
  }
  alive_.assign(n0, 1);
  alive_list_.resize(n0);
  pos_in_list_.resize(n0);
  std::iota(alive_list_.begin(), alive_list_.end(), NodeId{0});
  std::iota(pos_in_list_.begin(), pos_in_list_.end(), NodeId{0});
  alive_count_ = n0;

  // The exact cycle sampling of build_hamiltonian_graph: one shared perm,
  // Fisher-Yates re-shuffled per cycle, rings read off consecutively. A
  // generation-0 snapshot therefore reproduces Overlay::build bit for bit.
  const std::uint32_t cycles = d_ / 2;
  succ_.assign(cycles, std::vector<NodeId>(n0));
  pred_.assign(cycles, std::vector<NodeId>(n0));
  util::Xoshiro256 rng(seed);
  std::vector<NodeId> perm(n0);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::uint32_t c = 0; c < cycles; ++c) {
    for (NodeId i = n0 - 1; i > 0; --i) {
      const auto j = static_cast<NodeId>(rng.below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (NodeId i = 0; i < n0; ++i) {
      const NodeId u = perm[i];
      const NodeId v = perm[(i + 1) % n0];
      succ_[c][u] = v;
      pred_[c][v] = u;
    }
  }
}

NodeId MutableOverlay::join(util::Xoshiro256& rng) {
  std::vector<NodeId> anchors(num_cycles());
  for (auto& a : anchors) a = random_alive(rng);
  return join_at(anchors);
}

NodeId MutableOverlay::join_at(std::span<const NodeId> anchors) {
  if (anchors.size() != num_cycles()) {
    throw std::invalid_argument("join_at: need one anchor per cycle");
  }
  for (const NodeId a : anchors) {
    if (!is_alive(a)) throw std::invalid_argument("join_at: dead anchor");
  }
  const auto v = static_cast<NodeId>(alive_.size());
  alive_.push_back(1);
  pos_in_list_.push_back(static_cast<NodeId>(alive_list_.size()));
  alive_list_.push_back(v);
  ++alive_count_;
  for (std::uint32_t c = 0; c < num_cycles(); ++c) {
    succ_[c].push_back(graph::kInvalidNode);
    pred_[c].push_back(graph::kInvalidNode);
  }
  std::vector<NodeId> touched;
  if (observer_ != nullptr) {
    touched.reserve(1 + 2 * num_cycles());
    touched.push_back(v);
    for (std::uint32_t c = 0; c < num_cycles(); ++c) {
      touched.push_back(anchors[c]);
      touched.push_back(succ_[c][anchors[c]]);  // anchor's pre-splice succ
    }
  }
  splice_in(v, anchors);
  ++generation_;
  fold(0x10000000ull | v);
  for (const NodeId a : anchors) fold(a);
  notify(touched);
  return v;
}

void MutableOverlay::splice_in(NodeId v, std::span<const NodeId> anchors) {
  for (std::uint32_t c = 0; c < num_cycles(); ++c) {
    const NodeId a = anchors[c];
    const NodeId s = succ_[c][a];
    succ_[c][a] = v;
    pred_[c][v] = a;
    succ_[c][v] = s;
    pred_[c][s] = v;
  }
}

void MutableOverlay::leave(NodeId v) {
  if (!is_alive(v)) throw std::invalid_argument("leave: node not alive");
  if (alive_count_ <= 3) {
    throw std::invalid_argument("leave: overlay cannot shrink below 3 nodes");
  }
  std::vector<NodeId> touched;
  if (observer_ != nullptr) {
    touched.reserve(1 + 2 * num_cycles());
    touched.push_back(v);
  }
  for (std::uint32_t c = 0; c < num_cycles(); ++c) {
    const NodeId p = pred_[c][v];
    const NodeId s = succ_[c][v];
    succ_[c][p] = s;
    pred_[c][s] = p;
    succ_[c][v] = graph::kInvalidNode;
    pred_[c][v] = graph::kInvalidNode;
    if (observer_ != nullptr) {
      touched.push_back(p);
      touched.push_back(s);
    }
  }
  alive_[v] = 0;
  const NodeId pos = pos_in_list_[v];
  const NodeId last = alive_list_.back();
  alive_list_[pos] = last;
  pos_in_list_[last] = pos;
  alive_list_.pop_back();
  --alive_count_;
  ++generation_;
  fold(0x20000000ull | v);
  notify(touched);
}

void MutableOverlay::rewire(NodeId v, util::Xoshiro256& rng) {
  if (!is_alive(v)) throw std::invalid_argument("rewire: node not alive");
  if (alive_count_ < 4) return;  // nowhere else to go in a 3-ring
  // Splice out, pick anchors among the OTHERS, splice back in.
  std::vector<NodeId> touched;
  if (observer_ != nullptr) {
    touched.reserve(1 + 4 * num_cycles());
    touched.push_back(v);
  }
  for (std::uint32_t c = 0; c < num_cycles(); ++c) {
    const NodeId p = pred_[c][v];
    const NodeId s = succ_[c][v];
    succ_[c][p] = s;
    pred_[c][s] = p;
    if (observer_ != nullptr) {
      touched.push_back(p);
      touched.push_back(s);
    }
  }
  std::vector<NodeId> anchors(num_cycles());
  for (auto& a : anchors) {
    do {
      a = random_alive(rng);
    } while (a == v);
  }
  if (observer_ != nullptr) {
    for (std::uint32_t c = 0; c < num_cycles(); ++c) {
      touched.push_back(anchors[c]);
      touched.push_back(succ_[c][anchors[c]]);  // becomes v's new successor
    }
  }
  splice_in(v, anchors);
  ++generation_;
  fold(0x30000000ull | v);
  for (const NodeId a : anchors) fold(a);
  notify(touched);
}

std::vector<NodeId> MutableOverlay::alive_nodes() const {
  std::vector<NodeId> out(alive_list_);
  std::sort(out.begin(), out.end());
  return out;
}

NodeId MutableOverlay::Snapshot::to_dense(NodeId stable) const {
  const auto it = std::lower_bound(dense_to_stable.begin(),
                                   dense_to_stable.end(), stable);
  if (it == dense_to_stable.end() || *it != stable) return graph::kInvalidNode;
  return static_cast<NodeId>(it - dense_to_stable.begin());
}

MutableOverlay::Snapshot MutableOverlay::snapshot() const {
  Snapshot snap;
  snap.dense_to_stable = alive_nodes();
  const auto n = static_cast<NodeId>(snap.dense_to_stable.size());

  std::vector<NodeId> dense(alive_.size(), graph::kInvalidNode);
  for (NodeId i = 0; i < n; ++i) dense[snap.dense_to_stable[i]] = i;

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * num_cycles());
  for (std::uint32_t c = 0; c < num_cycles(); ++c) {
    for (NodeId i = 0; i < n; ++i) {
      const NodeId v = snap.dense_to_stable[i];
      edges.emplace_back(i, dense[succ_[c][v]]);
    }
  }

  graph::OverlayParams params;
  params.n = n;
  params.d = d_;
  params.k = k_;
  params.seed = seed_;
  params.generation = build_tag();  // nonzero: never aliases the static key
  snap.overlay = graph::Overlay::build_from_h(
      params, graph::Graph::from_edges(n, edges, /*dedup=*/false));
  return snap;
}

}  // namespace byz::dynamics
