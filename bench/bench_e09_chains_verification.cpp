// E9 — Observation 6 and Lemmas 15/16 in action.
//
// (a) Longest Byzantine-only chain in H vs the threshold k, across n and
//     delta: chains of length >= k must vanish when kδ > 1.
// (b) Injection probe: Byzantine nodes attempt a fixed-step injection in
//     every subphase; the Verifier must accept step-1 claims (unauditable
//     generation), accept step-t claims only when a length-min(t,k) chain
//     exists, and catch everything else.
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace byz;
using namespace byz::bench;

void run_e09(RunContext& ctx) {
  const auto t = ctx.trials(10);
  {
    const auto sizes = analysis::pow2_sizes(10, ctx.max_exp(14));
    const double deltas[] = {0.4, 0.5, 0.7};

    struct Cell {
      std::uint32_t worst = 0;
      std::uint32_t violations = 0;
      std::uint32_t k = 0;
    };
    struct Point {
      graph::NodeId n;
      double delta;
    };
    std::vector<Point> grid;
    for (const auto n : sizes) {
      for (const double delta : deltas) grid.push_back({n, delta});
    }
    const auto cells = ctx.scheduler().map(grid.size(), [&](std::uint64_t i) {
      const auto [n, delta] = grid[i];
      const auto overlay = ctx.overlay(n, 8, 0xE9 + n);
      Cell cell;
      cell.k = overlay->k();
      for (std::uint32_t trial = 0; trial < t; ++trial) {
        util::Xoshiro256 rng(util::mix_seed(0xE9A + n, trial));
        const auto byz = graph::random_byzantine_mask(
            n, sim::derive_byz_count(n, delta), rng);
        const auto chain =
            graph::longest_byzantine_chain(overlay->h_simple(), byz, 10);
        cell.worst = std::max(cell.worst, chain);
        if (chain >= overlay->k()) ++cell.violations;
      }
      return cell;
    });

    util::Table table("E9a: longest Byzantine chain in H (d=8, k=3, " +
                      std::to_string(t) + " trials, max over trials)");
    table.columns({"n", "delta", "B", "k*delta", "max chain", "P[chain>=k]"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto [n, delta] = grid[i];
      table.row()
          .cell(std::uint64_t{n})
          .cell(delta, 1)
          .cell(std::uint64_t{sim::derive_byz_count(n, delta)})
          .cell(cells[i].k * delta, 2)
          .cell(cells[i].worst)
          .cell(static_cast<double>(cells[i].violations) / t, 2);
    }
    table.note("Observation 6: chains of length >= k vanish iff k*delta > 1 "
               "(delta > 3/d). The delta=0.4 row sits near the boundary for "
               "d=8 and shows residual chains at small n.");
    ctx.emit(table);
  }
  {
    const graph::NodeId n = 4096;
    const std::uint32_t steps[] = {1u, 2u, 3u, 4u, 6u};
    struct Row {
      std::uint32_t needs_chain = 0;
      std::uint64_t accepted = 0;
      std::uint64_t caught = 0;
      std::uint64_t undecided = 0;
      sim::Instrumentation instr;
    };
    const auto rows = ctx.scheduler().map(std::size(steps), [&](std::uint64_t i) {
      const auto step = steps[i];
      const auto overlay = ctx.overlay(n, 8, 0xE9B);
      const auto byz = place_byz(n, 0.5, 0xE9B);
      adv::InjectionProbe probe(step, 900000 + step);
      proto::ProtocolConfig cfg;
      const auto run = proto::run_counting(*overlay, byz, probe, cfg, 0xC9);
      const auto acc = proto::summarize_accuracy(run, n);
      Row row;
      row.needs_chain = std::min(step, overlay->k());
      row.accepted = run.instr.injections_accepted;
      row.caught = run.instr.injections_caught;
      row.undecided = acc.undecided;
      row.instr = run.instr;
      return row;
    });

    util::Table table(
        "E9b: injection probe vs step (d=8, k=3, n=4096, delta=0.5)");
    table.columns({"inject step", "needs chain", "accepted", "caught",
                   "catch rate", "undecided honest"});
    for (std::size_t i = 0; i < std::size(steps); ++i) {
      const auto& row = rows[i];
      const auto attempted = row.accepted + row.caught;
      table.row()
          .cell(steps[i])
          .cell(row.needs_chain)
          .cell(row.accepted)
          .cell(row.caught)
          .cell(attempted ? static_cast<double>(row.caught) /
                                static_cast<double>(attempted)
                          : 0.0,
                3)
          .cell(row.undecided);
      ctx.count_messages(row.instr);
    }
    table.note("Lemma 16: step-1 claims are always accepted (generation); "
               "step >= 2 needs a real Byzantine chain of min(step, k). At "
               "k=3 and random placement, chains of 3 are rare and chains "
               "longer than 3 are never needed — catch rate jumps to ~1 at "
               "step >= 2 and stays there.");
    ctx.emit(table);
  }
}

}  // namespace

BYZBENCH_REGISTER(e09) {
  ScenarioSpec spec;
  spec.id = "e09";
  spec.title = "Byzantine chains and the injection verifier";
  spec.claim = "Observation 6 + Lemmas 15/16: chains >= k vanish for "
               "k*delta > 1; step >= 2 injections are caught";
  spec.grid = {{"delta", {"0.4", "0.5", "0.7"}},
               {"inject_step", {"1", "2", "3", "4", "6"}},
               pow2_axis(10, 14)};
  spec.base_trials = 10;
  spec.metrics = {"messages"};
  spec.run = run_e09;
  return spec;
}
