#include "obs/recorder.hpp"

namespace byz::obs {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRoundClose: return "round_close";
    case FlightEventKind::kPhaseBegin: return "phase_begin";
    case FlightEventKind::kJoin: return "join";
    case FlightEventKind::kLeave: return "leave";
    case FlightEventKind::kStragglerFlood: return "straggler_flood";
    case FlightEventKind::kWarmRowReuse: return "warm_row_reuse";
    case FlightEventKind::kEpsEntry: return "eps_entry";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

#if BYZ_OBS_ENABLED

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(const FlightEvent& event) noexcept {
  ring_[static_cast<std::size_t>(total_ % ring_.size())] = event;
  ++total_;
}

std::vector<FlightEvent> FlightRecorder::tail() const {
  std::vector<FlightEvent> out;
  const std::uint64_t kept =
      total_ < ring_.size() ? total_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = total_ - kept; i < total_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
  return out;
}

#endif  // BYZ_OBS_ENABLED

std::string flight_tail_json(const FlightRecorder& recorder) {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : recorder.tail()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"kind\": \"";
    out += to_string(e.kind);
    out += "\", \"phase\": " + std::to_string(e.phase);
    out += ", \"subphase\": " + std::to_string(e.subphase);
    out += ", \"round\": " + std::to_string(e.round);
    out += ", \"a\": " + std::to_string(e.a);
    out += ", \"b\": " + std::to_string(e.b);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace byz::obs
