// Estimate refinement and almost-everywhere smoothing — implementations of
// two directions the paper leaves open (§4: "whether one can improve the
// approximation factor of the estimate of log n to 1 ± o(1)").
//
// 1. Calibration. Algorithm 2's output i* is a termination PHASE: the
//    point where the flood ball B(v, i) stops producing fresh maxima,
//    i.e. i* ≈ ecc_H(v) + O(1). Under the H(n,d) model the ball grows as
//    |B(v, r)| = Θ(d (d-1)^(r-1)), so the model-aware readout
//        log2(n-hat) = l_{i*-2} = log2 d + (i*-2) log2(d-1)
//    converts the multiplicative-factor estimate into an additive-O(1)
//    one: the ratio to log2 n tends to 1 + O(1/log n). The calibration
//    inherits Algorithm 2's Byzantine tolerance outright because it is a
//    deterministic function of i*.
//
// 2. Smoothing. Different honest nodes decide within ±1-2 phases of each
//    other. Each node can collect the ESTIMATES of its G-neighbors over
//    direct channels (ids are authentic on channels, §2.1 — unlike flooded
//    third-party claims, these values are attributable) and take the
//    median. Byzantine neighbors may report arbitrary values, but they are
//    a vanishing minority of every honest G-ball w.h.p., so the median is
//    robust; honest estimates concentrate, so smoothing collapses the
//    spread. This is the "almost-everywhere agreement on the estimate"
//    post-processing the paper's introduction motivates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/small_world.hpp"
#include "protocols/estimate.hpp"

namespace byz::proto {

/// Model-aware readout of a decided phase (see file comment); returns 0
/// for undecided/crashed inputs (phase 0). Clamps i* <= 2 to l_0.
[[nodiscard]] double refined_log_estimate(std::uint32_t decided_phase,
                                          std::uint32_t d);

/// Per-node refined estimates for a whole run (0 where undecided/crashed).
[[nodiscard]] std::vector<double> refine_run(const RunResult& result,
                                             std::uint32_t d);

/// How Byzantine neighbors respond to estimate queries during smoothing.
enum class EstimateLie : std::uint8_t {
  kHonest,   ///< report a plausible value (indistinguishable from honest)
  kInflate,  ///< report an absurdly large estimate
  kDeflate,  ///< report zero
};

/// One round of median smoothing over closed G-neighborhoods. Crashed and
/// undecided honest nodes query but contribute nothing (they have no
/// estimate); Byzantine responses follow `lie`. Returns the smoothed
/// estimates (log2-scale), 0 where the node had no estimate and gathered
/// no quorum.
[[nodiscard]] std::vector<double> smooth_estimates(
    const graph::Overlay& overlay, const std::vector<bool>& byz_mask,
    const std::vector<double>& estimates, EstimateLie lie);

/// Accuracy of a real-valued log2-estimate vector against the truth.
struct RefinedAccuracy {
  std::uint64_t with_estimate = 0;
  double mean_ratio = 0.0;  ///< mean est/log2(n) over nodes with estimates
  double min_ratio = 0.0;
  double max_ratio = 0.0;
  double stddev_ratio = 0.0;
};
[[nodiscard]] RefinedAccuracy summarize_refined(
    const std::vector<double>& estimates, const std::vector<bool>& byz_mask,
    std::uint64_t true_n);

}  // namespace byz::proto
