// E6 — Round complexity (Theorem 1: O(log^3 n)). Measures total flooding
// rounds of Algorithm 1/2 runs against c*log^3 n and fits the exponent of
// rounds = c * (log n)^p by regression on log-log'd data.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace byz;
  using namespace byz::bench;

  const auto max_exp = analysis::env_max_exp(16);
  util::Table table("E6: protocol rounds vs log^3 n (d=8, fake-color attack)");
  table.columns({"n", "log2 n", "rounds clean", "rounds attacked",
                 "rounds/log2^3 n", "theory bound"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto n : analysis::pow2_sizes(10, max_exp)) {
    const auto overlay = make_overlay(n, 8, 0xE6 + n);
    const auto clean = proto::run_basic_counting(overlay, 0xC6);
    const auto byz = place_byz(n, 0.5, 0xE6 + n);
    const auto strat = adv::make_strategy(adv::StrategyKind::kFakeColor);
    proto::ProtocolConfig cfg;
    const auto attacked =
        proto::run_counting(overlay, byz, *strat, cfg, 0xC6);
    const double l = lg(n);
    // The analysis' worst-case budget: rounds through phase b log n.
    const auto theory = proto::rounds_through_phase(
        static_cast<std::uint32_t>(l), 8, cfg.schedule);
    table.row()
        .cell(std::uint64_t{n})
        .cell(l, 1)
        .cell(clean.flood_rounds)
        .cell(attacked.flood_rounds)
        .cell(static_cast<double>(clean.flood_rounds) / (l * l * l), 4)
        .cell(theory);
    xs.push_back(std::log(l));
    ys.push_back(std::log(static_cast<double>(clean.flood_rounds)));
  }
  const auto fit = util::linear_fit(xs, ys);
  table.note("Fitted rounds ~ (log n)^p with p = " +
             util::format_double(fit.slope, 2) +
             " (R^2 = " + util::format_double(fit.r_squared, 3) +
             "); Theorem 1 predicts p <= 3. In practice termination at the "
             "diameter keeps the measured exponent well below the bound.");
  analysis::emit(table);
  return 0;
}
