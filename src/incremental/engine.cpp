#include "incremental/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/small_world.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace byz::incremental {

namespace {

bool graphs_equal(const graph::Graph& a, const graph::Graph& b) {
  const NodeId n = a.num_nodes();
  if (n != b.num_nodes() || a.num_slots() != b.num_slots()) return false;
  for (NodeId v = 0; v < n; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

}  // namespace

bool overlays_identical(const graph::Overlay& a, const graph::Overlay& b) {
  const auto& pa = a.params();
  const auto& pb = b.params();
  if (pa.n != pb.n || pa.d != pb.d || pa.k != pb.k || pa.seed != pb.seed ||
      pa.generation != pb.generation || a.k() != b.k()) {
    return false;
  }
  if (!graphs_equal(a.h(), b.h()) ||
      !graphs_equal(a.h_simple(), b.h_simple()) ||
      !graphs_equal(a.g(), b.g())) {
    return false;
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto da = a.g_dists(v);
    const auto db = b.g_dists(v);
    if (!std::equal(da.begin(), da.end(), db.begin(), db.end())) return false;
  }
  return true;
}

IncrementalEngine::IncrementalEngine(MutableOverlay& overlay, Config config)
    : overlay_(&overlay), config_(config), tracker_(overlay) {}

void IncrementalEngine::recompute_ball(NodeId v, graph::BfsScratch& scratch,
                                       std::vector<graph::BallEntry>& tmp) {
  const auto& ov = *overlay_;
  scratch.ensure(ov.id_bound());
  scratch.new_epoch();
  scratch.mark(v);
  tmp.clear();
  tmp.push_back({v, 0});
  const std::uint32_t cycles = ov.num_cycles();
  const std::uint32_t k = ov.k();
  std::size_t level_begin = 0;
  for (std::uint32_t depth = 1; depth <= k; ++depth) {
    const std::size_t level_end = tmp.size();
    if (level_begin == level_end) break;  // ball stopped growing
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const NodeId u = tmp[i].node;
      for (std::uint32_t c = 0; c < cycles; ++c) {
        for (const NodeId w : {ov.successor(c, u), ov.predecessor(c, u)}) {
          if (!scratch.visited(w)) {
            scratch.mark(w);
            tmp.push_back({w, static_cast<std::uint8_t>(depth)});
          }
        }
      }
    }
    level_begin = level_end;
  }
  auto& ball = balls_[v];
  ball.assign(tmp.begin() + 1, tmp.end());  // self excluded, like G rows
  std::sort(ball.begin(), ball.end(),
            [](const graph::BallEntry& a, const graph::BallEntry& b) {
              return a.node < b.node;
            });
}

MutableOverlay::Snapshot IncrementalEngine::snapshot() {
  static const obs::Counter obs_recomputed("incremental.balls_recomputed");
  static const obs::Counter obs_reused("incremental.balls_reused");
  obs::Span snap_span("incremental.snapshot");
  const auto& ov = *overlay_;
  MutableOverlay::Snapshot snap;
  snap.dense_to_stable = ov.alive_nodes();
  const auto n = static_cast<NodeId>(snap.dense_to_stable.size());
  const NodeId bound = ov.id_bound();

  std::vector<NodeId> dense(bound, graph::kInvalidNode);
  for (NodeId i = 0; i < n; ++i) dense[snap.dense_to_stable[i]] = i;
  if (balls_.size() < bound) balls_.resize(bound);

  // What really changed since the last snapshot (warm-start consumers read
  // this even when incremental reuse is off).
  if (!has_snapshot_) {
    last_dirty_.assign(bound, 0);
    for (const NodeId v : snap.dense_to_stable) last_dirty_[v] = 1;
  } else {
    last_dirty_ = tracker_.dirty_mask();
    last_dirty_.resize(bound, 0);
  }

  const bool full = !has_snapshot_ || !config_.incremental;
  std::vector<NodeId> recompute;
  if (full) {
    recompute = snap.dense_to_stable;
    ++stats_.full_rebuilds;
  } else {
    for (const NodeId v : snap.dense_to_stable) {
      if (tracker_.is_dirty(v)) recompute.push_back(v);
    }
  }

  {
    obs::Span bfs_span("incremental.dirty_bfs");
    bfs_span.arg("recompute", recompute.size()).arg("alive", n);
#pragma omp parallel
    {
      graph::BfsScratch scratch;
      std::vector<graph::BallEntry> tmp;
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(recompute.size());
           ++i) {
        recompute_ball(recompute[static_cast<std::size_t>(i)], scratch, tmp);
      }
    }
  }
  // Departed nodes keep no ball (their stable ids are never reused).
  for (NodeId v = 0; v < bound; ++v) {
    if (!ov.is_alive(v) && !balls_[v].empty()) {
      std::vector<graph::BallEntry>().swap(balls_[v]);
    }
  }
  stats_.last_recomputed = recompute.size();
  stats_.last_reused = n - recompute.size();
  stats_.balls_recomputed += stats_.last_recomputed;
  stats_.balls_reused += stats_.last_reused;
  obs_recomputed.add(stats_.last_recomputed);
  obs_reused.add(stats_.last_reused);
  snap_span.arg("recomputed", stats_.last_recomputed)
      .arg("reused", stats_.last_reused);
  {
    obs::Span csr_span("incremental.csr_assembly");

    // H: every node holds exactly one successor and one predecessor slot
    // per cycle, so the CSR offsets are uniform; sorting each d-slot row
    // matches the multiset sort Graph::from_edges performs in the full
    // rebuild.
    const std::uint32_t d = ov.d();
    const std::uint32_t cycles = ov.num_cycles();
    graph::Graph::OffsetVec h_off(static_cast<std::size_t>(n) + 1);
    for (NodeId i = 0; i <= n; ++i) {
      h_off[i] = static_cast<std::uint64_t>(i) * d;
    }
    graph::Graph::NeighborVec h_nbrs(static_cast<std::uint64_t>(n) * d);
#pragma omp parallel for schedule(static)
    for (std::int64_t si = 0; si < static_cast<std::int64_t>(n); ++si) {
      const auto i = static_cast<NodeId>(si);
      const NodeId v = snap.dense_to_stable[i];
      NodeId* row = h_nbrs.data() + static_cast<std::uint64_t>(i) * d;
      for (std::uint32_t c = 0; c < cycles; ++c) {
        row[2 * c] = dense[ov.successor(c, v)];
        row[2 * c + 1] = dense[ov.predecessor(c, v)];
      }
      std::sort(row, row + d);
    }

    // G: prefix-sum the stored ball sizes, then translate stable→dense.
    // The mapping is monotone (dense order IS increasing stable order), so
    // the stable-sorted balls land dense-sorted without re-sorting.
    graph::Graph::OffsetVec g_off(static_cast<std::size_t>(n) + 1, 0);
    for (NodeId i = 0; i < n; ++i) {
      g_off[i + 1] = g_off[i] + balls_[snap.dense_to_stable[i]].size();
    }
    graph::Graph::NeighborVec g_nbrs(g_off[n]);
    std::vector<std::uint8_t> g_dist(g_off[n]);
#pragma omp parallel for schedule(static)
    for (std::int64_t si = 0; si < static_cast<std::int64_t>(n); ++si) {
      const auto i = static_cast<NodeId>(si);
      const auto& ball = balls_[snap.dense_to_stable[i]];
      const std::uint64_t base = g_off[i];
      for (std::size_t j = 0; j < ball.size(); ++j) {
        g_nbrs[base + j] = dense[ball[j].node];
        g_dist[base + j] = ball[j].dist;
      }
    }

    graph::OverlayParams params;
    params.n = n;
    params.d = d;
    params.k = ov.k();
    params.seed = ov.bootstrap_seed();
    params.generation = ov.build_tag();
    snap.overlay = graph::Overlay::build_with_balls(
        params, graph::Graph::from_csr(std::move(h_off), std::move(h_nbrs)),
        graph::Graph::from_csr(std::move(g_off), std::move(g_nbrs)),
        std::move(g_dist));
  }

  if (config_.verify_against_full) {
    const auto reference = ov.snapshot();
    if (reference.dense_to_stable != snap.dense_to_stable ||
        !overlays_identical(reference.overlay, snap.overlay)) {
      throw std::logic_error(
          "IncrementalEngine::snapshot: incremental result diverged from the "
          "full rebuild (dirty-ball invariant violated)");
    }
    ++stats_.verified;
  }

  tracker_.clear();
  has_snapshot_ = true;
  ++stats_.snapshots;
  return snap;
}

}  // namespace byz::incremental
